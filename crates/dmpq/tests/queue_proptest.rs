//! Property-based tests of the distributed queue: arbitrary op mixes across
//! cube sizes, bandwidths, and both mappings, against a multiset oracle.

#![allow(clippy::unwrap_used)] // test code: panics are the failure mode

use dmpq::mapping::MappingKind;
use dmpq::DistributedPq;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    ExtractMin,
    Min,
    Meld(Vec<i64>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (-100_000i64..100_000).prop_map(Op::Insert),
        3 => Just(Op::ExtractMin),
        1 => Just(Op::Min),
        1 => proptest::collection::vec(-100_000i64..100_000, 0..10).prop_map(Op::Meld),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_queue_matches_oracle(
        ops in proptest::collection::vec(op_strategy(), 0..80),
        q in 0usize..4,
        b in 1usize..12,
        identity_mapping in any::<bool>(),
    ) {
        let kind = if identity_mapping {
            MappingKind::Identity
        } else {
            MappingKind::Gray
        };
        let mut pq = DistributedPq::with_mapping(q, b, kind);
        let mut oracle: Vec<i64> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    pq.insert(k).expect("insert");
                    oracle.push(k);
                }
                Op::ExtractMin => {
                    let got = pq.extract_min().expect("extract");
                    let want = oracle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, k)| **k)
                        .map(|(i, _)| i);
                    match want {
                        None => prop_assert_eq!(got, None),
                        Some(i) => prop_assert_eq!(got, Some(oracle.swap_remove(i))),
                    }
                }
                Op::Min => {
                    prop_assert_eq!(pq.min(), oracle.iter().min().copied());
                }
                Op::Meld(keys) => {
                    let mut other = DistributedPq::with_mapping(q, b, kind);
                    for &k in &keys {
                        other.insert(k).expect("insert");
                        oracle.push(k);
                    }
                    pq.meld(other).expect("meld");
                }
            }
            prop_assert_eq!(pq.len(), oracle.len());
            pq.heap().validate().expect("b-heap invariants");
        }
        let mut expected = oracle;
        expected.sort_unstable();
        prop_assert_eq!(pq.into_sorted_vec().expect("drain"), expected);
    }

    /// The structural isomorphism carries over: the b-heap's tree orders are
    /// the set bits of (items in H) / b.
    #[test]
    fn bheap_orders_are_set_bits_of_node_count(
        n_chunks in 0usize..40,
        b in 1usize..6,
    ) {
        let mut pq = DistributedPq::new(2, b);
        for k in 0..(n_chunks * b) as i64 {
            pq.insert(k).expect("insert");
        }
        let nodes = pq.heap().node_count();
        prop_assert_eq!(nodes, n_chunks);
        let expected: Vec<usize> = (0..usize::BITS as usize)
            .filter(|i| nodes >> i & 1 == 1)
            .collect();
        prop_assert_eq!(pq.heap().root_orders(), expected);
        pq.heap().validate_chunk_order().expect("chunk order");
    }
}

/// Pinned regression: melds can overfill `Waiting` beyond `b`; the flush
/// must not move unordered leftovers into `Forehead` (they would be served
/// before smaller keys still in H). Found by the proptest above.
#[test]
fn regression_meld_overfilled_waiting_keeps_forehead_sound() {
    let mut pq = DistributedPq::new(2, 3);
    let mut oracle: Vec<i64> = Vec::new();
    let meld_in = |pq: &mut DistributedPq, keys: &[i64], oracle: &mut Vec<i64>| {
        let mut other = DistributedPq::new(2, 3);
        for &k in keys {
            other.insert(k).expect("insert");
            oracle.push(k);
        }
        pq.meld(other).expect("meld");
    };
    meld_in(
        &mut pq,
        &[0, -9, -39485, 91469, -78115, -83600, -27653],
        &mut oracle,
    );
    for k in [-82528, -98798, -61569] {
        pq.insert(k).expect("insert");
        oracle.push(k);
    }
    let extract = |pq: &mut DistributedPq, oracle: &mut Vec<i64>| {
        let got = pq.extract_min().expect("extract");
        let (i, _) = oracle.iter().enumerate().min_by_key(|(_, k)| **k).unwrap();
        assert_eq!(got, Some(oracle.swap_remove(i)));
    };
    extract(&mut pq, &mut oracle);
    extract(&mut pq, &mut oracle);
    extract(&mut pq, &mut oracle);
    pq.insert(-97421).expect("insert");
    oracle.push(-97421);
    extract(&mut pq, &mut oracle);
    meld_in(
        &mut pq,
        &[78564, 40430, -85368, -56273, 34023, 34719, 1119, 16580],
        &mut oracle,
    );
    pq.insert(44787).expect("insert");
    oracle.push(44787);
    // The original failure: returned -78115 while -85368 was still in H.
    extract(&mut pq, &mut oracle);
    oracle.sort_unstable();
    assert_eq!(pq.into_sorted_vec().unwrap(), oracle);
}
