//! SoA key blocks and the merge-path kernel for b-Union preprocessing.
//!
//! The b-Union preprocessing (paper §5) re-establishes the *chunk order*
//! invariant: listing roots by ascending max key, their key ranges must not
//! overlap. The paper sorts **all** keys (bitonic, `O(N log² N)` compare
//! rounds) because it assumes nothing about the inputs — but when two valid
//! queues meld, *each side already satisfies chunk order*, so each side's
//! blocks concatenated in max-key root order form one sorted stream, and the
//! union's global sort collapses to a **merge of two sorted streams**:
//! `O(N)` work instead of `O(N log² N)`.
//!
//! This module supplies the pieces:
//!
//! * [`SoaBlocks`] — the structure-of-arrays view of one side's key blocks:
//!   a single flat `keys` vector (block `j` = `keys[j*b .. (j+1)*b]`) plus
//!   the roots in max-key order. Gathering into SoA is what makes the merge
//!   kernel run over one contiguous stream per side instead of hopping
//!   through per-node `Vec`s.
//! * [`merge_path`] — the diagonal binary search of the Merge Path
//!   formulation (Odeh et al.): the crossing point of diagonal `d` splits
//!   both inputs so chunks of the output can be produced independently.
//! * [`par_merge`] / [`merge_into`] — the chunked parallel merge and its
//!   sequential in-chunk kernel. Chunk granularity comes from the calibrated
//!   cutoff ([`meldpq::cutoff::bulk_join_cutoff`]) rather than a guessed
//!   constant, so on a host where thread dispatch never pays the kernel
//!   degenerates to one sequential merge — the wall-clock optimum there.
//!
//! Ties break toward the **first** operand, matching the workspace-wide
//! tie-break contract of the planners.

use rayon::prelude::*;

use crate::bheap::{BbHeap, BbNodeId};

/// One side's key blocks in structure-of-arrays layout: roots ordered by
/// ascending max key (ties by id), all keys flattened block-by-block in that
/// same order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaBlocks {
    /// Bandwidth (keys per block).
    pub b: usize,
    /// Roots in gather order.
    pub roots: Vec<BbNodeId>,
    /// Flat keys; block `j` = `keys[j*b .. (j+1)*b]`.
    pub keys: Vec<i64>,
}

impl SoaBlocks {
    /// Gather a root collection into SoA layout (roots sorted by max key,
    /// ties by id — the preprocessing deal order).
    pub fn gather(heap: &BbHeap, roots: &[Option<BbNodeId>]) -> SoaBlocks {
        let mut ordered: Vec<BbNodeId> = roots.iter().flatten().copied().collect();
        ordered.sort_by_key(|&id| (heap.get(id).max_key(), id));
        let mut keys = Vec::with_capacity(ordered.len() * heap.b);
        for &id in &ordered {
            keys.extend_from_slice(&heap.get(id).keys);
        }
        SoaBlocks {
            b: heap.b,
            roots: ordered,
            keys,
        }
    }

    /// Block `j` as a slice.
    pub fn block(&self, j: usize) -> &[i64] {
        &self.keys[j * self.b..(j + 1) * self.b]
    }

    /// Whether the flat stream is globally sorted — true exactly when this
    /// side satisfies the chunk-order invariant (non-overlapping block
    /// ranges in max-key order, each block internally sorted).
    pub fn is_sorted(&self) -> bool {
        self.keys.windows(2).all(|w| w[0] <= w[1])
    }
}

/// Merge Path diagonal search: for diagonal `d` (0 ≤ d ≤ a.len()+b.len()),
/// return `(i, j)` with `i + j = d` such that `a[..i]` and `b[..j]` are
/// exactly the first `d` elements of the tie-stable merge (ties to `a`).
pub fn merge_path(a: &[i64], b: &[i64], d: usize) -> (usize, usize) {
    debug_assert!(d <= a.len() + b.len());
    let mut lo = d.saturating_sub(b.len());
    let mut hi = d.min(a.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        // a[mid] still belongs to the first d outputs iff it does not
        // exceed the b-element it competes with on the diagonal.
        if a[mid] <= b[d - mid - 1] {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, d - lo)
}

/// Sequential two-pointer merge of sorted `a` and `b` into `out`
/// (`out.len() == a.len() + b.len()`), ties taken from `a` first.
pub fn merge_into(a: &[i64], b: &[i64], out: &mut [i64]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = i < a.len() && (j >= b.len() || a[i] <= b[j]);
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Chunked parallel merge of two sorted streams: the output is cut at
/// `chunk`-spaced diagonals, [`merge_path`] locates each chunk's input
/// windows, and the chunks fill disjoint output slices in parallel. With
/// `chunk >= a.len() + b.len()` this is a single sequential [`merge_into`].
pub fn par_merge(a: &[i64], b: &[i64], chunk: usize) -> Vec<i64> {
    let n = a.len() + b.len();
    let chunk = chunk.max(1);
    let mut out = vec![0i64; n];
    if n == 0 {
        return out;
    }
    let mut parts: Vec<(usize, &mut [i64])> = Vec::with_capacity(n.div_ceil(chunk));
    {
        let mut rest = &mut out[..];
        let mut d = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            parts.push((d, head));
            rest = tail;
            d += take;
        }
    }
    parts.into_par_iter().for_each(|(d0, slice)| {
        let (i0, j0) = merge_path(a, b, d0);
        let (i1, j1) = merge_path(a, b, d0 + slice.len());
        merge_into(&a[i0..i1], &b[j0..j1], slice);
    });
    out
}

/// The preprocessing fast path: if both sides' SoA streams are sorted (the
/// chunk-order invariant holds), return the globally sorted union stream via
/// the calibrated chunked merge; `None` means the caller must fall back to
/// the general sort (e.g. the orphaned children of an extracted root are not
/// chunk-ordered among themselves).
pub fn merged_stream(s1: &SoaBlocks, s2: &SoaBlocks) -> Option<Vec<i64>> {
    if !s1.is_sorted() || !s2.is_sorted() {
        return None;
    }
    Some(par_merge(
        &s1.keys,
        &s2.keys,
        meldpq::cutoff::bulk_join_cutoff(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_merge(a: &[i64], b: &[i64]) -> Vec<i64> {
        let mut out = vec![0; a.len() + b.len()];
        merge_into(a, b, &mut out);
        out
    }

    #[test]
    fn merge_path_splits_every_diagonal() {
        let a = [1i64, 3, 3, 5, 9, 9, 12];
        let b = [2i64, 3, 4, 9, 10];
        let merged = reference_merge(&a, &b);
        let mut sorted = merged.clone();
        sorted.sort_unstable();
        assert_eq!(merged, sorted);
        for d in 0..=a.len() + b.len() {
            let (i, j) = merge_path(&a, &b, d);
            assert_eq!(i + j, d);
            // The prefix property: every taken element ≤ every untaken one.
            let taken_max = a[..i].iter().chain(b[..j].iter()).max();
            let rest_min = a[i..].iter().chain(b[j..].iter()).min();
            if let (Some(t), Some(r)) = (taken_max, rest_min) {
                assert!(t <= r, "d={d}: {t} > {r}");
            }
        }
    }

    #[test]
    fn par_merge_equals_sequential_at_every_chunking() {
        let a: Vec<i64> = (0..500).map(|i| (i * 7) % 101).collect();
        let b: Vec<i64> = (0..377).map(|i| (i * 13) % 89).collect();
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        b.sort_unstable();
        let expected = reference_merge(&a, &b);
        for chunk in [1usize, 2, 3, 64, 500, 876, 877, 10_000] {
            assert_eq!(par_merge(&a, &b, chunk), expected, "chunk={chunk}");
        }
        // Empty sides.
        assert_eq!(par_merge(&a, &[], 64), a);
        assert_eq!(par_merge(&[], &b, 64), b);
        assert_eq!(par_merge(&[], &[], 64), Vec::<i64>::new());
    }

    #[test]
    fn ties_resolve_to_first_operand() {
        let a = [5i64, 5, 5];
        let b = [5i64, 5];
        // With all-equal keys the output is well-defined either way, but the
        // merge path must still produce consistent splits (i+j=d and a
        // non-decreasing result) — the stability contract.
        for d in 0..=5 {
            let (i, j) = merge_path(&a, &b, d);
            assert_eq!(i + j, d);
            // Ties to `a`: a-elements are exhausted before any b-element.
            assert!(j == 0 || i == a.len(), "d={d}: i={i} j={j}");
        }
    }

    #[test]
    fn gather_orders_blocks_and_detects_chunk_order() {
        let mut h = BbHeap::new(2);
        let lo = h.alloc(vec![1, 2]);
        let hi = h.alloc(vec![5, 9]);
        let mid = h.alloc(vec![3, 4]);
        let roots = vec![Some(hi), Some(lo), Some(mid)];
        let soa = SoaBlocks::gather(&h, &roots);
        assert_eq!(soa.roots, vec![lo, mid, hi]);
        assert_eq!(soa.keys, vec![1, 2, 3, 4, 5, 9]);
        assert!(soa.is_sorted());
        assert_eq!(soa.block(1), &[3, 4]);
        // Overlapping ranges -> unsorted stream -> fast path refuses.
        let bad = h.alloc(vec![0, 100]);
        let roots = vec![Some(lo), Some(bad)];
        let soa_bad = SoaBlocks::gather(&h, &roots);
        assert!(!soa_bad.is_sorted());
        assert_eq!(merged_stream(&soa, &soa_bad), None);
    }

    #[test]
    fn merged_stream_is_the_sorted_union() {
        let mut h = BbHeap::new(3);
        let a1 = h.alloc(vec![1, 2, 3]);
        let a2 = h.alloc(vec![7, 8, 9]);
        let b1 = h.alloc(vec![2, 4, 6]);
        let b2 = h.alloc(vec![10, 11, 12]);
        let s1 = SoaBlocks::gather(&h, &[Some(a2), Some(a1)]);
        let s2 = SoaBlocks::gather(&h, &[Some(b2), Some(b1)]);
        let merged = merged_stream(&s1, &s2).expect("both sides chunk-ordered");
        let mut expected = [1, 2, 3, 7, 8, 9, 2, 4, 6, 10, 11, 12].to_vec();
        expected.sort_unstable();
        assert_eq!(merged, expected);
    }
}
