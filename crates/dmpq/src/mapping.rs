//! The degree mapping (paper Definition 4) and its Properties 1–3.
//!
//! A node of degree `i` is assigned to processor `Π(i mod 2^q)`, `Π` the
//! Gray-code Hamiltonian path. Consequences verified in the tests below:
//!
//! * **Property 1** — the roots of `2^q` consecutive tree orders occupy the
//!   processors along the Hamiltonian path;
//! * **Property 2** — a node and its children in decreasing degree order are
//!   embedded along the path;
//! * **Property 3** — a linking only changes the *winning* root's degree by
//!   one, so preserving the mapping moves one record between *adjacent*
//!   processors (`Π(i)` and `Π(i+1)` are neighbours).
//!
//! Figure 4 (27-node heap on `Q_2`) is regenerated in
//! `figure4_mapping_matches_paper`.

use hypercube::gray::gray;

use crate::bheap::{BbHeap, BbNodeId};

/// Which degree→processor mapping the queue uses. The paper's Definition 4
/// is [`MappingKind::Gray`]; [`MappingKind::Identity`] drops the Gray code
/// (degree `i` → node `i mod 2^q` directly) and exists for ablation A3: it
/// breaks Property 3 (a degree promotion may cross up to `q` links).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// `Π(i mod 2^q)` along the Gray-code Hamiltonian path (the paper).
    Gray,
    /// `i mod 2^q` with no Gray code (ablation baseline).
    Identity,
}

/// Processor hosting a node of degree `deg` on a `q`-cube (paper mapping).
pub fn processor_of_degree(deg: usize, q: usize) -> usize {
    gray(deg % (1 << q))
}

/// Processor hosting a node of degree `deg` under a chosen mapping.
pub fn processor_for(kind: MappingKind, deg: usize, q: usize) -> usize {
    match kind {
        MappingKind::Gray => gray(deg % (1 << q)),
        MappingKind::Identity => deg % (1 << q),
    }
}

/// Per-node processor assignment of a whole heap: `(node, degree, processor)`
/// triples in BFS order per tree. This regenerates Figure 4-style listings.
pub fn assignment(heap: &BbHeap, q: usize) -> Vec<(BbNodeId, usize, usize)> {
    let mut out = Vec::new();
    let mut queue: std::collections::VecDeque<BbNodeId> =
        heap.roots.iter().flatten().copied().collect();
    while let Some(id) = queue.pop_front() {
        let deg = heap.degree(id);
        out.push((id, deg, processor_of_degree(deg, q)));
        for &c in heap.get(id).children.iter().rev() {
            queue.push_back(c);
        }
    }
    out
}

/// Memory load (number of resident nodes) per processor — the imbalance the
/// paper notes (`2^{k-j-1}` nodes of degree `j` all land on one processor).
pub fn load_per_processor(heap: &BbHeap, q: usize) -> Vec<usize> {
    let mut load = vec![0usize; 1 << q];
    for (_, _, proc_id) in assignment(heap, q) {
        load[proc_id] += 1;
    }
    load
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use hypercube::gray::is_adjacent;

    /// Build a complete binomial tree of the given order in a b=1 heap.
    fn build_tree(h: &mut BbHeap, order: usize, key_seed: &mut i64) -> BbNodeId {
        // Recursive B_k = two B_{k-1} linked.
        if order == 0 {
            let id = h.alloc(vec![*key_seed]);
            *key_seed += 1;
            return id;
        }
        let a = build_tree(h, order - 1, key_seed);
        let b = build_tree(h, order - 1, key_seed);
        // Make `a` the parent regardless of keys (mapping tests don't need
        // heap order).
        h.get_mut(a).children.push(b);
        h.get_mut(b).parent = Some(a);
        a
    }

    fn heap_of_size(n: usize) -> BbHeap {
        let mut h = BbHeap::new(1);
        let mut seed = 0i64;
        let mut roots = Vec::new();
        for i in 0..usize::BITS as usize {
            if n >> i & 1 == 1 {
                while roots.len() <= i {
                    roots.push(None);
                }
                roots[i] = Some(build_tree(&mut h, i, &mut seed));
            }
        }
        h.roots = roots;
        h
    }

    #[test]
    fn figure4_mapping_matches_paper() {
        // 27 = B_4 + B_3 + B_1 + B_0 on Q_2; Π = [0, 1, 3, 2].
        let h = heap_of_size(27);
        assert_eq!(h.root_orders(), vec![0, 1, 3, 4]);
        let q = 2;
        // Root processors: degree mod 4 → Π.
        assert_eq!(processor_of_degree(0, q), 0);
        assert_eq!(processor_of_degree(1, q), 1);
        assert_eq!(processor_of_degree(2, q), 3);
        assert_eq!(processor_of_degree(3, q), 2);
        assert_eq!(processor_of_degree(4, q), 0); // wraps: B_4 root on Π(0)
                                                  // Every node of the heap gets the processor of its degree.
        for (id, deg, proc_id) in assignment(&h, q) {
            assert_eq!(h.degree(id), deg);
            assert_eq!(proc_id, processor_of_degree(deg, q));
        }
    }

    #[test]
    fn property1_consecutive_orders_lie_on_the_path() {
        // Roots of orders i..i+2^q-1 occupy Π(i mod 2^q), ..., consecutive
        // path positions — i.e. each consecutive pair is physically adjacent.
        for q in 1..=4usize {
            for i in 0..16usize {
                let procs: Vec<usize> = (i..i + (1 << q))
                    .map(|d| processor_of_degree(d, q))
                    .collect();
                for w in procs.windows(2) {
                    assert!(is_adjacent(w[0], w[1]), "q={q} i={i}");
                }
                // And they are all distinct (a full traversal of the cube).
                let mut sorted = procs.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 1 << q);
            }
        }
    }

    #[test]
    fn property2_children_descend_along_the_path() {
        // A node of degree i < 2^q and its children (degrees i-1, …, 0) sit
        // on Π(i), Π(i-1), …, Π(0): each hop is one path edge.
        let q = 3usize;
        for i in 1..(1usize << q) {
            let me = processor_of_degree(i, q);
            let child = processor_of_degree(i - 1, q);
            assert!(is_adjacent(me, child));
        }
    }

    #[test]
    fn property3_linking_moves_one_record_one_hop() {
        // Linking two B_i trees promotes one root to degree i+1: its new
        // processor is the path successor — a direct neighbour.
        for q in 1..=5usize {
            for i in 0..40usize {
                let from = processor_of_degree(i, q);
                let to = processor_of_degree(i + 1, q);
                assert!(is_adjacent(from, to), "q={q} i={i}");
            }
        }
    }

    #[test]
    fn load_imbalance_matches_paper_formula() {
        // In a heap of size 2^k - 1 there are 2^{k-j-1} nodes of degree j.
        let k = 6usize;
        let h = heap_of_size((1 << k) - 1);
        let q = 2usize;
        let load = load_per_processor(&h, q);
        let mut expected = vec![0usize; 1 << q];
        for j in 0..k {
            expected[processor_of_degree(j, q)] += 1 << (k - j - 1);
        }
        assert_eq!(load, expected);
        assert_eq!(load.iter().sum::<usize>(), (1 << k) - 1);
    }
}
