//! The b-bandwidth binomial heap (paper Definition 5), host-side structure.
//!
//! Every node carries exactly `b` keys in non-decreasing order; the heap
//! order extends bandwidth-wise: *each* key of a node is no smaller than
//! *each* key of its parent (`child.min() ≥ parent.max()`). Structurally the
//! trees are ordinary binomial trees over b-nodes, so a heap of `N = n·b`
//! items is a collection of at most one tree per order, orders = set bits of
//! `n`.
//!
//! This module is the *logical* structure; all distributed manipulation
//! (with communication metering) lives in [`crate::queue`].

/// Handle to a b-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BbNodeId(pub u32);

/// A b-bandwidth binomial tree node.
#[derive(Debug, Clone)]
pub struct BbNode {
    /// `b` keys, sorted ascending.
    pub keys: Vec<i64>,
    /// Parent pointer.
    pub parent: Option<BbNodeId>,
    /// Child array: slot `i` = root of the order-`i` child subtree.
    pub children: Vec<BbNodeId>,
}

impl BbNode {
    /// Smallest key in the node.
    pub fn min_key(&self) -> i64 {
        self.keys[0]
    }

    /// Largest key in the node (the sort key of the preprocessing phase).
    pub fn max_key(&self) -> i64 {
        *self.keys.last().expect("b >= 1")
    }
}

/// A collection of b-bandwidth binomial trees with arena storage.
#[derive(Debug, Clone)]
pub struct BbHeap {
    /// Bandwidth.
    pub b: usize,
    nodes: Vec<Option<BbNode>>,
    free: Vec<u32>,
    /// Root array: slot `i` = root of `B_i`.
    pub roots: Vec<Option<BbNodeId>>,
}

impl BbHeap {
    /// An empty heap of bandwidth `b`.
    pub fn new(b: usize) -> Self {
        assert!(b >= 1);
        BbHeap {
            b,
            nodes: Vec::new(),
            free: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Number of b-nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Number of items (`node_count × b`).
    pub fn item_count(&self) -> usize {
        self.node_count() * self.b
    }

    /// Allocate a node from a sorted key chunk.
    pub fn alloc(&mut self, mut keys: Vec<i64>) -> BbNodeId {
        assert_eq!(keys.len(), self.b, "a b-node holds exactly b keys");
        keys.sort_unstable();
        let node = BbNode {
            keys,
            parent: None,
            children: Vec::new(),
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Some(node);
                BbNodeId(i)
            }
            None => {
                self.nodes.push(Some(node));
                BbNodeId((self.nodes.len() - 1) as u32)
            }
        }
    }

    /// Free a node, returning it.
    pub fn dealloc(&mut self, id: BbNodeId) -> BbNode {
        let n = self.nodes[id.0 as usize].take().expect("dead b-node");
        self.free.push(id.0);
        n
    }

    /// Borrow a node.
    pub fn get(&self, id: BbNodeId) -> &BbNode {
        self.nodes[id.0 as usize].as_ref().expect("dead b-node")
    }

    /// Borrow a node mutably.
    pub fn get_mut(&mut self, id: BbNodeId) -> &mut BbNode {
        self.nodes[id.0 as usize].as_mut().expect("dead b-node")
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: BbNodeId) -> bool {
        self.nodes.get(id.0 as usize).is_some_and(|s| s.is_some())
    }

    /// Degree (= order of the subtree rooted) of a node.
    pub fn degree(&self, id: BbNodeId) -> usize {
        self.get(id).children.len()
    }

    /// Orders of the present root trees.
    pub fn root_orders(&self) -> Vec<usize> {
        self.roots
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|_| i))
            .collect()
    }

    /// Drop trailing empty root slots.
    pub fn trim(&mut self) {
        while matches!(self.roots.last(), Some(None)) {
            self.roots.pop();
        }
    }

    /// All keys in the heap (unsorted).
    pub fn all_keys(&self) -> Vec<i64> {
        self.nodes
            .iter()
            .flatten()
            .flat_map(|n| n.keys.iter().copied())
            .collect()
    }

    /// Validate: tree shapes, key-array sortedness/width, the extended heap
    /// order (`child.min ≥ parent.max`), parent pointers, node accounting.
    pub fn validate(&self) -> Result<(), String> {
        fn walk(h: &BbHeap, id: BbNodeId, order: usize) -> Result<usize, String> {
            let n = h.get(id);
            if n.keys.len() != h.b {
                return Err(format!(
                    "node holds {} keys, bandwidth {}",
                    n.keys.len(),
                    h.b
                ));
            }
            if n.keys.windows(2).any(|w| w[0] > w[1]) {
                return Err("node keys not sorted".into());
            }
            if n.children.len() != order {
                return Err(format!("degree {} at slot {order}", n.children.len()));
            }
            let mut count = 1;
            for (i, &c) in n.children.iter().enumerate() {
                let cn = h.get(c);
                if cn.parent != Some(id) {
                    return Err("parent pointer mismatch".into());
                }
                if cn.min_key() < n.max_key() {
                    return Err(format!(
                        "extended heap order violated: child min {} < parent max {}",
                        cn.min_key(),
                        n.max_key()
                    ));
                }
                count += walk(h, c, i)?;
            }
            Ok(count)
        }
        let mut total = 0;
        for (i, r) in self.roots.iter().enumerate() {
            if let Some(id) = r {
                if self.get(*id).parent.is_some() {
                    return Err("root with parent pointer".into());
                }
                total += walk(self, *id, i)?;
            }
        }
        if total != self.node_count() {
            return Err(format!(
                "arena holds {} nodes, trees hold {total}",
                self.node_count()
            ));
        }
        Ok(())
    }

    /// Check the *chunk order* invariant the b-Union preprocessing restores:
    /// listing roots by ascending max key, their key ranges must not overlap
    /// (`max(chunk_j) ≤ min(chunk_{j+1})`).
    pub fn validate_chunk_order(&self) -> Result<(), String> {
        let mut roots: Vec<&BbNode> = self.roots.iter().flatten().map(|&r| self.get(r)).collect();
        roots.sort_by_key(|n| n.max_key());
        for w in roots.windows(2) {
            if w[0].max_key() > w[1].min_key() {
                return Err(format!(
                    "root chunks overlap: {} > {}",
                    w[0].max_key(),
                    w[1].min_key()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn alloc_sorts_keys() {
        let mut h = BbHeap::new(4);
        let id = h.alloc(vec![9, 1, 5, 3]);
        assert_eq!(h.get(id).keys, vec![1, 3, 5, 9]);
        assert_eq!(h.get(id).min_key(), 1);
        assert_eq!(h.get(id).max_key(), 9);
    }

    #[test]
    fn validate_catches_extended_order_violation() {
        let mut h = BbHeap::new(2);
        let parent = h.alloc(vec![5, 10]);
        let child = h.alloc(vec![7, 20]); // child.min 7 < parent.max 10
        h.get_mut(parent).children.push(child);
        h.get_mut(child).parent = Some(parent);
        h.roots = vec![None, Some(parent)];
        assert!(h.validate().unwrap_err().contains("extended heap order"));
    }

    #[test]
    fn validate_accepts_proper_tree() {
        let mut h = BbHeap::new(2);
        let parent = h.alloc(vec![1, 2]);
        let child = h.alloc(vec![2, 9]);
        h.get_mut(parent).children.push(child);
        h.get_mut(child).parent = Some(parent);
        h.roots = vec![None, Some(parent)];
        h.validate().unwrap();
        assert_eq!(h.item_count(), 4);
        assert_eq!(h.root_orders(), vec![1]);
    }

    #[test]
    fn chunk_order_check() {
        let mut h = BbHeap::new(2);
        let a = h.alloc(vec![1, 2]);
        let b = h.alloc(vec![3, 4]);
        h.roots = vec![Some(a), Some(b)];
        h.validate_chunk_order().unwrap();
        h.get_mut(b).keys = vec![0, 4];
        assert!(h.validate_chunk_order().is_err());
    }
}
