#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # dmpq — distributed meldable priority queue on a single-port hypercube
//!
//! The paper's §5 system:
//!
//! * [`bheap`] — the *b-bandwidth binomial heap* (Definition 5): each node
//!   stores `b` sorted keys; the heap order extends to "every key of a child
//!   ≥ every key of its parent".
//! * [`mapping`] — Definition 4: the node of degree `i` resides on hypercube
//!   processor `Π(i mod 2^q)` along the Gray-code Hamiltonian path, with
//!   Properties 1–3 (and Figure 4) verified in tests.
//! * [`queue`] — Definition 6: the queue `Q` = distributed `b`-binomial
//!   heap + `Forehead(Q)` (sorted buffer of extracted-but-unconsumed items)
//!   plus `Waiting(Q)` (binary min-heap of inserted-but-unflushed items) on
//!   an I/O processor; `Insert`/`Min`/`Extract-Min` are buffered, and
//!   `Multi-Insert`/`Multi-Extract-Min` are built on the
//!   communication-metered `b_union`.
//! * [`soa`] — the structure-of-arrays key-block layout and the merge-path
//!   kernel: when both melding sides already satisfy chunk order, the
//!   preprocessing sort collapses to an `O(N)` chunked parallel merge.
//!
//! All actual data movement (preprocessing sort, chunk redistribution,
//! Hamiltonian prefixes for Phases I–II, child-address and dominant-root
//! transfers of Phase III) executes on the [`hypercube`] simulator, which
//! enforces single-port legality and meters time/words; the host mirrors the
//! structure for validation. The transport is fault-injectable
//! ([`hypercube::FaultyNet`]); every communicating operation returns
//! `Result<_, `[`QueueError`]`>` and fail-stopped processors are rehomed
//! onto their Gray-code successors.

//! ```
//! use dmpq::DistributedPq;
//!
//! let mut pq = DistributedPq::new(2, 4); // Q_2 cube, bandwidth 4
//! for k in [7, 3, 9, 1, 5, 8, 2, 6] {
//!     pq.insert(k).unwrap(); // fault-free plan: errors cannot occur
//! }
//! assert_eq!(pq.extract_min().unwrap(), Some(1));
//! assert_eq!(pq.extract_min().unwrap(), Some(2));
//! // All data movement was metered on the single-port simulator:
//! assert!(pq.net_stats().messages > 0);
//! ```

pub mod bheap;
pub mod mapping;
pub mod queue;
pub mod soa;

pub use bheap::{BbHeap, BbNodeId};
pub use mapping::processor_of_degree;
pub use queue::{stats_delta, DOp, DistributedPq, QueueError};
