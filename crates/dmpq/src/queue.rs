//! The distributed meldable priority queue (paper Definition 6) and the
//! `b-Union` operation (Theorem 3).
//!
//! Communication model: the logical b-binomial heap lives host-side (for
//! validation), but every data movement the distributed algorithm performs
//! is executed on the [`hypercube::FaultyNet`] transport (a pure
//! pass-through over [`hypercube::NetSim`] when the fault plan is empty):
//!
//! * **preprocessing** — all root keys are routed to bitonic blocks, sorted
//!   on the cube, and the sorted chunks routed back to the roots (ordered by
//!   old max key), re-establishing the extended heap order and the global
//!   *chunk order* of roots;
//! * **Phases I–II** — the carry scan and the segmented prefix minima run as
//!   Hamiltonian prefixes over the cyclically mapped positions
//!   (`H[i]` on `Π(i mod 2^q)`); results are asserted equal to the
//!   host-built [`meldpq::UnionPlan`];
//! * **Phase III** — child-address packets travel to their dominant roots
//!   and every root whose degree changed is routed (keys + child table) to
//!   its new home processor `Π(new degree mod 2^q)`.
//!
//! `Insert`/`Extract-Min` are buffered through `Waiting`/`Forehead` on the
//! I/O processor and trigger `Multi-Insert`/`Multi-Extract-Min` every `b`
//! operations — the amortization measured in experiment T3.
//!
//! # Fault tolerance
//!
//! Every operation that communicates returns `Result<_, `[`QueueError`]`>`.
//! Message drops, duplicates, delays and corruption are absorbed below this
//! layer by the transport's ack/retry protocol. Fail-stops surface here as
//! [`NetError::Dead`] and trigger *rehoming*: the dead processor is banned
//! from the degree→processor mapping, its resident b-nodes regenerate onto
//! the Gray-code path successor (counted in `NetStats::rehomed_nodes`), a
//! bounded outage is waited out, and the interrupted operation retries.
//! Operations are structured so communication precedes irreversible host
//! mutation (preprocessing is idempotent), which is what makes the retry
//! sound. Death of the I/O processor (which owns `Forehead`/`Waiting`) is
//! unrecoverable and reported as [`QueueError::IoProcDead`]. After an
//! operation returns an error the queue may hold a partial state and should
//! be abandoned — but it never panics.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::fmt;

use hypercube::engine::{NetError, NetStats, Network, Word};
use hypercube::fault::{FaultPlan, FaultyNet};
use hypercube::gray::{gray, gray_inv};
use hypercube::prefix::hamiltonian_prefix_cyclic;
use hypercube::routing::{route, Packet};
use hypercube::sort::bitonic_sort;
use meldpq::plan::{build_plan_seq, plan_width, RootRef, UnionPlan};
use meldpq::NodeId;

use crate::bheap::{BbHeap, BbNodeId};
use crate::mapping::{processor_for, MappingKind};

/// Difference of two cumulative [`NetStats`] snapshots.
///
/// Snapshot ordering contract: `after` must be the *later* snapshot of the
/// same network meter and no `reset_stats` may run between the two —
/// cumulative counters only grow, so under the contract every field of
/// `after` dominates `before`. Delegates to [`NetStats::delta`], which
/// saturates at zero instead of panicking in debug builds when the contract
/// is broken (swapped arguments, an intervening reset).
pub fn stats_delta(after: NetStats, before: NetStats) -> NetStats {
    after.delta(&before)
}

/// Why a queue operation failed. The queue never panics on network faults;
/// it degrades to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueError {
    /// A transport-level failure the recovery protocol could not absorb
    /// (retry budget exhausted, permanent fail-stop, illegal pattern).
    Net(NetError),
    /// The I/O processor — owner of the `Forehead`/`Waiting` buffers —
    /// fail-stopped. Its buffered items are gone; no rehoming can help.
    IoProcDead {
        /// The fail-stopped I/O processor.
        node: usize,
    },
    /// An internal protocol invariant did not hold (e.g. a distributed scan
    /// returned a malformed word); recoverable by abandoning the queue.
    Protocol(&'static str),
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Net(e) => write!(f, "network failure: {e}"),
            QueueError::IoProcDead { node } => {
                write!(f, "I/O processor {node} fail-stopped; buffers lost")
            }
            QueueError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for QueueError {}

impl From<NetError> for QueueError {
    fn from(e: NetError) -> QueueError {
        QueueError::Net(e)
    }
}

/// Which queue operation a ledger entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DOp {
    /// A `Multi-Insert` flush of the `Waiting` buffer.
    MultiInsert,
    /// A `Multi-Extract-Min` refill of the `Forehead` buffer.
    MultiExtractMin,
    /// An explicit `b-Union` (meld of two queues).
    Union,
}

/// The distributed meldable priority queue.
#[derive(Debug)]
pub struct DistributedPq {
    net: FaultyNet,
    heap: BbHeap,
    /// Bandwidth `b`.
    pub b: usize,
    /// Sorted ascending; holds extracted-but-unconsumed items (I/O proc).
    forehead: VecDeque<i64>,
    /// Binary min-heap of inserted-but-unflushed items (I/O proc).
    waiting: BinaryHeap<Reverse<i64>>,
    /// The designated I/O processor.
    pub io_proc: usize,
    /// Communication ledger per multi-operation.
    ledger: Vec<(DOp, NetStats)>,
    /// Local (I/O-processor) binary-heap operations performed, for the
    /// `O(log b)` part of the amortized per-op cost.
    local_heap_ops: u64,
    /// Degree→processor mapping (Gray per the paper; Identity for A3).
    mapping: MappingKind,
    /// Fail-stopped processors evicted from the mapping; their residents
    /// were rehomed onto Gray-code successors.
    banned: BTreeSet<usize>,
}

impl DistributedPq {
    /// A queue on a `q`-cube with bandwidth `b` (paper's Gray mapping).
    pub fn new(q: usize, b: usize) -> Self {
        Self::with_config(q, b, MappingKind::Gray, FaultPlan::none())
    }

    /// A queue with an explicit degree→processor mapping (ablation A3 uses
    /// [`MappingKind::Identity`]).
    pub fn with_mapping(q: usize, b: usize, mapping: MappingKind) -> Self {
        Self::with_config(q, b, mapping, FaultPlan::none())
    }

    /// A queue whose network runs under a seeded [`FaultPlan`] (the chaos
    /// harness entry point; `FaultPlan::none()` is a zero-overhead
    /// pass-through).
    pub fn with_faults(q: usize, b: usize, plan: FaultPlan) -> Self {
        Self::with_config(q, b, MappingKind::Gray, plan)
    }

    /// A queue with both an explicit mapping and a fault plan.
    pub fn with_config(q: usize, b: usize, mapping: MappingKind, plan: FaultPlan) -> Self {
        DistributedPq {
            net: FaultyNet::new(q, plan),
            heap: BbHeap::new(b),
            b,
            forehead: VecDeque::new(),
            waiting: BinaryHeap::new(),
            io_proc: 0,
            ledger: Vec::new(),
            local_heap_ops: 0,
            mapping,
            banned: BTreeSet::new(),
        }
    }

    /// Home processor of a degree-`deg` node, steering around fail-stopped
    /// processors: a banned home's residents regenerate onto the first live
    /// Gray-code path successor (Definition 4's `Π` walked forward).
    fn proc_of(&self, deg: usize) -> usize {
        let home = processor_for(self.mapping, deg, self.net.q());
        if !self.banned.contains(&home) {
            return home;
        }
        let p = self.net.nodes();
        let mut rank = gray_inv(home);
        for _ in 0..p {
            rank = (rank + 1) % p;
            let cand = gray(rank);
            if !self.banned.contains(&cand) {
                return cand;
            }
        }
        home
    }

    /// Items currently stored (heap + buffers).
    pub fn len(&self) -> usize {
        self.heap.item_count() + self.forehead.len() + self.waiting.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative network statistics (transport retries, redeliveries and
    /// rehomed nodes included).
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.net.plan()
    }

    /// Per-link word loads (congestion profile; see
    /// [`hypercube::NetSim::link_loads`]).
    pub fn link_loads(&self) -> Vec<((usize, usize), u64)> {
        self.net.link_loads()
    }

    /// The hottest link's total words.
    pub fn max_link_load(&self) -> u64 {
        self.net.max_link_load()
    }

    /// The per-multi-operation communication ledger.
    pub fn ledger(&self) -> &[(DOp, NetStats)] {
        &self.ledger
    }

    /// Local I/O-processor heap operations performed so far.
    pub fn local_heap_ops(&self) -> u64 {
        self.local_heap_ops
    }

    /// Borrow the logical heap (tests/validation).
    pub fn heap(&self) -> &BbHeap {
        &self.heap
    }

    /// Verify the queue's cross-component invariants:
    ///
    /// * the b-binomial heap's own structure and chunk order;
    /// * `Forehead` is sorted ascending;
    /// * every `Forehead` item is ≤ every key in `H` (otherwise an extract
    ///   could return a buffered item ahead of a smaller key still in the
    ///   heap);
    /// * `Waiting` holds fewer than `b` items between operations (a full
    ///   chunk always flushes).
    ///
    /// Also reachable through `meldpq::check::CheckedPq`, which harnesses
    /// use to validate heterogeneous queue fleets uniformly.
    pub fn validate(&self) -> Result<(), String> {
        self.heap.validate()?;
        self.heap.validate_chunk_order()?;
        if let Some(w) = self
            .forehead
            .iter()
            .zip(self.forehead.iter().skip(1))
            .position(|(a, b)| a > b)
        {
            return Err(format!("Forehead not sorted at index {w}"));
        }
        if let (Some(&fmax), Some(&hmin)) =
            (self.forehead.back(), self.heap.all_keys().iter().min())
        {
            if hmin < fmax {
                return Err(format!(
                    "Forehead invariant broken: buffered {fmax} but H holds {hmin}"
                ));
            }
        }
        if self.waiting.len() >= self.b.max(1) {
            return Err(format!(
                "Waiting holds {} items at bandwidth {}",
                self.waiting.len(),
                self.b
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fail-stop recovery
    // ------------------------------------------------------------------

    /// Run `body` and absorb [`NetError::Dead`] by rehoming the dead
    /// processor's residents and retrying. Bodies must keep communication
    /// ahead of irreversible host mutation and be idempotent up to their
    /// last fallible call (all bodies in this module are). Bounded by the
    /// processor count — each recovery permanently bans one processor.
    fn recovering<T>(
        &mut self,
        mut body: impl FnMut(&mut Self) -> Result<T, QueueError>,
    ) -> Result<T, QueueError> {
        let max_recoveries = self.net.nodes();
        let mut recoveries = 0;
        loop {
            match body(self) {
                Err(QueueError::Net(NetError::Dead { node })) => {
                    if node == self.io_proc {
                        return Err(QueueError::IoProcDead { node });
                    }
                    if recoveries >= max_recoveries {
                        return Err(QueueError::Net(NetError::Dead { node }));
                    }
                    recoveries += 1;
                    self.rehome_dead(node);
                }
                r => return r,
            }
        }
    }

    /// Evict a fail-stopped processor from the mapping. Its resident
    /// b-nodes regenerate onto the Gray-code successor (the lazy empty-node
    /// path: host truth is already complete, so regeneration is counted and
    /// the mapping is flipped — subsequent routes address the successor).
    /// A bounded outage is then waited out so full-cube collectives can run
    /// again; a permanent outage leaves the retry to fail cleanly.
    fn rehome_dead(&mut self, node: usize) {
        if !self.banned.contains(&node) {
            let mut rehomed = 0u64;
            let mut stack: Vec<BbNodeId> = self.heap.roots.iter().flatten().copied().collect();
            while let Some(id) = stack.pop() {
                if self.proc_of(self.heap.degree(id)) == node {
                    rehomed += 1;
                }
                stack.extend(self.heap.get(id).children.iter().copied());
            }
            self.banned.insert(node);
            self.net.note_rehomed(rehomed);
        }
        if let Some(until) = self.net.down_until(node) {
            let now = self.net.physical_rounds();
            if until > now {
                self.net.idle(until - now);
            }
        }
        // Buffer invariants survive recovery untouched (they live on the
        // I/O processor, which is alive or we would have bailed above); the
        // heap side is revalidated by the harnesses after the retried
        // operation completes.
        debug_assert!(self
            .forehead
            .iter()
            .zip(self.forehead.iter().skip(1))
            .all(|(a, b)| a <= b));
    }

    // ------------------------------------------------------------------
    // Buffered operations
    // ------------------------------------------------------------------

    /// `Insert(Q, x)`: buffer in `Waiting`; flush `b` at a time.
    pub fn insert(&mut self, key: i64) -> Result<(), QueueError> {
        // Adopt the caller's flight-recorder trace (or mint one) for the
        // whole op, so transport retries and rehomes triggered by a flush
        // are linkable back to this insert.
        let (_t, _scope) = obs::flight::ambient_or_new();
        assert!(key < i64::MAX, "i64::MAX is the pad sentinel");
        self.waiting.push(Reverse(key));
        self.local_heap_ops += (self.waiting.len().max(2)).ilog2() as u64;
        if self.waiting.len() >= self.b {
            self.flush_waiting()?;
        }
        Ok(())
    }

    /// `Min(Q)`: smallest item currently stored (no mutation).
    pub fn min(&self) -> Option<i64> {
        let mut best: Option<i64> = None;
        let mut upd = |v: i64| best = Some(best.map_or(v, |b: i64| b.min(v)));
        if let Some(&f) = self.forehead.front() {
            upd(f);
        }
        if let Some(&Reverse(w)) = self.waiting.peek() {
            upd(w);
        }
        // Items in H only matter when Forehead is empty (invariant:
        // H ≥ max(Forehead) whenever Forehead is nonempty).
        if self.forehead.is_empty() {
            if let Some(h_min) = self.heap_min() {
                upd(h_min);
            }
        }
        best
    }

    fn heap_min(&self) -> Option<i64> {
        self.heap
            .roots
            .iter()
            .flatten()
            .map(|&r| self.heap.get(r).min_key())
            .min()
    }

    /// `Extract-Min(Q)`.
    pub fn extract_min(&mut self) -> Result<Option<i64>, QueueError> {
        let (_t, _scope) = obs::flight::ambient_or_new();
        if self.forehead.is_empty() && self.heap.node_count() > 0 {
            self.multi_extract_min()?;
        }
        let from_forehead = self.forehead.front().copied();
        let from_waiting = self.waiting.peek().map(|Reverse(w)| *w);
        Ok(match (from_forehead, from_waiting) {
            (None, None) => None,
            (Some(f), None) => {
                self.forehead.pop_front();
                Some(f)
            }
            (None, Some(_)) => {
                self.local_heap_ops += (self.waiting.len().max(2)).ilog2() as u64;
                self.waiting.pop().map(|Reverse(w)| w)
            }
            (Some(f), Some(w)) => {
                if w < f {
                    self.local_heap_ops += (self.waiting.len().max(2)).ilog2() as u64;
                    self.waiting.pop();
                    Some(w)
                } else {
                    self.forehead.pop_front();
                    Some(f)
                }
            }
        })
    }

    /// Drain everything in ascending order (consumes the queue).
    pub fn into_sorted_vec(mut self) -> Result<Vec<i64>, QueueError> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(k) = self.extract_min()? {
            out.push(k);
        }
        Ok(out)
    }

    /// `Multi-Insert(H, K[1..b])` (paper Definition 5, operation 2): insert
    /// exactly `b` items directly into the b-binomial heap as a fresh `B_0`
    /// node, bypassing the buffers. Returns the communication delta.
    pub fn multi_insert(&mut self, keys: Vec<i64>) -> Result<NetStats, QueueError> {
        let (_t, _scope) = obs::flight::ambient_or_new();
        assert_eq!(keys.len(), self.b, "Multi-Insert takes exactly b items");
        let before = self.net.stats();
        self.attach_chunk(keys)?;
        let delta = stats_delta(self.net.stats(), before);
        self.ledger.push((DOp::MultiInsert, delta));
        Ok(delta)
    }

    /// `Multi-Extract-Min(H)` (paper Definition 5, operation 3): remove and
    /// return the `b` smallest items of the b-binomial heap directly,
    /// bypassing the buffers. Returns `Ok(None)` when nothing is stored.
    ///
    /// A non-empty `Forehead` holds items extracted earlier — by the
    /// Forehead invariant they are the globally smallest and are owed to
    /// the caller first, so they are drained and returned as the chunk
    /// (possibly shorter than `b`). This used to be a release-mode assert:
    /// a recoverable protocol state must not abort the process.
    pub fn multi_extract_min_direct(&mut self) -> Result<Option<Vec<i64>>, QueueError> {
        let (_t, _scope) = obs::flight::ambient_or_new();
        if !self.forehead.is_empty() {
            return Ok(Some(self.forehead.drain(..).collect()));
        }
        if self.heap.node_count() == 0 {
            return Ok(None);
        }
        self.multi_extract_min()?;
        Ok(Some(self.forehead.drain(..).collect()))
    }

    /// Route a `b`-chunk from the I/O processor to `Π(0)` and meld it into
    /// `H` as a fresh `B_0` node. The allocation is remembered across
    /// fail-stop retries so a recovered attempt reuses the same node.
    fn attach_chunk(&mut self, chunk: Vec<i64>) -> Result<(), QueueError> {
        let payload: Vec<Word> = chunk.iter().map(|&k| k as Word).collect();
        let mut alloced: Option<BbNodeId> = None;
        let new_roots = self.recovering(|q| {
            let dst = q.proc_of(0);
            if dst != q.io_proc {
                route(
                    &mut q.net,
                    vec![Packet {
                        src: q.io_proc,
                        dst,
                        payload: payload.clone(),
                    }],
                )?;
            }
            let id = match alloced {
                Some(id) => id,
                None => {
                    let id = q.heap.alloc(chunk.clone());
                    alloced = Some(id);
                    id
                }
            };
            let old = q.heap.roots.clone();
            q.b_union(&old, &[Some(id)])
        })?;
        self.heap.roots = new_roots;
        Ok(())
    }

    /// `Multi-Insert`: move the largest `b` items of `Forehead ∪ Waiting`
    /// into `H` as a fresh `B_0` b-node (paper §5).
    fn flush_waiting(&mut self) -> Result<(), QueueError> {
        debug_assert!(self.waiting.len() >= self.b);
        let before = self.net.stats();
        // Invariant at stake: Forehead may only hold items ≤ everything in
        // H. Items that were already in Forehead satisfy it, and so does any
        // leftover ≤ the old Forehead maximum (at least |Forehead| pool
        // elements sit below that bound). Leftovers above it — possible only
        // when melds piled more than b items into Waiting — must go *back to
        // Waiting*, not into Forehead, or a later extract would return them
        // ahead of smaller keys still in H (a bug the queue_proptest suite
        // caught).
        let old_fore_max = self.forehead.back().copied();
        let mut pool: Vec<i64> = self.forehead.drain(..).collect();
        pool.extend(self.waiting.drain().map(|Reverse(w)| w));
        pool.sort_unstable();
        let cut = pool.len().saturating_sub(self.b);
        let chunk = pool.split_off(cut);
        match old_fore_max {
            Some(m) => {
                let split = pool.partition_point(|&k| k <= m);
                for &k in &pool[split..] {
                    self.waiting.push(Reverse(k));
                }
                pool.truncate(split);
                self.forehead = pool.into();
            }
            None => {
                for k in pool {
                    self.waiting.push(Reverse(k));
                }
                self.forehead = VecDeque::new();
            }
        }
        // The chunk travels from the I/O processor to Π(0) (where a degree-0
        // node lives) and melds in.
        self.attach_chunk(chunk)?;
        let delta = stats_delta(self.net.stats(), before);
        self.ledger.push((DOp::MultiInsert, delta));
        Ok(())
    }

    /// `Multi-Extract-Min`: remove the chunk-minimal root, ship its `b` keys
    /// to the I/O processor (→ `Forehead`), and re-meld its children.
    fn multi_extract_min(&mut self) -> Result<(), QueueError> {
        debug_assert!(self.forehead.is_empty());
        let before = self.net.stats();
        // The chunk-order invariant makes the root with the smallest max key
        // hold the globally smallest b items. Metered as a min-reduction
        // over the root positions (a Hamiltonian prefix). Pure communication
        // over host-read values: safe to retry wholesale.
        let slot = self.recovering(|q| {
            let width = q.heap.roots.len();
            let elements: Vec<Vec<Word>> = (0..width)
                .map(|i| {
                    let k = q.heap.roots[i]
                        .map(|r| q.heap.get(r).max_key())
                        .unwrap_or(i64::MAX);
                    vec![k, i as Word]
                })
                .collect();
            let reduced =
                hamiltonian_prefix_cyclic(&mut q.net, &elements, &[i64::MAX, -1], |a, b| {
                    if b[0] < a[0] {
                        b.to_vec()
                    } else {
                        a.to_vec()
                    }
                })?;
            let last = reduced
                .last()
                .ok_or(QueueError::Protocol("min-reduction over an empty heap"))?;
            Ok(last[1] as usize)
        })?;
        let root = self
            .heap
            .roots
            .get(slot)
            .copied()
            .flatten()
            .ok_or(QueueError::Protocol(
                "min-reduction pointed at an empty root slot",
            ))?;
        debug_assert_eq!(
            Some(self.heap.get(root).max_key()),
            self.heap
                .roots
                .iter()
                .flatten()
                .map(|&r| self.heap.get(r).max_key())
                .min()
        );
        self.heap.roots[slot] = None;
        self.heap.trim();
        let node = self.heap.dealloc(root);
        // Ship the keys home (idempotent: retried wholesale on fail-stop).
        let payload: Vec<Word> = node.keys.iter().map(|&k| k as Word).collect();
        self.recovering(|q| {
            let src = q.proc_of(slot);
            if src != q.io_proc {
                route(
                    &mut q.net,
                    vec![Packet {
                        src,
                        dst: q.io_proc,
                        payload: payload.clone(),
                    }],
                )?;
            }
            Ok(())
        })?;
        self.forehead = node.keys.into();
        // Children re-meld.
        let children: Vec<Option<BbNodeId>> = node.children.iter().copied().map(Some).collect();
        for c in &node.children {
            self.heap.get_mut(*c).parent = None;
        }
        let old = self.heap.roots.clone();
        self.heap.roots = self.b_union(&old, &children)?;
        let delta = stats_delta(self.net.stats(), before);
        self.ledger.push((DOp::MultiExtractMin, delta));
        Ok(())
    }

    /// Meld another queue into this one (`b-Union` of the heaps; buffers are
    /// merged at the I/O processor).
    pub fn meld(&mut self, other: DistributedPq) -> Result<(), QueueError> {
        let (_t, _scope) = obs::flight::ambient_or_new();
        assert_eq!(self.b, other.b, "bandwidths must match");
        assert_eq!(self.net.q(), other.net.q(), "cube sizes must match");
        let before = self.net.stats();
        // Absorb other's arena.
        let mut map: Vec<Option<BbNodeId>> = Vec::new();
        let other_roots = {
            let mut roots = Vec::new();
            let BbHeap { roots: oroots, .. } = &other.heap;
            // Deep-copy nodes via traversal.
            fn copy(
                src: &BbHeap,
                dst: &mut BbHeap,
                id: BbNodeId,
                parent: Option<BbNodeId>,
                map: &mut Vec<Option<BbNodeId>>,
            ) -> BbNodeId {
                let n = src.get(id);
                let new_id = dst.alloc(n.keys.clone());
                dst.get_mut(new_id).parent = parent;
                if map.len() <= id.0 as usize {
                    map.resize(id.0 as usize + 1, None);
                }
                map[id.0 as usize] = Some(new_id);
                let kids: Vec<BbNodeId> = n.children.clone();
                for c in kids {
                    let nc = copy(src, dst, c, Some(new_id), map);
                    dst.get_mut(new_id).children.push(nc);
                }
                new_id
            }
            for (i, r) in oroots.iter().enumerate() {
                while roots.len() <= i {
                    roots.push(None);
                }
                if let Some(id) = r {
                    roots[i] = Some(copy(&other.heap, &mut self.heap, *id, None, &mut map));
                }
            }
            roots
        };
        let old = self.heap.roots.clone();
        self.heap.roots = self.b_union(&old, &other_roots)?;
        // Buffers merge at the I/O processor. Melding can break the
        // Forehead invariant (every item of H ≥ max(Forehead)), so the
        // conservative repair spills both Foreheads through Waiting and
        // flushes full b-chunks into H; flush_waiting itself keeps only
        // invariant-safe leftovers in Forehead.
        for k in self.forehead.drain(..) {
            self.waiting.push(Reverse(k));
        }
        for k in other.forehead.iter().copied() {
            self.waiting.push(Reverse(k));
        }
        for Reverse(w) in other.waiting.into_iter() {
            self.waiting.push(Reverse(w));
        }
        while self.waiting.len() >= self.b {
            self.flush_waiting()?;
        }
        let delta = stats_delta(self.net.stats(), before);
        self.ledger.push((DOp::Union, delta));
        Ok(())
    }

    // ------------------------------------------------------------------
    // b-Union (Theorem 3)
    // ------------------------------------------------------------------

    fn collection_size(&self, roots: &[Option<BbNodeId>]) -> usize {
        roots
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| 1usize << i)
            .sum()
    }

    fn refs_of(&self, roots: &[Option<BbNodeId>], width: usize) -> Vec<Option<RootRef>> {
        (0..width)
            .map(|i| {
                roots.get(i).copied().flatten().map(|id| RootRef {
                    key: self.heap.get(id).max_key(),
                    id: NodeId(id.0),
                })
            })
            .collect()
    }

    /// The `b-Union` of two root collections already in this arena. The
    /// caller assigns the returned roots on success; on error the heap's
    /// roots are untouched (preprocessing may have re-dealt keys, which
    /// preserves validity and the stored multiset).
    pub(crate) fn b_union(
        &mut self,
        r1: &[Option<BbNodeId>],
        r2: &[Option<BbNodeId>],
    ) -> Result<Vec<Option<BbNodeId>>, QueueError> {
        let _sp = obs::span("dmpq/b_union");
        let s1 = self.collection_size(r1);
        let s2 = self.collection_size(r2);
        if s1 + s2 == 0 {
            return Ok(Vec::new());
        }
        let width = plan_width(s1, s2);
        // All communication (and the plan it mirrors) happens inside the
        // recovery scope; host surgery applies only after it succeeds.
        // Preprocessing is idempotent (re-dealing an already-dealt key
        // multiset reproduces the same assignment), so a fail-stop retry
        // re-runs the whole pipeline soundly.
        let plan = self.recovering(|q| {
            // Preprocess unconditionally: even a one-sided union must
            // restore the global chunk order (e.g. the children of an
            // extracted root are not chunk-ordered among themselves).
            q.preprocess(r1, r2)?;
            if s1 == 0 || s2 == 0 {
                return Ok(None);
            }
            // ---- Phases I–II: host plan + metered Hamiltonian prefixes ----
            let refs1 = q.refs_of(r1, width);
            let refs2 = q.refs_of(r2, width);
            let plan = build_plan_seq(&refs1, &refs2);
            q.run_metered_phases(&plan)?;
            // ---- Phase III: data movement ----
            q.phase3_movement(&plan)?;
            Ok(Some(plan))
        })?;
        match plan {
            None => {
                let mut out = if s2 == 0 { r1.to_vec() } else { r2.to_vec() };
                while matches!(out.last(), Some(None)) {
                    out.pop();
                }
                Ok(out)
            }
            Some(plan) => Ok(self.apply_plan(&plan)),
        }
    }

    /// Preprocessing (paper §5): sort all root keys on the cube and deal the
    /// sorted chunks back to the roots ordered by old max key.
    fn preprocess(
        &mut self,
        r1: &[Option<BbNodeId>],
        r2: &[Option<BbNodeId>],
    ) -> Result<(), QueueError> {
        let _sp = obs::span("preprocess");
        let p = self.net.nodes();
        let all_roots: Vec<BbNodeId> = r1
            .iter()
            .flatten()
            .chain(r2.iter().flatten())
            .copied()
            .collect();
        if all_roots.len() <= 1 {
            return Ok(()); // nothing to interleave
        }
        let b = self.b;
        let m_total = all_roots.len() * b;
        let m_block = m_total.div_ceil(p).max(1);

        // (1) Route every root's keys to its bitonic block(s).
        let mut packets: Vec<Packet> = Vec::new();
        let mut stream: Vec<Word> = Vec::with_capacity(m_total);
        for (j, &root) in all_roots.iter().enumerate() {
            let src = self.proc_of(self.heap.degree(root));
            let keys = self.heap.get(root).keys.clone();
            for (t, &k) in keys.iter().enumerate() {
                stream.push(k as Word);
                let global = j * b + t;
                let dst = (global / m_block).min(p - 1);
                if dst != src {
                    // Coalesce consecutive keys with the same destination.
                    if let Some(last) = packets.last_mut() {
                        if last.src == src && last.dst == dst && !global.is_multiple_of(m_block) {
                            last.payload.push(k as Word);
                            continue;
                        }
                    }
                    packets.push(Packet {
                        src,
                        dst,
                        payload: vec![k as Word],
                    });
                }
            }
        }
        route(&mut self.net, packets)?;

        // (2) Sort the stream. Fast path: when both sides already satisfy
        // the chunk-order invariant, their SoA streams are each sorted and
        // the global sort collapses to an O(N) merge-path merge — the
        // bitonic network (O(N log² N) compare rounds) only runs for inputs
        // that genuinely lack chunk order (e.g. the orphaned children of an
        // extracted root).
        let s1 = crate::soa::SoaBlocks::gather(&self.heap, r1);
        let s2 = crate::soa::SoaBlocks::gather(&self.heap, r2);
        let sorted = match crate::soa::merged_stream(&s1, &s2) {
            Some(merged) => merged,
            None => bitonic_sort(&mut self.net, &stream)?,
        };

        // (3) Tree order by old max key (ties by enumeration index).
        let mut order: Vec<usize> = (0..all_roots.len()).collect();
        order.sort_by_key(|&j| (self.heap.get(all_roots[j]).max_key(), j));

        // (4) Deal chunk j to the j-th tree; route from the block(s) home.
        let mut packets: Vec<Packet> = Vec::new();
        for (j, &root_idx) in order.iter().enumerate() {
            let root = all_roots[root_idx];
            let dst = self.proc_of(self.heap.degree(root));
            let chunk: Vec<i64> = sorted[j * b..(j + 1) * b].to_vec();
            let src_block = ((j * b) / m_block).min(p - 1);
            if src_block != dst {
                packets.push(Packet {
                    src: src_block,
                    dst,
                    payload: chunk.iter().map(|&k| k as Word).collect(),
                });
            }
            self.heap.get_mut(root).keys = chunk;
        }
        route(&mut self.net, packets)?;
        Ok(())
    }

    /// Phases I–II as metered Hamiltonian prefixes; asserts the distributed
    /// results agree with the host plan.
    fn run_metered_phases(&mut self, plan: &UnionPlan) -> Result<(), QueueError> {
        let _sp = obs::span("phases1_2");
        let width = plan.width;
        // Carry scan over KPG statuses. The word-level composition is total
        // (malformed operands collapse to the poison word), so the closure
        // needs no panic path; poison is surfaced as a typed error below.
        let statuses: Vec<Vec<Word>> = (0..width)
            .map(|i| vec![parscan::carry_status(plan.a[i], plan.b[i]).to_word()])
            .collect();
        let carried = hamiltonian_prefix_cyclic(
            &mut self.net,
            &statuses,
            &[parscan::CarryStatus::Propagate.to_word()],
            |l, r| vec![parscan::compose_status_words(l[0], r[0])],
        )?;
        for (i, t) in carried.iter().enumerate().take(width) {
            let st = parscan::CarryStatus::try_from_word(t[0])
                .map_err(|_| QueueError::Protocol("carry scan produced a malformed word"))?;
            let c = st == parscan::CarryStatus::Generate;
            debug_assert_eq!(c, plan.c[i], "distributed carry disagrees at {i}");
            let _ = c;
        }
        // Segmented prefix minima over (flag, key, ptr).
        let elements: Vec<Vec<Word>> = (0..width)
            .map(|i| {
                let (k, ptr) = plan.i_value_b[i]
                    .map(|r| (r.key, r.id.0 as Word))
                    .unwrap_or((i64::MAX, -1));
                vec![plan.i_lim[i] as Word, k, ptr]
            })
            .collect();
        let minima =
            hamiltonian_prefix_cyclic(&mut self.net, &elements, &[0, i64::MAX, -1], |l, r| {
                if r[0] != 0 {
                    r.to_vec()
                } else if r[1] < l[1] {
                    vec![l[0], r[1], r[2]]
                } else {
                    vec![l[0], l[1], l[2]]
                }
            })?;
        for (i, t) in minima.iter().enumerate().take(width) {
            let got = (t[2] != -1).then_some(t[2] as u32);
            debug_assert_eq!(
                got,
                plan.i_value_a[i].map(|r| r.id.0),
                "distributed segmented min disagrees at {i}"
            );
            let _ = got;
        }
        Ok(())
    }

    /// Phase III communication: child addresses to dominants, changed-degree
    /// roots to their new processors.
    fn phase3_movement(&mut self, plan: &UnionPlan) -> Result<(), QueueError> {
        let _sp = obs::span("rehome");
        let mut packets: Vec<Packet> = Vec::new();
        for l in &plan.links {
            let child = BbNodeId(l.child.0);
            let parent = BbNodeId(l.parent.0);
            let src = self.proc_of(self.heap.degree(child));
            let dst = self.proc_of(self.heap.degree(parent));
            if src != dst {
                // (child address, slot): 3 words with the route header.
                packets.push(Packet {
                    src,
                    dst,
                    payload: vec![child.0 as Word, l.slot as Word],
                });
            }
        }
        route(&mut self.net, packets)?;

        // Roots whose degree changes relocate with their whole record:
        // b keys + child table + header.
        let mut packets: Vec<Packet> = Vec::new();
        for (slot, r) in plan.new_roots.iter().enumerate() {
            let Some(id) = r else { continue };
            let node = BbNodeId(id.0);
            let old_deg = self.heap.degree(node);
            // After the links apply, this root's degree is `slot`.
            let new_deg = slot;
            let src = self.proc_of(old_deg);
            let dst = self.proc_of(new_deg);
            if src != dst {
                let payload_len = self.b + new_deg + 2;
                packets.push(Packet {
                    src,
                    dst,
                    payload: vec![0; payload_len],
                });
            }
        }
        route(&mut self.net, packets)?;
        Ok(())
    }

    /// Host-side structural surgery mirroring the movement.
    fn apply_plan(&mut self, plan: &UnionPlan) -> Vec<Option<BbNodeId>> {
        for l in &plan.links {
            let child = BbNodeId(l.child.0);
            let parent = BbNodeId(l.parent.0);
            debug_assert_eq!(self.heap.degree(child), l.slot);
            debug_assert_eq!(self.heap.degree(parent), l.slot);
            self.heap.get_mut(parent).children.push(child);
            self.heap.get_mut(child).parent = Some(parent);
        }
        let mut out: Vec<Option<BbNodeId>> = plan
            .new_roots
            .iter()
            .map(|r| r.map(|id| BbNodeId(id.0)))
            .collect();
        while matches!(out.last(), Some(None)) {
            out.pop();
        }
        for r in out.iter().flatten() {
            self.heap.get_mut(*r).parent = None;
        }
        out
    }
}

impl meldpq::CheckedPq for DistributedPq {
    fn check_invariants(&self) -> Result<(), String> {
        self.validate()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn insert_extract_roundtrip_small() {
        let mut pq = DistributedPq::new(2, 4);
        let keys = [9, 3, 7, 1, 8, 2, 6, 4, 5, 0, 11, 10];
        for &k in &keys {
            pq.insert(k).unwrap();
        }
        assert_eq!(pq.len(), keys.len());
        pq.heap().validate().unwrap();
        let mut expected = keys.to_vec();
        expected.sort_unstable();
        assert_eq!(pq.into_sorted_vec().unwrap(), expected);
    }

    #[test]
    fn chunk_order_restored_after_every_flush() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pq = DistributedPq::new(3, 4);
        for _ in 0..64 {
            pq.insert(rng.gen_range(-1000..1000)).unwrap();
        }
        pq.heap().validate().unwrap();
        pq.heap().validate_chunk_order().unwrap();
    }

    #[test]
    fn randomized_workload_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..8 {
            let q = rng.gen_range(1usize..4);
            let b = [2usize, 4, 8][rng.gen_range(0..3)];
            let mut pq = DistributedPq::new(q, b);
            let mut oracle: Vec<i64> = Vec::new();
            for _ in 0..300 {
                if rng.gen_bool(0.6) || oracle.is_empty() {
                    let k = rng.gen_range(-10_000..10_000);
                    pq.insert(k).unwrap();
                    oracle.push(k);
                } else {
                    let got = pq.extract_min().unwrap();
                    let (idx, _) = oracle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, k)| **k)
                        .expect("nonempty");
                    let want = oracle.swap_remove(idx);
                    assert_eq!(got, Some(want), "trial {trial}");
                }
                assert_eq!(pq.len(), oracle.len());
            }
            pq.heap().validate().unwrap();
            oracle.sort_unstable();
            assert_eq!(pq.into_sorted_vec().unwrap(), oracle, "trial {trial}");
        }
    }

    #[test]
    fn min_is_nondestructive_and_correct() {
        let mut pq = DistributedPq::new(2, 3);
        for k in [5, 9, 1, 7, 3, 8] {
            pq.insert(k).unwrap();
        }
        assert_eq!(pq.min(), Some(1));
        assert_eq!(pq.len(), 6);
        assert_eq!(pq.extract_min().unwrap(), Some(1));
        assert_eq!(pq.min(), Some(3));
    }

    #[test]
    fn meld_two_queues() {
        let mut a = DistributedPq::new(2, 4);
        let mut b = DistributedPq::new(2, 4);
        for k in 0..20 {
            a.insert(k * 2).unwrap(); // evens
            b.insert(k * 2 + 1).unwrap(); // odds
        }
        a.meld(b).unwrap();
        a.heap().validate().unwrap();
        assert_eq!(a.len(), 40);
        assert_eq!(a.into_sorted_vec().unwrap(), (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn ledger_records_multi_operations() {
        let mut pq = DistributedPq::new(2, 4);
        for k in 0..16 {
            pq.insert(k).unwrap();
        }
        let multi_inserts = pq
            .ledger()
            .iter()
            .filter(|(op, _)| *op == DOp::MultiInsert)
            .count();
        assert_eq!(multi_inserts, 4); // 16 inserts / b=4
        assert!(pq.net_stats().messages > 0);
        while pq.extract_min().unwrap().is_some() {}
        assert!(pq
            .ledger()
            .iter()
            .any(|(op, _)| *op == DOp::MultiExtractMin));
    }

    #[test]
    fn duplicates_and_negatives() {
        let mut pq = DistributedPq::new(1, 2);
        for k in [-5, -5, 0, 0, 3, 3, -5, 1] {
            pq.insert(k).unwrap();
        }
        assert_eq!(
            pq.into_sorted_vec().unwrap(),
            vec![-5, -5, -5, 0, 0, 1, 3, 3]
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod multiop_tests {
    use super::*;

    #[test]
    fn direct_multi_insert_and_extract() {
        let mut pq = DistributedPq::new(2, 4);
        pq.multi_insert(vec![9, 1, 5, 3]).unwrap();
        pq.multi_insert(vec![8, 2, 6, 4]).unwrap();
        pq.heap().validate().unwrap();
        pq.heap().validate_chunk_order().unwrap();
        assert_eq!(pq.len(), 8);
        let chunk = pq.multi_extract_min_direct().unwrap().expect("nonempty");
        assert_eq!(chunk, vec![1, 2, 3, 4]);
        let chunk = pq.multi_extract_min_direct().unwrap().expect("nonempty");
        assert_eq!(chunk, vec![5, 6, 8, 9]);
        assert_eq!(pq.multi_extract_min_direct().unwrap(), None);
    }

    #[test]
    fn direct_extract_with_nonempty_forehead_drains_buffer_first() {
        // Regression: this used to be a release-mode assert (abort). The
        // buffered items are the globally smallest, so a direct extract on a
        // non-empty Forehead must hand them over, not panic.
        let mut pq = DistributedPq::new(2, 2);
        for k in [5, 1, 4, 2, 3, 0] {
            pq.insert(k).unwrap();
        }
        assert_eq!(pq.extract_min().unwrap(), Some(0));
        let buffered = pq.multi_extract_min_direct().unwrap().expect("buffered");
        assert_eq!(buffered, vec![1]);
        assert_eq!(pq.into_sorted_vec().unwrap(), vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "exactly b items")]
    fn multi_insert_rejects_wrong_width() {
        let mut pq = DistributedPq::new(2, 4);
        let _ = pq.multi_insert(vec![1, 2]);
    }

    #[test]
    fn direct_ops_are_metered() {
        let mut pq = DistributedPq::new(3, 8);
        let d1 = pq.multi_insert((0..8).collect()).unwrap();
        let d2 = pq.multi_insert((8..16).collect()).unwrap();
        // The second insert must meld with an existing tree: more traffic.
        assert!(d2.messages >= d1.messages);
        assert!(pq.net_stats().time > 0);
    }

    #[test]
    fn stats_delta_saturates_on_swapped_snapshots() {
        let mut pq = DistributedPq::new(2, 4);
        let before = pq.net_stats();
        pq.multi_insert(vec![9, 1, 5, 3]).unwrap();
        pq.multi_insert(vec![8, 2, 6, 4]).unwrap();
        let after = pq.net_stats();
        let d = stats_delta(after, before);
        assert!(d.messages > 0);
        // The broken call order used to overflow-panic in debug builds; the
        // contract violation now degrades to zeroed fields.
        let swapped = stats_delta(before, after);
        assert_eq!(swapped, NetStats::default());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod fault_tests {
    use super::*;

    #[test]
    fn queue_survives_droppy_network() {
        let plan = FaultPlan::seeded(99)
            .with_drop(0.2)
            .with_duplicate(0.1)
            .with_retries(64);
        let mut pq = DistributedPq::with_faults(2, 4, plan);
        for k in (0..32).rev() {
            pq.insert(k).unwrap();
        }
        pq.validate().unwrap();
        assert!(pq.net_stats().retries > 0, "0.2 drop must cost retries");
        assert_eq!(pq.into_sorted_vec().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn same_seed_replays_identical_ledger() {
        let mk = || {
            FaultPlan::seeded(1234)
                .with_drop(0.15)
                .with_delay(0.1)
                .with_corrupt(0.1)
                .with_retries(64)
        };
        let run = |plan: FaultPlan| {
            let mut pq = DistributedPq::with_faults(2, 4, plan);
            for k in 0..24 {
                pq.insert((k * 7) % 24).unwrap();
            }
            for _ in 0..8 {
                pq.extract_min().unwrap();
            }
            (pq.net_stats(), pq.ledger().to_vec())
        };
        let (s1, l1) = run(mk());
        let (s2, l2) = run(mk());
        assert_eq!(s1, s2);
        assert_eq!(l1, l2);
        assert!(s1.has_fault_activity());
    }

    #[test]
    fn bounded_fail_stop_rehomes_and_recovers() {
        // Π-path processor 1 crashes mid-workload for a long outage; the
        // retry budget cannot ride it out, so the queue must rehome node 1's
        // residents onto the Gray successor, wait out the outage, and retry.
        let plan = FaultPlan::seeded(7)
            .with_retries(4)
            .with_fail_stop(1, 60, 5_000);
        let mut pq = DistributedPq::with_faults(2, 2, plan);
        for k in 0..24 {
            pq.insert(k).unwrap();
        }
        pq.validate().unwrap();
        assert!(
            pq.net_stats().rehomed_nodes > 0,
            "the outage window must force a rehoming"
        );
        assert_eq!(pq.into_sorted_vec().unwrap(), (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn io_proc_death_is_a_clean_typed_error() {
        let plan = FaultPlan::seeded(3).with_retries(2).with_fail_stop(
            0,
            0,
            hypercube::FailStop::PERMANENT,
        );
        let mut pq = DistributedPq::with_faults(2, 2, plan);
        let mut saw_err = None;
        for k in 0..8 {
            if let Err(e) = pq.insert(k) {
                saw_err = Some(e);
                break;
            }
        }
        assert_eq!(saw_err, Some(QueueError::IoProcDead { node: 0 }));
    }
}
