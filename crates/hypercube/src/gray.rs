//! Binary-reflected Gray code and the Hamiltonian path `Π`.
//!
//! `Π(i) = gray(i)` walks all `2^q` hypercube nodes such that consecutive
//! path positions are physically adjacent (they differ in one bit). Two
//! properties the algorithms lean on:
//!
//! * **Recursive split**: path ranks `[0, 2^{d})` within any aligned group
//!   occupy a sub-cube; flipping node bit `d` flips rank bits `0..=d`, so a
//!   node's dimension-`d` neighbour always lies in the sibling rank-subgroup
//!   (this is what makes the `q`-round Hamiltonian prefix work).
//! * **Wraparound**: `gray(2^q - 1)` and `gray(0)` also differ in one bit
//!   (the path is a Hamiltonian *cycle*).

/// The Gray code of `i`: position `i` of the Hamiltonian path, `Π(i)`.
pub fn gray(i: usize) -> usize {
    i ^ (i >> 1)
}

/// Inverse Gray code: the path rank of node `g` (`Π⁻¹`).
pub fn gray_inv(g: usize) -> usize {
    // bit_j(rank) = XOR of node bits j..: fold the suffix-xor.
    let mut r = 0;
    let mut x = g;
    while x != 0 {
        r ^= x;
        x >>= 1;
    }
    r
}

/// Hamming distance between two node labels.
pub fn hamming(a: usize, b: usize) -> u32 {
    (a ^ b).count_ones()
}

/// Whether two nodes are directly linked in the hypercube.
pub fn is_adjacent(a: usize, b: usize) -> bool {
    hamming(a, b) == 1
}

/// The dimension of the link between two adjacent nodes.
pub fn link_dim(a: usize, b: usize) -> usize {
    debug_assert!(is_adjacent(a, b));
    (a ^ b).trailing_zeros() as usize
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn gray_is_a_bijection_with_inverse() {
        for q in 0..=10usize {
            let n = 1usize << q;
            let mut seen = vec![false; n];
            for i in 0..n {
                let g = gray(i);
                assert!(g < n);
                assert!(!seen[g]);
                seen[g] = true;
                assert_eq!(gray_inv(g), i);
            }
        }
    }

    #[test]
    fn consecutive_path_positions_are_adjacent() {
        for q in 1..=10usize {
            let n = 1usize << q;
            for i in 0..n - 1 {
                assert!(is_adjacent(gray(i), gray(i + 1)), "q={q} i={i}");
            }
            // Hamiltonian cycle closure.
            assert!(is_adjacent(gray(n - 1), gray(0)));
        }
    }

    #[test]
    fn q2_path_matches_paper_example() {
        // Paper §5: Π(0)=0, Π(1)=1, Π(2)=3, Π(3)=2 on Q_2.
        assert_eq!((0..4).map(gray).collect::<Vec<_>>(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn dim_d_neighbour_is_in_sibling_rank_subgroup() {
        // Flipping node bit d flips rank bits 0..=d: same 2^{d+1}-aligned
        // rank group, opposite half.
        for q in 1..=8usize {
            let n = 1usize << q;
            for node in 0..n {
                let r = gray_inv(node);
                for d in 0..q {
                    let partner = node ^ (1 << d);
                    let rp = gray_inv(partner);
                    assert_eq!(r >> (d + 1), rp >> (d + 1), "same group");
                    assert_ne!((r >> d) & 1, (rp >> d) & 1, "opposite halves");
                    assert_eq!(r ^ rp, (1 << (d + 1)) - 1, "exact rank flip");
                }
            }
        }
    }

    #[test]
    fn link_dim_identifies_axis() {
        assert_eq!(link_dim(0b0101, 0b0001), 2);
        assert_eq!(link_dim(0b0101, 0b0100), 0);
    }
}
