//! E-cube (dimension-ordered) store-and-forward routing and path shifts.

use crate::engine::{NetError, Network, Send, Word};
use crate::gray::gray;

/// A packet travelling through the cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Origin node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Payload words.
    pub payload: Vec<Word>,
}

/// Next hop under e-cube routing: correct the lowest differing dimension.
pub fn ecube_next_hop(at: usize, dst: usize) -> usize {
    debug_assert_ne!(at, dst);
    let d = (at ^ dst).trailing_zeros();
    at ^ (1 << d)
}

/// Fault-aware next hop: the lowest differing dimension whose neighbour is
/// alive. At Hamming distance ≥ 2 a single crashed processor always leaves
/// an alternative dimension (each hop still corrects a differing bit, so
/// distance decreases monotonically — no livelock). At distance 1 the only
/// hop is the destination itself; if that is dead we take it anyway and let
/// the transport's retry budget ride out (or report) the outage.
fn ecube_next_hop_avoiding<N: Network>(net: &N, at: usize, dst: usize) -> usize {
    let mut diff = at ^ dst;
    debug_assert_ne!(diff, 0);
    while diff != 0 {
        let d = diff.trailing_zeros();
        let hop = at ^ (1 << d);
        if net.is_alive(hop) {
            return hop;
        }
        diff &= diff - 1;
    }
    ecube_next_hop(at, dst)
}

/// Deliver all packets with store-and-forward e-cube routing under the
/// single-port rules. Each round every node forwards at most one resident
/// packet (FIFO), deferring when the receiver is already claimed. Returns
/// the packets grouped by destination, in delivery order.
///
/// Runs over any [`Network`]: on a [`FaultyNet`](crate::FaultyNet) each
/// store-and-forward round is individually made reliable by the transport's
/// ack/retry protocol, and next hops steer around fail-stopped processors.
/// Malformed packets (endpoints out of range) and unroutable states surface
/// as [`NetError`]s instead of panics.
pub fn route<N: Network>(net: &mut N, packets: Vec<Packet>) -> Result<Vec<Vec<Packet>>, NetError> {
    let _sp = obs::span("hc/route");
    let n = net.nodes();
    let mut delivered: Vec<Vec<Packet>> = vec![Vec::new(); n];
    // Queues of in-flight packets per current node.
    let mut queues: Vec<std::collections::VecDeque<Packet>> =
        vec![std::collections::VecDeque::new(); n];
    let mut pending = 0usize;
    for p in packets {
        if p.src >= n || p.dst >= n {
            return Err(NetError::BadNode {
                node: if p.src >= n { p.src } else { p.dst },
                size: n,
            });
        }
        if p.src == p.dst {
            delivered[p.dst].push(p);
        } else {
            queues[p.src].push_back(p);
            pending += 1;
        }
    }
    while pending > 0 {
        let mut claimed = vec![false; n];
        let mut sends: Vec<Send> = Vec::new();
        let mut moving: Vec<(usize, Packet)> = Vec::new(); // (to, packet)
        #[allow(clippy::needless_range_loop)] // queues is mutably indexed
        for node in 0..n {
            // FIFO, but skip past packets whose next hop is claimed this
            // round (single-port receive).
            let mut rotated = 0;
            while rotated < queues[node].len() {
                let hop = {
                    let pkt = &queues[node][0];
                    ecube_next_hop_avoiding(net, node, pkt.dst)
                };
                if claimed[hop] {
                    queues[node].rotate_left(1);
                    rotated += 1;
                    continue;
                }
                claimed[hop] = true;
                let Some(pkt) = queues[node].pop_front() else {
                    break;
                };
                // Wire format: dst, then payload (so the simulator moves the
                // real number of words a header-carrying packet needs).
                let mut wire = Vec::with_capacity(pkt.payload.len() + 1);
                wire.push(pkt.dst as Word);
                wire.extend_from_slice(&pkt.payload);
                sends.push(Send {
                    from: node,
                    to: hop,
                    payload: wire,
                });
                moving.push((hop, pkt));
                break;
            }
        }
        if sends.is_empty() {
            // Defensive: with pending packets some node always has a
            // schedulable front packet; if not, report instead of spinning.
            let stuck = queues.iter().position(|qu| !qu.is_empty()).unwrap_or(0);
            return Err(NetError::Timeout {
                node: stuck,
                attempts: 0,
            });
        }
        net.round(sends)?;
        for (to, pkt) in moving {
            if to == pkt.dst {
                delivered[to].push(pkt);
                pending -= 1;
            } else {
                queues[to].push_back(pkt);
            }
        }
    }
    Ok(delivered)
}

/// One step of a shift along the Hamiltonian path: node `Π(r)` sends its
/// payload to `Π(r+1)` (its physical neighbour). The last node's payload is
/// dropped unless `wrap` is set, in which case it goes to `Π(0)` (also a
/// neighbour: the path is a cycle). Returns the received payloads in rank
/// order.
pub fn shift_along_path<N: Network>(
    net: &mut N,
    payloads: Vec<Option<Vec<Word>>>,
    wrap: bool,
) -> Result<Vec<Option<Vec<Word>>>, NetError> {
    let p = net.nodes();
    assert_eq!(payloads.len(), p, "rank-indexed payloads");
    let mut sends = Vec::new();
    for (r, payload) in payloads.into_iter().enumerate() {
        let Some(payload) = payload else { continue };
        let to_rank = if r + 1 < p {
            r + 1
        } else if wrap {
            0
        } else {
            continue;
        };
        sends.push(Send {
            from: gray(r),
            to: gray(to_rank),
            payload,
        });
    }
    let inbox = net.round(sends)?;
    Ok((0..p)
        .map(|r| inbox[gray(r)].clone().map(|(_, pl)| pl))
        .collect())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::engine::NetSim;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn ecube_hops_toward_destination() {
        let mut at = 0b000;
        let dst = 0b110;
        let mut hops = 0;
        while at != dst {
            at = ecube_next_hop(at, dst);
            hops += 1;
        }
        assert_eq!(hops, 2);
    }

    #[test]
    fn random_permutation_routes_deliver_everything() {
        let mut rng = StdRng::seed_from_u64(9);
        for q in 1..=6usize {
            let n = 1 << q;
            let mut net = NetSim::new(q);
            let mut dsts: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                dsts.swap(i, j);
            }
            let packets: Vec<Packet> = (0..n)
                .map(|src| Packet {
                    src,
                    dst: dsts[src],
                    payload: vec![src as Word],
                })
                .collect();
            let delivered = route(&mut net, packets).unwrap();
            for (node, got) in delivered.iter().enumerate() {
                let senders: Vec<usize> = got.iter().map(|p| p.src).collect();
                let expected: Vec<usize> = (0..n).filter(|&s| dsts[s] == node).collect();
                assert_eq!(senders, expected);
            }
        }
    }

    #[test]
    fn many_to_one_serialises_but_delivers() {
        let mut net = NetSim::new(3);
        let packets: Vec<Packet> = (1..8)
            .map(|src| Packet {
                src,
                dst: 0,
                payload: vec![src as Word],
            })
            .collect();
        let delivered = route(&mut net, packets).unwrap();
        assert_eq!(delivered[0].len(), 7);
        // Node 0 can receive at most one packet per round.
        assert!(net.stats().rounds >= 7);
    }

    #[test]
    fn self_packet_delivers_without_communication() {
        let mut net = NetSim::new(2);
        let delivered = route(
            &mut net,
            vec![Packet {
                src: 2,
                dst: 2,
                payload: vec![5],
            }],
        )
        .unwrap();
        assert_eq!(delivered[2].len(), 1);
        assert_eq!(net.stats().rounds, 0);
    }

    #[test]
    fn path_shift_moves_rank_payloads() {
        let mut net = NetSim::new(2);
        let payloads = vec![Some(vec![0]), Some(vec![1]), Some(vec![2]), Some(vec![3])];
        let out = shift_along_path(&mut net, payloads, false).unwrap();
        assert_eq!(out, vec![None, Some(vec![0]), Some(vec![1]), Some(vec![2])]);
        let payloads = vec![Some(vec![0]), None, None, Some(vec![3])];
        let out = shift_along_path(&mut net, payloads, true).unwrap();
        assert_eq!(out, vec![Some(vec![3]), Some(vec![0]), None, None]);
    }
}
