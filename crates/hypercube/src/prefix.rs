//! The Hamiltonian prefix (paper §5, citing Das–Pinotti–Sarkar).
//!
//! A prefix computation over values laid out in *path-rank order*
//! (`values[r]` lives on node `Π(r) = gray(r)`), in exactly `q` exchange
//! rounds. It works because flipping node bit `d` flips rank bits `0..=d`
//! (see [`mod@crate::gray`]): a node's dimension-`d` neighbour is always in the
//! sibling half of its `2^{d+1}`-aligned rank group, so group totals can be
//! combined dimension by dimension — non-commutative operators included.
//!
//! [`hamiltonian_prefix_cyclic`] extends this to the paper's cyclic layout
//! of the heap's root array (`H[i]` on `Π(i mod 2^q)`): one `q`-round sweep
//! per row of `2^q` positions plus free local carry composition, i.e.
//! `O((m/2^q)·q)` time — `O(m/2^q + q)` in the `2^q = O(log n)` regime the
//! paper operates in.

use crate::engine::{NetError, Network, Word};
use crate::gray::{gray, gray_inv};

/// Element values are fixed-arity word tuples (e.g. `[flag, key, ptr]`).
pub type Tuple = Vec<Word>;

/// Inclusive prefix in path-rank order: `values[r]` sits on node `gray(r)`;
/// returns `out[r] = values[0] ⊕ … ⊕ values[r]`. Runs `q` exchange rounds.
pub fn hamiltonian_prefix<N, Op>(
    net: &mut N,
    values: &[Tuple],
    op: Op,
) -> Result<Vec<Tuple>, NetError>
where
    N: Network,
    Op: Fn(&[Word], &[Word]) -> Tuple,
{
    let _sp = obs::span("hc/prefix");
    let p = net.nodes();
    assert_eq!(values.len(), p, "one value per node (pad with identity)");
    // Node-indexed state: (prefix, total).
    let mut pre: Vec<Tuple> = (0..p).map(|node| values[gray_inv(node)].clone()).collect();
    let mut tot = pre.clone();
    for d in 0..net.q() {
        // Every node swaps its running group total with its dim-d partner.
        let payloads: Vec<Option<Tuple>> = tot.iter().cloned().map(Some).collect();
        let inbox = net.exchange(d, payloads)?;
        for node in 0..p {
            let (_, other_tot) = inbox[node]
                .as_ref()
                .ok_or(NetError::Timeout { node, attempts: 0 })?;
            let r = gray_inv(node);
            if (r >> d) & 1 == 1 {
                // Partner's half precedes mine in rank order.
                pre[node] = op(other_tot, &pre[node]);
                tot[node] = op(other_tot, &tot[node]);
            } else {
                tot[node] = op(&tot[node], other_tot);
            }
        }
    }
    Ok((0..p).map(|r| pre[gray(r)].clone()).collect())
}

/// Inclusive prefix over `m` elements in the paper's cyclic layout
/// (`element[i]` on node `Π(i mod 2^q)`): row-by-row Hamiltonian prefixes
/// with locally composed carries. `identity` pads ragged rows.
pub fn hamiltonian_prefix_cyclic<N, Op>(
    net: &mut N,
    elements: &[Tuple],
    identity: &[Word],
    op: Op,
) -> Result<Vec<Tuple>, NetError>
where
    N: Network,
    Op: Fn(&[Word], &[Word]) -> Tuple,
{
    let _sp = obs::span("hc/prefix");
    let p = net.nodes();
    let m = elements.len();
    let mut out: Vec<Tuple> = Vec::with_capacity(m);
    let mut carry: Tuple = identity.to_vec();
    let mut row = 0usize;
    while row * p < m {
        let base = row * p;
        let row_vals: Vec<Tuple> = (0..p)
            .map(|r| {
                elements
                    .get(base + r)
                    .cloned()
                    .unwrap_or_else(|| identity.to_vec())
            })
            .collect();
        let pre = hamiltonian_prefix(net, &row_vals, &op)?;
        let row_len = (m - base).min(p);
        for t in pre.iter().take(row_len) {
            out.push(op(&carry, t));
        }
        carry = op(&carry, &pre[p - 1]);
        row += 1;
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::engine::NetSim;

    fn add(a: &[Word], b: &[Word]) -> Tuple {
        vec![a[0] + b[0]]
    }

    /// "Right wins unless identity" — deliberately non-commutative.
    fn last_nonzero(a: &[Word], b: &[Word]) -> Tuple {
        if b[0] == 0 {
            a.to_vec()
        } else {
            b.to_vec()
        }
    }

    #[test]
    fn prefix_sum_matches_oracle_all_q() {
        for q in 0..=6usize {
            let p = 1 << q;
            let mut net = NetSim::new(q);
            let values: Vec<Tuple> = (0..p).map(|i| vec![(i * i % 13) as Word]).collect();
            let got = hamiltonian_prefix(&mut net, &values, add).unwrap();
            let mut acc = 0;
            for (r, t) in got.iter().enumerate() {
                acc += values[r][0];
                assert_eq!(t[0], acc, "q={q} r={r}");
            }
            assert_eq!(net.stats().rounds, q as u64);
        }
    }

    #[test]
    fn noncommutative_prefix_respects_rank_order() {
        for q in 1..=6usize {
            let p = 1 << q;
            let mut net = NetSim::new(q);
            let values: Vec<Tuple> = (0..p)
                .map(|i| vec![if i % 3 == 0 { (i + 1) as Word } else { 0 }])
                .collect();
            let got = hamiltonian_prefix(&mut net, &values, last_nonzero).unwrap();
            let mut acc = vec![0 as Word];
            for (r, t) in got.iter().enumerate() {
                acc = last_nonzero(&acc, &values[r]);
                assert_eq!(t, &acc, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn cyclic_prefix_over_many_rows() {
        let q = 3usize;
        let mut net = NetSim::new(q);
        let m = 29; // ragged: 3 full rows + 5
        let elements: Vec<Tuple> = (0..m).map(|i| vec![(i % 7) as Word + 1]).collect();
        let got = hamiltonian_prefix_cyclic(&mut net, &elements, &[0], add).unwrap();
        let mut acc = 0;
        for (i, t) in got.iter().enumerate() {
            acc += elements[i][0];
            assert_eq!(t[0], acc, "i={i}");
        }
        // 4 rows × q rounds.
        assert_eq!(net.stats().rounds, 4 * q as u64);
    }

    #[test]
    fn tuple_payloads_flow_through() {
        // Segmented-min style tuples (flag, value).
        let segmin = |a: &[Word], b: &[Word]| -> Tuple {
            if b[0] != 0 {
                b.to_vec()
            } else {
                vec![a[0], a[1].min(b[1])]
            }
        };
        let q = 2usize;
        let mut net = NetSim::new(q);
        let values = vec![vec![1, 9], vec![0, 4], vec![1, 7], vec![0, 5]];
        let got = hamiltonian_prefix(&mut net, &values, segmin).unwrap();
        assert_eq!(
            got.iter().map(|t| t[1]).collect::<Vec<_>>(),
            vec![9, 4, 7, 5]
        );
    }

    #[test]
    fn q0_trivial() {
        let mut net = NetSim::new(0);
        let got = hamiltonian_prefix(&mut net, &[vec![42]], add).unwrap();
        assert_eq!(got, vec![vec![42]]);
    }
}
