//! Bitonic sort of block-distributed keys.
//!
//! The `b-Union` preprocessing (paper §5) sorts `O(b log n)` keys on the
//! cube. We use the classic hypercube realisation of Batcher's bitonic
//! network: every node locally sorts its block, then each compare-exchange
//! of the network becomes a *merge-split* between direct neighbours (full
//! blocks cross one link — a legal single-port exchange — and each side
//! keeps the lower/upper half). Replacing compare-exchanges by merge-splits
//! in a sorting network sorts blocks (Knuth), so correctness is inherited
//! from the bitonic network.
//!
//! Cost: `O((M/P)·log²P)` moved words plus local `O((M/P) log(M/P))` work —
//! the paper cites asymptotically faster hypercube sorts for huge `M`; the
//! experiments note the substitution (same `b log b`-style growth in the
//! regime measured).

use crate::engine::{NetError, Network, Word};

/// Sentinel used to pad ragged blocks; callers' keys must be below it.
pub const PAD: Word = i64::MAX;

/// Sort `keys` ascending across the cube. Keys are dealt into `2^q` equal
/// blocks in **node-id order**; the sorted sequence is returned (and
/// internally lives) in node-id order, block `i` on node `i`.
pub fn bitonic_sort<N: Network>(net: &mut N, keys: &[Word]) -> Result<Vec<Word>, NetError> {
    let _sp = obs::span("hc/sort");
    let p = net.nodes();
    let m = keys.len().div_ceil(p).max(1);
    // Local blocks, padded.
    let mut blocks: Vec<Vec<Word>> = (0..p)
        .map(|i| {
            let mut b: Vec<Word> = keys.iter().skip(i * m).take(m).copied().collect();
            b.resize(m, PAD);
            b.sort_unstable();
            b
        })
        .collect();

    let q = net.q();
    for k in 0..q {
        let size = 1usize << (k + 1);
        for j in (0..=k).rev() {
            let stride = 1usize << j;
            // Full exchange across dimension j: every node swaps its whole
            // block with its partner, then keeps one half of the merge.
            let payloads: Vec<Option<Vec<Word>>> = blocks.iter().cloned().map(Some).collect();
            let inbox = net.exchange(j, payloads)?;
            for node in 0..p {
                let (_, other) = inbox[node]
                    .clone()
                    .ok_or(NetError::Timeout { node, attempts: 0 })?;
                let ascending = node & size == 0;
                let low_side = node & stride == 0;
                let mut merged = Vec::with_capacity(2 * m);
                merged.extend_from_slice(&blocks[node]);
                merged.extend_from_slice(&other);
                merged.sort_unstable();
                blocks[node] = if low_side == ascending {
                    merged[..m].to_vec()
                } else {
                    merged[m..].to_vec()
                };
            }
        }
    }
    let mut out: Vec<Word> = blocks.into_iter().flatten().collect();
    out.truncate(keys.len());
    // Drop padding that sorted to the tail.
    while out.last() == Some(&PAD) && out.len() > keys.len() {
        out.pop();
    }
    out.truncate(keys.len());
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::engine::NetSim;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn sorts_random_inputs_all_q() {
        let mut rng = StdRng::seed_from_u64(77);
        for q in 0..=6usize {
            for m in [1usize, 3, 8, 17] {
                let n = (1usize << q) * m;
                let mut net = NetSim::new(q);
                let keys: Vec<Word> = (0..n).map(|_| rng.gen_range(-500..500)).collect();
                let sorted = bitonic_sort(&mut net, &keys).unwrap();
                let mut expected = keys.clone();
                expected.sort_unstable();
                assert_eq!(sorted, expected, "q={q} m={m}");
            }
        }
    }

    #[test]
    fn ragged_input_with_padding() {
        let mut net = NetSim::new(3);
        let keys: Vec<Word> = vec![9, -2, 7, 0, 3];
        let sorted = bitonic_sort(&mut net, &keys).unwrap();
        assert_eq!(sorted, vec![-2, 0, 3, 7, 9]);
    }

    #[test]
    fn duplicates_preserved() {
        let mut net = NetSim::new(2);
        let keys = vec![5, 5, 5, 1, 1, 9, 9, 9];
        assert_eq!(
            bitonic_sort(&mut net, &keys).unwrap(),
            vec![1, 1, 5, 5, 5, 9, 9, 9]
        );
    }

    #[test]
    fn communication_cost_scales_with_block_size() {
        let q = 4usize;
        let mut small = NetSim::new(q);
        bitonic_sort(&mut small, &[1; 16]).unwrap();
        let mut big = NetSim::new(q);
        bitonic_sort(&mut big, &vec![1; 16 * 64]).unwrap();
        assert!(big.stats().time > small.stats().time);
        // Rounds are block-size independent: q(q+1)/2 exchanges.
        assert_eq!(small.stats().rounds, big.stats().rounds);
        assert_eq!(small.stats().rounds, (4 * 5 / 2) as u64);
    }
}
