#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # hypercube — a synchronous single-port hypercube simulator
//!
//! The paper's §5 maps a distributed meldable priority queue onto a
//! `q`-dimensional hypercube `Q_q` under the *single-port* communication
//! model: per synchronous round every processor may send at most one message
//! (to a direct neighbour) and receive at most one. This crate provides:
//!
//! * [`mod@gray`] — the binary-reflected Gray code and the Hamiltonian path `Π`
//!   it embeds in `Q_q` (paper Definition 4 uses `Π(i)`);
//! * [`engine`] — the round-based network simulator that *enforces* the
//!   single-port rules and adjacency, and meters time (a round costs the
//!   longest payload moved), rounds, messages and word·hops;
//! * [`prefix`] — the *Hamiltonian prefix*: a prefix computation in
//!   path-rank order in `q` exchange rounds (the `O(log n / 2^q + q)`
//!   primitive the paper cites), plus the multi-row variant for the
//!   cyclically distributed heap array;
//! * [`routing`] — e-cube (dimension-ordered) store-and-forward routing and
//!   path shifts;
//! * [`sort`] — bitonic sort of block-distributed keys (the `b-Union`
//!   preprocessing needs a hypercube sort);
//! * [`collectives`] — broadcast / reduce / all-reduce / gather, the
//!   classic `O(q)`-round schedules, single-port verified;
//! * [`fault`] — a seeded, deterministic fault injector ([`FaultyNet`]) with
//!   an ack/retry recovery protocol, so every primitive above also runs over
//!   a lossy, corrupting, crash-prone cube.

//! ```
//! use hypercube::{NetSim, Send};
//!
//! let mut net = NetSim::new(2); // a 4-node cube
//! let inbox = net.round(vec![Send { from: 0, to: 1, payload: vec![42] }]).unwrap();
//! assert_eq!(inbox[1], Some((0, vec![42])));
//! // Non-neighbours cannot talk directly:
//! assert!(net.round(vec![Send { from: 0, to: 3, payload: vec![1] }]).is_err());
//! ```

pub mod collectives;
pub mod engine;
pub mod fault;
pub mod gray;
pub mod prefix;
pub mod routing;
pub mod sort;

pub use engine::{NetError, NetSim, NetStats, Network, Send, Word};
pub use fault::{FailStop, FaultPlan, FaultyNet};
pub use gray::{gray, gray_inv, hamming, is_adjacent};
