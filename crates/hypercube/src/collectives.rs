//! Collective operations on the single-port cube: binomial-tree broadcast
//! and reduction, dimension-exchange all-reduce, and gather.
//!
//! These are the textbook `O(q)`-round hypercube collectives (Leighton,
//! ch. 3 — the paper's reference \[7]); the queue algorithms use the prefix
//! variant, but a complete hypercube substrate ships the full set, and the
//! tests double as single-port legality proofs for the classic schedules.

use crate::engine::{NetError, Network, Send, Word};
use crate::routing::{route, Packet};

/// A value the collective schedule guarantees present is missing — a
/// protocol violation surfaced as a typed error (attempts = 0 marks it as a
/// schedule fault, not a transport retry exhaustion) instead of a panic.
fn holder_missing(node: usize) -> NetError {
    NetError::Timeout { node, attempts: 0 }
}

/// Binomial-tree broadcast from `root`: after `q` rounds every node holds
/// `payload`. Returns the per-node copies.
pub fn broadcast<N: Network>(
    net: &mut N,
    root: usize,
    payload: Vec<Word>,
) -> Result<Vec<Vec<Word>>, NetError> {
    let _sp = obs::span("hc/broadcast");
    let n = net.nodes();
    if root >= n {
        return Err(NetError::BadNode {
            node: root,
            size: n,
        });
    }
    let mut have: Vec<Option<Vec<Word>>> = vec![None; n];
    have[root] = Some(payload);
    for d in 0..net.q() {
        let sends: Vec<Send> = (0..n)
            .filter_map(|node| {
                // Nodes whose relative label fits in d bits already hold the
                // payload; they fan out across dimension d.
                if (node ^ root) >= (1 << d).max(1) {
                    return None;
                }
                have[node].as_ref().map(|p| Send {
                    from: node,
                    to: node ^ (1 << d),
                    payload: p.clone(),
                })
            })
            .collect();
        let inbox = net.round(sends)?;
        for (node, got) in inbox.into_iter().enumerate() {
            if let Some((_, p)) = got {
                debug_assert!(have[node].is_none());
                have[node] = Some(p);
            }
        }
    }
    have.into_iter()
        .enumerate()
        .map(|(node, p)| p.ok_or_else(|| holder_missing(node)))
        .collect()
}

/// Binomial-tree reduction to `root`: combines all nodes' values with `op`
/// in `q` rounds; the result lands at `root` (left operand = lower relative
/// label, so non-commutative operators see a fixed order).
pub fn reduce<N: Network>(
    net: &mut N,
    root: usize,
    values: Vec<Vec<Word>>,
    op: impl Fn(&[Word], &[Word]) -> Vec<Word>,
) -> Result<Vec<Word>, NetError> {
    let _sp = obs::span("hc/reduce");
    let n = net.nodes();
    if root >= n {
        return Err(NetError::BadNode {
            node: root,
            size: n,
        });
    }
    assert_eq!(values.len(), n);
    let mut acc: Vec<Option<Vec<Word>>> = values.into_iter().map(Some).collect();
    for d in (0..net.q()).rev() {
        // Senders: relative label has bit d set and all higher bits clear.
        let mut sends: Vec<Send> = Vec::new();
        for (node, slot) in acc.iter_mut().enumerate() {
            let rel = node ^ root;
            if rel >> d != 1 {
                continue;
            }
            let payload = slot.take().ok_or_else(|| holder_missing(node))?;
            sends.push(Send {
                from: node,
                to: node ^ (1 << d),
                payload,
            });
        }
        let inbox = net.round(sends)?;
        for (node, got) in inbox.into_iter().enumerate() {
            if let Some((_, theirs)) = got {
                let mine = acc[node].take().ok_or_else(|| holder_missing(node))?;
                // Receiver has the lower relative label: it is the left operand.
                acc[node] = Some(op(&mine, &theirs));
            }
        }
    }
    acc[root].take().ok_or_else(|| holder_missing(root))
}

/// Dimension-exchange all-reduce: every node ends with the total, `q` full
/// exchange rounds. Requires a commutative-enough usage or acceptance of
/// the butterfly order (left operand = lower label on each link).
pub fn all_reduce<N: Network>(
    net: &mut N,
    values: Vec<Vec<Word>>,
    op: impl Fn(&[Word], &[Word]) -> Vec<Word>,
) -> Result<Vec<Vec<Word>>, NetError> {
    let _sp = obs::span("hc/all_reduce");
    let n = net.nodes();
    assert_eq!(values.len(), n);
    let mut acc = values;
    for d in 0..net.q() {
        let payloads: Vec<Option<Vec<Word>>> = acc.iter().cloned().map(Some).collect();
        let inbox = net.exchange(d, payloads)?;
        for node in 0..n {
            let (_, theirs) = inbox[node].clone().ok_or_else(|| holder_missing(node))?;
            let mine = &acc[node];
            acc[node] = if node & (1 << d) == 0 {
                op(mine, &theirs)
            } else {
                op(&theirs, mine)
            };
        }
    }
    Ok(acc)
}

/// Gather all nodes' payloads at `root` (e-cube routed; the root's single
/// port makes this inherently `Ω(P)` rounds — measured, not hidden).
pub fn gather<N: Network>(
    net: &mut N,
    root: usize,
    values: Vec<Vec<Word>>,
) -> Result<Vec<(usize, Vec<Word>)>, NetError> {
    let _sp = obs::span("hc/gather");
    let n = net.nodes();
    if root >= n {
        return Err(NetError::BadNode {
            node: root,
            size: n,
        });
    }
    assert_eq!(values.len(), n);
    let packets: Vec<Packet> = values
        .into_iter()
        .enumerate()
        .map(|(src, payload)| Packet {
            src,
            dst: root,
            payload,
        })
        .collect();
    let mut delivered = route(net, packets)?;
    Ok(delivered
        .swap_remove(root)
        .into_iter()
        .map(|p| (p.src, p.payload))
        .collect())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::engine::NetSim;

    #[test]
    fn broadcast_reaches_all_nodes_every_root() {
        for q in 0..=5usize {
            let n = 1 << q;
            for root in [0usize, n - 1, n / 2] {
                let mut net = NetSim::new(q);
                let out = broadcast(&mut net, root, vec![7, 8]).unwrap();
                assert!(out.iter().all(|p| p == &vec![7, 8]));
                assert_eq!(net.stats().rounds, q as u64);
            }
        }
    }

    #[test]
    fn reduce_sums_everything_to_any_root() {
        for q in 0..=5usize {
            let n = 1 << q;
            for root in [0usize, n - 1] {
                let mut net = NetSim::new(q);
                let values: Vec<Vec<Word>> = (0..n).map(|i| vec![i as Word]).collect();
                let total = reduce(&mut net, root, values, |a, b| vec![a[0] + b[0]]).unwrap();
                assert_eq!(total, vec![(n * (n - 1) / 2) as Word]);
            }
        }
    }

    #[test]
    fn reduce_respects_operand_order() {
        // Concatenation-ish operator: keeps (min_label_seen, count).
        let q = 3usize;
        let mut net = NetSim::new(q);
        let values: Vec<Vec<Word>> = (0..8).map(|i| vec![i as Word, 1]).collect();
        let out = reduce(&mut net, 0, values, |a, b| {
            vec![a[0].min(b[0]), a[1] + b[1]]
        })
        .unwrap();
        assert_eq!(out, vec![0, 8]);
    }

    #[test]
    fn all_reduce_gives_everyone_the_total() {
        for q in 1..=5usize {
            let n = 1 << q;
            let mut net = NetSim::new(q);
            let values: Vec<Vec<Word>> = (0..n).map(|i| vec![(i * i) as Word]).collect();
            let expect: Word = (0..n as Word).map(|i| i * i).sum();
            let out = all_reduce(&mut net, values, |a, b| vec![a[0] + b[0]]).unwrap();
            assert!(out.iter().all(|v| v[0] == expect));
            assert_eq!(net.stats().rounds, q as u64);
        }
    }

    #[test]
    fn gather_collects_with_serialised_root_port() {
        let q = 3usize;
        let n = 1 << q;
        let mut net = NetSim::new(q);
        let values: Vec<Vec<Word>> = (0..n).map(|i| vec![100 + i as Word]).collect();
        let got = gather(&mut net, 2, values).unwrap();
        assert_eq!(got.len(), n);
        let mut srcs: Vec<usize> = got.iter().map(|(s, _)| *s).collect();
        srcs.sort_unstable();
        assert_eq!(srcs, (0..n).collect::<Vec<_>>());
        // n-1 remote payloads through one port: at least n-1 rounds.
        assert!(net.stats().rounds >= (n - 1) as u64);
    }
}
