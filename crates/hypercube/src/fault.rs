//! Deterministic fault injection and the ack/retry recovery protocol.
//!
//! The paper's model (and every layer built on [`NetSim`]) assumes a
//! perfectly reliable single-port cube: each round delivers, every processor
//! survives. [`FaultyNet`] drops that assumption without touching the
//! algorithms: it wraps a pristine `NetSim` and injects faults from a seeded,
//! replayable [`FaultPlan`] —
//!
//! * **drops** — a message is lost in transit;
//! * **duplicates** — a spurious extra copy arrives a sub-round later;
//! * **delay/reorder** — a message is withheld one sub-round;
//! * **corruption** — a payload bit flips on the wire (every protocol-mode
//!   payload carries a CRC word, so the receiver detects and discards it);
//! * **fail-stop** — a processor crashes at a scheduled round and stays down
//!   for an outage window ([`FailStop::PERMANENT`] = forever), losing its
//!   resident queue data (which the `dmpq` layer regenerates elsewhere).
//!
//! Against these, `FaultyNet::round` runs a reliable-delivery protocol: each
//! logical round becomes a series of physical sub-rounds — data, then a
//! mirrored ack round, then retries with exponential backoff for whatever
//! went unacknowledged — until every message of the round is delivered
//! exactly once (duplicates are detected and discarded) or the retry budget
//! is exhausted, in which case a *typed* error surfaces
//! ([`NetError::Dead`] / [`NetError::Corrupt`] / [`NetError::Timeout`])
//! instead of a panic. Retries, discarded duplicates and backoff time are
//! metered in [`NetStats`].
//!
//! With an inactive plan ([`FaultPlan::none`]) the wrapper is a pure
//! pass-through: no CRC word, no ack rounds, bit-identical meters to a bare
//! `NetSim` — so fault-free experiments keep their golden numbers.
//!
//! Everything is deterministic: the same seed and the same operation
//! sequence replay to the identical fault schedule and the identical
//! `NetStats` ledger, which is what lets the chaos fuzzer shrink and replay
//! failures.

use obs::flight::{self, EventKind};

use crate::engine::{Inbox, NetError, NetSim, NetStats, Network, Send, Word};

/// A scheduled processor crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailStop {
    /// The processor that crashes.
    pub node: usize,
    /// Physical sub-round index at which it goes down.
    pub at_round: u64,
    /// Sub-rounds it stays down ([`FailStop::PERMANENT`] = never restarts).
    pub outage: u64,
}

impl FailStop {
    /// Outage value meaning the processor never comes back.
    pub const PERMANENT: u64 = u64::MAX;
}

/// A seeded, replayable fault schedule.
///
/// Probabilities are per message transmission (and for `drop`, also per
/// ack). All draws come from a splitmix64 stream seeded with `seed`, in a
/// fixed order, so a plan replays identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for the fault stream.
    pub seed: u64,
    /// Probability a transmission (or its ack) is lost in transit.
    pub drop: f64,
    /// Probability a transmission spawns a spurious duplicate copy.
    pub duplicate: f64,
    /// Probability a transmission is delayed one sub-round (reorder).
    pub delay: f64,
    /// Probability a transmission has a payload bit flipped on the wire.
    pub corrupt: f64,
    /// Scheduled processor crashes.
    pub fail_stops: Vec<FailStop>,
    /// Retry budget per logical round (initial attempt not counted).
    pub max_retries: u32,
}

impl FaultPlan {
    /// The empty plan: no faults, wrapper acts as a pure pass-through.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            corrupt: 0.0,
            fail_stops: Vec::new(),
            max_retries: 12,
        }
    }

    /// An empty plan carrying a seed (compose with the `with_*` builders).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Set the per-message drop probability.
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.drop = p;
        self
    }

    /// Set the per-message duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> FaultPlan {
        self.duplicate = p;
        self
    }

    /// Set the per-message delay/reorder probability.
    pub fn with_delay(mut self, p: f64) -> FaultPlan {
        self.delay = p;
        self
    }

    /// Set the per-message corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> FaultPlan {
        self.corrupt = p;
        self
    }

    /// Set the retry budget.
    pub fn with_retries(mut self, max_retries: u32) -> FaultPlan {
        self.max_retries = max_retries;
        self
    }

    /// Schedule a fail-stop.
    pub fn with_fail_stop(mut self, node: usize, at_round: u64, outage: u64) -> FaultPlan {
        self.fail_stops.push(FailStop {
            node,
            at_round,
            outage,
        });
        self
    }

    /// Whether any fault can ever fire. Inactive plans keep the wrapper in
    /// zero-overhead pass-through mode.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.delay > 0.0
            || self.corrupt > 0.0
            || !self.fail_stops.is_empty()
    }
}

/// FNV-1a over payload words, folded to a positive `Word`. One CRC word is
/// appended to every protocol-mode payload; a corrupted payload fails the
/// receiver's check and is treated as undelivered (forcing a retry).
fn crc_of(words: &[Word]) -> Word {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h ^= w as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h & 0x7fff_ffff_ffff_ffff) as Word
}

/// splitmix64 step — the fault stream's generator (self-contained so replay
/// never depends on an external crate's stream).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Why a flight has not been acknowledged yet (drives the typed error when
/// the retry budget runs out; `Dead` outranks `Corrupt` outranks timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    Timeout,
    Corrupt { node: usize },
    Dead { node: usize },
}

/// One message of a logical round, tracked across retry sub-rounds.
#[derive(Debug)]
struct Flight {
    from: usize,
    to: usize,
    payload: Vec<Word>,
    wire: Vec<Word>,
    delivered: bool,
    acked: bool,
    cause: Cause,
}

/// The fault-injecting transport: a [`NetSim`] plus a [`FaultPlan`] and the
/// ack/retry recovery protocol. Implements [`Network`], so routing,
/// collectives, prefix and sort run over it unchanged.
#[derive(Debug, Clone)]
pub struct FaultyNet {
    inner: NetSim,
    plan: FaultPlan,
    rng: u64,
    /// Physical sub-rounds executed (the clock fail-stops are scheduled on).
    physical_rounds: u64,
    /// Protocol-layer meters (backoff time, retries, redeliveries, rehomes)
    /// merged into [`Network::stats`] on top of the inner simulator's.
    extra: NetStats,
}

impl FaultyNet {
    /// Wrap a fresh `q`-cube under `plan`.
    pub fn new(q: usize, plan: FaultPlan) -> FaultyNet {
        let rng = plan.seed;
        FaultyNet {
            inner: NetSim::new(q),
            plan,
            rng,
            physical_rounds: 0,
            extra: NetStats::default(),
        }
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The physical sub-round clock (what [`FailStop::at_round`] is against).
    pub fn physical_rounds(&self) -> u64 {
        self.physical_rounds
    }

    /// Words moved per undirected link (see [`NetSim::link_loads`]).
    pub fn link_loads(&self) -> Vec<((usize, usize), u64)> {
        self.inner.link_loads()
    }

    /// The hottest link's load in words.
    pub fn max_link_load(&self) -> u64 {
        self.inner.max_link_load()
    }

    /// Record `n` heap nodes regenerated onto a new home processor — called
    /// by the `dmpq` recovery layer so rehomes land in the same ledger as
    /// retries and redeliveries.
    pub fn note_rehomed(&mut self, n: u64) {
        flight::record_here(EventKind::NetRehome, n);
        self.extra.rehomed_nodes += n;
    }

    /// Let `rounds` sub-rounds pass with no traffic (recovery layers wait
    /// out an outage with this; metered as idle time).
    pub fn idle(&mut self, rounds: u64) {
        self.physical_rounds += rounds;
        self.extra.time += rounds;
    }

    /// When `node` is next alive, in physical sub-rounds: `None` if some
    /// covering fail-stop is permanent, the current clock if it is alive
    /// now. Recovery layers use this to wait out a bounded outage before
    /// retrying a full-cube collective.
    pub fn down_until(&self, node: usize) -> Option<u64> {
        let mut until = self.physical_rounds;
        for fs in &self.plan.fail_stops {
            if fs.node == node && self.physical_rounds >= fs.at_round {
                if fs.outage == FailStop::PERMANENT {
                    return None;
                }
                until = until.max(fs.at_round.saturating_add(fs.outage));
            }
        }
        Some(until)
    }

    fn dead(&self, node: usize) -> bool {
        self.plan.fail_stops.iter().any(|fs| {
            node == fs.node
                && self.physical_rounds >= fs.at_round
                && self.physical_rounds - fs.at_round < fs.outage
        })
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let draw = (splitmix64(&mut self.rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        draw < p
    }

    /// Corrupt one bit of a wire image (never leaves it equal: XOR of a
    /// nonzero mask). The CRC word itself may be hit — still detected.
    fn flip_bit(&mut self, wire: &mut [Word]) {
        let idx = (splitmix64(&mut self.rng) % wire.len() as u64) as usize;
        let bit = splitmix64(&mut self.rng) % 62;
        wire[idx] ^= 1 << bit;
    }

    /// The reliable round: data sub-round, mirrored ack sub-round, retries
    /// with exponential backoff. `Ok` means every submitted message was
    /// delivered exactly once.
    fn reliable_round(&mut self, sends: Vec<Send>) -> Result<Inbox, NetError> {
        let n = self.inner.nodes();
        self.inner.validate_sends(&sends)?;
        let mut inbox: Inbox = vec![None; n];
        let mut flights: Vec<Flight> = sends
            .into_iter()
            .map(|s| {
                let mut wire = s.payload.clone();
                wire.push(crc_of(&s.payload));
                Flight {
                    from: s.from,
                    to: s.to,
                    payload: s.payload,
                    wire,
                    delivered: false,
                    acked: false,
                    cause: Cause::Timeout,
                }
            })
            .collect();
        // Flight indices whose delayed/duplicate copy arrives next sub-round.
        let mut copies_next: Vec<usize> = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            let all_acked = flights.iter().all(|f| f.acked);
            if all_acked && copies_next.is_empty() {
                return Ok(inbox);
            }
            if attempt > self.plan.max_retries {
                if all_acked {
                    // Only straggler duplicate/delayed copies remain; the
                    // round is complete — stop draining them.
                    return Ok(inbox);
                }
                // Report the most actionable cause among the losers. A
                // flight's recorded cause is last-write-wins (a drop on the
                // final attempt would mask an earlier dead-receiver
                // observation), so deadness is re-checked here: a currently
                // crashed endpoint is always the actionable diagnosis.
                let rank = |c: &Cause| match c {
                    Cause::Dead { .. } => 2,
                    Cause::Corrupt { .. } => 1,
                    Cause::Timeout => 0,
                };
                let mut worst: Option<(Cause, usize)> = None;
                for f in flights.iter().filter(|f| !f.acked) {
                    let cause = if self.dead(f.to) {
                        Cause::Dead { node: f.to }
                    } else if self.dead(f.from) {
                        Cause::Dead { node: f.from }
                    } else {
                        f.cause
                    };
                    if worst.is_none_or(|(w, _)| rank(&cause) > rank(&w)) {
                        worst = Some((cause, f.to));
                    }
                }
                return Err(match worst {
                    Some((Cause::Dead { node }, _)) => NetError::Dead { node },
                    Some((Cause::Corrupt { node }, _)) => NetError::Corrupt { node },
                    other => {
                        let node = other.map_or(0, |(_, to)| to);
                        flight::record_here(EventKind::NetTimeout, node as u64);
                        NetError::Timeout {
                            node,
                            attempts: attempt,
                        }
                    }
                });
            }
            // ---- data sub-round ----
            let copies_now = std::mem::take(&mut copies_next);
            let mut phys: Vec<Send> = Vec::new();
            let mut carried: Vec<usize> = Vec::new(); // flight idx per phys send
            for (idx, f) in flights.iter_mut().enumerate() {
                let is_copy = copies_now.contains(&idx);
                if f.acked && !is_copy {
                    continue;
                }
                // At most one in-flight copy per sender per sub-round: a
                // scheduled delayed/duplicate copy *is* this sub-round's
                // transmission for its flight.
                if self.dead(f.from) {
                    f.cause = Cause::Dead { node: f.from };
                    continue;
                }
                if !is_copy && attempt > 0 {
                    flight::record_here(EventKind::NetRetry, f.to as u64);
                    self.extra.retries += 1;
                }
                if self.chance(self.plan.drop) {
                    f.cause = Cause::Timeout;
                    continue;
                }
                if self.chance(self.plan.delay) {
                    copies_next.push(idx);
                    f.cause = Cause::Timeout;
                    continue;
                }
                let mut wire = f.wire.clone();
                if self.chance(self.plan.corrupt) {
                    self.flip_bit(&mut wire);
                }
                if self.chance(self.plan.duplicate) && !copies_next.contains(&idx) {
                    copies_next.push(idx);
                }
                if self.dead(f.to) {
                    // The transmission crosses the link and dies at the
                    // crashed receiver: metered, never acknowledged.
                    f.cause = Cause::Dead { node: f.to };
                }
                phys.push(Send {
                    from: f.from,
                    to: f.to,
                    payload: wire,
                });
                carried.push(idx);
            }
            let delivered_inbox = self.inner.round(phys)?;
            self.physical_rounds += 1;
            // ---- receive: CRC check, dedup, collect ack pattern ----
            let mut ack_sends: Vec<Send> = Vec::new();
            let mut ack_for: Vec<usize> = Vec::new();
            for &idx in &carried {
                let f = &mut flights[idx];
                if self.dead(f.to) {
                    continue; // discarded at the dead receiver
                }
                let Some((_, wire)) = &delivered_inbox[f.to] else {
                    continue; // was dropped/delayed before the link
                };
                let (body, tail) = wire.split_at(wire.len() - 1);
                if crc_of(body) != tail[0] {
                    f.cause = Cause::Corrupt { node: f.to };
                    continue;
                }
                if f.delivered {
                    flight::record_here(EventKind::NetRedelivery, f.to as u64);
                    self.extra.redeliveries += 1;
                } else {
                    f.delivered = true;
                    inbox[f.to] = Some((f.from, f.payload.clone()));
                }
                if !f.acked {
                    ack_sends.push(Send {
                        from: f.to,
                        to: f.from,
                        payload: vec![idx as Word],
                    });
                    ack_for.push(idx);
                }
            }
            // ---- ack sub-round (mirrored pattern; acks can drop too) ----
            let mut kept: Vec<Send> = Vec::new();
            let mut kept_for: Vec<usize> = Vec::new();
            for (send, idx) in ack_sends.into_iter().zip(ack_for) {
                if self.chance(self.plan.drop) {
                    continue;
                }
                kept.push(send);
                kept_for.push(idx);
            }
            let ack_inbox = self.inner.round(kept)?;
            self.physical_rounds += 1;
            for idx in kept_for {
                let f = &mut flights[idx];
                if ack_inbox[f.from].is_some() {
                    f.acked = true;
                }
            }
            // ---- backoff before the next retry wave ----
            if flights.iter().any(|f| !f.acked) {
                self.extra.time += 1u64 << attempt.min(6);
            }
            attempt += 1;
        }
    }
}

impl Network for FaultyNet {
    fn q(&self) -> usize {
        self.inner.q()
    }

    fn round(&mut self, sends: Vec<Send>) -> Result<Inbox, NetError> {
        if !self.plan.is_active() {
            // Pass-through: bit-identical behaviour and meters to a bare
            // NetSim (no CRC word, no ack rounds).
            self.physical_rounds += 1;
            return self.inner.round(sends);
        }
        if sends.is_empty() {
            return Ok(vec![None; self.inner.nodes()]);
        }
        self.reliable_round(sends)
    }

    fn stats(&self) -> NetStats {
        self.inner.stats().merge(&self.extra)
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.extra = NetStats::default();
    }

    fn is_alive(&self, node: usize) -> bool {
        !self.dead(node)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn one_send() -> Vec<Send> {
        vec![Send {
            from: 0,
            to: 1,
            payload: vec![7, 8, 9],
        }]
    }

    #[test]
    fn inactive_plan_is_bit_identical_to_netsim() {
        let mut plain = NetSim::new(3);
        let mut faulty = FaultyNet::new(3, FaultPlan::none());
        for _ in 0..4 {
            let a = plain.round(one_send()).unwrap();
            let b = faulty.round(one_send()).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(NetSim::stats(&plain), faulty.stats());
        assert_eq!(faulty.max_link_load(), plain.max_link_load());
    }

    #[test]
    fn drops_are_retried_to_delivery() {
        let plan = FaultPlan::seeded(42).with_drop(0.4).with_retries(64);
        let mut net = FaultyNet::new(2, plan);
        for _ in 0..50 {
            let inbox = net.round(one_send()).unwrap();
            assert_eq!(inbox[1], Some((0, vec![7, 8, 9])));
        }
        assert!(
            net.stats().retries > 0,
            "0.4 drop over 50 rounds must retry"
        );
    }

    #[test]
    fn corruption_is_detected_and_retried() {
        let plan = FaultPlan::seeded(7).with_corrupt(0.5).with_retries(64);
        let mut net = FaultyNet::new(2, plan);
        for _ in 0..50 {
            let inbox = net.round(one_send()).unwrap();
            // CRC never lets a flipped payload through.
            assert_eq!(inbox[1], Some((0, vec![7, 8, 9])));
        }
        assert!(net.stats().retries > 0);
    }

    #[test]
    fn duplicates_are_discarded_and_counted() {
        let plan = FaultPlan::seeded(9).with_duplicate(0.9).with_retries(64);
        let mut net = FaultyNet::new(2, plan);
        for _ in 0..30 {
            let inbox = net.round(one_send()).unwrap();
            assert_eq!(inbox[1], Some((0, vec![7, 8, 9])));
        }
        assert!(net.stats().redeliveries > 0, "0.9 duplicate must redeliver");
    }

    #[test]
    fn delay_still_converges() {
        let plan = FaultPlan::seeded(11).with_delay(0.6).with_retries(64);
        let mut net = FaultyNet::new(2, plan);
        for _ in 0..30 {
            let inbox = net.round(one_send()).unwrap();
            assert_eq!(inbox[1], Some((0, vec![7, 8, 9])));
        }
    }

    #[test]
    fn permanent_fail_stop_reports_dead() {
        let plan = FaultPlan::seeded(1)
            .with_retries(3)
            .with_fail_stop(1, 0, FailStop::PERMANENT);
        let mut net = FaultyNet::new(2, plan);
        assert!(!net.is_alive(1));
        let err = net.round(one_send()).unwrap_err();
        assert_eq!(err, NetError::Dead { node: 1 });
    }

    #[test]
    fn bounded_outage_is_ridden_out_by_retries() {
        // Node 1 is down for 6 sub-rounds; a 16-retry budget outlasts it.
        let plan = FaultPlan::seeded(3)
            .with_retries(16)
            .with_fail_stop(1, 0, 6);
        let mut net = FaultyNet::new(2, plan);
        let inbox = net.round(one_send()).unwrap();
        assert_eq!(inbox[1], Some((0, vec![7, 8, 9])));
        assert!(net.stats().retries > 0);
    }

    #[test]
    fn total_drop_exhausts_budget_with_timeout() {
        let plan = FaultPlan::seeded(5).with_drop(1.0).with_retries(4);
        let mut net = FaultyNet::new(2, plan);
        let err = net.round(one_send()).unwrap_err();
        assert!(matches!(err, NetError::Timeout { node: 1, .. }), "{err:?}");
    }

    #[test]
    fn replay_from_same_seed_is_identical() {
        let mk = || {
            FaultPlan::seeded(77)
                .with_drop(0.3)
                .with_duplicate(0.2)
                .with_delay(0.2)
        };
        let mut a = FaultyNet::new(3, mk());
        let mut b = FaultyNet::new(3, mk());
        for i in 0..40u64 {
            let sends = vec![Send {
                from: (i % 8) as usize,
                to: ((i % 8) ^ 1) as usize,
                payload: vec![i as Word],
            }];
            assert_eq!(a.round(sends.clone()), b.round(sends));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().has_fault_activity());
    }

    #[test]
    fn idle_and_rehome_meter() {
        let mut net = FaultyNet::new(2, FaultPlan::seeded(2).with_drop(0.1));
        net.idle(5);
        net.note_rehomed(3);
        assert_eq!(net.stats().time, 5);
        assert_eq!(net.stats().rehomed_nodes, 3);
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn illegal_patterns_still_rejected_under_faults() {
        let mut net = FaultyNet::new(2, FaultPlan::seeded(4).with_drop(0.1));
        let err = net
            .round(vec![Send {
                from: 0,
                to: 3,
                payload: vec![1],
            }])
            .unwrap_err();
        assert_eq!(err, NetError::NotAdjacent { from: 0, to: 3 });
    }

    #[test]
    fn crc_distinguishes_single_bit_flips() {
        let base = vec![1, 2, 3, 4];
        let c = crc_of(&base);
        for idx in 0..base.len() {
            for bit in 0..62 {
                let mut m = base.clone();
                m[idx] ^= 1 << bit;
                assert_ne!(crc_of(&m), c, "collision at word {idx} bit {bit}");
            }
        }
    }
}
