//! The round-based single-port network simulator.
//!
//! The simulator brokers message rounds and *enforces* the model:
//!
//! * messages only cross real hypercube links (Hamming distance 1);
//! * per round every node sends at most one message and receives at most
//!   one (single-port);
//! * a round's time cost is the longest payload moved that round (moving a
//!   `w`-word record over one link costs `w` time units — the paper's
//!   "`O(log n)` information … `O(log n)` time" accounting), and at least 1.
//!
//! Local computation is host-driven; the simulator's job is to make illegal
//! communication schedules *impossible to run* and to meter the legal ones.

use crate::gray::is_adjacent;

/// Machine word moved over links.
pub type Word = i64;

/// One message submitted to a round.
#[derive(Debug, Clone)]
pub struct Send {
    /// Sender node label.
    pub from: usize,
    /// Receiver node label (must be a neighbour of `from`).
    pub to: usize,
    /// Payload words.
    pub payload: Vec<Word>,
}

/// Communication-model violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// `from`/`to` out of range for this cube.
    BadNode {
        /// The offending label.
        node: usize,
        /// Number of nodes.
        size: usize,
    },
    /// Message endpoints are not hypercube neighbours.
    NotAdjacent {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
    },
    /// A node tried to send more than one message in a round.
    MultiSend {
        /// The offending node.
        node: usize,
    },
    /// A node would receive more than one message in a round.
    MultiReceive {
        /// The offending node.
        node: usize,
    },
    /// Delivery to `node` failed even after exhausting the retry budget.
    Timeout {
        /// The unreachable node.
        node: usize,
        /// Attempts spent (initial send + retries).
        attempts: u32,
    },
    /// A payload kept failing its CRC check past the retry budget.
    Corrupt {
        /// The receiver that kept seeing bad checksums.
        node: usize,
    },
    /// A fail-stopped processor made delivery impossible.
    Dead {
        /// The fail-stopped node.
        node: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadNode { node, size } => write!(f, "node {node} out of range ({size})"),
            NetError::NotAdjacent { from, to } => {
                write!(f, "nodes {from} and {to} are not neighbours")
            }
            NetError::MultiSend { node } => write!(f, "node {node} sent twice in one round"),
            NetError::MultiReceive { node } => {
                write!(f, "node {node} would receive twice in one round")
            }
            NetError::Timeout { node, attempts } => {
                write!(
                    f,
                    "delivery to node {node} timed out after {attempts} attempts"
                )
            }
            NetError::Corrupt { node } => {
                write!(f, "node {node} kept receiving corrupt payloads")
            }
            NetError::Dead { node } => write!(f, "node {node} is fail-stopped"),
        }
    }
}

impl std::error::Error for NetError {}

/// Accumulated communication cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total time: sum over rounds of `max(1, longest payload)`.
    pub time: u64,
    /// Number of rounds executed (with at least one message).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total words moved across links (payload words × 1 hop each).
    pub word_hops: u64,
    /// Resends issued by the ack/retry recovery protocol
    /// (see [`crate::fault::FaultyNet`]); 0 on a fault-free transport.
    pub retries: u64,
    /// Duplicate deliveries detected and discarded by the receiver
    /// (spurious duplicates, delayed copies racing a retry).
    pub redeliveries: u64,
    /// b-bandwidth heap nodes regenerated onto a new home processor after a
    /// fail-stop (counted by the `dmpq` recovery layer).
    pub rehomed_nodes: u64,
}

impl NetStats {
    /// The field-wise sum of two stat blocks (for folding a ledger of
    /// per-operation deltas back into a total).
    pub fn merge(&self, other: &NetStats) -> NetStats {
        NetStats {
            time: self.time + other.time,
            rounds: self.rounds + other.rounds,
            messages: self.messages + other.messages,
            word_hops: self.word_hops + other.word_hops,
            retries: self.retries + other.retries,
            redeliveries: self.redeliveries + other.redeliveries,
            rehomed_nodes: self.rehomed_nodes + other.rehomed_nodes,
        }
    }

    /// `self - before` for two snapshots of the *same* cumulative meter.
    ///
    /// Snapshot ordering contract: `self` is the later snapshot and no
    /// [`NetSim::reset_stats`] ran between the two. Saturates at zero rather
    /// than panicking in debug builds when the contract is broken (swapped
    /// arguments, an intervening reset) — a zeroed field is a readable
    /// symptom, an overflow panic mid-experiment is not.
    pub fn delta(&self, before: &NetStats) -> NetStats {
        NetStats {
            time: self.time.saturating_sub(before.time),
            rounds: self.rounds.saturating_sub(before.rounds),
            messages: self.messages.saturating_sub(before.messages),
            word_hops: self.word_hops.saturating_sub(before.word_hops),
            retries: self.retries.saturating_sub(before.retries),
            redeliveries: self.redeliveries.saturating_sub(before.redeliveries),
            rehomed_nodes: self.rehomed_nodes.saturating_sub(before.rehomed_nodes),
        }
    }

    /// Whether any fault-recovery counter is nonzero.
    pub fn has_fault_activity(&self) -> bool {
        self.retries != 0 || self.redeliveries != 0 || self.rehomed_nodes != 0
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time={} rounds={} messages={} word_hops={}",
            self.time, self.rounds, self.messages, self.word_hops
        )?;
        // Fault counters only appear once recovery did something, so
        // fault-free runs keep the historical (and golden-tested) format.
        if self.has_fault_activity() {
            write!(
                f,
                " retries={} redeliveries={} rehomed_nodes={}",
                self.retries, self.redeliveries, self.rehomed_nodes
            )?;
        }
        Ok(())
    }
}

impl obs::Recorder for NetStats {
    fn family(&self) -> &'static str {
        "hypercube.net"
    }
    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("time", self.time),
            ("rounds", self.rounds),
            ("messages", self.messages),
            ("word_hops", self.word_hops),
            ("retries", self.retries),
            ("redeliveries", self.redeliveries),
            ("rehomed_nodes", self.rehomed_nodes),
        ]
    }
}

/// A received message: `(sender, payload)`; `None` when nothing arrived.
pub type Inbox = Vec<Option<(usize, Vec<Word>)>>;

/// The simulator: a `q`-cube with cost meters.
#[derive(Debug, Clone)]
pub struct NetSim {
    q: usize,
    stats: NetStats,
    /// Words moved per undirected link, keyed by `(lower endpoint, dim)`.
    link_words: std::collections::HashMap<(usize, usize), u64>,
}

impl NetSim {
    /// A `q`-dimensional cube (`2^q` nodes).
    pub fn new(q: usize) -> Self {
        assert!(q <= 20, "2^{q} nodes is beyond simulation scale");
        NetSim {
            q,
            stats: NetStats::default(),
            link_words: std::collections::HashMap::new(),
        }
    }

    /// Words moved per undirected link so far, as
    /// `((lower endpoint, dimension), words)` pairs in unspecified order.
    /// The congestion profile behind `word_hops`.
    pub fn link_loads(&self) -> Vec<((usize, usize), u64)> {
        self.link_words.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The hottest link's load in words (0 when nothing moved).
    pub fn max_link_load(&self) -> u64 {
        self.link_words.values().copied().max().unwrap_or(0)
    }

    /// Cube dimension.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of processors.
    pub fn nodes(&self) -> usize {
        1 << self.q
    }

    /// Accumulated cost.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Zero the meters.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
        self.link_words.clear();
    }

    /// Check a round's send pattern against the model (node ranges,
    /// adjacency, single-port send/receive) without executing it. The
    /// fault-injection wrapper validates up front so that its retry
    /// sub-rounds only ever carry known-legal subsets.
    pub fn validate_sends(&self, sends: &[Send]) -> Result<(), NetError> {
        let n = self.nodes();
        let mut sent = vec![false; n];
        for s in sends {
            if s.from >= n {
                return Err(NetError::BadNode {
                    node: s.from,
                    size: n,
                });
            }
            if s.to >= n {
                return Err(NetError::BadNode {
                    node: s.to,
                    size: n,
                });
            }
            if !is_adjacent(s.from, s.to) {
                return Err(NetError::NotAdjacent {
                    from: s.from,
                    to: s.to,
                });
            }
            if sent[s.from] {
                return Err(NetError::MultiSend { node: s.from });
            }
            sent[s.from] = true;
        }
        let mut received = vec![false; n];
        for s in sends {
            if received[s.to] {
                return Err(NetError::MultiReceive { node: s.to });
            }
            received[s.to] = true;
        }
        Ok(())
    }

    /// Execute one synchronous round. Returns, for each node, the message it
    /// received (if any) as `(from, payload)`.
    pub fn round(&mut self, sends: Vec<Send>) -> Result<Inbox, NetError> {
        let n = self.nodes();
        let mut inbox: Inbox = vec![None; n];
        if sends.is_empty() {
            return Ok(inbox);
        }
        self.validate_sends(&sends)?;
        let mut max_payload = 1u64;
        let mut words = 0u64;
        let count = sends.len() as u64;
        for s in sends {
            max_payload = max_payload.max(s.payload.len() as u64);
            words += s.payload.len() as u64;
            let link = (s.from.min(s.to), crate::gray::link_dim(s.from, s.to));
            *self.link_words.entry(link).or_default() += s.payload.len() as u64;
            inbox[s.to] = Some((s.from, s.payload));
        }
        self.stats.time += max_payload;
        self.stats.rounds += 1;
        self.stats.messages += count;
        self.stats.word_hops += words;
        Ok(inbox)
    }

    /// Pairwise exchange across dimension `d`: every node in `mask` (or all
    /// nodes when `mask` is `None`) swaps a payload with its dimension-`d`
    /// neighbour. Exchanges are two rounds under single-port (each node both
    /// sends and receives once per round, but a *swap* needs each direction):
    /// actually both directions fit in ONE round — every node sends once and
    /// receives once. Returns the payload each node received.
    pub fn exchange(
        &mut self,
        d: usize,
        payloads: Vec<Option<Vec<Word>>>,
    ) -> Result<Inbox, NetError> {
        assert!(d < self.q.max(1), "dimension {d} out of range");
        let sends: Vec<Send> = payloads
            .into_iter()
            .enumerate()
            .filter_map(|(node, p)| {
                p.map(|payload| Send {
                    from: node,
                    to: node ^ (1 << d),
                    payload,
                })
            })
            .collect();
        self.round(sends)
    }
}

/// Abstraction over round-based transports.
///
/// [`NetSim`] is the pristine single-port cube; [`crate::fault::FaultyNet`]
/// layers deterministic fault injection plus an ack/retry recovery protocol
/// over it. The routing, collective, prefix and sort layers are generic over
/// this trait, so every algorithm runs unchanged on either transport — and
/// the fault-tolerance story lives in exactly one place.
pub trait Network {
    /// Cube dimension.
    fn q(&self) -> usize;

    /// Number of processors.
    fn nodes(&self) -> usize {
        1 << self.q()
    }

    /// Execute one logical synchronous round. A reliable transport may spend
    /// several physical sub-rounds (retries, acks, backoff) delivering it;
    /// on `Ok` the inbox reflects exactly the submitted pattern.
    fn round(&mut self, sends: Vec<Send>) -> Result<Inbox, NetError>;

    /// Pairwise exchange across dimension `d` (see [`NetSim::exchange`]).
    fn exchange(&mut self, d: usize, payloads: Vec<Option<Vec<Word>>>) -> Result<Inbox, NetError> {
        assert!(d < self.q().max(1), "dimension {d} out of range");
        let sends: Vec<Send> = payloads
            .into_iter()
            .enumerate()
            .filter_map(|(node, p)| {
                p.map(|payload| Send {
                    from: node,
                    to: node ^ (1 << d),
                    payload,
                })
            })
            .collect();
        self.round(sends)
    }

    /// Accumulated cost.
    fn stats(&self) -> NetStats;

    /// Zero the meters.
    fn reset_stats(&mut self);

    /// Whether `node` is currently up. Fault-free transports never lose a
    /// processor; the default is therefore `true`.
    fn is_alive(&self, _node: usize) -> bool {
        true
    }
}

impl Network for NetSim {
    fn q(&self) -> usize {
        NetSim::q(self)
    }
    fn round(&mut self, sends: Vec<Send>) -> Result<Inbox, NetError> {
        NetSim::round(self, sends)
    }
    fn exchange(&mut self, d: usize, payloads: Vec<Option<Vec<Word>>>) -> Result<Inbox, NetError> {
        NetSim::exchange(self, d, payloads)
    }
    fn stats(&self) -> NetStats {
        NetSim::stats(self)
    }
    fn reset_stats(&mut self) {
        NetSim::reset_stats(self)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn legal_round_delivers_and_meters() {
        let mut net = NetSim::new(2);
        let inbox = net
            .round(vec![
                Send {
                    from: 0,
                    to: 1,
                    payload: vec![10, 20],
                },
                Send {
                    from: 3,
                    to: 2,
                    payload: vec![7],
                },
            ])
            .unwrap();
        assert_eq!(inbox[1], Some((0, vec![10, 20])));
        assert_eq!(inbox[2], Some((3, vec![7])));
        assert_eq!(
            net.stats(),
            NetStats {
                time: 2,
                rounds: 1,
                messages: 2,
                word_hops: 3,
                ..NetStats::default()
            }
        );
    }

    #[test]
    fn non_neighbour_send_rejected() {
        let mut net = NetSim::new(2);
        let err = net
            .round(vec![Send {
                from: 0,
                to: 3,
                payload: vec![1],
            }])
            .unwrap_err();
        assert_eq!(err, NetError::NotAdjacent { from: 0, to: 3 });
    }

    #[test]
    fn single_port_send_violation_rejected() {
        let mut net = NetSim::new(2);
        let err = net
            .round(vec![
                Send {
                    from: 0,
                    to: 1,
                    payload: vec![1],
                },
                Send {
                    from: 0,
                    to: 2,
                    payload: vec![2],
                },
            ])
            .unwrap_err();
        assert_eq!(err, NetError::MultiSend { node: 0 });
    }

    #[test]
    fn single_port_receive_violation_rejected() {
        let mut net = NetSim::new(2);
        let err = net
            .round(vec![
                Send {
                    from: 0,
                    to: 1,
                    payload: vec![1],
                },
                Send {
                    from: 3,
                    to: 1,
                    payload: vec![2],
                },
            ])
            .unwrap_err();
        assert_eq!(err, NetError::MultiReceive { node: 1 });
    }

    #[test]
    fn full_exchange_is_one_round() {
        let mut net = NetSim::new(3);
        let payloads: Vec<Option<Vec<Word>>> = (0..8).map(|i| Some(vec![i as Word])).collect();
        let inbox = net.exchange(1, payloads).unwrap();
        for (node, got) in inbox.iter().enumerate() {
            let partner = node ^ 0b010;
            assert_eq!(got.as_ref().unwrap(), &(partner, vec![partner as Word]));
        }
        assert_eq!(net.stats().rounds, 1);
    }

    #[test]
    fn link_loads_track_congestion() {
        let mut net = NetSim::new(2);
        for _ in 0..3 {
            net.round(vec![Send {
                from: 0,
                to: 1,
                payload: vec![1, 2],
            }])
            .unwrap();
        }
        net.round(vec![Send {
            from: 2,
            to: 3,
            payload: vec![9],
        }])
        .unwrap();
        assert_eq!(net.max_link_load(), 6); // link (0, dim 0): 3 rounds × 2 words
        let loads = net.link_loads();
        assert_eq!(loads.len(), 2);
        assert_eq!(
            loads.iter().map(|(_, w)| *w).sum::<u64>(),
            net.stats().word_hops
        );
        net.reset_stats();
        assert_eq!(net.max_link_load(), 0);
    }

    #[test]
    fn empty_round_is_free() {
        let mut net = NetSim::new(2);
        net.round(vec![]).unwrap();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn stats_merge_delta_display() {
        let a = NetStats {
            time: 5,
            rounds: 2,
            messages: 3,
            word_hops: 7,
            ..NetStats::default()
        };
        let b = NetStats {
            time: 1,
            rounds: 1,
            messages: 1,
            word_hops: 2,
            ..NetStats::default()
        };
        let m = a.merge(&b);
        assert_eq!(
            m,
            NetStats {
                time: 6,
                rounds: 3,
                messages: 4,
                word_hops: 9,
                ..NetStats::default()
            }
        );
        assert_eq!(m.delta(&b), a);
        // Broken snapshot ordering saturates instead of panicking.
        assert_eq!(b.delta(&m), NetStats::default());
        assert_eq!(a.to_string(), "time=5 rounds=2 messages=3 word_hops=7");
        use obs::Recorder;
        assert_eq!(a.family(), "hypercube.net");
        assert_eq!(a.fields()[3], ("word_hops", 7));
    }

    #[test]
    fn fault_counters_merge_delta_and_display() {
        let busy = NetStats {
            time: 10,
            rounds: 4,
            messages: 6,
            word_hops: 12,
            retries: 3,
            redeliveries: 1,
            rehomed_nodes: 2,
        };
        let quiet = NetStats {
            time: 1,
            retries: 1,
            ..NetStats::default()
        };
        let m = busy.merge(&quiet);
        assert_eq!(m.retries, 4);
        assert_eq!(m.delta(&quiet), busy);
        // Underflow on swapped snapshots saturates for the fault counters too.
        assert_eq!(quiet.delta(&busy), NetStats::default());
        // Fault-free stats keep the historical format; fault activity appends.
        assert!(!quiet.delta(&busy).has_fault_activity());
        assert_eq!(
            busy.to_string(),
            "time=10 rounds=4 messages=6 word_hops=12 retries=3 redeliveries=1 rehomed_nodes=2"
        );
        use obs::Recorder;
        assert_eq!(busy.fields()[6], ("rehomed_nodes", 2));
    }
}
