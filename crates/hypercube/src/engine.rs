//! The round-based single-port network simulator.
//!
//! The simulator brokers message rounds and *enforces* the model:
//!
//! * messages only cross real hypercube links (Hamming distance 1);
//! * per round every node sends at most one message and receives at most
//!   one (single-port);
//! * a round's time cost is the longest payload moved that round (moving a
//!   `w`-word record over one link costs `w` time units — the paper's
//!   "`O(log n)` information … `O(log n)` time" accounting), and at least 1.
//!
//! Local computation is host-driven; the simulator's job is to make illegal
//! communication schedules *impossible to run* and to meter the legal ones.

use crate::gray::is_adjacent;

/// Machine word moved over links.
pub type Word = i64;

/// One message submitted to a round.
#[derive(Debug, Clone)]
pub struct Send {
    /// Sender node label.
    pub from: usize,
    /// Receiver node label (must be a neighbour of `from`).
    pub to: usize,
    /// Payload words.
    pub payload: Vec<Word>,
}

/// Communication-model violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// `from`/`to` out of range for this cube.
    BadNode {
        /// The offending label.
        node: usize,
        /// Number of nodes.
        size: usize,
    },
    /// Message endpoints are not hypercube neighbours.
    NotAdjacent {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
    },
    /// A node tried to send more than one message in a round.
    MultiSend {
        /// The offending node.
        node: usize,
    },
    /// A node would receive more than one message in a round.
    MultiReceive {
        /// The offending node.
        node: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadNode { node, size } => write!(f, "node {node} out of range ({size})"),
            NetError::NotAdjacent { from, to } => {
                write!(f, "nodes {from} and {to} are not neighbours")
            }
            NetError::MultiSend { node } => write!(f, "node {node} sent twice in one round"),
            NetError::MultiReceive { node } => {
                write!(f, "node {node} would receive twice in one round")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Accumulated communication cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total time: sum over rounds of `max(1, longest payload)`.
    pub time: u64,
    /// Number of rounds executed (with at least one message).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total words moved across links (payload words × 1 hop each).
    pub word_hops: u64,
}

impl NetStats {
    /// The field-wise sum of two stat blocks (for folding a ledger of
    /// per-operation deltas back into a total).
    pub fn merge(&self, other: &NetStats) -> NetStats {
        NetStats {
            time: self.time + other.time,
            rounds: self.rounds + other.rounds,
            messages: self.messages + other.messages,
            word_hops: self.word_hops + other.word_hops,
        }
    }

    /// `self - before` for two snapshots of the *same* cumulative meter.
    ///
    /// Snapshot ordering contract: `self` is the later snapshot and no
    /// [`NetSim::reset_stats`] ran between the two. Saturates at zero rather
    /// than panicking in debug builds when the contract is broken (swapped
    /// arguments, an intervening reset) — a zeroed field is a readable
    /// symptom, an overflow panic mid-experiment is not.
    pub fn delta(&self, before: &NetStats) -> NetStats {
        NetStats {
            time: self.time.saturating_sub(before.time),
            rounds: self.rounds.saturating_sub(before.rounds),
            messages: self.messages.saturating_sub(before.messages),
            word_hops: self.word_hops.saturating_sub(before.word_hops),
        }
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time={} rounds={} messages={} word_hops={}",
            self.time, self.rounds, self.messages, self.word_hops
        )
    }
}

impl obs::Recorder for NetStats {
    fn family(&self) -> &'static str {
        "hypercube.net"
    }
    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("time", self.time),
            ("rounds", self.rounds),
            ("messages", self.messages),
            ("word_hops", self.word_hops),
        ]
    }
}

/// A received message: `(sender, payload)`; `None` when nothing arrived.
pub type Inbox = Vec<Option<(usize, Vec<Word>)>>;

/// The simulator: a `q`-cube with cost meters.
#[derive(Debug, Clone)]
pub struct NetSim {
    q: usize,
    stats: NetStats,
    /// Words moved per undirected link, keyed by `(lower endpoint, dim)`.
    link_words: std::collections::HashMap<(usize, usize), u64>,
}

impl NetSim {
    /// A `q`-dimensional cube (`2^q` nodes).
    pub fn new(q: usize) -> Self {
        assert!(q <= 20, "2^{q} nodes is beyond simulation scale");
        NetSim {
            q,
            stats: NetStats::default(),
            link_words: std::collections::HashMap::new(),
        }
    }

    /// Words moved per undirected link so far, as
    /// `((lower endpoint, dimension), words)` pairs in unspecified order.
    /// The congestion profile behind `word_hops`.
    pub fn link_loads(&self) -> Vec<((usize, usize), u64)> {
        self.link_words.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The hottest link's load in words (0 when nothing moved).
    pub fn max_link_load(&self) -> u64 {
        self.link_words.values().copied().max().unwrap_or(0)
    }

    /// Cube dimension.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of processors.
    pub fn nodes(&self) -> usize {
        1 << self.q
    }

    /// Accumulated cost.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Zero the meters.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
        self.link_words.clear();
    }

    /// Execute one synchronous round. Returns, for each node, the message it
    /// received (if any) as `(from, payload)`.
    pub fn round(&mut self, sends: Vec<Send>) -> Result<Inbox, NetError> {
        let n = self.nodes();
        let mut inbox: Inbox = vec![None; n];
        if sends.is_empty() {
            return Ok(inbox);
        }
        let mut sent = vec![false; n];
        let mut max_payload = 1u64;
        let mut words = 0u64;
        let count = sends.len() as u64;
        for s in &sends {
            if s.from >= n {
                return Err(NetError::BadNode {
                    node: s.from,
                    size: n,
                });
            }
            if s.to >= n {
                return Err(NetError::BadNode {
                    node: s.to,
                    size: n,
                });
            }
            if !is_adjacent(s.from, s.to) {
                return Err(NetError::NotAdjacent {
                    from: s.from,
                    to: s.to,
                });
            }
            if sent[s.from] {
                return Err(NetError::MultiSend { node: s.from });
            }
            sent[s.from] = true;
        }
        for s in sends {
            if inbox[s.to].is_some() {
                return Err(NetError::MultiReceive { node: s.to });
            }
            max_payload = max_payload.max(s.payload.len() as u64);
            words += s.payload.len() as u64;
            let link = (s.from.min(s.to), crate::gray::link_dim(s.from, s.to));
            *self.link_words.entry(link).or_default() += s.payload.len() as u64;
            inbox[s.to] = Some((s.from, s.payload));
        }
        self.stats.time += max_payload;
        self.stats.rounds += 1;
        self.stats.messages += count;
        self.stats.word_hops += words;
        Ok(inbox)
    }

    /// Pairwise exchange across dimension `d`: every node in `mask` (or all
    /// nodes when `mask` is `None`) swaps a payload with its dimension-`d`
    /// neighbour. Exchanges are two rounds under single-port (each node both
    /// sends and receives once per round, but a *swap* needs each direction):
    /// actually both directions fit in ONE round — every node sends once and
    /// receives once. Returns the payload each node received.
    pub fn exchange(
        &mut self,
        d: usize,
        payloads: Vec<Option<Vec<Word>>>,
    ) -> Result<Inbox, NetError> {
        assert!(d < self.q.max(1), "dimension {d} out of range");
        let sends: Vec<Send> = payloads
            .into_iter()
            .enumerate()
            .filter_map(|(node, p)| {
                p.map(|payload| Send {
                    from: node,
                    to: node ^ (1 << d),
                    payload,
                })
            })
            .collect();
        self.round(sends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_round_delivers_and_meters() {
        let mut net = NetSim::new(2);
        let inbox = net
            .round(vec![
                Send {
                    from: 0,
                    to: 1,
                    payload: vec![10, 20],
                },
                Send {
                    from: 3,
                    to: 2,
                    payload: vec![7],
                },
            ])
            .unwrap();
        assert_eq!(inbox[1], Some((0, vec![10, 20])));
        assert_eq!(inbox[2], Some((3, vec![7])));
        assert_eq!(
            net.stats(),
            NetStats {
                time: 2,
                rounds: 1,
                messages: 2,
                word_hops: 3
            }
        );
    }

    #[test]
    fn non_neighbour_send_rejected() {
        let mut net = NetSim::new(2);
        let err = net
            .round(vec![Send {
                from: 0,
                to: 3,
                payload: vec![1],
            }])
            .unwrap_err();
        assert_eq!(err, NetError::NotAdjacent { from: 0, to: 3 });
    }

    #[test]
    fn single_port_send_violation_rejected() {
        let mut net = NetSim::new(2);
        let err = net
            .round(vec![
                Send {
                    from: 0,
                    to: 1,
                    payload: vec![1],
                },
                Send {
                    from: 0,
                    to: 2,
                    payload: vec![2],
                },
            ])
            .unwrap_err();
        assert_eq!(err, NetError::MultiSend { node: 0 });
    }

    #[test]
    fn single_port_receive_violation_rejected() {
        let mut net = NetSim::new(2);
        let err = net
            .round(vec![
                Send {
                    from: 0,
                    to: 1,
                    payload: vec![1],
                },
                Send {
                    from: 3,
                    to: 1,
                    payload: vec![2],
                },
            ])
            .unwrap_err();
        assert_eq!(err, NetError::MultiReceive { node: 1 });
    }

    #[test]
    fn full_exchange_is_one_round() {
        let mut net = NetSim::new(3);
        let payloads: Vec<Option<Vec<Word>>> = (0..8).map(|i| Some(vec![i as Word])).collect();
        let inbox = net.exchange(1, payloads).unwrap();
        for (node, got) in inbox.iter().enumerate() {
            let partner = node ^ 0b010;
            assert_eq!(got.as_ref().unwrap(), &(partner, vec![partner as Word]));
        }
        assert_eq!(net.stats().rounds, 1);
    }

    #[test]
    fn link_loads_track_congestion() {
        let mut net = NetSim::new(2);
        for _ in 0..3 {
            net.round(vec![Send {
                from: 0,
                to: 1,
                payload: vec![1, 2],
            }])
            .unwrap();
        }
        net.round(vec![Send {
            from: 2,
            to: 3,
            payload: vec![9],
        }])
        .unwrap();
        assert_eq!(net.max_link_load(), 6); // link (0, dim 0): 3 rounds × 2 words
        let loads = net.link_loads();
        assert_eq!(loads.len(), 2);
        assert_eq!(
            loads.iter().map(|(_, w)| *w).sum::<u64>(),
            net.stats().word_hops
        );
        net.reset_stats();
        assert_eq!(net.max_link_load(), 0);
    }

    #[test]
    fn empty_round_is_free() {
        let mut net = NetSim::new(2);
        net.round(vec![]).unwrap();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn stats_merge_delta_display() {
        let a = NetStats {
            time: 5,
            rounds: 2,
            messages: 3,
            word_hops: 7,
        };
        let b = NetStats {
            time: 1,
            rounds: 1,
            messages: 1,
            word_hops: 2,
        };
        let m = a.merge(&b);
        assert_eq!(
            m,
            NetStats {
                time: 6,
                rounds: 3,
                messages: 4,
                word_hops: 9
            }
        );
        assert_eq!(m.delta(&b), a);
        // Broken snapshot ordering saturates instead of panicking.
        assert_eq!(b.delta(&m), NetStats::default());
        assert_eq!(a.to_string(), "time=5 rounds=2 messages=3 word_hops=7");
        use obs::Recorder;
        assert_eq!(a.family(), "hypercube.net");
        assert_eq!(a.fields()[3], ("word_hops", 7));
    }
}
