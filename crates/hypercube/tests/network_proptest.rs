//! Property-based tests of the network substrate: routing delivers any
//! multiset of packets, prefixes match sequential oracles for arbitrary
//! (including non-commutative) operators, collectives agree with direct
//! computation, and the sort handles arbitrary inputs — all while the
//! engine enforces single-port legality on every round.

#![allow(clippy::unwrap_used)] // test code: panics are the failure mode

use hypercube::collectives::{all_reduce, broadcast, gather, reduce};
use hypercube::prefix::{hamiltonian_prefix, hamiltonian_prefix_cyclic};
use hypercube::routing::{route, Packet};
use hypercube::sort::bitonic_sort;
use hypercube::{NetSim, Word};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary many-to-many packet sets all arrive, in source order per
    /// destination queue discipline.
    #[test]
    fn routing_delivers_arbitrary_traffic(
        q in 1usize..5,
        pairs in proptest::collection::vec((any::<u16>(), any::<u16>(), -100i64..100), 0..64),
    ) {
        let n = 1usize << q;
        let mut net = NetSim::new(q);
        let packets: Vec<Packet> = pairs
            .iter()
            .map(|&(s, d, k)| Packet {
                src: s as usize % n,
                dst: d as usize % n,
                payload: vec![k],
            })
            .collect();
        let total = packets.len();
        let delivered = route(&mut net, packets.clone()).unwrap();
        prop_assert_eq!(delivered.iter().map(|v| v.len()).sum::<usize>(), total);
        // Every (dst, payload) multiset matches.
        for (node, del) in delivered.iter().enumerate() {
            let mut got: Vec<i64> = del.iter().map(|p| p.payload[0]).collect();
            let mut want: Vec<i64> = packets
                .iter()
                .filter(|p| p.dst == node)
                .map(|p| p.payload[0])
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Hamiltonian prefix equals the sequential scan for the non-commutative
    /// "overwrite-unless-identity" operator on arbitrary values.
    #[test]
    fn prefix_matches_oracle_noncommutative(
        q in 0usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let p = 1usize << q;
        let values: Vec<Vec<Word>> = (0..p)
            .map(|_| vec![if rng.gen_bool(0.4) { rng.gen_range(1..100) } else { 0 }])
            .collect();
        let op = |a: &[Word], b: &[Word]| -> Vec<Word> {
            if b[0] == 0 { a.to_vec() } else { b.to_vec() }
        };
        let mut net = NetSim::new(q);
        let got = hamiltonian_prefix(&mut net, &values, op).unwrap();
        let mut acc = vec![0];
        for (r, t) in got.iter().enumerate() {
            acc = op(&acc, &values[r]);
            prop_assert_eq!(t, &acc);
        }
    }

    /// Cyclic prefix over ragged lengths equals the oracle.
    #[test]
    fn cyclic_prefix_matches_oracle(
        q in 0usize..4,
        m in 0usize..70,
    ) {
        let elements: Vec<Vec<Word>> = (0..m).map(|i| vec![(i * i % 31) as Word]).collect();
        let mut net = NetSim::new(q);
        let got = hamiltonian_prefix_cyclic(&mut net, &elements, &[0], |a, b| {
            vec![a[0] + b[0]]
        })
        .unwrap();
        let mut acc = 0;
        prop_assert_eq!(got.len(), m);
        for (i, t) in got.iter().enumerate() {
            acc += elements[i][0];
            prop_assert_eq!(t[0], acc);
        }
    }

    /// Broadcast/reduce/all-reduce/gather agree with direct computation for
    /// arbitrary roots and values.
    #[test]
    fn collectives_match_direct_computation(
        q in 0usize..5,
        root_sel in any::<u16>(),
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1usize << q;
        let root = root_sel as usize % n;
        let values: Vec<Vec<Word>> = (0..n).map(|_| vec![rng.gen_range(-50..50)]).collect();
        let sum: Word = values.iter().map(|v| v[0]).sum();

        let mut net = NetSim::new(q);
        let out = broadcast(&mut net, root, vec![99]).unwrap();
        prop_assert!(out.iter().all(|p| p == &vec![99]));

        let mut net = NetSim::new(q);
        let total = reduce(&mut net, root, values.clone(), |a, b| vec![a[0] + b[0]]).unwrap();
        prop_assert_eq!(total[0], sum);

        let mut net = NetSim::new(q);
        let all = all_reduce(&mut net, values.clone(), |a, b| vec![a[0] + b[0]]).unwrap();
        prop_assert!(all.iter().all(|v| v[0] == sum));

        let mut net = NetSim::new(q);
        let gathered = gather(&mut net, root, values.clone()).unwrap();
        let mut got: Vec<Word> = gathered.iter().map(|(_, p)| p[0]).collect();
        let mut want: Vec<Word> = values.iter().map(|v| v[0]).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Bitonic sort equals `sort_unstable` on arbitrary inputs and sizes.
    #[test]
    fn bitonic_matches_std_sort(
        q in 0usize..5,
        keys in proptest::collection::vec(-1000i64..1000, 0..120),
    ) {
        let mut net = NetSim::new(q);
        let got = bitonic_sort(&mut net, &keys).unwrap();
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
