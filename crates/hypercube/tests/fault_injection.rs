//! Fault-injection integration tests: every [`NetError`] variant provoked
//! through [`FaultyNet`], and the retry protocol proven to converge (and to
//! replay deterministically) under the high-level algorithms —
//! `hamiltonian_prefix` and `bitonic_sort` under message-drop plans.

#![allow(clippy::unwrap_used)] // test code: panics are the failure mode

use hypercube::collectives::{all_reduce, broadcast, gather, reduce};
use hypercube::prefix::hamiltonian_prefix;
use hypercube::routing::{route, Packet};
use hypercube::sort::bitonic_sort;
use hypercube::{FailStop, FaultPlan, FaultyNet, NetError, Network, Send};

/// A plan that is *active* (so every send goes through the reliable-round
/// protocol) but injects nothing: duplicate probability 0 would deactivate
/// it, so it carries a fail-stop scheduled far beyond any test's horizon.
fn active_but_quiet(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed).with_fail_stop(0, u64::MAX - 1, 1)
}

// ---------------------------------------------------------------- variants

#[test]
fn bad_node_through_faulty_net() {
    let mut net = FaultyNet::new(2, active_but_quiet(1));
    let err = net.round(vec![Send {
        from: 0,
        to: 9,
        payload: vec![1],
    }]);
    assert_eq!(err, Err(NetError::BadNode { node: 9, size: 4 }));
}

#[test]
fn not_adjacent_through_faulty_net() {
    let mut net = FaultyNet::new(2, active_but_quiet(2));
    let err = net.round(vec![Send {
        from: 0,
        to: 3,
        payload: vec![1],
    }]);
    assert_eq!(err, Err(NetError::NotAdjacent { from: 0, to: 3 }));
}

#[test]
fn multi_send_through_faulty_net() {
    let mut net = FaultyNet::new(2, active_but_quiet(3));
    let err = net.round(vec![
        Send {
            from: 0,
            to: 1,
            payload: vec![1],
        },
        Send {
            from: 0,
            to: 2,
            payload: vec![2],
        },
    ]);
    assert_eq!(err, Err(NetError::MultiSend { node: 0 }));
}

#[test]
fn multi_receive_through_faulty_net() {
    let mut net = FaultyNet::new(2, active_but_quiet(4));
    let err = net.round(vec![
        Send {
            from: 1,
            to: 0,
            payload: vec![1],
        },
        Send {
            from: 2,
            to: 0,
            payload: vec![2],
        },
    ]);
    assert_eq!(err, Err(NetError::MultiReceive { node: 0 }));
}

#[test]
fn timeout_through_faulty_net() {
    // Every data message dropped, tiny retry budget: the budget exhausts
    // and the error carries the attempt count (initial send + retries).
    let plan = FaultPlan::seeded(5).with_drop(1.0).with_retries(3);
    let mut net = FaultyNet::new(2, plan);
    let err = net.round(vec![Send {
        from: 0,
        to: 1,
        payload: vec![42],
    }]);
    assert_eq!(
        err,
        Err(NetError::Timeout {
            node: 1,
            attempts: 4
        })
    );
}

#[test]
fn corrupt_through_faulty_net() {
    // Every payload bit-flipped in flight: the CRC rejects each copy and
    // the retry budget exhausts with a Corrupt report for the receiver.
    let plan = FaultPlan::seeded(6).with_corrupt(1.0).with_retries(3);
    let mut net = FaultyNet::new(2, plan);
    let err = net.round(vec![Send {
        from: 0,
        to: 1,
        payload: vec![42],
    }]);
    assert_eq!(err, Err(NetError::Corrupt { node: 1 }));
}

#[test]
fn dead_through_faulty_net() {
    let plan = FaultPlan::seeded(7)
        .with_retries(2)
        .with_fail_stop(1, 0, FailStop::PERMANENT);
    let mut net = FaultyNet::new(2, plan);
    assert!(!net.is_alive(1));
    let err = net.round(vec![Send {
        from: 0,
        to: 1,
        payload: vec![42],
    }]);
    assert_eq!(err, Err(NetError::Dead { node: 1 }));
}

// ------------------------------------------------------- retry convergence

/// Drop plan aggressive enough to hit single messages constantly but with a
/// budget that always converges.
fn droppy(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed).with_drop(0.25).with_retries(64)
}

#[test]
fn hamiltonian_prefix_converges_under_drops_and_replays() {
    let run = |seed: u64| {
        let mut net = FaultyNet::new(3, droppy(seed));
        let values: Vec<Vec<i64>> = (0..8).map(|i| vec![i + 1]).collect();
        let out = hamiltonian_prefix(&mut net, &values, |a, b| vec![a[0] + b[0]])
            .expect("retries must absorb a 0.25 drop rate");
        (out, net.stats())
    };
    let (out, stats) = run(11);
    let expected: Vec<Vec<i64>> = (0..8).map(|i| vec![(i + 1) * (i + 2) / 2]).collect();
    assert_eq!(out, expected, "prefix sums survive the drops");
    assert!(stats.retries > 0, "a 0.25 drop rate must cost retries");
    // Deterministic replay: same seed, same answer, same ledger.
    let (out2, stats2) = run(11);
    assert_eq!(out, out2);
    assert_eq!(stats, stats2);
    // A different seed converges too (different ledger is likely but not
    // guaranteed, so only convergence is asserted).
    let (out3, _) = run(12);
    assert_eq!(out, out3);
}

#[test]
fn bitonic_sort_converges_under_drops_and_replays() {
    let keys: Vec<i64> = vec![9, -3, 7, 7, 0, -8, 5, 2];
    let mut expected = keys.clone();
    expected.sort_unstable();
    let run = |seed: u64| {
        let mut net = FaultyNet::new(3, droppy(seed));
        let out = bitonic_sort(&mut net, &keys).expect("retries must absorb drops");
        (out, net.stats())
    };
    let (out, stats) = run(21);
    assert_eq!(out, expected);
    assert!(stats.retries > 0);
    let (out2, stats2) = run(21);
    assert_eq!(out, out2);
    assert_eq!(stats, stats2);
}

#[test]
fn collectives_converge_under_drops() {
    let mut net = FaultyNet::new(3, droppy(31));
    let copies = broadcast(&mut net, 5, vec![17, 23]).expect("broadcast");
    assert!(copies.iter().all(|c| c == &[17, 23]));

    let values: Vec<Vec<i64>> = (0..8).map(|i| vec![i]).collect();
    let total = reduce(&mut net, 2, values.clone(), |a, b| vec![a[0] + b[0]]).expect("reduce");
    assert_eq!(total, vec![28]);

    let everywhere =
        all_reduce(&mut net, values.clone(), |a, b| vec![a[0] + b[0]]).expect("all_reduce");
    assert!(everywhere.iter().all(|v| v == &[28]));

    let at_root = gather(&mut net, 0, values).expect("gather");
    assert_eq!(
        at_root,
        (0..8).map(|i| (i as usize, vec![i])).collect::<Vec<_>>()
    );
    assert!(net.stats().retries > 0);
}

#[test]
fn routing_converges_under_drops_duplicates_and_delays() {
    let plan = FaultPlan::seeded(41)
        .with_drop(0.2)
        .with_duplicate(0.2)
        .with_delay(0.2)
        .with_retries(64);
    let mut net = FaultyNet::new(3, plan);
    let packets: Vec<Packet> = (0..8)
        .map(|src| Packet {
            src,
            dst: 7 - src,
            payload: vec![100 + src as i64],
        })
        .collect();
    let delivered = route(&mut net, packets).expect("route");
    for (dst, got) in delivered.iter().enumerate() {
        assert_eq!(got.len(), 1, "exactly one packet lands at {dst}");
        assert_eq!(got[0].payload, vec![100 + (7 - dst) as i64]);
    }
    let stats = net.stats();
    assert!(stats.retries > 0);
    assert!(
        stats.redeliveries > 0,
        "a 0.2 duplicate rate must hit the dedup path"
    );
}

#[test]
fn route_steers_around_a_dead_intermediate() {
    // 0 → 7 in a Q_3: the standard e-cube path is 0→1→3→7. Kill node 1
    // permanently; the fault-aware router must take a detour (0→2→3→7 or
    // 0→4→5→7) and still deliver.
    let plan = FaultPlan::seeded(51)
        .with_retries(8)
        .with_fail_stop(1, 0, FailStop::PERMANENT);
    let mut net = FaultyNet::new(3, plan);
    let delivered = route(
        &mut net,
        vec![Packet {
            src: 0,
            dst: 7,
            payload: vec![99],
        }],
    )
    .expect("detour around the dead node");
    assert_eq!(delivered[7].len(), 1);
    assert_eq!(delivered[7][0].payload, vec![99]);
}

#[test]
fn bounded_outage_rides_out_on_retries() {
    // Node 1 is down for a short outage window; the retry backoff outlasts
    // it, so the round succeeds without surfacing an error.
    let plan = FaultPlan::seeded(61)
        .with_retries(12)
        .with_fail_stop(1, 0, 20);
    let mut net = FaultyNet::new(2, plan);
    let inbox = net
        .round(vec![Send {
            from: 0,
            to: 1,
            payload: vec![5],
        }])
        .expect("backoff outlasts a 20-round outage");
    assert_eq!(inbox[1], Some((0, vec![5])));
    assert!(net.stats().retries > 0);
}
