//! Property-based tests of the PRAM machine itself: arbitrary *disjoint*
//! programs always run (and cost exactly what Brent says), arbitrary
//! *colliding* programs are always caught, and the write-commit semantics
//! (pre-step reads, post-step writes) hold for any access pattern.

use pram::{Cost, Model, Pram, PramError, Word};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A per-processor-disjoint program (processor i touches only cell i)
    /// is legal under every model and costs ceil(n/p) time, n work.
    #[test]
    fn disjoint_programs_always_run(
        n in 1usize..200,
        p in 1usize..17,
        deltas in proptest::collection::vec(-50i64..50, 1..200),
    ) {
        for model in [Model::Erew, Model::Crew, Model::CrcwCommon, Model::CrcwArbitrary] {
            let mut m = Pram::new(model, p);
            let a = m.alloc(n, 7);
            m.reset_cost();
            m.par_for(n, |i, ctx| {
                let v = ctx.read(a + i)?;
                ctx.write(a + i, v + deltas[i % deltas.len()])
            })
            .unwrap();
            for i in 0..n {
                prop_assert_eq!(m.host_read(a + i), 7 + deltas[i % deltas.len()]);
            }
            prop_assert_eq!(
                m.cost(),
                Cost { time: n.div_ceil(p) as u64, work: n as u64 }
            );
        }
    }

    /// Any program in which two distinct processors touch one shared cell is
    /// rejected under EREW, whatever the access kinds.
    #[test]
    fn erew_catches_any_collision(
        p in 2usize..9,
        shared in 0usize..8,
        kinds in proptest::collection::vec(any::<bool>(), 2..9),
    ) {
        let mut m = Pram::new(Model::Erew, p);
        let a = m.alloc(8, 0);
        let colliders = kinds.len().min(p);
        let err = m.step(colliders, |pid, ctx| {
            if kinds[pid] {
                ctx.read(a + shared).map(|_| ())
            } else {
                ctx.write(a + shared, pid as Word)
            }
        });
        if colliders >= 2 {
            prop_assert!(err.is_err());
            let e = err.unwrap_err();
            let is_collision = matches!(
                e,
                PramError::ReadConflict { .. }
                    | PramError::WriteConflict { .. }
                    | PramError::ReadWriteConflict { .. }
            );
            prop_assert!(is_collision, "unexpected error kind");
        }
    }

    /// Reads always observe the pre-step image regardless of write pattern.
    #[test]
    fn reads_are_pre_step_for_any_rotation(
        p in 1usize..9,
        init in proptest::collection::vec(-100i64..100, 1..9),
    ) {
        // Processor i reads cell i and writes cell (i+1) mod n — a rotation.
        // Legal under EREW only if n > 1 (no self-collision), and every read
        // must see the ORIGINAL value even though the cell is written in the
        // same step by another processor... which would be an EREW R/W
        // conflict; so run under CRCW-arbitrary where it is legal.
        let n = init.len();
        let mut m = Pram::new(Model::CrcwArbitrary, p.max(n));
        let a = m.alloc_init(&init);
        let out = m.alloc(n, 0);
        m.step(n, |i, ctx| {
            let v = ctx.read(a + i)?;
            ctx.write(out + i, v)?;
            ctx.write(a + (i + 1) % n, v * 10)
        })
        .unwrap();
        for (i, &v) in init.iter().enumerate() {
            prop_assert_eq!(m.host_read(out + i), v, "pre-step read");
            prop_assert_eq!(m.host_read(a + (i + 1) % n), v * 10);
        }
    }

    /// CRCW-common accepts exactly the agreeing-writes programs.
    #[test]
    fn crcw_common_agreement(
        p in 2usize..9,
        value in any::<i32>(),
        disagree in any::<bool>(),
    ) {
        let mut m = Pram::new(Model::CrcwCommon, p);
        let a = m.alloc(1, 0);
        let r = m.step(p, |pid, ctx| {
            let v = if disagree && pid == 1 {
                value as Word + 1
            } else {
                value as Word
            };
            ctx.write(a, v)
        });
        if disagree {
            prop_assert!(r.is_err());
        } else {
            prop_assert!(r.is_ok());
            prop_assert_eq!(m.host_read(a), value as Word);
        }
    }
}
