//! Direct unit coverage for `pram::trace::StepTrace` aggregation
//! (`touched_cells` / `max_accesses_per_proc`), which previously was only
//! exercised indirectly through whole-machine runs.

use pram::trace::{ProcAccess, StepTrace, Trace};
use pram::{Model, Pram};

fn acc(pid: usize, reads: &[usize], writes: &[(usize, i64)]) -> ProcAccess {
    ProcAccess {
        pid,
        reads: reads.to_vec(),
        writes: writes.to_vec(),
    }
}

#[test]
fn empty_step_and_empty_trace() {
    let st = StepTrace::default();
    assert_eq!(st.touched_cells(), 0);
    assert_eq!(st.max_accesses_per_proc(), 0);
    let t = Trace::default();
    assert!(t.steps.is_empty());
    assert_eq!(t.render(), "");
}

#[test]
fn duplicate_addresses_across_read_and_write_sets_count_once() {
    // One processor reads cell 7 and also writes it, plus reads cell 7
    // twice: the cell is *touched* once, but each access still counts
    // toward the per-processor access tally.
    let st = StepTrace {
        phase: "I".into(),
        procs: vec![acc(0, &[7, 7, 3], &[(7, 42)])],
    };
    assert_eq!(st.touched_cells(), 2, "cells {{3, 7}}");
    assert_eq!(st.max_accesses_per_proc(), 4, "3 reads + 1 write");
}

#[test]
fn multi_processor_overlap_dedupes_across_procs() {
    // Three processors touching overlapping cells: {0,1}, {1,2}, {2,0,9}.
    let st = StepTrace {
        phase: "II".into(),
        procs: vec![
            acc(0, &[0], &[(1, -1)]),
            acc(1, &[1], &[(2, -2)]),
            acc(2, &[2, 0], &[(9, -3)]),
        ],
    };
    assert_eq!(st.touched_cells(), 4, "cells {{0, 1, 2, 9}}");
    assert_eq!(st.max_accesses_per_proc(), 3, "proc 2: 2 reads + 1 write");
}

#[test]
fn render_one_line_per_step_with_phase_labels() {
    let t = Trace {
        steps: vec![
            StepTrace {
                phase: "I".into(),
                procs: vec![acc(0, &[1], &[])],
            },
            StepTrace {
                phase: "III".into(),
                procs: vec![acc(0, &[], &[(5, 9)]), acc(1, &[5], &[])],
            },
        ],
    };
    let out = t.render();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("[I]") && lines[0].contains("active=1"));
    assert!(lines[1].contains("[III]") && lines[1].contains("active=2"));
    assert!(lines[1].contains("cells=1"), "both procs touch only cell 5");
}

#[test]
fn machine_trace_matches_direct_aggregation() {
    // End-to-end: a CREW program whose every processor reads the same cell
    // and writes its own — the trace must show the overlap collapsing in
    // touched_cells and a per-proc access count of 2.
    let mut m = Pram::new(Model::Crew, 4);
    let shared = m.alloc(1, 7);
    let out = m.alloc(4, 0);
    m.par_for(4, |i, ctx| {
        let v = ctx.read(shared)?;
        ctx.write(out + i, v + i as i64)
    })
    .map_err(|e| panic!("unexpected conflict: {e:?}"))
    .ok();
    // No trace enabled: nothing recorded.
    assert!(m.trace().is_none());

    let mut m = Pram::new(Model::Crew, 4);
    m.enable_trace();
    let shared = m.alloc(1, 7);
    let out = m.alloc(4, 0);
    m.par_for(4, |i, ctx| {
        let v = ctx.read(shared)?;
        ctx.write(out + i, v + i as i64)
    })
    .unwrap();
    let t = m.trace().expect("tracing on");
    assert_eq!(t.steps.len(), 1);
    let st = &t.steps[0];
    assert_eq!(st.procs.len(), 4);
    // 1 shared read cell + 4 distinct write cells.
    assert_eq!(st.touched_cells(), 5);
    assert_eq!(st.max_accesses_per_proc(), 2);
}
