//! Errors a PRAM program can commit.

use std::fmt;

use crate::machine::Model;

/// An illegal action by a PRAM program. Any of these aborts the run: a PRAM
/// algorithm is only correct for a model if it never provokes one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PramError {
    /// Two processors read the same cell in one step under EREW.
    ReadConflict {
        /// Conflicting address.
        addr: usize,
        /// The two (of possibly more) colliding processors.
        pids: (usize, usize),
    },
    /// A cell was both read and written (by different processors) in one step
    /// under EREW or CREW.
    ReadWriteConflict {
        /// Conflicting address.
        addr: usize,
        /// Reader processor.
        reader: usize,
        /// Writer processor.
        writer: usize,
    },
    /// Two processors wrote the same cell in one step and the model forbids it
    /// (EREW/CREW always; CRCW-common when the values differ).
    WriteConflict {
        /// Conflicting address.
        addr: usize,
        /// The two (of possibly more) colliding processors.
        pids: (usize, usize),
        /// Model under which the collision is illegal.
        model: Model,
    },
    /// Access past the end of allocated shared memory.
    OutOfBounds {
        /// Offending address.
        addr: usize,
        /// Current memory size in words.
        size: usize,
    },
    /// A processor exceeded the per-step O(1) access budget.
    AccessBudgetExceeded {
        /// Offending processor.
        pid: usize,
        /// Budget in accesses per step.
        budget: usize,
    },
}

impl fmt::Display for PramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PramError::ReadConflict { addr, pids } => write!(
                f,
                "EREW read conflict at cell {addr} between P{} and P{}",
                pids.0, pids.1
            ),
            PramError::ReadWriteConflict {
                addr,
                reader,
                writer,
            } => write!(
                f,
                "read/write conflict at cell {addr}: P{reader} reads while P{writer} writes"
            ),
            PramError::WriteConflict { addr, pids, model } => write!(
                f,
                "write conflict at cell {addr} between P{} and P{} under {model:?}",
                pids.0, pids.1
            ),
            PramError::OutOfBounds { addr, size } => {
                write!(f, "address {addr} out of bounds (memory size {size})")
            }
            PramError::AccessBudgetExceeded { pid, budget } => {
                write!(f, "P{pid} exceeded the {budget}-access-per-step budget")
            }
        }
    }
}

impl std::error::Error for PramError {}
