//! The simulated machine: shared memory, synchronous steps, conflict rules.

use crate::cost::{Cost, PhaseCost};
use crate::error::PramError;

/// The machine word. Keys, pointers, booleans and counters are all words, as
/// on the abstract PRAM.
pub type Word = i64;

/// Shared-memory address (word index).
pub type Addr = usize;

/// The nil pointer: the paper's `nil` for absent trees/children/parents.
pub const NIL: Word = -1;

/// Per-processor, per-step access budget enforcing the O(1) rule.
pub const ACCESS_BUDGET: usize = 64;

/// PRAM sub-model, ordered weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Exclusive read, exclusive write.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent read, concurrent write — writers must agree on the value.
    CrcwCommon,
    /// Concurrent read, concurrent write — an arbitrary writer wins (here:
    /// the lowest processor id, for determinism).
    CrcwArbitrary,
}

/// A processor's view of one synchronous step: reads come from the pre-step
/// memory image, writes are buffered until the step completes.
pub struct Ctx<'a> {
    mem: &'a [Word],
    pid: usize,
    accesses: usize,
    reads: Vec<Addr>,
    writes: Vec<(Addr, Word)>,
}

impl<'a> Ctx<'a> {
    fn new(mem: &'a [Word], pid: usize) -> Self {
        Ctx {
            mem,
            pid,
            accesses: 0,
            reads: Vec::with_capacity(4),
            writes: Vec::with_capacity(2),
        }
    }

    /// This processor's id within the step.
    pub fn pid(&self) -> usize {
        self.pid
    }

    fn budget(&mut self) -> Result<(), PramError> {
        self.accesses += 1;
        if self.accesses > ACCESS_BUDGET {
            return Err(PramError::AccessBudgetExceeded {
                pid: self.pid,
                budget: ACCESS_BUDGET,
            });
        }
        Ok(())
    }

    /// Read a shared-memory cell (pre-step value).
    pub fn read(&mut self, addr: Addr) -> Result<Word, PramError> {
        self.budget()?;
        let w = *self.mem.get(addr).ok_or(PramError::OutOfBounds {
            addr,
            size: self.mem.len(),
        })?;
        self.reads.push(addr);
        Ok(w)
    }

    /// Buffer a write; it lands when the step commits. If the same processor
    /// writes a cell twice in one step, the last value wins.
    pub fn write(&mut self, addr: Addr, value: Word) -> Result<(), PramError> {
        self.budget()?;
        if addr >= self.mem.len() {
            return Err(PramError::OutOfBounds {
                addr,
                size: self.mem.len(),
            });
        }
        self.writes.push((addr, value));
        Ok(())
    }
}

/// The PRAM machine: model + processor count + shared memory + cost meters.
pub struct Pram {
    model: Model,
    p: usize,
    mem: Vec<Word>,
    cost: Cost,
    phases: PhaseCost,
    current_phase: String,
    trace: Option<crate::trace::Trace>,
}

impl Pram {
    /// A machine with `p` processors and empty memory.
    pub fn new(model: Model, p: usize) -> Self {
        assert!(p >= 1, "a PRAM needs at least one processor");
        Pram {
            model,
            p,
            mem: Vec::new(),
            cost: Cost::ZERO,
            phases: PhaseCost::new(),
            current_phase: "setup".to_string(),
            trace: None,
        }
    }

    /// Start recording per-step access traces (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(crate::trace::Trace::default());
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        self.trace.as_ref()
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The configured model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Accumulated cost so far.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Per-phase breakdown.
    pub fn phases(&self) -> &PhaseCost {
        &self.phases
    }

    /// Zero the meters (memory is untouched).
    pub fn reset_cost(&mut self) {
        self.cost = Cost::ZERO;
        self.phases = PhaseCost::new();
    }

    /// Label subsequent steps for the per-phase breakdown.
    pub fn phase(&mut self, label: &str) {
        self.current_phase = label.to_string();
    }

    // ---- host (front-end) memory management: free, not part of the cost ----

    /// Allocate `len` words initialised to `init`; returns the base address.
    pub fn alloc(&mut self, len: usize, init: Word) -> Addr {
        let base = self.mem.len();
        self.mem.resize(base + len, init);
        base
    }

    /// Allocate and copy `data`; returns the base address.
    pub fn alloc_init(&mut self, data: &[Word]) -> Addr {
        let base = self.mem.len();
        self.mem.extend_from_slice(data);
        base
    }

    /// Host read (I/O, outside the simulated computation).
    pub fn host_read(&self, addr: Addr) -> Word {
        self.mem[addr]
    }

    /// Host write (I/O: initial placement of the input).
    pub fn host_write(&mut self, addr: Addr, value: Word) {
        self.mem[addr] = value;
    }

    /// Host view of a memory region.
    pub fn host_slice(&self, base: Addr, len: usize) -> &[Word] {
        &self.mem[base..base + len]
    }

    /// Memory size in words.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }

    // ---- the synchronous step ----

    /// Run one synchronous step with processors `0..active` (`active <= p`).
    /// All reads observe the pre-step memory; writes commit together at the
    /// end after model-specific conflict checking.
    pub fn step<F>(&mut self, active: usize, mut body: F) -> Result<(), PramError>
    where
        F: FnMut(usize, &mut Ctx) -> Result<(), PramError>,
    {
        assert!(
            active <= self.p,
            "step activated {active} processors on a {}-processor machine",
            self.p
        );
        if active == 0 {
            return Ok(());
        }
        let mut reads: Vec<(Addr, usize)> = Vec::new();
        let mut writes: Vec<(Addr, usize, Word)> = Vec::new();
        let mut step_trace = self.trace.as_ref().map(|_| crate::trace::StepTrace {
            phase: self.current_phase.clone(),
            procs: Vec::with_capacity(active),
        });
        for pid in 0..active {
            let mut ctx = Ctx::new(&self.mem, pid);
            body(pid, &mut ctx)?;
            // Deduplicate per-pid repeated reads of one cell (legal: it is
            // the processor's own register reuse) and keep the last write per
            // cell per pid.
            ctx.reads.sort_unstable();
            ctx.reads.dedup();
            reads.extend(ctx.reads.iter().map(|&a| (a, pid)));
            let mut last: Vec<(Addr, Word)> = Vec::with_capacity(ctx.writes.len());
            for (a, w) in ctx.writes {
                if let Some(e) = last.iter_mut().find(|(ea, _)| *ea == a) {
                    e.1 = w;
                } else {
                    last.push((a, w));
                }
            }
            if let Some(t) = step_trace.as_mut() {
                t.procs.push(crate::trace::ProcAccess {
                    pid,
                    reads: ctx.reads.clone(),
                    writes: last.clone(),
                });
            }
            writes.extend(last.into_iter().map(|(a, w)| (a, pid, w)));
        }
        self.check_conflicts(&mut reads, &mut writes)?;
        // Commit; under CRCW-arbitrary the lowest pid wins on collisions
        // (writes are sorted by (addr, pid): apply in reverse so the lowest
        // pid's value lands last).
        if self.model == Model::CrcwArbitrary {
            for (addr, _, w) in writes.into_iter().rev() {
                self.mem[addr] = w;
            }
        } else {
            for (addr, _, w) in writes {
                self.mem[addr] = w;
            }
        }
        if let (Some(trace), Some(st)) = (self.trace.as_mut(), step_trace) {
            trace.steps.push(st);
        }
        let c = Cost::step(active);
        self.cost += c;
        self.phases.charge(&self.current_phase, c);
        Ok(())
    }

    fn check_conflicts(
        &self,
        reads: &mut [(Addr, usize)],
        writes: &mut [(Addr, usize, Word)],
    ) -> Result<(), PramError> {
        reads.sort_unstable();
        writes.sort_unstable();

        // Write/write conflicts.
        for pair in writes.windows(2) {
            let (a0, p0, w0) = pair[0];
            let (a1, p1, w1) = pair[1];
            if a0 == a1 && p0 != p1 {
                match self.model {
                    Model::Erew | Model::Crew => {
                        return Err(PramError::WriteConflict {
                            addr: a0,
                            pids: (p0, p1),
                            model: self.model,
                        })
                    }
                    Model::CrcwCommon => {
                        if w0 != w1 {
                            return Err(PramError::WriteConflict {
                                addr: a0,
                                pids: (p0, p1),
                                model: self.model,
                            });
                        }
                    }
                    Model::CrcwArbitrary => {}
                }
            }
        }

        // Read/read conflicts (EREW only).
        if self.model == Model::Erew {
            for pair in reads.windows(2) {
                let (a0, p0) = pair[0];
                let (a1, p1) = pair[1];
                if a0 == a1 && p0 != p1 {
                    return Err(PramError::ReadConflict {
                        addr: a0,
                        pids: (p0, p1),
                    });
                }
            }
        }

        // Read/write conflicts (EREW and CREW): another processor reading a
        // cell some processor writes this step.
        if matches!(self.model, Model::Erew | Model::Crew) {
            let mut wi = 0;
            for &(raddr, rpid) in reads.iter() {
                while wi < writes.len() && writes[wi].0 < raddr {
                    wi += 1;
                }
                let mut j = wi;
                while j < writes.len() && writes[j].0 == raddr {
                    if writes[j].1 != rpid {
                        return Err(PramError::ReadWriteConflict {
                            addr: raddr,
                            reader: rpid,
                            writer: writes[j].1,
                        });
                    }
                    j += 1;
                }
            }
        }
        Ok(())
    }

    /// Brent-scheduled data-parallel loop: apply `body` to items `0..n` using
    /// the machine's `p` processors, `⌈n/p⌉` synchronous steps. In round `r`,
    /// processor `q` handles item `r·p + q`.
    pub fn par_for<F>(&mut self, n: usize, mut body: F) -> Result<(), PramError>
    where
        F: FnMut(usize, &mut Ctx) -> Result<(), PramError>,
    {
        let p = self.p;
        let mut done = 0;
        while done < n {
            let active = (n - done).min(p);
            let base = done;
            self.step(active, |pid, ctx| body(base + pid, ctx))?;
            done += active;
        }
        Ok(())
    }

    /// A purely sequential step on processor 0 (time 1, work 1).
    pub fn solo<F>(&mut self, body: F) -> Result<(), PramError>
    where
        F: FnOnce(&mut Ctx) -> Result<(), PramError>,
    {
        let mut once = Some(body);
        self.step(1, |_pid, ctx| (once.take().expect("runs once"))(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_pre_step_values() {
        let mut m = Pram::new(Model::Erew, 1);
        let a = m.alloc_init(&[10]);
        m.solo(|ctx| {
            let before = ctx.read(a)?;
            assert_eq!(before, 10);
            ctx.write(a, 99)?;
            // The write is buffered: a re-read in the same step still sees 10.
            let during = ctx.read(a)?;
            assert_eq!(during, 10);
            Ok(())
        })
        .unwrap();
        assert_eq!(m.host_read(a), 99);
        assert_eq!(m.cost(), Cost { time: 1, work: 1 });
    }

    #[test]
    fn parallel_swap_needs_two_erew_steps() {
        // The one-step cross swap is an EREW read/write conflict; the legal
        // schedule stages through scratch cells in two steps.
        let mut m = Pram::new(Model::Erew, 2);
        let a = m.alloc_init(&[10, 20]);
        let tmp = m.alloc(2, 0);
        m.step(2, |pid, ctx| {
            let v = ctx.read(a + pid)?;
            ctx.write(tmp + 1 - pid, v)
        })
        .unwrap();
        m.step(2, |pid, ctx| {
            let v = ctx.read(tmp + pid)?;
            ctx.write(a + pid, v)
        })
        .unwrap();
        assert_eq!(m.host_slice(a, 2), &[20, 10]);
        assert_eq!(m.cost(), Cost { time: 2, work: 4 });
    }

    #[test]
    fn erew_detects_read_conflict() {
        let mut m = Pram::new(Model::Erew, 2);
        let a = m.alloc(1, 7);
        let err = m.step(2, |_pid, ctx| ctx.read(a).map(|_| ())).unwrap_err();
        assert!(matches!(err, PramError::ReadConflict { .. }));
    }

    #[test]
    fn crew_allows_concurrent_reads() {
        let mut m = Pram::new(Model::Crew, 8);
        let a = m.alloc(1, 7);
        let out = m.alloc(8, 0);
        m.step(8, |pid, ctx| {
            let v = ctx.read(a)?;
            ctx.write(out + pid, v)
        })
        .unwrap();
        assert!(m.host_slice(out, 8).iter().all(|&w| w == 7));
    }

    #[test]
    fn crew_detects_write_conflict() {
        let mut m = Pram::new(Model::Crew, 2);
        let a = m.alloc(1, 0);
        let err = m.step(2, |_pid, ctx| ctx.write(a, 1)).unwrap_err();
        assert!(matches!(err, PramError::WriteConflict { .. }));
    }

    #[test]
    fn crcw_common_accepts_agreeing_writes_rejects_disagreeing() {
        let mut m = Pram::new(Model::CrcwCommon, 4);
        let a = m.alloc(1, 0);
        m.step(4, |_pid, ctx| ctx.write(a, 9)).unwrap();
        assert_eq!(m.host_read(a), 9);
        let err = m.step(2, |pid, ctx| ctx.write(a, pid as Word)).unwrap_err();
        assert!(matches!(err, PramError::WriteConflict { .. }));
    }

    #[test]
    fn erew_detects_read_write_conflict() {
        let mut m = Pram::new(Model::Erew, 2);
        let a = m.alloc(1, 0);
        let err = m
            .step(2, |pid, ctx| {
                if pid == 0 {
                    ctx.read(a).map(|_| ())
                } else {
                    ctx.write(a, 5)
                }
            })
            .unwrap_err();
        assert!(matches!(err, PramError::ReadWriteConflict { .. }));
    }

    #[test]
    fn same_pid_may_read_and_write_its_own_cell() {
        let mut m = Pram::new(Model::Erew, 3);
        let a = m.alloc(3, 1);
        m.step(3, |pid, ctx| {
            let v = ctx.read(a + pid)?;
            ctx.write(a + pid, v * 2)
        })
        .unwrap();
        assert_eq!(m.host_slice(a, 3), &[2, 2, 2]);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut m = Pram::new(Model::Erew, 1);
        let err = m.solo(|ctx| ctx.read(99).map(|_| ())).unwrap_err();
        assert!(matches!(err, PramError::OutOfBounds { .. }));
    }

    #[test]
    fn access_budget_enforced() {
        let mut m = Pram::new(Model::Erew, 1);
        let a = m.alloc(ACCESS_BUDGET + 2, 0);
        let err = m
            .solo(|ctx| {
                for i in 0..=ACCESS_BUDGET {
                    ctx.read(a + i)?;
                }
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, PramError::AccessBudgetExceeded { .. }));
    }

    #[test]
    fn par_for_costs_ceil_n_over_p() {
        let mut m = Pram::new(Model::Erew, 4);
        let a = m.alloc(10, 0);
        m.par_for(10, |i, ctx| ctx.write(a + i, i as Word)).unwrap();
        assert_eq!(m.host_slice(a, 10), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        // ceil(10/4) = 3 steps; work = 10 active processor-steps.
        assert_eq!(m.cost(), Cost { time: 3, work: 10 });
    }

    #[test]
    fn phase_breakdown_accumulates() {
        let mut m = Pram::new(Model::Erew, 2);
        let a = m.alloc(4, 0);
        m.phase("write");
        m.par_for(4, |i, ctx| ctx.write(a + i, 1)).unwrap();
        m.phase("read");
        m.par_for(4, |i, ctx| ctx.read(a + i).map(|_| ())).unwrap();
        let phases = m.phases().entries();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "write");
        assert_eq!(phases[0].1, Cost { time: 2, work: 4 });
        assert_eq!(m.phases().total(), m.cost());
    }

    #[test]
    fn zero_active_step_is_free() {
        let mut m = Pram::new(Model::Erew, 2);
        m.step(0, |_, _| Ok(())).unwrap();
        assert_eq!(m.cost(), Cost::ZERO);
    }

    #[test]
    fn double_write_same_pid_last_wins() {
        let mut m = Pram::new(Model::Erew, 1);
        let a = m.alloc(1, 0);
        m.solo(|ctx| {
            ctx.write(a, 1)?;
            ctx.write(a, 2)
        })
        .unwrap();
        assert_eq!(m.host_read(a), 2);
    }
}

#[cfg(test)]
mod model_and_trace_tests {
    use super::*;

    #[test]
    fn crcw_arbitrary_lowest_pid_wins() {
        let mut m = Pram::new(Model::CrcwArbitrary, 4);
        let a = m.alloc(1, 0);
        m.step(4, |pid, ctx| ctx.write(a, 10 + pid as Word))
            .unwrap();
        assert_eq!(m.host_read(a), 10);
    }

    #[test]
    fn crcw_arbitrary_allows_read_during_write() {
        let mut m = Pram::new(Model::CrcwArbitrary, 2);
        let a = m.alloc(1, 7);
        let out = m.alloc(1, 0);
        m.step(2, |pid, ctx| {
            if pid == 0 {
                let v = ctx.read(a)?;
                ctx.write(out, v)
            } else {
                ctx.write(a, 99)
            }
        })
        .unwrap();
        // Reads observe pre-step memory.
        assert_eq!(m.host_read(out), 7);
        assert_eq!(m.host_read(a), 99);
    }

    #[test]
    fn trace_records_phases_and_accesses() {
        let mut m = Pram::new(Model::Erew, 2);
        m.enable_trace();
        let a = m.alloc(4, 1);
        m.phase("double");
        m.par_for(4, |i, ctx| {
            let v = ctx.read(a + i)?;
            ctx.write(a + i, 2 * v)
        })
        .unwrap();
        let t = m.trace().expect("tracing on");
        assert_eq!(t.steps.len(), 2); // ceil(4/2) steps
        assert!(t.steps.iter().all(|s| s.phase == "double"));
        assert!(t.steps.iter().all(|s| s.max_accesses_per_proc() == 2));
        assert_eq!(t.steps[0].touched_cells(), 2);
        let rendered = t.render();
        assert!(rendered.contains("step    0 [double] active=2"));
    }

    #[test]
    fn trace_is_off_by_default() {
        let mut m = Pram::new(Model::Erew, 1);
        let a = m.alloc(1, 0);
        m.solo(|ctx| ctx.write(a, 1)).unwrap();
        assert!(m.trace().is_none());
    }

    #[test]
    fn model_hierarchy_on_three_programs() {
        // A: everyone reads one cell — only EREW objects.
        let read_all = |model: Model| -> Result<(), PramError> {
            let mut m = Pram::new(model, 3);
            let a = m.alloc(1, 5);
            m.step(3, |_pid, ctx| ctx.read(a).map(|_| ()))
        };
        assert!(matches!(
            read_all(Model::Erew),
            Err(PramError::ReadConflict { .. })
        ));
        read_all(Model::Crew).expect("CREW reads concurrently");
        read_all(Model::CrcwCommon).expect("CRCW reads concurrently");
        read_all(Model::CrcwArbitrary).expect("CRCW reads concurrently");

        // B: everyone writes the SAME value — EREW/CREW object, CRCW accepts.
        let write_same = |model: Model| -> Result<(), PramError> {
            let mut m = Pram::new(model, 3);
            let a = m.alloc(1, 0);
            m.step(3, |_pid, ctx| ctx.write(a, 5))
        };
        assert!(matches!(
            write_same(Model::Erew),
            Err(PramError::WriteConflict { .. })
        ));
        assert!(matches!(
            write_same(Model::Crew),
            Err(PramError::WriteConflict { .. })
        ));
        write_same(Model::CrcwCommon).expect("agreeing writes are fine");
        write_same(Model::CrcwArbitrary).expect("any writes are fine");

        // C: everyone writes a DIFFERENT value — only CRCW-arbitrary accepts.
        let write_diff = |model: Model| -> Result<(), PramError> {
            let mut m = Pram::new(model, 3);
            let a = m.alloc(1, 0);
            m.step(3, |pid, ctx| ctx.write(a, pid as Word))
        };
        assert!(write_diff(Model::CrcwCommon).is_err());
        write_diff(Model::CrcwArbitrary).expect("arbitrary resolves the race");
    }
}
