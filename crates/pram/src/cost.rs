//! Time/work accounting — the currencies of Theorems 1–3.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Parallel cost of a (fragment of a) PRAM computation.
///
/// *Time* is the number of synchronous steps executed; *work* is the total
/// number of active processor-steps (the sum over steps of how many processors
/// did something). An algorithm is work-optimal when its work matches the best
/// sequential time bound — for the paper's `Union`, `O(log n)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Synchronous steps.
    pub time: u64,
    /// Active processor-steps.
    pub work: u64,
}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost { time: 0, work: 0 };

    /// Cost of one step with `active` processors.
    pub fn step(active: usize) -> Cost {
        Cost {
            time: 1,
            work: active as u64,
        }
    }

    /// The classical `cost` upper bound: `time × p`.
    pub fn cost_bound(&self, p: usize) -> u64 {
        self.time * p as u64
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            time: self.time + rhs.time,
            work: self.work + rhs.work,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.time += rhs.time;
        self.work += rhs.work;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "time={} work={}", self.time, self.work)
    }
}

impl obs::Recorder for Cost {
    fn family(&self) -> &'static str {
        "pram.cost"
    }
    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![("time", self.time), ("work", self.work)]
    }
}

/// Per-phase cost breakdown, labelled by the host program (e.g. the paper's
/// Phase I/II/III of `Union`).
#[derive(Debug, Clone, Default)]
pub struct PhaseCost {
    entries: Vec<(String, Cost)>,
}

impl PhaseCost {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `cost` to the phase named `label`, merging with an existing
    /// entry of the same name.
    pub fn charge(&mut self, label: &str, cost: Cost) {
        if let Some((_, c)) = self.entries.iter_mut().find(|(l, _)| l == label) {
            *c += cost;
        } else {
            self.entries.push((label.to_string(), cost));
        }
    }

    /// The recorded phases in first-charged order.
    pub fn entries(&self) -> &[(String, Cost)] {
        &self.entries
    }

    /// Total across phases.
    pub fn total(&self) -> Cost {
        self.entries.iter().fold(Cost::ZERO, |acc, (_, c)| acc + *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let a = Cost { time: 3, work: 10 };
        let b = Cost::step(4);
        assert_eq!(a + b, Cost { time: 4, work: 14 });
        assert_eq!((a + b).cost_bound(8), 32);
    }

    #[test]
    fn phase_merging() {
        let mut pc = PhaseCost::new();
        pc.charge("I", Cost { time: 1, work: 2 });
        pc.charge("II", Cost { time: 5, work: 9 });
        pc.charge("I", Cost { time: 2, work: 3 });
        assert_eq!(pc.entries().len(), 2);
        assert_eq!(pc.entries()[0].1, Cost { time: 3, work: 5 });
        assert_eq!(pc.total(), Cost { time: 8, work: 14 });
    }
}
