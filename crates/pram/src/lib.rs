#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # pram — a step-synchronous PRAM simulator
//!
//! The PRAM (parallel random access machine) is the model the paper's
//! Theorems 1 and 2 are stated on. A PRAM is `p` synchronous processors over a
//! shared word-addressed memory; each time step every active processor reads
//! `O(1)` cells, computes, and writes `O(1)` cells, with all reads of a step
//! happening before all writes of that step. The sub-models differ only in
//! which same-step access collisions are legal:
//!
//! * **EREW** — exclusive read, exclusive write: *no* two processors may touch
//!   the same cell in the same step.
//! * **CREW** — concurrent read, exclusive write.
//! * **CRCW (common)** — concurrent writes allowed if all writers agree on the
//!   value.
//!
//! This simulator executes programs literally under those rules:
//!
//! * [`Pram::step`] runs one synchronous step; reads are served from the
//!   pre-step memory image and writes are buffered and applied at the end of
//!   the step.
//! * Every access is recorded; an illegal collision for the configured
//!   [`Model`] aborts the program with a descriptive [`PramError`]. This turns
//!   the paper's "no access conflicts will arise" claims (e.g. Fact 3) into
//!   machine-checked properties.
//! * Per-step access budgets enforce the `O(1)`-work-per-step rule so a
//!   "step" cannot smuggle in unbounded sequential work.
//! * [`Cost`] accounting: `time` = number of steps, `work` = total active
//!   processor-steps — exactly the quantities of Theorems 1–3.
//!
//! Host code (the part of an algorithm the paper would run on the front-end:
//! loop bounds depending only on `n` and `p`, memory layout) drives the
//! machine; all data-dependent information must flow through shared memory.
//!
//! ```
//! use pram::{Model, Pram};
//!
//! let mut m = Pram::new(Model::Erew, 4);
//! let xs = m.alloc_init(&[1, 2, 3, 4, 5, 6, 7, 8]);
//! // Double every cell: one Brent-scheduled data-parallel pass.
//! m.par_for(8, |i, ctx| {
//!     let v = ctx.read(xs + i)?;
//!     ctx.write(xs + i, 2 * v)
//! }).unwrap();
//! assert_eq!(m.host_slice(xs, 8), &[2, 4, 6, 8, 10, 12, 14, 16]);
//! // ceil(8/4) = 2 synchronous steps, 8 processor-steps of work.
//! assert_eq!(m.cost().time, 2);
//! assert_eq!(m.cost().work, 8);
//! ```

pub mod cost;
pub mod error;
pub mod machine;
pub mod trace;

pub use cost::{Cost, PhaseCost};
pub use error::PramError;
pub use machine::{Addr, Ctx, Model, Pram, Word, NIL};
