//! Optional per-step access tracing.
//!
//! When enabled, the machine records every step's read and write sets. This
//! is a debugging instrument for PRAM programs: schedule mistakes show up as
//! conflict errors, and the trace shows exactly which processors touched
//! which cells in the offending step. It also lets tests assert *schedule*
//! properties (e.g. "no step of the bubble-up touches more than 2 cells per
//! processor") rather than just outcomes.

use crate::machine::{Addr, Word};

/// One processor's accesses within one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcAccess {
    /// Processor id.
    pub pid: usize,
    /// Cells read.
    pub reads: Vec<Addr>,
    /// Cells written with the committed values.
    pub writes: Vec<(Addr, Word)>,
}

/// The access record of one synchronous step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepTrace {
    /// Phase label active when the step ran.
    pub phase: String,
    /// Per-processor accesses (active processors only).
    pub procs: Vec<ProcAccess>,
}

impl StepTrace {
    /// Total distinct cells touched in the step.
    pub fn touched_cells(&self) -> usize {
        let mut cells: Vec<Addr> = self
            .procs
            .iter()
            .flat_map(|p| {
                p.reads
                    .iter()
                    .copied()
                    .chain(p.writes.iter().map(|(a, _)| *a))
            })
            .collect();
        cells.sort_unstable();
        cells.dedup();
        cells.len()
    }

    /// Largest per-processor access count in the step (the O(1) witness).
    pub fn max_accesses_per_proc(&self) -> usize {
        self.procs
            .iter()
            .map(|p| p.reads.len() + p.writes.len())
            .max()
            .unwrap_or(0)
    }
}

/// A whole program trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Step records in execution order.
    pub steps: Vec<StepTrace>,
}

impl Trace {
    /// Render a compact text view (one line per step).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "step {i:>4} [{}] active={} cells={} max_acc={}\n",
                s.phase,
                s.procs.len(),
                s.touched_cells(),
                s.max_accesses_per_proc()
            ));
        }
        out
    }
}
