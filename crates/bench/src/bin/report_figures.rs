//! Regenerate every figure of the paper (F1–F4 in DESIGN.md).
//!
//! ```text
//! cargo run --release -p bench --bin report_figures
//! ```

use bench::experiments::{figure1_rows, figure2_rows, figure3, figure4_rows};
use bench::table::render;

fn main() {
    println!("== Figure 1: carry-chain point classification ==");
    println!("H1 = {{B1,B3,B5,B6}}, H2 = {{B0,B1,B2,B5}}\n");
    let (h, rows) = figure1_rows();
    println!("{}", render(&h, &rows));

    println!("== Figure 2: segmented prefix minima ==\n");
    let (h, rows) = figure2_rows();
    println!("{}", render(&h, &rows));

    println!("== Figure 3: Take-Up(x) on the example heap ==");
    let st = figure3();
    println!("(keys: p(x)=0, z=1, y=2, t=3, x=4, s=5, w=6)\n");
    println!("after Take-Up(x):");
    println!(
        "  D_p(x) = {:?}   (paper: z at slot 0, x at slot 1)",
        st.d_p
    );
    println!("  L_p(x) = {:?}   (paper: y at slot 2)", st.l_p);
    println!(
        "  children of x = {:?}   (paper: D_x[0] = s)",
        st.x_children
    );
    println!(
        "  children of y = {:?}   (paper: L_y[0] = t, L_y[1] = w)\n",
        st.y_children
    );

    println!("== Figure 4: 27-node heap mapped onto Q_2 ==\n");
    let (h, rows, load) = figure4_rows();
    println!("{}", render(&h, &rows));
    println!("per-processor load: {load:?} (imbalance the paper notes)\n");
}
