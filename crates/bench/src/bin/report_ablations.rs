//! Ablations A1–A3 (DESIGN.md §4).
//!
//! ```text
//! cargo run --release -p bench --bin report_ablations
//! ```

use bench::experiments::{
    ablation_a1, ablation_a2_sequential, ablation_a3, ablation_a3_measured, theorem2,
};
use bench::row;
use bench::table::render;

fn main() {
    if bench::json::json_mode() {
        use bench::json::{a1_json, a3_json, a3_measured_json, t2_json, J};
        let measured: Vec<J> = [(2usize, 8usize), (3, 8), (4, 16)]
            .iter()
            .map(|&(q, b)| a3_measured_json(&ablation_a3_measured(q, b, 256)))
            .collect();
        println!(
            "{}",
            J::obj([
                ("a1", a1_json(&ablation_a1(&[8, 12, 16, 20, 24]))),
                (
                    "a2",
                    t2_json(&theorem2(&[1 << 12, 1 << 16, 1 << 20, 1 << 24]))
                ),
                ("a3_hops", a3_json(&ablation_a3(&[2, 3, 4, 5, 6], 256))),
                ("a3_measured", J::Arr(measured)),
            ])
        );
        return;
    }
    println!("== A1: carry-chain Union vs ripple-carry Union ==\n");
    let rows = ablation_a1(&[8, 12, 16, 20, 24]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            row![
                r.n,
                r.ripple_chain,
                r.pram_time,
                r.pram_time_p1,
                format!("{:.2}", r.ripple_chain as f64 / r.pram_time as f64)
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "n",
                "ripple_chain",
                "pram_time(p*)",
                "pram_time(p=1)",
                "depth_ratio"
            ],
            &table
        )
    );
    println!("The ripple chain grows as log n; the planned union's parallel time");
    println!("grows as log log n — the depth_ratio widens with n.\n");

    println!("== A2: lazy Delete (Take-Up + Arrange) vs eager Delete ==\n");
    let rows = theorem2(&[1 << 12, 1 << 16, 1 << 20, 1 << 24]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let lazy_total = r.take_up.time + r.arrange.time;
            row![
                r.n,
                r.deletes,
                lazy_total,
                r.eager.time,
                format!("{:.2}", r.eager.time as f64 / lazy_total.max(1) as f64)
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "n",
                "deletes",
                "lazy_total_t",
                "eager_total_t",
                "eager/lazy"
            ],
            &table
        )
    );
    println!();

    println!("== A2b: the sequential textbook Delete (IndexedBinomialHeap) ==\n");
    let rows = ablation_a2_sequential(&[1 << 8, 1 << 12, 1 << 16, 1 << 20]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            row![
                r.n,
                r.deletes,
                format!("{:.1}", r.comparisons_per_delete),
                format!("{:.1}", r.links_per_delete)
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["n", "deletes", "cmp/delete", "links/delete"], &table)
    );
    println!("Per-delete structural work grows with log n — the baseline the");
    println!("lazy scheme's flat O(log log n) amortized time beats.\n");

    println!("== A3: Gray-code mapping vs identity mapping (Property 3) ==\n");
    let rows = ablation_a3(&[2, 3, 4, 5, 6], 256);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            row![
                r.q,
                r.gray_hops,
                r.identity_hops,
                format!("{:.2}", r.identity_hops as f64 / r.gray_hops as f64)
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["q", "gray_hops (256 promotions)", "identity_hops", "ratio"],
            &table
        )
    );
    println!("Gray-code mapping makes every degree promotion a single-hop move");
    println!("(Property 3); the naive mapping pays up to q hops at binary-carry");
    println!("boundaries.\n");

    println!("== A3 (measured): full queue workload, Gray vs identity mapping ==\n");
    let rows: Vec<Vec<String>> = [(2usize, 8usize), (3, 8), (4, 16)]
        .iter()
        .map(|&(q, b)| {
            let r = ablation_a3_measured(q, b, 256);
            row![
                r.q,
                r.b,
                r.gray_time,
                r.identity_time,
                r.gray_words,
                r.identity_words,
                format!("{:.2}", r.identity_words as f64 / r.gray_words as f64)
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "q",
                "b",
                "gray_t",
                "ident_t",
                "gray_words",
                "ident_words",
                "word_ratio"
            ],
            &rows
        )
    );
}
