//! Run the complete experiment suite and write every report (text + JSON)
//! into `./reports/`.
//!
//! ```text
//! cargo run --release -p bench --bin report_all
//! ```

use std::fmt::Write as _;
use std::fs;

use bench::experiments::*;
use bench::json::{a1_json, a3_json, a3_measured_json, t1_json, t1_ops_json, t2_json, t3_json, J};
use bench::row;
use bench::table::render;

fn main() {
    fs::create_dir_all("reports").expect("create reports/");
    let mut index = String::new();

    // ---- figures ----
    let mut fig = String::new();
    let (h, rows) = figure1_rows();
    let _ = writeln!(fig, "== Figure 1 ==\n\n{}", render(&h, &rows));
    let (h, rows) = figure2_rows();
    let _ = writeln!(fig, "== Figure 2 ==\n\n{}", render(&h, &rows));
    let st = figure3();
    let _ = writeln!(
        fig,
        "== Figure 3 ==\n\nD_p = {:?}\nL_p = {:?}\nx children = {:?}\ny children = {:?}\n",
        st.d_p, st.l_p, st.x_children, st.y_children
    );
    let (h, rows, load) = figure4_rows();
    let _ = writeln!(
        fig,
        "== Figure 4 ==\n\n{}\nload = {load:?}",
        render(&h, &rows)
    );
    fs::write("reports/figures.txt", &fig).expect("write figures");
    index.push_str("figures.txt\n");

    // ---- theorems ----
    let bits = [8usize, 12, 16, 20, 24];
    let t1 = theorem1(&bits, &[1, 2, 4, 8, 16]);
    let t1o = theorem1_ops(&[8, 12, 16, 20]);
    let t2 = theorem2(&[1 << 8, 1 << 12, 1 << 16, 1 << 20]);
    let mut t3 = Vec::new();
    for q in [2usize, 3, 4] {
        t3.extend(theorem3(q, &[1, 2, 4, 8, 16, 32, 64], 256));
    }
    let a1 = ablation_a1(&[8, 12, 16, 20]);
    let a3 = ablation_a3(&[2, 3, 4, 5, 6], 256);
    let a3m: Vec<J> = [(2usize, 8usize), (3, 8)]
        .iter()
        .map(|&(q, b)| a3_measured_json(&ablation_a3_measured(q, b, 128)))
        .collect();

    let json = J::obj([
        ("theorem1", t1_json(&t1)),
        ("theorem1_ops", t1_ops_json(&t1o)),
        ("theorem2", t2_json(&t2)),
        ("theorem3", t3_json(&t3)),
        ("ablation_a1", a1_json(&a1)),
        ("ablation_a3_hops", a3_json(&a3)),
        ("ablation_a3_measured", J::Arr(a3m)),
    ]);
    fs::write("reports/experiments.json", format!("{json}\n")).expect("write json");
    index.push_str("experiments.json\n");

    // text summaries
    let mut txt = String::new();
    let _ = writeln!(txt, "== T1 (all-ones Union) ==\n");
    let table: Vec<Vec<String>> = t1.iter().map(|r| row![r.n, r.p, r.time, r.work]).collect();
    let _ = writeln!(txt, "{}", render(&["n", "p", "time", "work"], &table));
    let _ = writeln!(txt, "== T2 (amortized Delete) ==\n");
    let table: Vec<Vec<String>> = t2
        .iter()
        .map(|r| {
            row![
                r.n,
                r.deletes,
                format!("{:.1}", r.amortized_time),
                format!("{:.1}", r.amortized_work),
                r.eager.time
            ]
        })
        .collect();
    let _ = writeln!(
        txt,
        "{}",
        render(&["n", "deletes", "amort_t", "amort_w", "eager_t"], &table)
    );
    let _ = writeln!(txt, "== T3 (bandwidth sweep) ==\n");
    let table: Vec<Vec<String>> = t3
        .iter()
        .map(|r| row![r.q, r.b, format!("{:.2}", r.amortized_time)])
        .collect();
    let _ = writeln!(txt, "{}", render(&["q", "b", "amortized/op"], &table));
    fs::write("reports/experiments.txt", &txt).expect("write txt");
    index.push_str("experiments.txt\n");

    fs::write("reports/INDEX", &index).expect("write index");
    println!("wrote:\n{index}");
}
