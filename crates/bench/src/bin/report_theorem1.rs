//! Theorem 1 evidence: EREW `Union` in `O(log log n + log n / p)` time and
//! `O(log n)` work at `p = log n / log log n` — measured on the simulator.
//!
//! ```text
//! cargo run --release -p bench --bin report_theorem1
//! ```

use bench::experiments::{make_queue, theorem1, theorem1_ops};
use bench::row;
use bench::table::render;
use bench::workloads::theorem_p;

fn main() {
    let bits = [8usize, 12, 16, 20, 24, 28];
    let ps = [1usize, 2, 4, 8, 16];
    if bench::json::json_mode() {
        let rows = theorem1(&bits, &ps);
        let ops = theorem1_ops(&[8, 12, 16, 20]);
        println!(
            "{}",
            bench::json::J::obj([
                ("theorem1", bench::json::t1_json(&rows)),
                ("theorem1_ops", bench::json::t1_ops_json(&ops)),
            ])
        );
        return;
    }
    println!("== Theorem 1: PRAM Union cost (worst-case all-ones melds) ==\n");
    let rows = theorem1(&bits, &ps);
    // Self-speedup against the same program at p = 1.
    let t1_of = |n: usize| -> u64 {
        rows.iter()
            .find(|r| r.n == n && r.p == 1)
            .expect("p=1 row present")
            .time
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            row![
                r.n,
                r.p,
                r.time,
                r.work,
                r.seq_steps,
                format!("{:.2}", t1_of(r.n) as f64 / r.time as f64)
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "n",
                "p",
                "pram_time",
                "pram_work",
                "ripple_depth",
                "self_speedup"
            ],
            &table
        )
    );

    println!("== at the theorem's p = log n / log log n ==\n");
    let rows: Vec<Vec<String>> = bits
        .iter()
        .map(|&b| {
            let n = (1usize << b) - 1;
            let p = theorem_p(n);
            let r = &theorem1(&[b], &[p])[0];
            let loglog = (64 - (b as u64).leading_zeros()) as f64;
            row![
                n,
                p,
                r.time,
                format!("{:.2}", r.time as f64 / loglog),
                r.work,
                format!("{:.2}", r.work as f64 / b as f64)
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["n", "p*", "time", "time/loglog n", "work", "work/log n"],
            &rows
        )
    );
    println!("Shape check: time/loglog n and work/log n must stay near-constant");
    println!("as n grows (Theorem 1's O(log log n) time, O(log n) work).\n");

    println!("== all three operations at p* (Insert / Extract-Min / Union) ==\n");
    // Real heaps are built for these (memory-bound): cap at 2^20 keys.
    let op_bits = [8usize, 12, 16, 20];
    let rows: Vec<Vec<String>> = theorem1_ops(&op_bits)
        .iter()
        .map(|r| row![r.n, r.p, r.insert_time, r.extract_time, r.union_time])
        .collect();
    println!(
        "{}",
        render(&["n", "p*", "insert_t", "extract_t", "union_t"], &rows)
    );
    println!("All three stay O(log log n)-flat; Extract-Min ≈ reduction + Union.\n");

    println!("== Make-Queue (parallel initialization, measured) ==\n");
    let rows: Vec<Vec<String>> = make_queue(&[1 << 10, 1 << 14, 1 << 18], &[1, 4, 16, 64])
        .iter()
        .map(|r| {
            row![
                r.n,
                r.p,
                r.time,
                r.work,
                format!("{:.3}", r.work as f64 / r.n as f64)
            ]
        })
        .collect();
    println!("{}", render(&["n", "p", "time", "work", "work/n"], &rows));
    println!("O(n) work (≈1 link per key), time ~ n/p + log n: optimal init.");
}
