//! `shootout` — per-op wall-clock race of every queue backend on the
//! roster ([`meldpq::Backend::ALL`]) over the workload classes the
//! selection table covers ([`meldpq::WorkloadClass::ALL`]).
//!
//! Each (class, backend, size) cell replays the same seeded operation
//! script and records best-of-[`TRIALS`] total nanoseconds divided by the
//! *logical* op count. Logical matters for the Dijkstra class: engines
//! without native decrease-key run the classic reinsert-and-skip-stale
//! simulation, and the extra stale pops are charged to their clock, not
//! excused from their denominator.
//!
//! The run writes `reports/BENCH_shootout.json`: per-backend per-size ns,
//! the winner at each size, crossover sizes (where the leader changes as n
//! grows), and one gate per class — `shootout_<class>` fails when the
//! committed selection-table pick ([`meldpq::backend::table_pick`]) loses
//! to the measured best by more than [`GATE_FACTOR`]× on geomean per-op ns
//! (ratio = best/selected, so higher is better and `bench-trend
//! --shootout` can diff it with the wallclock semantics). Any gate miss
//! exits non-zero.
//!
//! Flags: `--quick` (CI smoke: sizes 256/1024, 2 trials) ·
//! `--full` (default: sizes 256..16384, 3 trials).

use std::time::Instant;

use bench::json::J;
use bench::workloads;
use meldpq::backend::{describe, table_pick};
use meldpq::{Backend, DecreaseKeyPq, MeldablePq, PqHandle, WorkloadClass};
use rand::rngs::StdRng;
use rand::Rng;
use service::ServiceBuilder;

/// The selected backend may lose at most this factor to the measured best
/// on its own class before the gate fails (the CI `shootout-smoke` bound).
const GATE_FACTOR: f64 = 1.25;

struct Config {
    sizes: Vec<usize>,
    trials: usize,
    mode: &'static str,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        sizes: vec![256, 1024, 4096, 16384],
        trials: 3,
        mode: "full",
    };
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => {
                cfg.sizes = vec![256, 1024];
                cfg.trials = 2;
                cfg.mode = "quick";
            }
            "--full" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    cfg
}

/// The insert key stream for one class at size `n`.
fn key_stream(class: WorkloadClass, rng: &mut StdRng, n: usize) -> Vec<i64> {
    match class {
        WorkloadClass::Sorted => (0..n as i64).collect(),
        WorkloadClass::Reverse => (0..n as i64).rev().collect(),
        WorkloadClass::DupHeavy => (0..n).map(|_| rng.gen_range(0i64..16)).collect(),
        _ => workloads::random_keys(rng, n),
    }
}

/// Replay the insert/churn/meld/drain script for the four key-stream
/// classes. Returns (elapsed, logical ops).
fn run_stream_class(
    class: WorkloadClass,
    backend: Backend,
    n: usize,
    trial: usize,
) -> (std::time::Duration, u64) {
    let mut rng = workloads::rng(0x5400_0075 ^ (n as u64) ^ ((trial as u64) << 40));
    let keys = key_stream(class, &mut rng, n);
    // Churn pairs and meld bursts use uniform keys for every class: the
    // adversarial shape lives in the initial stream.
    let churn: Vec<i64> = workloads::random_keys(&mut rng, n / 2);
    let meld_burst: Vec<i64> = workloads::random_keys(&mut rng, (n / 8).max(1));
    let mut ops = 0u64;

    let t0 = Instant::now();
    let mut q = backend.make();
    for &k in &keys {
        q.insert(k);
        ops += 1;
    }
    for &k in &churn {
        q.insert(k);
        q.extract_min();
        ops += 2;
    }
    for _ in 0..4 {
        q.meld_from_keys(&meld_burst);
        ops += meld_burst.len() as u64;
    }
    while q.extract_min().is_some() {
        ops += 1;
    }
    (t0.elapsed(), ops)
}

/// One relaxation decision of the synthetic SSSP script.
enum Relax {
    Decrease { id: usize, new_key: i64 },
    Extract,
}

/// The Dijkstra script: `n` tracked inserts, `4n` relaxations (7 in 8 are
/// decrease-keys to a fresh lower tentative distance, 1 in 8 settles a
/// node), then extract-all. Generated once per (n, trial) so native and
/// simulated paths replay identical decisions.
fn dijkstra_script(rng: &mut StdRng, n: usize) -> (Vec<i64>, Vec<Relax>) {
    let init: Vec<i64> = (0..n)
        .map(|_| rng.gen_range(500_000i64..1_000_000))
        .collect();
    let mut best = init.clone();
    let script = (0..4 * n)
        .map(|_| {
            if rng.gen_range(0..8) < 7 {
                let id = rng.gen_range(0..n);
                // A strictly lower tentative distance when possible; a no-op
                // relaxation (new >= current) otherwise — both are charged.
                let new_key = (best[id] - rng.gen_range(1..10_000)).max(0);
                if new_key < best[id] {
                    best[id] = new_key;
                }
                Relax::Decrease { id, new_key }
            } else {
                Relax::Extract
            }
        })
        .collect();
    (init, script)
}

/// Dijkstra on a native decrease-key engine.
fn dijkstra_native(
    q: &mut dyn DecreaseKeyPq<i64>,
    init: &[i64],
    script: &[Relax],
) -> (std::time::Duration, u64) {
    let mut ops = 0u64;
    let t0 = Instant::now();
    let handles: Vec<PqHandle> = init
        .iter()
        .map(|&k| {
            ops += 1;
            q.insert_handle(k)
        })
        .collect();
    for step in script {
        ops += 1;
        match step {
            Relax::Decrease { id, new_key } => {
                q.decrease_key(handles[*id], *new_key);
            }
            Relax::Extract => {
                q.extract_min();
            }
        }
    }
    while q.extract_min().is_some() {
        ops += 1;
    }
    (t0.elapsed(), ops)
}

/// Dijkstra via reinsert-and-skip-stale on a plain meldable queue. Keys
/// encode `(distance, node id)` so stale entries are identifiable; the
/// extra pops this costs land on the clock while the logical op count
/// matches the native path.
fn dijkstra_simulated(
    q: &mut dyn MeldablePq<i64>,
    init: &[i64],
    script: &[Relax],
) -> (std::time::Duration, u64) {
    let n = init.len() as i64;
    let encode = |key: i64, id: usize| key * n + id as i64;
    let mut ops = 0u64;
    let t0 = Instant::now();
    let mut best = init.to_vec();
    let mut settled = vec![false; init.len()];
    for (id, &k) in init.iter().enumerate() {
        ops += 1;
        q.insert(encode(k, id));
    }
    for step in script {
        ops += 1;
        match step {
            Relax::Decrease { id, new_key } => {
                if !settled[*id] && *new_key < best[*id] {
                    best[*id] = *new_key;
                    q.insert(encode(*new_key, *id));
                }
            }
            Relax::Extract => {
                while let Some(enc) = q.extract_min() {
                    let (key, id) = (enc.div_euclid(n), enc.rem_euclid(n) as usize);
                    if !settled[id] && key == best[id] {
                        settled[id] = true;
                        break;
                    } // stale — pop again, time charged, no logical op
                }
            }
        }
    }
    while q.extract_min().is_some() {
        ops += 1;
    }
    (t0.elapsed(), ops)
}

fn run_dijkstra(backend: Backend, n: usize, trial: usize) -> (std::time::Duration, u64) {
    let mut rng = workloads::rng(0xD175_7824 ^ (n as u64) ^ ((trial as u64) << 40));
    let (init, script) = dijkstra_script(&mut rng, n);
    match backend.make_decrease() {
        Some(mut q) => dijkstra_native(q.as_mut(), &init, &script),
        None => dijkstra_simulated(backend.make().as_mut(), &init, &script),
    }
}

/// The service class: the full `QueueService` pinned to `backend`, driven
/// with the shard layer's real mix — bulk admission, melds, paced
/// extraction.
fn run_service(backend: Backend, n: usize, trial: usize) -> (std::time::Duration, u64) {
    let mut rng = workloads::rng(0x5E41_11CE ^ (n as u64) ^ ((trial as u64) << 40));
    let keys = workloads::random_keys(&mut rng, n);
    let mut ops = 0u64;
    let t0 = Instant::now();
    let svc = ServiceBuilder::new().shards(2).backend(backend).build();
    let queues: Vec<_> = (0..4).map(|_| svc.create_queue()).collect();
    for (i, chunk) in keys.chunks(64.max(n / 16)).enumerate() {
        let q = queues[i % queues.len()];
        svc.multi_insert(q, chunk.to_vec()).expect("live queue");
        ops += chunk.len() as u64;
    }
    for i in 0..n / 4 {
        svc.extract_min(queues[i % queues.len()])
            .expect("live queue");
        ops += 1;
    }
    // Melds every generation — meld is the op this service exists for, so
    // the class weights it like the tenant churn the shard layer sees:
    // feeder queues are melded into survivors and respawned with fresh
    // bulk admissions, eight generations deep.
    let mut queues = queues;
    for _ in 0..8 {
        svc.meld(queues[1], queues[0]).expect("live queues");
        svc.meld(queues[3], queues[2]).expect("live queues");
        ops += 2;
        let r1 = svc.create_queue();
        let r3 = svc.create_queue();
        let refill = workloads::random_keys(&mut rng, (n / 16).max(1));
        svc.multi_insert(r1, refill.clone()).expect("live queue");
        svc.multi_insert(r3, refill).expect("live queue");
        ops += 2 * (n as u64 / 16).max(1);
        queues = vec![queues[1], r1, queues[3], r3];
        for q in &queues[..2] {
            svc.extract_min(*q).expect("live queue");
            ops += 1;
        }
    }
    for &q in &queues {
        let len = svc.len(q).expect("live queue");
        svc.extract_k(q, len).expect("live queue");
        ops += len as u64;
    }
    (t0.elapsed(), ops)
}

/// Best-of-trials per-op ns for one cell.
fn measure(cfg: &Config, class: WorkloadClass, backend: Backend, n: usize) -> f64 {
    let mut best = f64::INFINITY;
    for trial in 0..cfg.trials {
        let (dt, ops) = match class {
            WorkloadClass::Dijkstra => run_dijkstra(backend, n, trial),
            WorkloadClass::Service => run_service(backend, n, trial),
            _ => run_stream_class(class, backend, n, trial),
        };
        best = best.min(dt.as_nanos() as f64 / ops.max(1) as f64);
    }
    best
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.max(1e-3).ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let cfg = parse_args();
    println!(
        "shootout ({}): {} backends x {} classes x sizes {:?}, best of {} trials",
        cfg.mode,
        Backend::ALL.len(),
        WorkloadClass::ALL.len(),
        cfg.sizes,
        cfg.trials
    );
    println!("{}", describe());

    let mut class_docs = Vec::new();
    let mut gates = Vec::new();
    let mut all_pass = true;

    for class in WorkloadClass::ALL {
        // cell[b][s] = per-op ns for backend b at size s.
        let cells: Vec<Vec<f64>> = Backend::ALL
            .iter()
            .map(|&b| {
                cfg.sizes
                    .iter()
                    .map(|&n| measure(&cfg, class, b, n))
                    .collect()
            })
            .collect();
        let geo: Vec<f64> = cells.iter().map(|row| geomean(row)).collect();

        // Winner at each size, and the sizes where the leader changes.
        let winner_at = |si: usize| -> usize {
            (0..Backend::ALL.len())
                .min_by(|&a, &b| cells[a][si].total_cmp(&cells[b][si]))
                .expect("roster not empty")
        };
        let winners: Vec<usize> = (0..cfg.sizes.len()).map(winner_at).collect();
        let crossovers: Vec<usize> = (1..cfg.sizes.len())
            .filter(|&si| winners[si] != winners[si - 1])
            .map(|si| cfg.sizes[si])
            .collect();
        let best_i = (0..Backend::ALL.len())
            .min_by(|&a, &b| geo[a].total_cmp(&geo[b]))
            .expect("roster not empty");

        let selected = table_pick(class);
        let sel_i = Backend::ALL
            .iter()
            .position(|&b| b == selected)
            .expect("selection is on the roster");
        // best/selected: 1.0 = the table holds the crown, 0.8 = the 1.25×
        // loss bound. Higher is better (bench-trend floor semantics).
        let ratio = geo[best_i] / geo[sel_i].max(1e-3);
        let pass = ratio >= 1.0 / GATE_FACTOR;
        all_pass &= pass;

        println!(
            "  {:<9} winner {} ({:.0} ns/op) | table {} ({:.0} ns/op) ratio {:.2} {}",
            class.name(),
            Backend::ALL[best_i].name(),
            geo[best_i],
            selected.name(),
            geo[sel_i],
            ratio,
            if pass { "ok" } else { "GATE FAIL" }
        );

        let results: Vec<J> = Backend::ALL
            .iter()
            .enumerate()
            .map(|(bi, &b)| {
                J::obj([
                    ("backend", J::Str(b.name().into())),
                    (
                        "per_op_ns",
                        J::Arr(
                            cfg.sizes
                                .iter()
                                .zip(&cells[bi])
                                .map(|(&n, &ns)| {
                                    J::obj([("n", J::UInt(n as u64)), ("ns", J::Num(ns))])
                                })
                                .collect(),
                        ),
                    ),
                    ("geomean_ns", J::Num(geo[bi])),
                ])
            })
            .collect();
        class_docs.push(J::obj([
            ("class", J::Str(class.name().into())),
            ("selected", J::Str(selected.name().into())),
            ("winner", J::Str(Backend::ALL[best_i].name().into())),
            (
                "winner_by_size",
                J::Arr(
                    cfg.sizes
                        .iter()
                        .zip(&winners)
                        .map(|(&n, &wi)| {
                            J::obj([
                                ("n", J::UInt(n as u64)),
                                ("winner", J::Str(Backend::ALL[wi].name().into())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "crossover_sizes",
                J::Arr(crossovers.iter().map(|&n| J::UInt(n as u64)).collect()),
            ),
            ("results", J::Arr(results)),
        ]));
        gates.push(J::obj([
            ("name", J::Str(format!("shootout_{}", class.name()))),
            ("selected", J::Str(selected.name().into())),
            ("selected_geomean_ns", J::Num(geo[sel_i])),
            ("best", J::Str(Backend::ALL[best_i].name().into())),
            ("best_geomean_ns", J::Num(geo[best_i])),
            ("ratio", J::Num(ratio)),
            ("threshold", J::Num(1.0 / GATE_FACTOR)),
            ("pass", J::Bool(pass)),
        ]));
    }

    let selection: Vec<(&str, J)> = WorkloadClass::ALL
        .iter()
        .map(|&c| (c.name(), J::Str(table_pick(c).name().into())))
        .collect();
    let doc = J::obj([
        ("report", J::Str("shootout".into())),
        (
            "note",
            J::Str(
                "per-op ns = best-of-trials total time / logical ops; Dijkstra \
                 charges reinsert-simulation backends their stale pops on the \
                 clock but not the denominator; gate ratio = best/selected \
                 geomean (higher is better, floor = 1/1.25)"
                    .into(),
            ),
        ),
        ("mode", J::Str(cfg.mode.into())),
        (
            "sizes",
            J::Arr(cfg.sizes.iter().map(|&n| J::UInt(n as u64)).collect()),
        ),
        ("trials", J::UInt(cfg.trials as u64)),
        ("selection_table", J::obj(selection)),
        ("backend_describe", J::Str(describe())),
        ("classes", J::Arr(class_docs)),
        ("gates", J::Arr(gates)),
    ]);

    let reports = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let _ = std::fs::create_dir_all(&reports);
    let out = reports.join("BENCH_shootout.json");
    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH_shootout.json");
    println!("wrote {}", out.display());

    if !all_pass {
        eprintln!(
            "FAIL: a selection-table pick lost more than {GATE_FACTOR}x to the measured best"
        );
        std::process::exit(1);
    }
}
