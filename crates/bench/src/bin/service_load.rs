//! `service-load` — wall-clock load generator for the sharded queue service.
//!
//! N client threads replay pre-generated mixed workloads (~55% insert,
//! 30% extract-min, 7% extract-k(8), 5% peek, 3% len) against two targets
//! built from the *same* per-thread op streams:
//!
//! 1. the sharded [`service::QueueService`] (flat-combining admission,
//!    coalesced bulk kernels), queues spread round-robin over the shards;
//! 2. the baseline every service talk starts with: one
//!    `Mutex<ParBinomialHeap<i64>>` shared by all threads, driven through
//!    the same [`meldpq::MeldablePq`] surface.
//!
//! Every operation is timed into an [`obs::LatencyHistogram`]; per-target
//! p50/p95/p99/max plus throughput land in `reports/SERVICE_load.json`, and
//! a summary object is spliced into `reports/BENCH_wallclock.json` under
//! `"service_load"`. The run **gates** twice: the service must beat the
//! global-lock baseline on throughput, and its p99 latency may exceed the
//! baseline's p99 by at most [`P99_BOUND`]× (override with
//! `SERVICE_P99_BOUND`) — flat combining trades tail latency for
//! throughput, and this bound is where "trade" becomes "regression".
//! Both targets run [`TRIALS`] times and each gate is judged on its best
//! trial (see [`TRIALS`] for why); either miss exits non-zero.
//!
//! Flags: `--threads N` (8) · `--ops N` (65536 total) · `--queues N` (8) ·
//! `--shards N` (4) · `--quick` (8192 ops — the CI smoke configuration).

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use bench::json::J;
use bench::workloads;
use meldpq::{Engine, MeldablePq, ParBinomialHeap};
use obs::{LatencyHistogram, Registry};
use rand::Rng;
use service::{QueueId, QueueService, ServiceBuilder};

/// Default ceiling on `service_p99 / mutex_p99`. The combining queue parks
/// ops behind a shard lock, so its tail is structurally worse than the
/// uncontended-mutex fast path (~11× at the seed measurement); 16× leaves
/// headroom for scheduler noise while still catching a real tail collapse
/// (the pre-gate suite let an 11× tail land silently with no bound at all).
const P99_BOUND: f64 = 16.0;

/// Trials per target; each gate is judged on its best trial (max throughput
/// ratio, min p99 ratio). On an oversubscribed host a single scheduler
/// preemption inside a combining flush inflates that one trial's p99 by a
/// full timeslice (tens of µs against a µs-scale baseline — observed 0.8× /
/// 5× / 48× across back-to-back identical runs on one core). A real tail
/// regression shifts *every* trial, so best-of-N keeps [`P99_BOUND`]
/// meaningful without widening it past the point of catching anything.
/// Override with `SERVICE_TRIALS`.
const TRIALS: usize = 3;

/// One pre-generated client operation (queue chosen by index).
#[derive(Debug, Clone, Copy)]
enum LoadOp {
    Insert(i64),
    ExtractMin,
    ExtractK(usize),
    Peek,
    Len,
}

struct Args {
    threads: usize,
    ops: usize,
    queues: usize,
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 8,
        ops: 1 << 16,
        queues: 8,
        shards: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a number"))
        };
        match a.as_str() {
            "--threads" => args.threads = num("--threads").max(1),
            "--ops" => args.ops = num("--ops").max(1),
            "--queues" => args.queues = num("--queues").max(1),
            "--shards" => args.shards = num("--shards").max(1),
            "--quick" => args.ops = 1 << 13,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The same streams drive both targets: (queue index, op) per step, biased
/// so queues keep a few thousand keys of steady-state depth.
fn gen_streams(threads: usize, per_thread: usize, queues: usize) -> Vec<Vec<(usize, LoadOp)>> {
    (0..threads)
        .map(|tid| {
            let mut rng = workloads::rng(0x5E81_11CE ^ tid as u64);
            (0..per_thread)
                .map(|_| {
                    let q = rng.gen_range(0..queues);
                    let roll = rng.gen_range(0..100);
                    let op = if roll < 55 {
                        LoadOp::Insert(rng.gen_range(-1_000_000i64..1_000_000))
                    } else if roll < 85 {
                        LoadOp::ExtractMin
                    } else if roll < 92 {
                        LoadOp::ExtractK(8)
                    } else if roll < 97 {
                        LoadOp::Peek
                    } else {
                        LoadOp::Len
                    };
                    (q, op)
                })
                .collect()
        })
        .collect()
}

/// Run `streams` against the sharded service. Returns (seconds, latency).
fn run_service(
    args: &Args,
    streams: &[Vec<(usize, LoadOp)>],
) -> (f64, LatencyHistogram, QueueService) {
    let svc = Arc::new(ServiceBuilder::new().shards(args.shards).build());
    let queues: Arc<Vec<QueueId>> =
        Arc::new((0..args.queues).map(|_| svc.create_queue()).collect());
    let barrier = Arc::new(Barrier::new(streams.len() + 1));
    let mut workers = Vec::new();
    for stream in streams {
        let (svc, queues, barrier) = (Arc::clone(&svc), Arc::clone(&queues), Arc::clone(&barrier));
        let stream = stream.clone();
        workers.push(std::thread::spawn(move || {
            let mut hist = LatencyHistogram::new();
            barrier.wait();
            for (qi, op) in stream {
                let q = queues[qi % queues.len()];
                let t0 = Instant::now();
                match op {
                    LoadOp::Insert(k) => svc.insert(q, k).unwrap(),
                    LoadOp::ExtractMin => drop(svc.extract_min(q).unwrap()),
                    LoadOp::ExtractK(k) => drop(svc.extract_k(q, k).unwrap()),
                    LoadOp::Peek => drop(svc.peek_min(q).unwrap()),
                    LoadOp::Len => drop(svc.len(q).unwrap()),
                }
                hist.record(t0.elapsed().as_nanos() as u64);
            }
            hist
        }));
    }
    // Clock starts before the release: main is last to the barrier, so the
    // span from here to the final join is the workers' wall time.
    let t0 = Instant::now();
    barrier.wait();
    let mut hist = LatencyHistogram::new();
    for w in workers {
        hist.merge(&w.join().expect("service worker panicked"));
    }
    let secs = t0.elapsed().as_secs_f64();
    svc.validate().expect("service state corrupt after load");
    let svc = Arc::try_unwrap(svc).expect("workers joined");
    (secs, hist, svc)
}

/// Run `streams` against one global-lock heap. Returns (seconds, latency).
fn run_mutex(streams: &[Vec<(usize, LoadOp)>]) -> (f64, LatencyHistogram) {
    let heap = Arc::new(Mutex::new(
        ParBinomialHeap::new().with_engine(Engine::Sequential),
    ));
    let barrier = Arc::new(Barrier::new(streams.len() + 1));
    let mut workers = Vec::new();
    for stream in streams {
        let (heap, barrier) = (Arc::clone(&heap), Arc::clone(&barrier));
        let stream = stream.clone();
        workers.push(std::thread::spawn(move || {
            let mut hist = LatencyHistogram::new();
            barrier.wait();
            for (_, op) in stream {
                let t0 = Instant::now();
                let mut h = heap.lock().expect("baseline heap poisoned");
                match op {
                    LoadOp::Insert(k) => MeldablePq::insert(&mut *h, k),
                    LoadOp::ExtractMin => drop(MeldablePq::extract_min(&mut *h)),
                    LoadOp::ExtractK(k) => drop(MeldablePq::multi_extract_min(&mut *h, k)),
                    LoadOp::Peek => drop(h.peek_min()),
                    LoadOp::Len => drop(MeldablePq::len(&*h)),
                }
                drop(h);
                hist.record(t0.elapsed().as_nanos() as u64);
            }
            hist
        }));
    }
    let t0 = Instant::now();
    barrier.wait();
    let mut hist = LatencyHistogram::new();
    for w in workers {
        hist.merge(&w.join().expect("mutex worker panicked"));
    }
    (t0.elapsed().as_secs_f64(), hist)
}

fn latency_json(hist: &LatencyHistogram, ops_per_s: f64) -> J {
    J::obj([
        ("throughput_ops_per_s", J::Num(ops_per_s)),
        ("ops", J::UInt(hist.count())),
        ("mean_ns", J::UInt(hist.mean())),
        ("p50_ns", J::UInt(hist.quantile(0.50))),
        ("p95_ns", J::UInt(hist.quantile(0.95))),
        ("p99_ns", J::UInt(hist.quantile(0.99))),
        ("max_ns", J::UInt(hist.max())),
    ])
}

/// Insert (or replace) a `"service_load"` member in the wallclock report,
/// keeping the rest of the document byte-identical.
fn splice_into_wallclock(path: &std::path::Path, summary: &J) {
    let Ok(doc) = std::fs::read_to_string(path) else {
        return; // no wallclock report yet — SERVICE_load.json stands alone
    };
    let doc = doc.trim_end();
    let base = match doc.find(",\"service_load\":") {
        Some(i) => &doc[..i],
        None => match doc.strip_suffix('}') {
            Some(b) => b,
            None => return,
        },
    };
    let spliced = format!("{base},\"service_load\":{summary}}}\n");
    std::fs::write(path, spliced).expect("rewrite BENCH_wallclock.json");
    println!("spliced service_load into {}", path.display());
}

fn main() {
    let args = parse_args();
    let per_thread = args.ops.div_ceil(args.threads);
    let total = per_thread * args.threads;
    println!(
        "service-load: {} threads x {} ops over {} queues / {} shards",
        args.threads, per_thread, args.queues, args.shards
    );
    let streams = gen_streams(args.threads, per_thread, args.queues);

    let trials = std::env::var("SERVICE_TRIALS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|t| *t > 0)
        .unwrap_or(TRIALS);
    let mut runs = Vec::with_capacity(trials);
    let mut svc = None;
    for t in 0..trials {
        let (svc_secs, svc_hist, s) = run_service(&args, &streams);
        let (mtx_secs, mtx_hist) = run_mutex(&streams);
        svc = Some(s);
        let (svc_tput, mtx_tput) = (total as f64 / svc_secs, total as f64 / mtx_secs);
        println!(
            "trial {}/{trials}: service {:.0} ops/s p99 {} ns | mutex {:.0} ops/s p99 {} ns",
            t + 1,
            svc_tput,
            svc_hist.quantile(0.99),
            mtx_tput,
            mtx_hist.quantile(0.99)
        );
        runs.push((svc_tput, svc_hist, mtx_tput, mtx_hist));
    }
    let svc = svc.expect("at least one trial");
    // Best trial per metric: a regression shifts all trials, noise only one.
    let best_tput = runs
        .iter()
        .max_by(|a, b| (a.0 / a.2).total_cmp(&(b.0 / b.2)))
        .expect("trials > 0");
    let best_tail = runs
        .iter()
        .min_by(|a, b| {
            let ra = a.1.quantile(0.99) as f64 / (a.3.quantile(0.99) as f64).max(1.0);
            let rb = b.1.quantile(0.99) as f64 / (b.3.quantile(0.99) as f64).max(1.0);
            ra.total_cmp(&rb)
        })
        .expect("trials > 0");
    let (svc_tput, mtx_tput) = (best_tput.0, best_tput.2);
    let (svc_hist, mtx_hist) = (&best_tail.1, &best_tail.3);

    // Batching evidence: summed shard counters from the service run.
    let mut batches = 0u64;
    let mut max_batch = 0u64;
    let mut bulk_builds = 0u64;
    let mut coalesced = 0u64;
    let mut multi_extracts = 0u64;
    for s in 0..args.shards {
        let st = svc.shard_stats(s);
        batches += st.batches;
        max_batch = max_batch.max(st.max_batch);
        bulk_builds += st.bulk_builds;
        coalesced += st.coalesced_inserts + st.coalesced_pops;
        multi_extracts += st.multi_extracts;
    }

    let tput_ratios: Vec<J> = runs.iter().map(|r| J::Num(r.0 / r.2)).collect();
    let p99_ratios: Vec<J> = runs
        .iter()
        .map(|r| J::Num(r.1.quantile(0.99) as f64 / (r.3.quantile(0.99) as f64).max(1.0)))
        .collect();

    // Observability export: the load histograms and the service's own
    // snapshot land in an obs::Registry, and the registry rides inside
    // SERVICE_load.json — scrapers and the report read one document and
    // cannot drift apart. The client-side histograms are the gated numbers;
    // the `service/shard*` families are the combiner's view of the same run.
    let mut reg = Registry::new();
    reg.record("service_load/service", svc_hist);
    reg.record("service_load/mutex", mtx_hist);
    svc.record_into(&mut reg);
    let served: u64 = reg
        .records()
        .iter()
        .filter(|r| r.family == "latency.histogram" && r.label.starts_with("service/shard"))
        .flat_map(|r| r.fields.iter())
        .filter(|(k, _)| k == "count")
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(
        served, total as u64,
        "every op of the final trial must be charged to a shard histogram"
    );

    let ratio = svc_tput / mtx_tput;
    let tput_pass = ratio > 1.0;
    let gate = J::obj([
        ("name", J::Str("service_beats_global_lock".into())),
        ("service_ops_per_s", J::Num(svc_tput)),
        ("mutex_ops_per_s", J::Num(mtx_tput)),
        ("ratio", J::Num(ratio)),
        ("trial_ratios", J::Arr(tput_ratios)),
        ("threshold", J::Num(1.0)),
        ("pass", J::Bool(tput_pass)),
    ]);

    // The tail gate: p99 of the service relative to the baseline's p99,
    // bounded so a tail collapse cannot ride in under a throughput win.
    let p99_bound = std::env::var("SERVICE_P99_BOUND")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|b| b.is_finite() && *b > 0.0)
        .unwrap_or(P99_BOUND);
    let (svc_p99, mtx_p99) = (svc_hist.quantile(0.99), mtx_hist.quantile(0.99));
    let p99_ratio = svc_p99 as f64 / (mtx_p99 as f64).max(1.0);
    let p99_pass = p99_ratio <= p99_bound;
    let p99_gate = J::obj([
        ("name", J::Str("service_p99_tail_bound".into())),
        ("service_p99_ns", J::UInt(svc_p99)),
        ("mutex_p99_ns", J::UInt(mtx_p99)),
        ("ratio", J::Num(p99_ratio)),
        ("trial_ratios", J::Arr(p99_ratios)),
        ("threshold", J::Num(p99_bound)),
        ("pass", J::Bool(p99_pass)),
    ]);
    let pass = tput_pass && p99_pass;
    let doc = J::obj([
        ("report", J::Str("service_load".into())),
        (
            "note",
            J::Str(
                "N client threads, identical pre-generated mixed op streams \
                 against the sharded flat-combining service vs one mutexed \
                 ParBinomialHeap; latencies in ns from obs::LatencyHistogram \
                 (log2 buckets, 6.25% relative error)"
                    .into(),
            ),
        ),
        ("threads", J::UInt(args.threads as u64)),
        ("ops", J::UInt(total as u64)),
        ("trials", J::UInt(trials as u64)),
        ("queues", J::UInt(args.queues as u64)),
        ("shards", J::UInt(args.shards as u64)),
        ("service", latency_json(svc_hist, svc_tput)),
        ("mutex_baseline", latency_json(mtx_hist, mtx_tput)),
        (
            "batching",
            J::obj([
                ("batches", J::UInt(batches)),
                ("max_batch", J::UInt(max_batch)),
                ("bulk_builds", J::UInt(bulk_builds)),
                ("coalesced_ops", J::UInt(coalesced)),
                ("multi_extracts", J::UInt(multi_extracts)),
            ]),
        ),
        ("gate", gate),
        ("p99_gate", p99_gate),
        ("registry", reg.to_json()),
    ]);

    let reports = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    let _ = std::fs::create_dir_all(&reports);
    let out = reports.join("SERVICE_load.json");
    std::fs::write(&out, format!("{doc}\n")).expect("write SERVICE_load.json");
    println!("wrote {}", out.display());

    let summary = J::obj([
        ("service_ops_per_s", J::Num(svc_tput)),
        ("mutex_ops_per_s", J::Num(mtx_tput)),
        ("ratio", J::Num(ratio)),
        ("service_p99_ns", J::UInt(svc_p99)),
        ("mutex_p99_ns", J::UInt(mtx_p99)),
        ("p99_ratio", J::Num(p99_ratio)),
        ("p99_bound", J::Num(p99_bound)),
        ("pass", J::Bool(pass)),
    ]);
    splice_into_wallclock(&reports.join("BENCH_wallclock.json"), &summary);

    println!(
        "service: {:.0} ops/s (p50 {} ns, p99 {} ns) | mutex: {:.0} ops/s (p50 {} ns, p99 {} ns) | {:.2}x",
        svc_tput,
        svc_hist.quantile(0.50),
        svc_hist.quantile(0.99),
        mtx_tput,
        mtx_hist.quantile(0.50),
        mtx_hist.quantile(0.99),
        ratio
    );
    println!(
        "p99 tail: {p99_ratio:.1}x the baseline (bound {p99_bound:.1}x, best of {trials} trials)"
    );
    if !tput_pass {
        eprintln!("FAIL: sharded service did not beat the global-lock baseline");
    }
    if !p99_pass {
        eprintln!("FAIL: service p99 exceeded {p99_bound:.1}x the global-lock baseline p99");
    }
    if !pass {
        std::process::exit(1);
    }
}
