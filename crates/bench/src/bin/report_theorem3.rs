//! Theorem 3 evidence: amortized communication cost of buffered
//! `Insert`/`Extract-Min` on the single-port hypercube falls as the
//! bandwidth `b` grows (the A4 sweep), across cube sizes.
//!
//! ```text
//! cargo run --release -p bench --bin report_theorem3
//! ```

use bench::experiments::theorem3;
use bench::row;
use bench::table::render;

fn main() {
    if bench::json::json_mode() {
        let mut all = Vec::new();
        for q in [2usize, 3, 4] {
            all.extend(theorem3(q, &[1, 2, 4, 8, 16, 32, 64], 512));
        }
        println!("{}", bench::json::t3_json(&all));
        return;
    }
    println!("== Theorem 3: b-bandwidth sweep on the single-port hypercube ==\n");
    for q in [2usize, 3, 4] {
        let bs = [1usize, 2, 4, 8, 16, 32, 64];
        let n_ops = 512;
        let rows = theorem3(q, &bs, n_ops);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                row![
                    r.q,
                    r.b,
                    r.ops,
                    r.total_time,
                    r.words,
                    format!("{:.2}", r.amortized_time),
                    format!("{:.1}", r.per_multiop_time)
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &[
                    "q",
                    "b",
                    "ops",
                    "net_time",
                    "word_hops",
                    "amortized/op",
                    "per_multiop"
                ],
                &table
            )
        );
        println!();
    }
    println!("Shape check: amortized/op falls as b grows (the buffers spread one");
    println!("b-Union across b operations); per_multiop grows with b (bigger");
    println!("payloads) but sub-linearly — the Theorem 3 trade-off. The paper's");
    println!("sweet spot b = Θ(log²n / log log n) sits where amortized/op");
    println!("flattens.");
}
