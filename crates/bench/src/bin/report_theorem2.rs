//! Theorem 2 evidence: a batch of `⌊log n / log log n⌋` lazy deletions costs
//! `O(log n)` time total on `p = log n / log log n` processors, i.e.
//! `O(log log n)` amortized — against the eager-deletion baseline.
//!
//! ```text
//! cargo run --release -p bench --bin report_theorem2
//! ```

use bench::experiments::theorem2;
use bench::row;
use bench::table::render;

fn main() {
    let ns = [1usize << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24];
    if bench::json::json_mode() {
        println!("{}", bench::json::t2_json(&theorem2(&ns)));
        return;
    }
    println!("== Theorem 2: amortized lazy Delete (one arrange batch) ==\n");
    let rows = theorem2(&ns);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let log = (usize::BITS - r.n.leading_zeros()) as f64;
            let loglog = log.log2().max(1.0);
            row![
                r.n,
                r.p,
                r.deletes,
                r.take_up.time,
                r.arrange.time,
                format!("{:.1}", r.amortized_time),
                format!("{:.2}", r.amortized_time / loglog),
                format!("{:.1}", r.amortized_work),
                format!("{:.2}", r.amortized_work / log),
                r.eager.time
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "n",
                "p",
                "deletes",
                "takeup_t",
                "arrange_t",
                "amort_t",
                "amort_t/llog",
                "amort_w",
                "amort_w/log",
                "eager_t"
            ],
            &table
        )
    );
    println!("Shape check: amort_t/llog and amort_w/log stay near-constant");
    println!("(Theorem 2: O(log log n) amortized time, O(log n) amortized work),");
    println!("while the eager baseline's total time grows with every delete's");
    println!("full O(log n) restructuring.");
}
