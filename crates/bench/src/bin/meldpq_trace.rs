//! `meldpq-trace` — the reference consumer of the `obs` telemetry layer.
//!
//! Runs a scripted mixed Insert/Union/Extract-Min/Delete workload across the
//! engines, captures every meter family into one `obs::Telemetry` document,
//! evaluates the Theorem 1–3 envelopes (constants fitted at small `n`,
//! checked at the full size), writes `reports/TELEMETRY_<workload>.json`,
//! prints the human-readable phase tree, and exits non-zero if any
//! conformance ratio exceeds its threshold — the nightly CI gate.
//!
//! ```text
//! cargo run -p bench --bin meldpq-trace --features telemetry -- [workload] [--out DIR]
//! ```
//!
//! Workloads: `mixed` (default, the full-size gate) and `smoke` (tiny sizes,
//! used by the bench test suite). Without `--features telemetry` the run
//! still measures costs and checks bounds — the spans section is just empty
//! (they compile to no-ops).

use bench::workloads;
use dmpq::queue::DOp;
use dmpq::DistributedPq;
use hypercube::NetStats;
use meldpq::engine_pram::build_plan_pram;
use meldpq::lazy::{CostMeter, LazyBinomialHeap, OpKind};
use meldpq::plan::plan_width;
use meldpq::ParBinomialHeap;
use obs::bounds::{self, Envelope};
use obs::{Registry, Telemetry};
use pram::Cost;
use rand::Rng;
use seqheaps::{BinomialHeap, MeldableHeap};

/// Sizes for one run.
struct Sizes {
    /// Calibration heap sizes (per side) for Theorem 1.
    t1_fit: &'static [usize],
    /// Full Theorem 1 union size (per side).
    t1_n: usize,
    /// Calibration sizes for Theorem 2.
    t2_fit: &'static [usize],
    /// Full Theorem 2 lazy-heap size.
    t2_n: usize,
    /// Calibration `(q, b, ops)` triples for Theorem 3.
    t3_fit: &'static [(usize, usize, usize)],
    /// Full Theorem 3 run.
    t3: (usize, usize, usize),
}

fn sizes_for(workload: &str) -> Sizes {
    match workload {
        "smoke" => Sizes {
            t1_fit: &[16, 32],
            t1_n: 128,
            t2_fit: &[32, 64],
            t2_n: 128,
            t3_fit: &[(2, 4, 32)],
            t3: (2, 8, 64),
        },
        _ => Sizes {
            t1_fit: &[16, 32, 64, 128],
            t1_n: 4096,
            t2_fit: &[64, 128, 256],
            t2_n: 2048,
            t3_fit: &[(2, 4, 64), (3, 8, 128)],
            t3: (3, 16, 512),
        },
    }
}

// ---------------------------------------------------------------- Theorem 1

/// Union of two `n`-key heaps on the PRAM with the paper's `p`; returns the
/// measured cost and per-phase breakdown.
fn measure_union(n: usize, seed: u64) -> (Cost, Vec<(String, Cost)>, usize) {
    let mut rng = workloads::rng(seed);
    let h1 = ParBinomialHeap::from_keys((0..n).map(|_| rng.gen_range(-1_000_000..1_000_000i64)));
    let h2 = ParBinomialHeap::from_keys((0..n).map(|_| rng.gen_range(-1_000_000..1_000_000i64)));
    let total = 2 * n;
    let p = bounds::paper_p(total);
    let w = plan_width(h1.len(), h2.len());
    let out = build_plan_pram(&h1.root_refs(w), &h2.root_refs(w), p).expect("EREW-legal union");
    (out.cost, out.phases.entries().to_vec(), p)
}

fn theorem1(sizes: &Sizes, reg: &mut Registry, conf: &mut Vec<bounds::Conformance>) {
    let mut time_samples = Vec::new();
    let mut work_samples = Vec::new();
    for &n in sizes.t1_fit {
        let (cost, _, p) = measure_union(n, 0x71 + n as u64);
        let total = (2 * n) as f64;
        time_samples.push((bounds::th1_union_time(total, p as f64), cost.time as f64));
        work_samples.push((bounds::th1_union_work(total), cost.work as f64));
    }
    let env_time =
        Envelope::fit("theorem1", "union.time", &time_samples).expect("t1 calibration ran");
    let env_work =
        Envelope::fit("theorem1", "union.work", &work_samples).expect("t1 calibration ran");

    let (cost, phases, p) = measure_union(sizes.t1_n, 0x11);
    reg.record("union/total", &cost);
    for (label, c) in &phases {
        reg.record(&format!("union/phase{label}"), c);
    }
    let total = (2 * sizes.t1_n) as f64;
    let label = format!("n={} p={p}", 2 * sizes.t1_n);
    conf.push(env_time.check(
        &label,
        bounds::th1_union_time(total, p as f64),
        cost.time as f64,
    ));
    conf.push(env_work.check(&label, bounds::th1_union_work(total), cost.work as f64));
}

// ---------------------------------------------------------------- Theorem 2

/// A mixed lazy workload: build `n` keys, then interleave internal Deletes
/// (2/4), Inserts (1/4) and Extract-Mins (1/4) over `n/4` operations with
/// auto Arrange-Heap. Returns (total cost, per-kind costs, op count).
fn run_lazy(n: usize, seed: u64) -> (Cost, Vec<(OpKind, Cost)>, usize) {
    let mut rng = workloads::rng(seed);
    let p = bounds::paper_p(n);
    let mut h = LazyBinomialHeap::from_keys_fast(
        p,
        (0..n).map(|_| rng.gen_range(-1_000_000..1_000_000i64)),
    );
    let mut handles: Vec<meldpq::NodeId> = Vec::new();
    h.reset_cost_log();
    // One mid-stream Union so the lazy ledger carries all four op families.
    let side = LazyBinomialHeap::from_keys_fast(
        p,
        (0..n / 8).map(|_| rng.gen_range(-1_000_000..1_000_000i64)),
    );
    h.meld(side);
    let ops = (n / 4).max(8) + 1; // the meld counts as one operation
    for i in 0..ops - 1 {
        match i % 4 {
            0 | 2 => {
                // Delete a random live node (roots included — the paper
                // treats those as Extract-Min-like).
                let mut tries = 0;
                while tries < 8 {
                    if let Some(&id) = handles.get(rng.gen_range(0..handles.len().max(1))) {
                        if h.node_exists(id) && !h.is_empty_node(id) {
                            h.delete(id);
                            break;
                        }
                    }
                    tries += 1;
                }
                if tries == 8 && !h.is_empty() {
                    h.extract_min();
                }
            }
            1 => {
                handles.push(h.insert(rng.gen_range(-1_000_000..1_000_000i64)));
            }
            _ => {
                h.extract_min();
            }
        }
    }
    let mut by_kind: Vec<(OpKind, Cost)> = Vec::new();
    for &(kind, c) in h.cost_log() {
        match by_kind.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, acc)) => *acc += c,
            None => by_kind.push((kind, c)),
        }
    }
    (h.total_cost(), by_kind, ops)
}

fn theorem2(sizes: &Sizes, reg: &mut Registry, conf: &mut Vec<bounds::Conformance>) {
    let mut time_samples = Vec::new();
    let mut work_samples = Vec::new();
    for &n in sizes.t2_fit {
        let (total, _, ops) = run_lazy(n, 0x72 + n as u64);
        time_samples.push((
            bounds::th2_amortized_time(n as f64),
            total.time as f64 / ops as f64,
        ));
        work_samples.push((
            bounds::th2_amortized_work(n as f64),
            total.work as f64 / ops as f64,
        ));
    }
    let env_time = Envelope::fit("theorem2", "lazy.amortized.time", &time_samples)
        .expect("t2 calibration ran");
    let env_work = Envelope::fit("theorem2", "lazy.amortized.work", &work_samples)
        .expect("t2 calibration ran");

    let n = sizes.t2_n;
    let (total, by_kind, ops) = run_lazy(n, 0x22);
    // The lazy meter charges are part of these costs; expose both the raw
    // per-kind ledgers and a CostMeter-shaped rollup.
    for (kind, c) in &by_kind {
        reg.record(&format!("lazy/{kind:?}"), c);
    }
    let mut rollup = CostMeter::new(bounds::paper_p(n));
    rollup.add(total);
    reg.record("lazy/total", &rollup);
    let label = format!("n={n} ops={ops}");
    conf.push(env_time.check(
        &label,
        bounds::th2_amortized_time(n as f64),
        total.time as f64 / ops as f64,
    ));
    conf.push(env_work.check(
        &label,
        bounds::th2_amortized_work(n as f64),
        total.work as f64 / ops as f64,
    ));
}

// ---------------------------------------------------------------- Theorem 3

/// Distributed workload on a `q`-cube at bandwidth `b`: `ops` inserts, a
/// meld with a second queue of `ops/2` keys, then a full drain. Returns the
/// queue (for its meters), the per-multiop mean time and the multiop count.
fn run_distributed(q: usize, b: usize, ops: usize, seed: u64) -> (DistributedPq, f64, usize) {
    let mut rng = workloads::rng(seed);
    let mut pq = DistributedPq::new(q, b);
    for _ in 0..ops {
        pq.insert(rng.gen_range(-1_000_000..1_000_000))
            .expect("fault-free net");
    }
    let mut other = DistributedPq::new(q, b);
    for _ in 0..ops / 2 {
        other
            .insert(rng.gen_range(-1_000_000..1_000_000))
            .expect("fault-free net");
    }
    pq.meld(other).expect("fault-free net");
    while pq.extract_min().expect("fault-free net").is_some() {}
    let totals = pq
        .ledger()
        .iter()
        .fold(NetStats::default(), |acc, (_, s)| acc.merge(s));
    let multis = pq.ledger().len().max(1);
    (pq, totals.time as f64 / multis as f64, multis)
}

fn theorem3(
    sizes: &Sizes,
    reg: &mut Registry,
    conf: &mut Vec<bounds::Conformance>,
    seq_witness: &mut BinomialHeap<i64>,
) {
    let mut samples = Vec::new();
    for &(q, b, ops) in sizes.t3_fit {
        let (_, per_multiop, _) = run_distributed(q, b, ops, 0x73 + ops as u64);
        let n = (ops + ops / 2) as f64;
        samples.push((bounds::th3_bunion_time(n, b as f64, q as f64), per_multiop));
    }
    let env = Envelope::fit("theorem3", "bunion.time", &samples).expect("t3 calibration ran");

    let (q, b, ops) = sizes.t3;
    let (pq, per_multiop, multis) = run_distributed(q, b, ops, 0x33);
    let n = (ops + ops / 2) as f64;
    reg.record("dmpq/net", &pq.net_stats());
    let mut ledger_by_op: Vec<(DOp, NetStats)> = Vec::new();
    for &(op, s) in pq.ledger() {
        match ledger_by_op.iter_mut().find(|(o, _)| *o == op) {
            Some((_, acc)) => *acc = acc.merge(&s),
            None => ledger_by_op.push((op, s)),
        }
    }
    for (op, s) in &ledger_by_op {
        reg.record(&format!("dmpq/{op:?}"), s);
    }
    // Per-link congestion: the profile behind word_hops.
    let loads = pq.link_loads();
    reg.record_fields(
        "hypercube.net.links",
        "congestion",
        vec![
            ("links_used".to_string(), loads.len() as u64),
            ("max_link_load".to_string(), pq.max_link_load()),
            (
                "total_link_words".to_string(),
                loads.iter().map(|(_, w)| *w).sum(),
            ),
        ],
    );
    conf.push(env.check(
        &format!("q={q} b={b} multis={multis}"),
        bounds::th3_bunion_time(n, b as f64, q as f64),
        per_multiop,
    ));

    // Sequential witness: the same op mix through a plain binomial heap,
    // counting comparisons/links (the OpStats family).
    let mut rng = workloads::rng(0x33);
    for _ in 0..ops.min(512) {
        seq_witness.insert(rng.gen_range(-1_000_000..1_000_000));
    }
    for _ in 0..ops.min(512) / 2 {
        seq_witness.extract_min();
    }
}

// ------------------------------------------------------------------- main

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = "mixed".to_string();
    let mut out_dir = "reports".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = args.get(i).expect("--out needs a directory").clone();
            }
            "--json" => {} // JSON always goes to the report file; flag kept for symmetry
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            name => workload = name.to_string(),
        }
        i += 1;
    }
    let sizes = sizes_for(&workload);

    let mut telemetry = Telemetry::new(&workload);
    let mut conf = Vec::new();
    let mut seq_witness: BinomialHeap<i64> = BinomialHeap::new();

    theorem1(&sizes, &mut telemetry.registry, &mut conf);
    theorem2(&sizes, &mut telemetry.registry, &mut conf);
    theorem3(&sizes, &mut telemetry.registry, &mut conf, &mut seq_witness);
    telemetry
        .registry
        .record("seq_witness/binomial", seq_witness.stats());

    // Drain every thread's spans, not just main's — the theorem-2/3 kernels
    // run under rayon, whose workers record into their own sinks.
    telemetry.spans = obs::take_all_spans();
    telemetry.conformance = conf;

    let path = format!("{out_dir}/TELEMETRY_{workload}.json");
    let doc = telemetry.to_json();
    std::fs::create_dir_all(&out_dir).expect("create report dir");
    std::fs::write(&path, format!("{doc}\n")).expect("write report");

    print!("{}", telemetry.render());
    println!(
        "report: {path} (spans={}, meters={}, conformance={} rows, worst ratio {:.3})",
        telemetry.spans.len(),
        telemetry.registry.records().len(),
        telemetry.conformance.len(),
        telemetry.worst_ratio()
    );
    if !obs::enabled() {
        println!("note: spans empty — rebuild with --features telemetry to record them");
    }
    if !telemetry.all_within() {
        eprintln!("CONFORMANCE FAILURE: a theorem envelope was exceeded (see rows above)");
        std::process::exit(1);
    }
}
