//! `bench-trend` — machine-relative drift detector for the wallclock gates.
//!
//! Compares a fresh `BENCH_wallclock.json` against a committed baseline and
//! exits non-zero when any gate's *ratio* regressed by more than the
//! tolerance (default 25%, override with `BENCH_TREND_TOLERANCE`, e.g.
//! `0.4`). Gate ratios are slow-arm / fast-arm on the *same* machine in the
//! *same* run, so they compare fairly across hosts — unlike raw `mean_ns`,
//! which this tool prints per benchmark id as context but never judges.
//!
//! A gate ratio measures "how much the optimized arm wins"; regression
//! means the fresh ratio fell below `baseline_ratio * (1 - tolerance)`.
//! Gates present only on one side are reported but never fail the run
//! (new gates appear, old ones retire — that is trend, not regression).
//!
//! Usage: `bench-trend <baseline.json> [fresh.json]
//!                     [--shootout <baseline.json> [fresh.json]]`
//! (fresh defaults to `reports/BENCH_wallclock.json`; the shootout fresh
//! side defaults to `reports/BENCH_shootout.json`). The shootout gates use
//! the same `name`/`ratio` shape — ratio = best/selected geomean per-op ns,
//! higher is better — so one floor rule judges both documents.

use std::collections::BTreeMap;
use std::process::ExitCode;

use bench::json::J;

/// Fraction of a gate's baseline ratio it may lose before this tool fails.
const TOLERANCE: f64 = 0.25;

fn load(path: &str) -> J {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench-trend: cannot read {path}: {e}"));
    J::parse(&text).unwrap_or_else(|e| panic!("bench-trend: {path} is not valid JSON: {e}"))
}

/// `name -> ratio` for every gate in a wallclock report.
fn gate_ratios(doc: &J) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(gates) = doc.get("gates").and_then(J::as_arr) else {
        return out;
    };
    for g in gates {
        if let (Some(name), Some(ratio)) = (
            g.get("name").and_then(J::as_str),
            g.get("ratio").and_then(J::as_f64),
        ) {
            out.insert(name.to_string(), ratio);
        }
    }
    out
}

/// `id -> mean_ns` for every benchmark result in a wallclock report.
fn result_means(doc: &J) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(results) = doc.get("results").and_then(J::as_arr) else {
        return out;
    };
    for r in results {
        if let (Some(id), Some(mean)) = (
            r.get("id").and_then(J::as_str),
            r.get("mean_ns").and_then(J::as_f64),
        ) {
            out.insert(id.to_string(), mean);
        }
    }
    out
}

/// Diff two gate maps under the floor rule. Returns true when any shared
/// gate regressed past the tolerance; one-sided gates only inform.
fn compare_gates(
    label: &str,
    base_gates: &BTreeMap<String, f64>,
    fresh_gates: &BTreeMap<String, f64>,
    tolerance: f64,
) -> bool {
    let mut failed = false;
    for (name, base_ratio) in base_gates {
        let Some(fresh_ratio) = fresh_gates.get(name) else {
            println!("  {label} {name}: retired (absent from fresh report)");
            continue;
        };
        let floor = base_ratio * (1.0 - tolerance);
        let verdict = if *fresh_ratio < floor {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {label} {name}: ratio {base_ratio:.2} -> {fresh_ratio:.2} (floor {floor:.2}) {verdict}"
        );
    }
    for name in fresh_gates.keys().filter(|n| !base_gates.contains_key(*n)) {
        println!("  {label} {name}: new (absent from baseline)");
    }
    failed
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (wallclock_args, shootout_args) = match raw.iter().position(|a| a == "--shootout") {
        Some(i) => (&raw[..i], Some(&raw[i + 1..])),
        None => (&raw[..], None),
    };
    let mut args = wallclock_args.iter().cloned();
    let baseline_path = args.next().expect(
        "usage: bench-trend <baseline.json> [fresh.json] [--shootout <baseline.json> [fresh.json]]",
    );
    let fresh_path = args
        .next()
        .unwrap_or_else(|| "reports/BENCH_wallclock.json".to_string());
    let tolerance = std::env::var("BENCH_TREND_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0 && *t < 1.0)
        .unwrap_or(TOLERANCE);
    let tol_pct = tolerance * 100.0;

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    let base_gates = gate_ratios(&baseline);
    let fresh_gates = gate_ratios(&fresh);
    assert!(
        !fresh_gates.is_empty(),
        "bench-trend: {fresh_path} has no gates — was the wallclock bench run?"
    );

    println!("bench-trend: {baseline_path} -> {fresh_path} (tolerance {tol_pct:.0}%)");
    let mut failed = compare_gates("gate", &base_gates, &fresh_gates, tolerance);

    if let Some(shootout) = shootout_args {
        let mut it = shootout.iter().cloned();
        let s_base_path = it
            .next()
            .expect("--shootout needs a baseline shootout report");
        let s_fresh_path = it
            .next()
            .unwrap_or_else(|| "reports/BENCH_shootout.json".to_string());
        let s_base = load(&s_base_path);
        let s_fresh = load(&s_fresh_path);
        let s_base_gates = gate_ratios(&s_base);
        let s_fresh_gates = gate_ratios(&s_fresh);
        assert!(
            !s_fresh_gates.is_empty(),
            "bench-trend: {s_fresh_path} has no gates — was the shootout run?"
        );
        println!(
            "bench-trend: {s_base_path} -> {s_fresh_path} (shootout, tolerance {tol_pct:.0}%)"
        );
        failed |= compare_gates("shootout", &s_base_gates, &s_fresh_gates, tolerance);
    }

    // Raw means are machine-dependent — context for a human reading CI
    // logs, never part of the verdict.
    let base_means = result_means(&baseline);
    let fresh_means = result_means(&fresh);
    println!("  per-benchmark mean_ns deltas (informational):");
    for (id, fresh_mean) in &fresh_means {
        match base_means.get(id) {
            Some(base_mean) if *base_mean > 0.0 => {
                let pct = (fresh_mean - base_mean) / base_mean * 100.0;
                println!("    {id}: {base_mean:.0} -> {fresh_mean:.0} ns ({pct:+.1}%)");
            }
            _ => println!("    {id}: (new) {fresh_mean:.0} ns"),
        }
    }

    if failed {
        eprintln!("FAIL: a wallclock gate ratio regressed more than {tol_pct:.0}% vs baseline");
        return ExitCode::FAILURE;
    }
    println!("bench-trend: all gate ratios within {tol_pct:.0}% of baseline");
    ExitCode::SUCCESS
}
