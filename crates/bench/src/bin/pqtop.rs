//! `pqtop` — live introspection console for the sharded queue service.
//!
//! Drives a mixed background load (the `service-load` op mix) against an
//! in-process [`service::QueueService`] and refreshes a `top`-style view:
//! the [`service::ServiceSnapshot`] shard table (backlog, combiner
//! occupancy, latency quantiles) over the tail of the flight recorder's
//! event stream. On exit it drains the recorder into
//! `reports/FLIGHT_<run>.json` so a run leaves the same evidence a failing
//! chaos test attaches to its panic.
//!
//! The snapshot path never combines — what you watch is the backlog the
//! combiners actually face, not one the observer just served (see
//! DESIGN.md §13).
//!
//! Flags: `--seconds N` (4) · `--hz N` (10 refreshes/s) · `--threads N` (4)
//! · `--queues N` (8) · `--shards N` (4) · `--once` (single plain snapshot,
//! no screen control — the CI smoke mode) · `--run NAME` (report suffix,
//! default `pqtop`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::flight;
use rand::Rng;
use service::{QueueId, QueueService, ServiceBuilder};

struct Args {
    seconds: f64,
    hz: f64,
    threads: usize,
    queues: usize,
    shards: usize,
    once: bool,
    run: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        seconds: 4.0,
        hz: 10.0,
        threads: 4,
        queues: 8,
        shards: 4,
        once: false,
        run: "pqtop".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match a.as_str() {
            "--seconds" => args.seconds = next("--seconds").parse().expect("--seconds"),
            "--hz" => args.hz = next("--hz").parse().expect("--hz"),
            "--threads" => args.threads = next("--threads").parse().expect("--threads"),
            "--queues" => args.queues = next("--queues").parse().expect("--queues"),
            "--shards" => args.shards = next("--shards").parse().expect("--shards"),
            "--once" => args.once = true,
            "--run" => args.run = next("--run"),
            other => panic!("unknown flag {other}"),
        }
    }
    args.hz = args.hz.clamp(0.5, 60.0);
    args.threads = args.threads.max(1);
    args.queues = args.queues.max(1);
    args.shards = args.shards.max(1);
    args
}

/// Spawn the background load: each worker hammers the service with the
/// service-load mix until `stop` flips.
fn spawn_load(
    svc: &Arc<QueueService>,
    queues: &Arc<Vec<QueueId>>,
    stop: &Arc<AtomicBool>,
    threads: usize,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..threads)
        .map(|tid| {
            let (svc, queues, stop) = (Arc::clone(svc), Arc::clone(queues), Arc::clone(stop));
            std::thread::Builder::new()
                .name(format!("pqtop-load-{tid}"))
                .spawn(move || {
                    let mut rng = bench::workloads::rng(0x709_0000 ^ tid as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let q = queues[rng.gen_range(0..queues.len())];
                        let roll = rng.gen_range(0..100);
                        let r = if roll < 55 {
                            svc.insert(q, rng.gen_range(-1_000_000i64..1_000_000))
                        } else if roll < 85 {
                            svc.extract_min(q).map(drop)
                        } else if roll < 92 {
                            svc.extract_k(q, 8).map(drop)
                        } else if roll < 97 {
                            svc.peek_min(q).map(drop)
                        } else {
                            svc.len(q).map(drop)
                        };
                        r.expect("load op failed");
                    }
                })
                .expect("spawn load worker")
        })
        .collect()
}

/// One screenful: the shard table plus the newest flight events.
fn frame(svc: &QueueService, elapsed: f64, tail: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "pqtop — {} shard(s), {:.1}s elapsed, recorder {}\n\n",
        svc.shard_count(),
        elapsed,
        if flight::is_enabled() { "on" } else { "off" }
    ));
    out.push_str(&svc.snapshot().render());
    if tail > 0 {
        out.push_str("\nrecent flight events:\n");
        out.push_str(&flight::render(&flight::tail(tail)));
    }
    out
}

fn main() {
    let args = parse_args();
    let svc = Arc::new(ServiceBuilder::new().shards(args.shards).build());
    let queues: Arc<Vec<QueueId>> =
        Arc::new((0..args.queues).map(|_| svc.create_queue()).collect());

    let stop = Arc::new(AtomicBool::new(false));
    let workers = spawn_load(&svc, &queues, &stop, args.threads);

    let t0 = Instant::now();
    if args.once {
        // Let the load put something on the board, then one plain frame.
        std::thread::sleep(Duration::from_millis(200));
        print!("{}", frame(&svc, t0.elapsed().as_secs_f64(), 8));
    } else {
        let tick = Duration::from_secs_f64(1.0 / args.hz);
        while t0.elapsed().as_secs_f64() < args.seconds {
            // Home + clear-to-end keeps the table flicker-free without
            // pulling in a terminal library.
            print!("\x1b[H\x1b[J{}", frame(&svc, t0.elapsed().as_secs_f64(), 8));
            use std::io::Write;
            std::io::stdout().flush().ok();
            std::thread::sleep(tick);
        }
    }

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("load worker panicked");
    }
    svc.flush();
    svc.validate()
        .expect("service state corrupt after pqtop load");
    if !args.once {
        print!("\n{}", frame(&svc, t0.elapsed().as_secs_f64(), 8));
    }

    let reports = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports");
    std::fs::create_dir_all(&reports).expect("create reports dir");
    flight::dump(&reports.join(format!("FLIGHT_{}.json", args.run)));
}
