#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # bench — experiment harness
//!
//! Everything needed to regenerate the paper's figures and to measure the
//! theorem-shaped scaling claims:
//!
//! * [`workloads`] — seeded random heap builders and operation scripts;
//! * [`table`] — plain-text table rendering for the `report_*` binaries;
//! * [`experiments`] — the data behind every experiment in DESIGN.md §4
//!   (F1–F4 figure reproductions, T1–T3 theorem scalings, A1–A4 ablations),
//!   shared by the report binaries, the integration tests and the Criterion
//!   benches.

pub mod experiments;
pub mod json;
pub mod table;
pub mod workloads;
