//! Plain-text table rendering for the report binaries.

/// Render rows as an aligned table with a header and a rule line.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Shorthand for building a row of display values.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$(format!("{}", $v)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_output() {
        let t = render(&["n", "time"], &[row!(8, 123), row!(4096, 7)]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("time"));
        assert!(lines[2].ends_with("123"));
        assert!(lines[3].starts_with("4096"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render(&["a", "b"], &[vec!["1".into()]]);
    }
}
