//! Seeded workload generators.

use meldpq::{Engine, ParBinomialHeap};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A deterministic RNG for experiment `tag`.
pub fn rng(tag: u64) -> StdRng {
    StdRng::seed_from_u64(0x000B_100D ^ tag)
}

/// Random keys, uniform over a wide range.
pub fn random_keys(rng: &mut StdRng, n: usize) -> Vec<i64> {
    (0..n)
        .map(|_| rng.gen_range(-1_000_000..1_000_000))
        .collect()
}

/// A random `ParBinomialHeap` of exactly `n` keys.
pub fn random_heap(rng: &mut StdRng, n: usize) -> ParBinomialHeap {
    ParBinomialHeap::from_keys(random_keys(rng, n))
}

/// Root references of a heap at the width needed to meld it with a heap of
/// `other_n` keys.
pub fn root_refs_for_meld(h: &ParBinomialHeap, other_n: usize) -> Vec<Option<meldpq::RootRef>> {
    let width = meldpq::plan::plan_width(h.len(), other_n);
    h.root_refs(width)
}

/// The worst-case meld shape: two heaps of `2^bits - 1` keys each (all
/// positions generate, maximal carry chains).
pub fn all_ones_pair(rng: &mut StdRng, bits: usize) -> (ParBinomialHeap, ParBinomialHeap) {
    let n = (1usize << bits) - 1;
    (random_heap(rng, n), random_heap(rng, n))
}

/// A mixed operation script: `(insert_weight, extract_weight)` out of 10.
#[derive(Debug, Clone, Copy)]
pub enum ScriptOp {
    /// Insert this key.
    Insert(i64),
    /// Extract the minimum.
    ExtractMin,
}

/// Generate a script of `len` operations with the given insert bias (0..=10).
pub fn script(rng: &mut StdRng, len: usize, insert_bias: u32) -> Vec<ScriptOp> {
    let mut live = 0usize;
    (0..len)
        .map(|_| {
            if live == 0 || rng.gen_range(0..10) < insert_bias {
                live += 1;
                ScriptOp::Insert(rng.gen_range(-1_000_000..1_000_000))
            } else {
                live -= 1;
                ScriptOp::ExtractMin
            }
        })
        .collect()
}

/// Run a script against a `ParBinomialHeap` with the given engine.
pub fn run_script(heap: &mut ParBinomialHeap, ops: &[ScriptOp], engine: Engine) {
    for op in ops {
        match op {
            ScriptOp::Insert(k) => heap.insert(*k),
            ScriptOp::ExtractMin => {
                heap.extract_min(engine);
            }
        }
    }
}

/// `p = ⌈log n / log log n⌉` — the processor count of Theorems 1–2.
pub fn theorem_p(n: usize) -> usize {
    let log = (usize::BITS - n.max(4).leading_zeros()) as usize;
    let loglog = ((usize::BITS - log.leading_zeros()) as usize).max(1);
    (log / loglog).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_sizes_exact() {
        let mut r = rng(1);
        for n in [0usize, 1, 7, 100] {
            assert_eq!(random_heap(&mut r, n).len(), n);
        }
    }

    #[test]
    fn scripts_never_extract_from_empty() {
        let mut r = rng(2);
        let s = script(&mut r, 500, 3);
        let mut live = 0i64;
        for op in s {
            match op {
                ScriptOp::Insert(_) => live += 1,
                ScriptOp::ExtractMin => {
                    live -= 1;
                    assert!(live >= 0);
                }
            }
        }
    }

    #[test]
    fn theorem_p_values() {
        assert_eq!(theorem_p(1 << 8), 2); // log=9? bits(256)=9, loglog=4 → 2
        assert!(theorem_p(1 << 20) >= 4);
        assert!(theorem_p(2) >= 1);
    }
}
