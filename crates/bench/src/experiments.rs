//! The experiment drivers (DESIGN.md §4): figure reproductions F1–F4,
//! theorem scalings T1–T3, ablations A1–A3. Each returns structured data so
//! the report binaries, integration tests and Criterion benches share one
//! implementation.

use dmpq::bheap::BbHeap;
use dmpq::mapping::{assignment, load_per_processor, processor_of_degree};
use dmpq::DistributedPq;
use meldpq::engine_pram::build_plan_pram;
use meldpq::lazy::{LazyBinomialHeap, OpKind};
use meldpq::plan::{build_plan_seq, plan_width, PointType, RootRef, UnionPlan};
use meldpq::NodeId;
use pram::Cost;

use crate::workloads::{self, theorem_p};

fn type_str(t: PointType) -> &'static str {
    match t {
        PointType::Start => "str",
        PointType::Internal => "int",
        PointType::End => "end",
        PointType::Independent => "ind",
    }
}

// ====================================================================
// F1 — Figure 1: carry-chain point classification
// ====================================================================

/// The Figure 1 instance: `H1 = {B1,B3,B5,B6}`, `H2 = {B0,B1,B2,B5}`.
pub fn figure1_plan() -> UnionPlan {
    let mk = |present: &[usize], base: u32| -> Vec<Option<RootRef>> {
        (0..8)
            .map(|i| {
                present.contains(&i).then(|| RootRef {
                    key: i as i64,
                    id: NodeId(base + i as u32),
                })
            })
            .collect()
    };
    build_plan_seq(&mk(&[1, 3, 5, 6], 0), &mk(&[0, 1, 2, 5], 100))
}

/// Figure 1 as printable rows: position, a, b, g, p, c, s, type — matching
/// the paper's table (most significant position first).
pub fn figure1_rows() -> (Vec<&'static str>, Vec<Vec<String>>) {
    let plan = figure1_plan();
    let headers = vec!["Position", "a_i", "b_i", "g_i", "p_i", "c_i", "s_i", "Type"];
    let rows = (0..plan.width)
        .rev()
        .map(|i| {
            vec![
                i.to_string(),
                (plan.a[i] as u8).to_string(),
                (plan.b[i] as u8).to_string(),
                (plan.g[i] as u8).to_string(),
                (plan.p[i] as u8).to_string(),
                (plan.c[i] as u8).to_string(),
                (plan.s[i] as u8).to_string(),
                type_str(plan.class[i]).to_string(),
            ]
        })
        .collect();
    (headers, rows)
}

// ====================================================================
// F2 — Figure 2: segmented prefix minima
// ====================================================================

/// The Figure 2 instance (root keys per position; `None` = nil). Width 15:
/// the chain ending at position 13 produces a `B_14`.
pub fn figure2_inputs() -> (Vec<Option<i64>>, Vec<Option<i64>>) {
    // Little-endian positions 0..=13 read off the paper's table.
    let h1 = vec![
        Some(5),
        Some(3),
        Some(10),
        None,
        None,
        Some(2),
        None,
        Some(12),
        Some(6),
        Some(7),
        Some(8),
        Some(4),
        None,
        Some(6),
        None,
    ];
    let h2 = vec![
        None,
        Some(4),
        None,
        Some(5),
        Some(7),
        None,
        Some(9),
        None,
        Some(13),
        Some(5),
        None,
        None,
        Some(3),
        None,
        None,
    ];
    (h1, h2)
}

/// Build the Figure 2 plan.
pub fn figure2_plan() -> UnionPlan {
    let (h1, h2) = figure2_inputs();
    let refs = |v: &[Option<i64>], base: u32| -> Vec<Option<RootRef>> {
        v.iter()
            .enumerate()
            .map(|(i, k)| {
                k.map(|key| RootRef {
                    key,
                    id: NodeId(base + i as u32),
                })
            })
            .collect()
    };
    build_plan_seq(&refs(&h1, 0), &refs(&h2, 100))
}

/// The values the paper's Figure 2 table reports for `I_valueA`, positions
/// 0..=13 (little-endian).
pub fn figure2_expected_iva() -> Vec<i64> {
    vec![5, 3, 3, 3, 3, 2, 2, 2, 6, 5, 5, 4, 3, 3]
}

/// Figure 2 rows: position, H1, H2, type, I_lim, I_valueB, I_valueA.
pub fn figure2_rows() -> (Vec<&'static str>, Vec<Vec<String>>) {
    let (h1, h2) = figure2_inputs();
    let plan = figure2_plan();
    let headers = vec![
        "Position", "H1", "H2", "Type", "I_lim", "I_valueB", "I_valueA",
    ];
    let show = |v: Option<i64>| v.map_or("-".to_string(), |k| k.to_string());
    let rows = (0..14)
        .rev()
        .map(|i| {
            vec![
                i.to_string(),
                show(h1[i]),
                show(h2[i]),
                type_str(plan.class[i]).to_string(),
                (plan.i_lim[i] as u8).to_string(),
                show(plan.i_value_b[i].map(|r| r.key)),
                show(plan.i_value_a[i].map(|r| r.key)),
            ]
        })
        .collect();
    (headers, rows)
}

// ====================================================================
// F3 — Figure 3: Take-Up before/after
// ====================================================================

/// A snapshot of the Figure 3 heap state: per interesting node, its key and
/// the derived `L`/`D` child views (as the keys of the children).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig3State {
    /// `(slot, child key)` pairs in `D_{p(x)}`.
    pub d_p: Vec<(usize, i64)>,
    /// `(slot, child key)` pairs in `L_{p(x)}`.
    pub l_p: Vec<(usize, i64)>,
    /// Children keys of `x` (its retained empty subtree).
    pub x_children: Vec<i64>,
    /// Children keys of `y` after the live unions.
    pub y_children: Vec<i64>,
}

/// Reproduce Figure 3: build the `B_3` of keys `0..8`, delete `z` (key 1)
/// and `s` (key 5) to reach the 3(a) state, then `Take-Up(x)` (key 4).
/// Returns the post-state, which the paper's 3(b) predicts exactly.
pub fn figure3() -> Fig3State {
    let mut h = LazyBinomialHeap::new(2);
    h.set_auto_arrange(false);
    let ids: Vec<NodeId> = (0..8).map(|k| h.insert(k)).collect();
    // Structure after sequential inserts: root 0 with children
    // slot0 = 1 (z), slot1 = 2 (y, child 3 = t), slot2 = 4 (x, children
    // slot0 = 5 (s), slot1 = 6 (w, child 7)).
    h.delete(ids[1]); // z
    h.delete(ids[5]); // s  → Figure 3(a)
    h.validate().expect("3(a) state valid");
    h.delete(ids[4]); // Take-Up(x) → Figure 3(b)
    h.validate().expect("3(b) state valid");

    let root = h.roots_snapshot()[3].expect("B_3 root");
    let key = |id: NodeId| h.raw_key(id);
    let view = |v: Vec<Option<NodeId>>| -> Vec<(usize, i64)> {
        v.into_iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|id| (i, key(id))))
            .collect()
    };
    let d_p = view(h.dead_view(root));
    let l_p = view(h.live_view(root));
    let x = ids[4];
    let y = ids[2];
    let x_children: Vec<i64> = h.children_of(x).into_iter().flatten().map(key).collect();
    let y_children: Vec<i64> = h.children_of(y).into_iter().flatten().map(key).collect();
    Fig3State {
        d_p,
        l_p,
        x_children,
        y_children,
    }
}

// ====================================================================
// F4 — Figure 4: hypercube mapping of the 27-node heap
// ====================================================================

/// Build a size-`n` (b=1) b-binomial heap of complete trees.
pub fn unit_heap_of_size(n: usize) -> BbHeap {
    fn build(h: &mut BbHeap, order: usize, seed: &mut i64) -> dmpq::BbNodeId {
        if order == 0 {
            let id = h.alloc(vec![*seed]);
            *seed += 1;
            return id;
        }
        let a = build(h, order - 1, seed);
        let b = build(h, order - 1, seed);
        h.get_mut(a).children.push(b);
        h.get_mut(b).parent = Some(a);
        a
    }
    let mut h = BbHeap::new(1);
    let mut seed = 0i64;
    let mut roots = Vec::new();
    for i in 0..usize::BITS as usize {
        if n >> i & 1 == 1 {
            while roots.len() <= i {
                roots.push(None);
            }
            roots[i] = Some(build(&mut h, i, &mut seed));
        }
    }
    h.roots = roots;
    h
}

/// Figure 4 rows: for the 27-node heap on `Q_2` — per degree, the processor
/// and node count; plus the per-processor load.
pub fn figure4_rows() -> (Vec<&'static str>, Vec<Vec<String>>, Vec<usize>) {
    let h = unit_heap_of_size(27);
    let q = 2;
    let mut per_degree: std::collections::BTreeMap<usize, usize> = Default::default();
    for (_, deg, _) in assignment(&h, q) {
        *per_degree.entry(deg).or_default() += 1;
    }
    let headers = vec!["degree", "processor Π(d mod 4)", "nodes"];
    let rows = per_degree
        .iter()
        .map(|(deg, count)| {
            vec![
                deg.to_string(),
                processor_of_degree(*deg, q).to_string(),
                count.to_string(),
            ]
        })
        .collect();
    (headers, rows, load_per_processor(&h, q))
}

// ====================================================================
// T1 — Theorem 1: EREW Union scaling
// ====================================================================

/// One measurement of the PRAM Union.
#[derive(Debug, Clone)]
pub struct T1Row {
    /// Heap sizes (both sides `2^bits - 1`: worst-case carry chains).
    pub n: usize,
    /// Processors.
    pub p: usize,
    /// Measured PRAM time of the Union plan.
    pub time: u64,
    /// Measured PRAM work.
    pub work: u64,
    /// Sequential baseline: the ripple-carry dependent-link chain length
    /// (`Θ(log n)` — the best sequential union walks every position).
    pub seq_steps: u64,
}

/// Measure the Union at `n = 2^bits - 1` for each processor count.
pub fn theorem1(bits_list: &[usize], ps: &[usize]) -> Vec<T1Row> {
    let mut rng = workloads::rng(0x71);
    let mut out = Vec::new();
    for &bits in bits_list {
        let n = (1usize << bits) - 1;
        let width = plan_width(n, n);
        let mk = |base: u32, rng: &mut rand::rngs::StdRng| -> Vec<Option<RootRef>> {
            use rand::Rng;
            (0..width)
                .map(|i| {
                    (n >> i & 1 == 1).then(|| RootRef {
                        key: rng.gen_range(-1_000_000..1_000_000),
                        id: NodeId(base + i as u32),
                    })
                })
                .collect()
        };
        let h1 = mk(0, &mut rng);
        let h2 = mk(1000, &mut rng);
        for &p in ps {
            let outcome = build_plan_pram(&h1, &h2, p).expect("EREW-legal");
            out.push(T1Row {
                n,
                p,
                time: outcome.cost.time,
                work: outcome.cost.work,
                seq_steps: width as u64,
            });
        }
    }
    out
}

/// Measured costs of all three Theorem 1 operations at `p*`.
#[derive(Debug, Clone)]
pub struct T1OpsRow {
    /// Heap size.
    pub n: usize,
    /// Processors.
    pub p: usize,
    /// `Insert` (singleton Union) time.
    pub insert_time: u64,
    /// `Extract-Min` (reduction + children Union) time.
    pub extract_time: u64,
    /// `Union` with an equal-size heap, time.
    pub union_time: u64,
}

/// Measure Insert/Extract-Min/Union on a random heap of `2^bits - 1` keys.
pub fn theorem1_ops(bits_list: &[usize]) -> Vec<T1OpsRow> {
    let mut rng = workloads::rng(0x10_05);
    bits_list
        .iter()
        .map(|&bits| {
            let n = (1usize << bits) - 1;
            let p = theorem_p(n);
            // n = 2^k - 1: all tree orders present (the busiest root array).
            let mut h = workloads::random_heap(&mut rng, n);
            let before = h.pram_ledger().time;
            let got = h.extract_min_pram(p);
            assert!(got.is_some());
            let extract_time = h.pram_ledger().time - before;
            // Insert into the (n-2^j)-shaped heap left behind.
            let before = h.pram_ledger().time;
            h.insert_pram(0, p);
            let insert_time = h.pram_ledger().time - before;
            // Union of two fresh all-ones heaps (maximal carry chains).
            let union_time = {
                let mut a = workloads::random_heap(&mut rng, n);
                let before = a.pram_ledger().time;
                a.meld_pram(workloads::random_heap(&mut rng, n), p);
                a.pram_ledger().time - before
            };
            T1OpsRow {
                n,
                p,
                insert_time,
                extract_time,
                union_time,
            }
        })
        .collect()
}

/// Measured `Make-Queue` (parallel initialization) costs.
#[derive(Debug, Clone)]
pub struct MakeQueueRow {
    /// Keys.
    pub n: usize,
    /// Processors.
    pub p: usize,
    /// Measured PRAM time.
    pub time: u64,
    /// Measured PRAM work (= links performed).
    pub work: u64,
}

/// Measure the parallel `Make-Queue` across sizes and processor counts.
pub fn make_queue(ns: &[usize], ps: &[usize]) -> Vec<MakeQueueRow> {
    let mut rng = workloads::rng(0x3A4E);
    let mut out = Vec::new();
    for &n in ns {
        let keys = workloads::random_keys(&mut rng, n);
        for &p in ps {
            let (h, cost) =
                meldpq::ParBinomialHeap::from_keys_pram(&keys, p).expect("EREW-legal build");
            assert_eq!(h.len(), n);
            out.push(MakeQueueRow {
                n,
                p,
                time: cost.time,
                work: cost.work,
            });
        }
    }
    out
}

// ====================================================================
// T2 — Theorem 2: amortized Delete
// ====================================================================

/// One measurement of a Delete batch.
#[derive(Debug, Clone)]
pub struct T2Row {
    /// Live keys at the start.
    pub n: usize,
    /// Processors (`⌈log n / log log n⌉`).
    pub p: usize,
    /// Deletions performed (one arrange threshold's worth).
    pub deletes: usize,
    /// Total Take-Up cost over the batch.
    pub take_up: Cost,
    /// Arrange-Heap cost (fires once at the end of the batch).
    pub arrange: Cost,
    /// Amortized time per Delete.
    pub amortized_time: f64,
    /// Amortized work per Delete.
    pub amortized_work: f64,
    /// Eager-deletion baseline: total cost for the same victims.
    pub eager: Cost,
}

/// Delete exactly one threshold batch of random internal nodes from a heap
/// of `n` keys and decompose the measured costs.
pub fn theorem2(ns: &[usize]) -> Vec<T2Row> {
    use rand::Rng;
    let mut rng = workloads::rng(0xBEEF);
    let mut out = Vec::new();
    for &n in ns {
        let p = theorem_p(n);
        // Setup is unmetered (from_keys_fast); only the delete batch below
        // is measured.
        let keys: Vec<i64> = (0..n as i64).collect();
        let mut lazy = LazyBinomialHeap::from_keys_fast(p, keys.iter().copied());
        let mut eager = LazyBinomialHeap::from_keys_fast(p, keys.iter().copied());
        let lazy_ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let eager_ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let batch = lazy.arrange_threshold();
        // Pick internal victims (non-roots) valid in BOTH heaps; the two
        // heaps are built identically so handles coincide structurally.
        let mut victims: Vec<usize> = Vec::new();
        let mut tries = 0;
        while victims.len() < batch && tries < 100 * batch {
            tries += 1;
            let i = rng.gen_range(0..n);
            if victims.contains(&i) {
                continue;
            }
            if lazy.parent_of(lazy_ids[i]).is_some() && eager.parent_of(eager_ids[i]).is_some() {
                victims.push(i);
            }
        }
        lazy.reset_cost_log();
        eager.reset_cost_log();
        for &i in &victims {
            lazy.delete(lazy_ids[i]);
        }
        for &i in &victims {
            eager.delete_eager(eager_ids[i]);
        }
        let sum_of = |h: &LazyBinomialHeap, kind: OpKind| -> Cost {
            h.cost_log()
                .iter()
                .filter(|(k, _)| *k == kind)
                .fold(Cost::ZERO, |acc, (_, c)| acc + *c)
        };
        let take_up = sum_of(&lazy, OpKind::TakeUp);
        let arrange = sum_of(&lazy, OpKind::ArrangeHeap);
        let eager_cost = sum_of(&eager, OpKind::EagerDelete) + sum_of(&eager, OpKind::ExtractMin);
        let d = victims.len().max(1) as f64;
        out.push(T2Row {
            n,
            p,
            deletes: victims.len(),
            take_up,
            arrange,
            amortized_time: (take_up.time + arrange.time) as f64 / d,
            amortized_work: (take_up.work + arrange.work) as f64 / d,
            eager: eager_cost,
        });
    }
    out
}

// ====================================================================
// T3 — Theorem 3: hypercube b-Union / amortized buffered ops
// ====================================================================

/// One measurement of the distributed queue at a bandwidth.
#[derive(Debug, Clone)]
pub struct T3Row {
    /// Cube dimension.
    pub q: usize,
    /// Bandwidth.
    pub b: usize,
    /// Items pushed through the queue.
    pub ops: usize,
    /// Total communication time over all multi-operations.
    pub total_time: u64,
    /// Total words moved.
    pub words: u64,
    /// Amortized communication time per single `Insert`/`Extract-Min`.
    pub amortized_time: f64,
    /// Mean time of one `b-Union`-backed multi-operation.
    pub per_multiop_time: f64,
}

/// Drive `n_ops` inserts followed by `n_ops` extracts at each bandwidth —
/// the A4 sweep and the Theorem 3 evidence.
pub fn theorem3(q: usize, bs: &[usize], n_ops: usize) -> Vec<T3Row> {
    use hypercube::NetStats;
    use rand::Rng;
    let mut out = Vec::new();
    for &b in bs {
        let mut rng = workloads::rng(0x7_3 + b as u64);
        let mut pq = DistributedPq::new(q, b);
        for _ in 0..n_ops {
            pq.insert(rng.gen_range(-1_000_000..1_000_000))
                .expect("fault-free net");
        }
        let mut drained = 0usize;
        while pq.extract_min().expect("fault-free net").is_some() {
            drained += 1;
        }
        assert_eq!(drained, n_ops);
        let ledger = pq.ledger();
        let totals = ledger
            .iter()
            .fold(NetStats::default(), |acc, (_, s)| acc.merge(s));
        let (total_time, words) = (totals.time, totals.word_hops);
        let multis = ledger.len().max(1) as f64;
        out.push(T3Row {
            q,
            b,
            ops: 2 * n_ops,
            total_time,
            words,
            amortized_time: total_time as f64 / (2 * n_ops) as f64,
            per_multiop_time: total_time as f64 / multis,
        });
    }
    out
}

// ====================================================================
// A1 — ablation: carry-chain union vs ripple-carry union
// ====================================================================

/// Dependent-step comparison on the all-ones worst case.
#[derive(Debug, Clone)]
pub struct A1Row {
    /// Heap size (`2^bits - 1`).
    pub n: usize,
    /// Ripple-carry dependent link chain (sequential union's critical path).
    pub ripple_chain: u64,
    /// PRAM time with `p = ⌈log n / log log n⌉` processors.
    pub pram_time: u64,
    /// PRAM time with 1 processor (sanity: ≈ total work).
    pub pram_time_p1: u64,
}

/// Measure A1 across sizes.
pub fn ablation_a1(bits_list: &[usize]) -> Vec<A1Row> {
    bits_list
        .iter()
        .map(|&bits| {
            let n = (1usize << bits) - 1;
            let p = theorem_p(n);
            let rows = theorem1(&[bits], &[1, p]);
            A1Row {
                n,
                ripple_chain: rows[0].seq_steps,
                pram_time: rows[1].time,
                pram_time_p1: rows[0].time,
            }
        })
        .collect()
}

/// Sequential textbook Delete baseline (IndexedBinomialHeap): primitive op
/// counts per delete — grows with `log n`, the quantity the lazy scheme's
/// `O(log log n)` amortized bound beats asymptotically.
#[derive(Debug, Clone)]
pub struct A2SeqRow {
    /// Heap size.
    pub n: usize,
    /// Deletes performed.
    pub deletes: usize,
    /// Comparisons per delete.
    pub comparisons_per_delete: f64,
    /// Structural ops (links + bubble swaps) per delete.
    pub links_per_delete: f64,
}

/// Measure the sequential delete baseline over one threshold-sized batch.
pub fn ablation_a2_sequential(ns: &[usize]) -> Vec<A2SeqRow> {
    use rand::Rng;
    use seqheaps::IndexedBinomialHeap;
    let mut rng = workloads::rng(0xA2);
    ns.iter()
        .map(|&n| {
            let mut h = IndexedBinomialHeap::new();
            let ids: Vec<_> = (0..n as i64).map(|k| h.insert(k)).collect();
            let batch = theorem_p(n).max(2); // same batch size scale as T2
            h.stats().reset();
            let mut deleted = 0usize;
            while deleted < batch {
                let id = ids[rng.gen_range(0..ids.len())];
                if h.key_of(id).is_some() {
                    h.delete(id);
                    deleted += 1;
                }
            }
            A2SeqRow {
                n,
                deletes: batch,
                comparisons_per_delete: h.stats().comparisons() as f64 / batch as f64,
                links_per_delete: h.stats().links() as f64 / batch as f64,
            }
        })
        .collect()
}

// ====================================================================
// A3 — ablation: Gray-code mapping vs identity mapping
// ====================================================================

/// Link-hop comparison for degree promotions (`Property 3`).
#[derive(Debug, Clone)]
pub struct A3Row {
    /// Cube dimension.
    pub q: usize,
    /// Total hop distance for promotions `i → i+1`, `i = 0..L`, under the
    /// Gray-code mapping (always 1 per promotion).
    pub gray_hops: u64,
    /// Same under the naive identity mapping `deg mod 2^q` (no Gray code).
    pub identity_hops: u64,
}

/// Sum the promotion distances over `levels` consecutive degrees.
pub fn ablation_a3(qs: &[usize], levels: usize) -> Vec<A3Row> {
    use hypercube::gray::{gray, hamming};
    qs.iter()
        .map(|&q| {
            let p = 1usize << q;
            let mut gray_hops = 0u64;
            let mut identity_hops = 0u64;
            for i in 0..levels {
                gray_hops += hamming(gray(i % p), gray((i + 1) % p)) as u64;
                identity_hops += hamming(i % p, (i + 1) % p) as u64;
            }
            A3Row {
                q,
                gray_hops,
                identity_hops,
            }
        })
        .collect()
}

// ====================================================================
// A3 (measured): full queue workload under Gray vs Identity mapping
// ====================================================================

/// End-to-end communication comparison of the two mappings.
#[derive(Debug, Clone)]
pub struct A3MeasuredRow {
    /// Cube dimension.
    pub q: usize,
    /// Bandwidth.
    pub b: usize,
    /// Network time under the paper's Gray mapping.
    pub gray_time: u64,
    /// Word·hops under Gray.
    pub gray_words: u64,
    /// Network time under the identity mapping.
    pub identity_time: u64,
    /// Word·hops under identity.
    pub identity_words: u64,
}

/// Run the same insert/extract workload under both mappings and compare the
/// measured network cost (the end-to-end version of [`ablation_a3`]).
pub fn ablation_a3_measured(q: usize, b: usize, n_ops: usize) -> A3MeasuredRow {
    use dmpq::mapping::MappingKind;
    use rand::Rng;
    let run = |kind: MappingKind| -> (u64, u64) {
        let mut rng = workloads::rng(0xA3);
        let mut pq = DistributedPq::with_mapping(q, b, kind);
        for _ in 0..n_ops {
            pq.insert(rng.gen_range(-1_000_000..1_000_000))
                .expect("fault-free net");
        }
        while pq.extract_min().expect("fault-free net").is_some() {}
        let s = pq.net_stats();
        (s.time, s.word_hops)
    };
    let (gray_time, gray_words) = run(MappingKind::Gray);
    let (identity_time, identity_words) = run(MappingKind::Identity);
    A3MeasuredRow {
        q,
        b,
        gray_time,
        gray_words,
        identity_time,
        identity_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a3_measured_gray_moves_fewer_words() {
        let r = ablation_a3_measured(3, 8, 128);
        assert!(
            r.identity_words > r.gray_words,
            "identity mapping must move more words: {} !> {}",
            r.identity_words,
            r.gray_words
        );
    }

    #[test]
    fn figure2_iva_matches_paper() {
        let plan = figure2_plan();
        let got: Vec<i64> = (0..14).map(|i| plan.i_value_a[i].unwrap().key).collect();
        assert_eq!(got, figure2_expected_iva());
        // The overflow position: the chain ending at 13 yields B_14.
        assert!(plan.s[14]);
        assert_eq!(plan.class[13], PointType::End);
    }

    #[test]
    fn figure2_types_match_paper() {
        let plan = figure2_plan();
        use PointType::*;
        let expect = [
            Independent,
            Start,
            Internal,
            Internal,
            Internal,
            Internal,
            Internal,
            End,
            Independent,
            Start,
            Internal,
            Internal,
            Internal,
            End,
        ];
        assert_eq!(&plan.class[..14], &expect);
    }

    #[test]
    fn figure3_matches_paper() {
        let st = figure3();
        // D_{p(x)}: z (key 1) at slot 0, x (key 4) at slot 1.
        assert_eq!(st.d_p, vec![(0, 1), (1, 4)]);
        // L_{p(x)}: y (key 2) at slot 2.
        assert_eq!(st.l_p, vec![(2, 2)]);
        // x retains s (key 5) as its empty child.
        assert_eq!(st.x_children, vec![5]);
        // y gains w: children t (key 3) and w (key 6).
        assert_eq!(st.y_children, vec![3, 6]);
    }

    #[test]
    fn figure4_loads() {
        let (_, rows, load) = figure4_rows();
        assert!(!rows.is_empty());
        // 27 nodes total.
        assert_eq!(load.iter().sum::<usize>(), 27);
        // Degree-0 nodes dominate processor Π(0) = 0 (and Π(0) also hosts
        // the B_4 root, degree 4 ≡ 0 mod 4).
        assert!(load[0] > load[1]);
    }

    #[test]
    fn t1_time_shrinks_with_p() {
        let rows = theorem1(&[16], &[1, 2, 4, 8]);
        for w in rows.windows(2) {
            assert!(w[1].time <= w[0].time);
        }
        // Work never explodes past a constant of the p=1 time.
        assert!(rows[3].work <= 2 * rows[0].time);
    }

    #[test]
    fn make_queue_scales() {
        let rows = make_queue(&[1024], &[1, 4]);
        assert_eq!(rows[0].work, rows[1].work);
        assert!(rows[1].time < rows[0].time / 2);
    }

    #[test]
    fn t2_amortized_below_arrange_total() {
        let rows = theorem2(&[1 << 10]);
        let r = &rows[0];
        assert!(r.deletes >= 1);
        assert!(r.amortized_time > 0.0);
        assert!(r.amortized_time < (r.take_up.time + r.arrange.time) as f64);
    }

    #[test]
    fn t3_amortized_falls_with_bandwidth() {
        let rows = theorem3(2, &[2, 16], 64);
        assert!(rows[1].amortized_time < rows[0].amortized_time);
    }

    #[test]
    fn a2_sequential_cost_grows_with_log_n() {
        let rows = ablation_a2_sequential(&[1 << 8, 1 << 16]);
        assert!(rows[1].links_per_delete > rows[0].links_per_delete);
    }

    #[test]
    fn a3_gray_always_one_hop() {
        let rows = ablation_a3(&[2, 3, 4], 64);
        for r in &rows {
            assert_eq!(r.gray_hops, 64);
            assert!(r.identity_hops > r.gray_hops);
        }
    }
}
