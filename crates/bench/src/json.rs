//! Minimal JSON emission for the report binaries' `--json` mode, so the
//! experiment tables can be consumed by plotting scripts without parsing
//! aligned text. Deliberately dependency-free: the values we emit are flat
//! records of numbers and short strings.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum J {
    /// Integer.
    Int(i64),
    /// Unsigned (kept separate to avoid lossy casts of u64 meters).
    UInt(u64),
    /// Float (serialised with enough precision for replotting).
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Array.
    Arr(Vec<J>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, J)>),
}

impl J {
    /// Object constructor from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, J)>>(pairs: I) -> J {
        J::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for J {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            J::Int(v) => write!(f, "{v}"),
            J::UInt(v) => write!(f, "{v}"),
            J::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            J::Str(s) => escape(s, f),
            J::Bool(b) => write!(f, "{b}"),
            J::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            J::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Whether the process arguments request JSON output.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

// ---- serializers for the experiment rows ----

use crate::experiments::{A1Row, A3MeasuredRow, A3Row, T1OpsRow, T1Row, T2Row, T3Row};

/// T1 rows → JSON array.
pub fn t1_json(rows: &[T1Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("n", J::UInt(r.n as u64)),
                    ("p", J::UInt(r.p as u64)),
                    ("time", J::UInt(r.time)),
                    ("work", J::UInt(r.work)),
                    ("seq_steps", J::UInt(r.seq_steps)),
                ])
            })
            .collect(),
    )
}

/// T1 per-operation rows → JSON array.
pub fn t1_ops_json(rows: &[T1OpsRow]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("n", J::UInt(r.n as u64)),
                    ("p", J::UInt(r.p as u64)),
                    ("insert_time", J::UInt(r.insert_time)),
                    ("extract_time", J::UInt(r.extract_time)),
                    ("union_time", J::UInt(r.union_time)),
                ])
            })
            .collect(),
    )
}

/// T2 rows → JSON array.
pub fn t2_json(rows: &[T2Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("n", J::UInt(r.n as u64)),
                    ("p", J::UInt(r.p as u64)),
                    ("deletes", J::UInt(r.deletes as u64)),
                    ("take_up_time", J::UInt(r.take_up.time)),
                    ("take_up_work", J::UInt(r.take_up.work)),
                    ("arrange_time", J::UInt(r.arrange.time)),
                    ("arrange_work", J::UInt(r.arrange.work)),
                    ("amortized_time", J::Num(r.amortized_time)),
                    ("amortized_work", J::Num(r.amortized_work)),
                    ("eager_time", J::UInt(r.eager.time)),
                ])
            })
            .collect(),
    )
}

/// T3 rows → JSON array.
pub fn t3_json(rows: &[T3Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("q", J::UInt(r.q as u64)),
                    ("b", J::UInt(r.b as u64)),
                    ("ops", J::UInt(r.ops as u64)),
                    ("total_time", J::UInt(r.total_time)),
                    ("words", J::UInt(r.words)),
                    ("amortized_time", J::Num(r.amortized_time)),
                    ("per_multiop_time", J::Num(r.per_multiop_time)),
                ])
            })
            .collect(),
    )
}

/// A1 rows → JSON array.
pub fn a1_json(rows: &[A1Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("n", J::UInt(r.n as u64)),
                    ("ripple_chain", J::UInt(r.ripple_chain)),
                    ("pram_time", J::UInt(r.pram_time)),
                    ("pram_time_p1", J::UInt(r.pram_time_p1)),
                ])
            })
            .collect(),
    )
}

/// A3 rows → JSON array.
pub fn a3_json(rows: &[A3Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("q", J::UInt(r.q as u64)),
                    ("gray_hops", J::UInt(r.gray_hops)),
                    ("identity_hops", J::UInt(r.identity_hops)),
                ])
            })
            .collect(),
    )
}

/// Measured A3 row → JSON object.
pub fn a3_measured_json(r: &A3MeasuredRow) -> J {
    J::obj([
        ("q", J::UInt(r.q as u64)),
        ("b", J::UInt(r.b as u64)),
        ("gray_time", J::UInt(r.gray_time)),
        ("gray_words", J::UInt(r.gray_words)),
        ("identity_time", J::UInt(r.identity_time)),
        ("identity_words", J::UInt(r.identity_words)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(J::Int(-5).to_string(), "-5");
        assert_eq!(J::UInt(7).to_string(), "7");
        assert_eq!(J::Bool(true).to_string(), "true");
        assert_eq!(J::Num(1.5).to_string(), "1.5");
        assert_eq!(J::Num(f64::NAN).to_string(), "null");
        assert_eq!(J::Str("a\"b\\c\nd".into()).to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nested_structures() {
        let v = J::obj([
            ("xs", J::Arr(vec![J::Int(1), J::Int(2)])),
            ("name", J::Str("t1".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"xs":[1,2],"name":"t1"}"#);
    }

    #[test]
    fn experiment_rows_serialise() {
        let rows = crate::experiments::theorem1(&[8], &[1, 2]);
        let s = t1_json(&rows).to_string();
        assert!(s.starts_with('['));
        assert!(s.contains("\"work\""));
        // Every row appears.
        assert_eq!(s.matches("{\"n\"").count(), 2);
    }
}
