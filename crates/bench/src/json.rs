//! JSON emission for the report binaries' `--json` mode. The value type
//! [`J`] and the printer live in `obs::json` (the telemetry layer shares
//! them for its `TELEMETRY_*.json` documents); this module re-exports them
//! and keeps the experiment-row serializers.

pub use obs::json::{json_mode, J};

// ---- serializers for the experiment rows ----

use crate::experiments::{A1Row, A3MeasuredRow, A3Row, T1OpsRow, T1Row, T2Row, T3Row};

/// T1 rows → JSON array.
pub fn t1_json(rows: &[T1Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("n", J::UInt(r.n as u64)),
                    ("p", J::UInt(r.p as u64)),
                    ("time", J::UInt(r.time)),
                    ("work", J::UInt(r.work)),
                    ("seq_steps", J::UInt(r.seq_steps)),
                ])
            })
            .collect(),
    )
}

/// T1 per-operation rows → JSON array.
pub fn t1_ops_json(rows: &[T1OpsRow]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("n", J::UInt(r.n as u64)),
                    ("p", J::UInt(r.p as u64)),
                    ("insert_time", J::UInt(r.insert_time)),
                    ("extract_time", J::UInt(r.extract_time)),
                    ("union_time", J::UInt(r.union_time)),
                ])
            })
            .collect(),
    )
}

/// T2 rows → JSON array.
pub fn t2_json(rows: &[T2Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("n", J::UInt(r.n as u64)),
                    ("p", J::UInt(r.p as u64)),
                    ("deletes", J::UInt(r.deletes as u64)),
                    ("take_up_time", J::UInt(r.take_up.time)),
                    ("take_up_work", J::UInt(r.take_up.work)),
                    ("arrange_time", J::UInt(r.arrange.time)),
                    ("arrange_work", J::UInt(r.arrange.work)),
                    ("amortized_time", J::Num(r.amortized_time)),
                    ("amortized_work", J::Num(r.amortized_work)),
                    ("eager_time", J::UInt(r.eager.time)),
                ])
            })
            .collect(),
    )
}

/// T3 rows → JSON array.
pub fn t3_json(rows: &[T3Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("q", J::UInt(r.q as u64)),
                    ("b", J::UInt(r.b as u64)),
                    ("ops", J::UInt(r.ops as u64)),
                    ("total_time", J::UInt(r.total_time)),
                    ("words", J::UInt(r.words)),
                    ("amortized_time", J::Num(r.amortized_time)),
                    ("per_multiop_time", J::Num(r.per_multiop_time)),
                ])
            })
            .collect(),
    )
}

/// A1 rows → JSON array.
pub fn a1_json(rows: &[A1Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("n", J::UInt(r.n as u64)),
                    ("ripple_chain", J::UInt(r.ripple_chain)),
                    ("pram_time", J::UInt(r.pram_time)),
                    ("pram_time_p1", J::UInt(r.pram_time_p1)),
                ])
            })
            .collect(),
    )
}

/// A3 rows → JSON array.
pub fn a3_json(rows: &[A3Row]) -> J {
    J::Arr(
        rows.iter()
            .map(|r| {
                J::obj([
                    ("q", J::UInt(r.q as u64)),
                    ("gray_hops", J::UInt(r.gray_hops)),
                    ("identity_hops", J::UInt(r.identity_hops)),
                ])
            })
            .collect(),
    )
}

/// Measured A3 row → JSON object.
pub fn a3_measured_json(r: &A3MeasuredRow) -> J {
    J::obj([
        ("q", J::UInt(r.q as u64)),
        ("b", J::UInt(r.b as u64)),
        ("gray_time", J::UInt(r.gray_time)),
        ("gray_words", J::UInt(r.gray_words)),
        ("identity_time", J::UInt(r.identity_time)),
        ("identity_words", J::UInt(r.identity_words)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_rows_serialise() {
        let rows = crate::experiments::theorem1(&[8], &[1, 2]);
        let s = t1_json(&rows).to_string();
        assert!(s.starts_with('['));
        assert!(s.contains("\"work\""));
        // Every row appears.
        assert_eq!(s.matches("{\"n\"").count(), 2);
    }
}
