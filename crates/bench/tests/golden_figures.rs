//! Golden-output tests: the *rendered* figure tables are pinned verbatim so
//! the paper reproduction cannot drift silently (value tests live next to
//! the experiments; these catch formatting/indexing regressions too).

use bench::experiments::{figure1_rows, figure2_rows, figure4_rows};
use bench::table::render;

#[test]
fn figure1_renders_exactly() {
    let (h, rows) = figure1_rows();
    let expected = "\
Position  a_i  b_i  g_i  p_i  c_i  s_i  Type
--------------------------------------------
       7    0    0    0    0    0    1   ind
       6    1    0    0    1    1    0   end
       5    1    1    1    0    1    0   str
       4    0    0    0    0    0    1   ind
       3    1    0    0    1    1    0   end
       2    0    1    0    1    1    0   int
       1    1    1    1    0    1    0   str
       0    0    1    0    1    0    1   ind
";
    assert_eq!(render(&h, &rows), expected);
}

#[test]
fn figure2_renders_exactly() {
    let (h, rows) = figure2_rows();
    let expected = "\
Position  H1  H2  Type  I_lim  I_valueB  I_valueA
-------------------------------------------------
      13   6   -   end      0         6         3
      12   -   3   int      0         3         3
      11   4   -   int      0         4         4
      10   8   -   int      0         8         5
       9   7   5   str      1         5         5
       8   6  13   ind      1         6         6
       7  12   -   end      0        12         2
       6   -   9   int      0         9         2
       5   2   -   int      0         2         2
       4   -   7   int      0         7         3
       3   -   5   int      0         5         3
       2  10   -   int      0        10         3
       1   3   4   str      1         3         3
       0   5   -   ind      1         5         5
";
    assert_eq!(render(&h, &rows), expected);
}

#[test]
fn figure4_loads_render_exactly() {
    let (_, rows, load) = figure4_rows();
    // Degree → (processor, count) for the 27-node heap on Q_2.
    let flat: Vec<(String, String, String)> = rows
        .into_iter()
        .map(|r| (r[0].clone(), r[1].clone(), r[2].clone()))
        .collect();
    // 27 = B_0 + B_1 + B_3 + B_4; each B_k holds 2^{k-j-1} nodes of degree
    // j plus its root of degree k: deg0 = 1+1+4+8, deg1 = 1+2+4, deg2 = 1+2,
    // deg3 = 1+1, deg4 = 1.
    assert_eq!(
        flat,
        vec![
            ("0".into(), "0".into(), "14".into()),
            ("1".into(), "1".into(), "7".into()),
            ("2".into(), "3".into(), "3".into()),
            ("3".into(), "2".into(), "2".into()),
            ("4".into(), "0".into(), "1".into()),
        ]
    );
    // Processor loads: Π(0)=0 hosts deg 0 and 4; Π(1)=1 deg 1; Π(2)=3 deg 2;
    // Π(3)=2 deg 3.
    assert_eq!(load, vec![15, 7, 2, 3]);
}
