//! W1: the paper's binomial heap against the meldable baselines
//! (leftist/skew/pairing) and the non-meldable binary heap.

use std::time::Duration;

use bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use seqheaps::{
    BinaryHeapAdapter, BinomialHeap, DaryHeap, LeftistHeap, MeldableHeap, PairingHeap, SkewHeap,
};

fn heapsort<H: MeldableHeap<i64>>(keys: &[i64]) -> Vec<i64> {
    H::from_iter_keys(keys.iter().copied()).into_sorted_vec()
}

fn bench_heapsort(c: &mut Criterion) {
    let mut rng = workloads::rng(0x8057);
    let keys = workloads::random_keys(&mut rng, 20_000);
    let mut group = c.benchmark_group("heapsort_20k");
    group.bench_function("binomial", |b| {
        b.iter(|| heapsort::<BinomialHeap<i64>>(&keys))
    });
    group.bench_function("leftist", |b| {
        b.iter(|| heapsort::<LeftistHeap<i64>>(&keys))
    });
    group.bench_function("skew", |b| b.iter(|| heapsort::<SkewHeap<i64>>(&keys)));
    group.bench_function("pairing", |b| {
        b.iter(|| heapsort::<PairingHeap<i64>>(&keys))
    });
    group.bench_function("binary", |b| {
        b.iter(|| heapsort::<BinaryHeapAdapter<i64>>(&keys))
    });
    group.bench_function("dary4", |b| b.iter(|| heapsort::<DaryHeap<i64, 4>>(&keys)));
    group.bench_function("dary8", |b| b.iter(|| heapsort::<DaryHeap<i64, 8>>(&keys)));
    group.finish();
}

/// Meld-heavy workload: build `k` heaps of `m` keys each, meld them all,
/// extract 100 minima. The meldable structures pay O(log) per meld; the
/// binary heap pays O(m log) — the reason meldability matters.
fn meld_storm<H: MeldableHeap<i64>>(parts: &[Vec<i64>]) -> Vec<i64> {
    let mut acc = H::new();
    for part in parts {
        let h = H::from_iter_keys(part.iter().copied());
        acc.meld(h);
    }
    (0..100).filter_map(|_| acc.extract_min()).collect()
}

fn bench_meld_storm(c: &mut Criterion) {
    let mut rng = workloads::rng(0x3E1D);
    let parts: Vec<Vec<i64>> = (0..64)
        .map(|_| workloads::random_keys(&mut rng, 2_000))
        .collect();
    let mut group = c.benchmark_group("meld_storm_64x2k");
    group.bench_function("binomial", |b| {
        b.iter(|| meld_storm::<BinomialHeap<i64>>(&parts))
    });
    group.bench_function("leftist", |b| {
        b.iter(|| meld_storm::<LeftistHeap<i64>>(&parts))
    });
    group.bench_function("skew", |b| b.iter(|| meld_storm::<SkewHeap<i64>>(&parts)));
    group.bench_function("pairing", |b| {
        b.iter(|| meld_storm::<PairingHeap<i64>>(&parts))
    });
    group.bench_function("binary", |b| {
        b.iter(|| meld_storm::<BinaryHeapAdapter<i64>>(&parts))
    });
    group.bench_function("dary4", |b| {
        b.iter(|| meld_storm::<DaryHeap<i64, 4>>(&parts))
    });
    group.finish();
}

/// Machine-independent comparison: comparisons + links per meld-storm run,
/// printed once so EXPERIMENTS.md can quote them.
fn bench_opcounts(c: &mut Criterion) {
    let mut rng = workloads::rng(0xC0);
    let parts: Vec<Vec<i64>> = (0..64)
        .map(|_| workloads::random_keys(&mut rng, 2_000))
        .collect();
    fn counts<H: MeldableHeap<i64>>(parts: &[Vec<i64>]) -> (u64, u64) {
        let mut acc = H::new();
        for part in parts {
            acc.meld(H::from_iter_keys(part.iter().copied()));
        }
        (acc.stats().comparisons(), acc.stats().links())
    }
    let (bc, bl) = counts::<BinomialHeap<i64>>(&parts);
    let (lc, ll) = counts::<LeftistHeap<i64>>(&parts);
    let (pc, pl) = counts::<PairingHeap<i64>>(&parts);
    let (yc, yl) = counts::<BinaryHeapAdapter<i64>>(&parts);
    println!("op-counts (comparisons/links) for 64 melds of 2k keys:");
    println!("  binomial {bc}/{bl}  leftist {lc}/{ll}  pairing {pc}/{pl}  binary {yc}/{yl}");
    // A token benchmark so criterion registers the group.
    c.bench_function("opcount_noop", |b| b.iter(|| 1 + 1));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_heapsort, bench_meld_storm, bench_opcounts
}
criterion_main!(benches);
