//! W2: the wall-clock trajectory — what the hardware actually sees.
//!
//! The deterministic PRAM meters (`BENCH_baseline.json`) prove the *theorem*
//! bounds; this suite measures *seconds*. It covers the four operations the
//! zero-copy representation (`meldpq::pool`) is about:
//!
//! * `meld` — same-pool zero-copy plan application vs the legacy
//!   arena-absorb path, with a hard gate: zero-copy must win by ≥10× at
//!   n = 2^20 (it is O(log n) pointer writes vs Θ(n) node moves).
//! * `multi_insert` / `multi_extract_min` — the bulk kernels across both
//!   planning engines.
//! * `mixed` — an insert/extract-heavy workload mirroring W1's op mix.
//! * plus the prefix-scan and build primitives that back them.
//!
//! Results are appended to `reports/BENCH_wallclock.json` (same `obs::json`
//! plumbing as telemetry) so every PR extends a perf trajectory. Quick mode
//! for CI: `cargo bench --bench wallclock -- --warm-up-time 0.2
//! --measurement-time 0.5`; pass `--full` (nightly) to add the 2^22 sizes.

use std::time::Duration;

use bench::workloads;
use criterion::{BatchSize, BenchResult, BenchmarkId, Criterion};
use meldpq::{Engine, HeapPool, ParBinomialHeap};
use obs::json::J;

/// The meld sizes; 2^22 only with `--full`.
fn meld_sizes(full: bool) -> Vec<usize> {
    let mut v = vec![1usize << 10, 1 << 14, 1 << 18, 1 << 20];
    if full {
        v.push(1 << 22);
    }
    v
}

fn bulk_sizes(full: bool) -> Vec<usize> {
    let mut v = vec![1usize << 14, 1 << 18];
    if full {
        v.push(1 << 20);
    }
    v
}

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Sequential => "seq",
        Engine::Rayon => "rayon",
    }
}

/// Two heaps of n/2 keys each in one pool (zero-copy operand pair).
fn pooled_pair(n: usize, seed: u64) -> (HeapPool<i64>, meldpq::PooledHeap, meldpq::PooledHeap) {
    let mut rng = workloads::rng(seed ^ n as u64);
    let keys = workloads::random_keys(&mut rng, n);
    let mut pool = HeapPool::with_capacity(n);
    let a = pool.from_keys_parallel_with(&keys[..n / 2], Engine::Sequential);
    let b = pool.from_keys_parallel_with(&keys[n / 2..], Engine::Sequential);
    (pool, a, b)
}

/// Two free-standing heaps of n/2 keys each (absorb operand pair).
fn heap_pair(n: usize, seed: u64) -> (ParBinomialHeap<i64>, ParBinomialHeap<i64>) {
    let mut rng = workloads::rng(seed ^ n as u64);
    let keys = workloads::random_keys(&mut rng, n);
    (
        ParBinomialHeap::from_keys_parallel(&keys[..n / 2]),
        ParBinomialHeap::from_keys_parallel(&keys[n / 2..]),
    )
}

fn bench_meld(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("meld");
    for n in meld_sizes(full) {
        group.bench_with_input(BenchmarkId::new("zero_copy", n), &n, |b, &n| {
            b.iter_batched(
                || pooled_pair(n, 11),
                |(mut pool, mut a, b)| {
                    pool.meld_with(&mut a, b, Engine::Sequential);
                    (pool, a)
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("absorb", n), &n, |b, &n| {
            b.iter_batched(
                || heap_pair(n, 11),
                |(mut a, b)| {
                    a.meld(b, Engine::Sequential);
                    a
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_multi_insert(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("multi_insert");
    const BATCH: usize = 4096;
    for n in bulk_sizes(full) {
        let mut rng = workloads::rng(23 ^ n as u64);
        let keys = workloads::random_keys(&mut rng, n + BATCH);
        let base = ParBinomialHeap::from_keys_parallel(&keys[..n]);
        let batch: Vec<i64> = keys[n..].to_vec();
        for engine in [Engine::Sequential, Engine::Rayon] {
            let id = BenchmarkId::new(engine_name(engine), n);
            group.bench_with_input(id, &n, |b, _| {
                b.iter_batched(
                    || base.clone(),
                    |mut h| {
                        h.multi_insert_with(&batch, engine);
                        h
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_multi_extract(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("multi_extract_min");
    for n in bulk_sizes(full) {
        let k = n / 16;
        let mut rng = workloads::rng(31 ^ n as u64);
        let keys = workloads::random_keys(&mut rng, n);
        let base = ParBinomialHeap::from_keys_parallel(&keys);
        for engine in [Engine::Sequential, Engine::Rayon] {
            let id = BenchmarkId::new(format!("frontier_{}", engine_name(engine)), n);
            group.bench_with_input(id, &n, |b, _| {
                b.iter_batched(
                    || base.clone(),
                    |mut h| {
                        let out = h.multi_extract_min(k, engine);
                        (h, out)
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        // The pre-pool baseline: k sequential Extract-Min rounds.
        group.bench_with_input(BenchmarkId::new("extract_loop", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut h| {
                    let mut out = Vec::with_capacity(k);
                    for _ in 0..k {
                        out.push(h.extract_min(Engine::Sequential));
                    }
                    (h, out)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_mixed(c: &mut Criterion, _full: bool) {
    let mut group = c.benchmark_group("mixed");
    const OPS: usize = 1024;
    for n in [1usize << 14, 1 << 18] {
        let mut rng = workloads::rng(47 ^ n as u64);
        let keys = workloads::random_keys(&mut rng, n + OPS);
        let base = ParBinomialHeap::from_keys_parallel(&keys[..n]);
        let fresh: Vec<i64> = keys[n..].to_vec();
        for engine in [Engine::Sequential, Engine::Rayon] {
            let id = BenchmarkId::new(engine_name(engine), n);
            group.bench_with_input(id, &n, |b, _| {
                b.iter_batched(
                    || base.clone(),
                    |mut h| {
                        // 2:1 insert/extract mix, W1's ratio.
                        for (i, &k) in fresh.iter().enumerate() {
                            if i % 3 < 2 {
                                h.insert(k);
                            } else {
                                h.extract_min(engine);
                            }
                        }
                        h
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_scan");
    for n in [1usize << 14, 1 << 20] {
        let mut rng = workloads::rng(n as u64);
        let xs = workloads::random_keys(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| parscan::seq::scan_inclusive(&xs, |a, b| a.min(b)))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| parscan::par::scan_inclusive(&xs, i64::MAX, |a, b| a.min(b)))
        });
    }
    group.finish();
}

fn bench_bulk_build(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("bulk_build");
    for n in bulk_sizes(full) {
        let mut rng = workloads::rng(99 + n as u64);
        let keys = workloads::random_keys(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| ParBinomialHeap::from_keys(keys.iter().copied()))
        });
        group.bench_with_input(BenchmarkId::new("pooled_slab", n), &n, |b, _| {
            b.iter(|| ParBinomialHeap::<i64>::from_keys_parallel(&keys))
        });
    }
    group.finish();
}

/// The ≥10× meld gate at n = 2^20: the whole point of the pooled
/// representation, enforced so a regression fails CI rather than rotting.
const GATE_N: usize = 1 << 20;
const GATE_RATIO: f64 = 10.0;

fn find_mean(results: &[BenchResult], id: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.mean_ns as f64)
}

fn write_report(results: &[BenchResult], gate: &J, path: &std::path::Path) {
    let rows: Vec<J> = results
        .iter()
        .map(|r| {
            J::obj([
                ("id", J::Str(r.id.clone())),
                ("mean_ns", J::UInt(r.mean_ns)),
                ("min_ns", J::UInt(r.min_ns)),
                ("samples", J::UInt(r.samples as u64)),
            ])
        })
        .collect();
    let doc = J::obj([
        ("report", J::Str("wallclock".into())),
        ("unit", J::Str("ns/iter".into())),
        (
            "note",
            J::Str(
                "wall-clock means from the vendored criterion harness; \
                 machine-dependent, unlike the deterministic PRAM meters in \
                 BENCH_baseline.json"
                    .into(),
            ),
        ),
        ("results", J::Arr(rows)),
        ("gate", gate.clone()),
    ]);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_wallclock.json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .configure_from_args();

    bench_meld(&mut c, full);
    bench_multi_insert(&mut c, full);
    bench_multi_extract(&mut c, full);
    bench_mixed(&mut c, full);
    bench_scans(&mut c);
    bench_bulk_build(&mut c, full);

    let results = criterion::take_results();
    let zero = find_mean(&results, &format!("meld/zero_copy/{GATE_N}"));
    let absorb = find_mean(&results, &format!("meld/absorb/{GATE_N}"));
    let (gate, pass) = match (zero, absorb) {
        (Some(z), Some(a)) if z > 0.0 => {
            let ratio = a / z;
            let pass = ratio >= GATE_RATIO;
            (
                J::obj([
                    ("name", J::Str("meld_zero_copy_speedup".into())),
                    ("n", J::UInt(GATE_N as u64)),
                    ("zero_copy_mean_ns", J::Num(z)),
                    ("absorb_mean_ns", J::Num(a)),
                    ("ratio", J::Num(ratio)),
                    ("threshold", J::Num(GATE_RATIO)),
                    ("pass", J::Bool(pass)),
                ]),
                pass,
            )
        }
        _ => (
            J::obj([
                ("name", J::Str("meld_zero_copy_speedup".into())),
                ("pass", J::Bool(false)),
                ("error", J::Str("gate sizes missing from the run".into())),
            ]),
            false,
        ),
    };

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports/BENCH_wallclock.json");
    write_report(&results, &gate, &path);

    match (zero, absorb) {
        (Some(z), Some(a)) => println!(
            "meld gate @ n=2^20: absorb {a:.0} ns / zero-copy {z:.0} ns = {:.1}x (need ≥{GATE_RATIO}x)",
            a / z
        ),
        _ => println!("meld gate @ n=2^20: sizes missing"),
    }
    if !pass {
        eprintln!("FAIL: zero-copy meld did not beat absorb by ≥{GATE_RATIO}x at n=2^20");
        std::process::exit(1);
    }
}
