//! W2: the wall-clock trajectory — what the hardware actually sees.
//!
//! The deterministic PRAM meters (`BENCH_baseline.json`) prove the *theorem*
//! bounds; this suite measures *seconds*. It covers the operations the
//! zero-copy representation (`meldpq::pool`) and the fused rayon kernels are
//! about:
//!
//! * `meld` — same-pool zero-copy plan application vs the legacy
//!   arena-absorb path, with a hard gate: zero-copy must win by ≥10× at
//!   n = 2^20 (it is O(log n) pointer writes vs Θ(n) node moves).
//! * `multi_insert` — the paper's sequential reference (a batch of n keys is
//!   n `Insert`s) vs the fused bulk kernel (pooled slab build + one meld).
//!   Gate: the kernel must win by ≥2× at n = 2^18.
//! * `b_union` — the b-Union preprocessing sort: the general path must sort
//!   the concatenated key streams, the chunk-order fast path merges two
//!   already-sorted streams with the merge-path kernel (`dmpq::soa`).
//!   Gate: the merge must win by ≥2× at N = 2^18.
//! * `mixed` — an insert/extract-heavy workload mirroring W1's op mix, run
//!   under both planning engines. Gate: with the calibrated cutoffs the
//!   rayon engine must degenerate to the sequential plan for the O(log n)
//!   unions this workload issues, so `mixed/rayon/16384` must stay within
//!   1.2× of `mixed/seq/16384` — the regression this suite previously let
//!   rot (5.8× slower) can no longer land silently.
//! * `multi_extract_min`, plus the prefix-scan and build primitives.
//!
//! Results are appended to `reports/BENCH_wallclock.json` (same `obs::json`
//! plumbing as telemetry) so every PR extends a perf trajectory; the process
//! exits non-zero if **any** gate fails. Quick mode for CI: `cargo bench
//! --bench wallclock -- --warm-up-time 0.2 --measurement-time 0.5`; pass
//! `--full` (nightly) to add the 2^20/2^22 sizes. Pin `MELDPQ_PLAN_CUTOFF`
//! etc. to bypass the envelope calibration when determinism matters.

use std::time::Duration;

use bench::workloads;
use criterion::{BatchSize, BenchResult, BenchmarkId, Criterion};
use meldpq::{Engine, HeapPool, ParBinomialHeap};
use obs::json::J;
use service::ServiceBuilder;

/// The meld sizes; 2^22 only with `--full`.
fn meld_sizes(full: bool) -> Vec<usize> {
    let mut v = vec![1usize << 10, 1 << 14, 1 << 18, 1 << 20];
    if full {
        v.push(1 << 22);
    }
    v
}

fn bulk_sizes(full: bool) -> Vec<usize> {
    let mut v = vec![1usize << 14, 1 << 18];
    if full {
        v.push(1 << 20);
    }
    v
}

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Sequential => "seq",
        Engine::Rayon => "rayon",
    }
}

/// Two heaps of n/2 keys each in one pool (zero-copy operand pair).
fn pooled_pair(n: usize, seed: u64) -> (HeapPool<i64>, meldpq::PooledHeap, meldpq::PooledHeap) {
    let mut rng = workloads::rng(seed ^ n as u64);
    let keys = workloads::random_keys(&mut rng, n);
    let mut pool = HeapPool::with_capacity(n);
    let a = pool.from_keys_parallel_with(&keys[..n / 2], Engine::Sequential);
    let b = pool.from_keys_parallel_with(&keys[n / 2..], Engine::Sequential);
    (pool, a, b)
}

/// Two free-standing heaps of n/2 keys each (absorb operand pair).
fn heap_pair(n: usize, seed: u64) -> (ParBinomialHeap<i64>, ParBinomialHeap<i64>) {
    let mut rng = workloads::rng(seed ^ n as u64);
    let keys = workloads::random_keys(&mut rng, n);
    (
        ParBinomialHeap::from_keys_parallel(&keys[..n / 2]),
        ParBinomialHeap::from_keys_parallel(&keys[n / 2..]),
    )
}

fn bench_meld(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("meld");
    for n in meld_sizes(full) {
        group.bench_with_input(BenchmarkId::new("zero_copy", n), &n, |b, &n| {
            b.iter_batched(
                || pooled_pair(n, 11),
                |(mut pool, mut a, b)| {
                    pool.meld_with(&mut a, b, Engine::Sequential);
                    (pool, a)
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("absorb", n), &n, |b, &n| {
            b.iter_batched(
                || heap_pair(n, 11),
                |(mut a, b)| {
                    a.meld(b, Engine::Sequential);
                    a
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// `Multi-Insert` of a batch of n keys into a resident heap. The `seq` arm
/// is the paper's sequential reference — a batch is semantically n repeated
/// `Insert`s — and the `rayon` arm is the bulk kernel: pooled slab build of
/// the batch (fused planner up the build tree) plus one planned meld.
fn bench_multi_insert(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("multi_insert");
    const BASE: usize = 1 << 12;
    for n in bulk_sizes(full) {
        let mut rng = workloads::rng(23 ^ n as u64);
        let keys = workloads::random_keys(&mut rng, BASE + n);
        let base = ParBinomialHeap::from_keys_parallel(&keys[..BASE]);
        let batch: Vec<i64> = keys[BASE..].to_vec();
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut h| {
                    for &k in &batch {
                        h.insert(k);
                    }
                    h
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut h| {
                    h.multi_insert_with(&batch, Engine::Rayon);
                    h
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The b-Union preprocessing sort over N total keys. The `seq` arm is what
/// the general path must do — sort the concatenation from scratch (the
/// wall-clock stand-in for the metered bitonic network). The `rayon` arm is
/// the chunk-order fast path: both sides' SoA streams are already sorted, so
/// the union collapses to the merge-path kernel at the calibrated chunk
/// granularity.
fn bench_b_union(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("b_union");
    for n in bulk_sizes(full) {
        let mut rng = workloads::rng(61 ^ n as u64);
        let keys = workloads::random_keys(&mut rng, n);
        let (mut s1, mut s2) = (keys[..n / 2].to_vec(), keys[n / 2..].to_vec());
        s1.sort_unstable();
        s2.sort_unstable();
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| {
                let mut all = Vec::with_capacity(n);
                all.extend_from_slice(&s1);
                all.extend_from_slice(&s2);
                all.sort_unstable();
                all
            })
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| dmpq::soa::par_merge(&s1, &s2, meldpq::cutoff::bulk_join_cutoff()))
        });
    }
    group.finish();
}

fn bench_multi_extract(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("multi_extract_min");
    for n in bulk_sizes(full) {
        let k = n / 16;
        let mut rng = workloads::rng(31 ^ n as u64);
        let keys = workloads::random_keys(&mut rng, n);
        let base = ParBinomialHeap::from_keys_parallel(&keys);
        for engine in [Engine::Sequential, Engine::Rayon] {
            let id = BenchmarkId::new(format!("frontier_{}", engine_name(engine)), n);
            group.bench_with_input(id, &n, |b, _| {
                b.iter_batched(
                    || base.clone(),
                    |mut h| {
                        let out = h.multi_extract_min(k, engine);
                        (h, out)
                    },
                    BatchSize::LargeInput,
                )
            });
        }
        // The pre-pool baseline: k sequential Extract-Min rounds.
        group.bench_with_input(BenchmarkId::new("extract_loop", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut h| {
                    let mut out = Vec::with_capacity(k);
                    for _ in 0..k {
                        out.push(h.extract_min(Engine::Sequential));
                    }
                    (h, out)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_mixed(c: &mut Criterion, _full: bool) {
    let mut group = c.benchmark_group("mixed");
    const OPS: usize = 1024;
    for n in [1usize << 14, 1 << 18] {
        let mut rng = workloads::rng(47 ^ n as u64);
        let keys = workloads::random_keys(&mut rng, n + OPS);
        let base = ParBinomialHeap::from_keys_parallel(&keys[..n]);
        let fresh: Vec<i64> = keys[n..].to_vec();
        for engine in [Engine::Sequential, Engine::Rayon] {
            let id = BenchmarkId::new(engine_name(engine), n);
            group.bench_with_input(id, &n, |b, _| {
                b.iter_batched(
                    || base.clone(),
                    |mut h| {
                        // 2:1 insert/extract mix, W1's ratio.
                        for (i, &k) in fresh.iter().enumerate() {
                            if i % 3 < 2 {
                                h.insert(k);
                            } else {
                                h.extract_min(engine);
                            }
                        }
                        h
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// The always-on flight recorder's overhead on a mixed `QueueService`
/// workload: the `recorder_on` arm is the shipping configuration, the
/// `recorder_off` arm flips the process-wide kill switch. The gate holds
/// `on` within 1.1× of `off` — the budget that justifies leaving the
/// recorder enabled in release builds.
fn bench_flight(c: &mut Criterion, _full: bool) {
    let mut group = c.benchmark_group("flight");
    const OPS: usize = 4096;
    let mut rng = workloads::rng(83);
    let keys = workloads::random_keys(&mut rng, OPS);
    for (arm, enabled) in [("recorder_on", true), ("recorder_off", false)] {
        let id = BenchmarkId::new(arm, OPS);
        group.bench_with_input(id, &OPS, |b, _| {
            obs::flight::set_enabled(enabled);
            b.iter_batched(
                || {
                    let svc = ServiceBuilder::new().shards(1).build();
                    let q = svc.create_queue();
                    (svc, q)
                },
                |(svc, q)| {
                    // W1's 2:1 insert/extract mix through the sync surface
                    // (each op records begin/end events when enabled).
                    for (i, &k) in keys.iter().enumerate() {
                        if i % 3 < 2 {
                            svc.insert(q, k).expect("insert");
                        } else {
                            let _ = svc.extract_min(q).expect("extract");
                        }
                    }
                    svc
                },
                BatchSize::LargeInput,
            )
        });
    }
    obs::flight::set_enabled(true);
    group.finish();
}

/// Durability's wall-clock price: the same batched service workload with
/// the write-ahead log on (`durable/wal_on`) and off (`durable/wal_off`).
/// Each round is one bulk `multi_insert` (well past the batch cutoff, so
/// it takes the coalesced bulk path) plus one `extract_k`; through the
/// sync surface each op appends one record (`FromKeys` /
/// `MultiExtractMin`) and flushes once, so a round pays two `write(2)`
/// calls plus a word-folded CRC over the batch — costs that amortize over
/// the 1024-key batch. That amortization is the durability story the
/// gate's ≤1.15× bound holds the service to: per-record overhead must
/// stay an accounting charge, not a second copy of the workload.
fn bench_durable(c: &mut Criterion, _full: bool) {
    let mut group = c.benchmark_group("durable");
    const ROUNDS: usize = DURABLE_GATE_N / DURABLE_BATCH;
    let mut rng = workloads::rng(0xD1AB);
    let keys = workloads::random_keys(&mut rng, ROUNDS * DURABLE_BATCH);
    let root = std::env::temp_dir().join(format!("meldpq-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let run = |svc: service::QueueService| {
        let q = svc.create_queue();
        for round in 0..ROUNDS {
            let batch = keys[round * DURABLE_BATCH..(round + 1) * DURABLE_BATCH].to_vec();
            svc.multi_insert(q, batch).expect("insert batch");
            let got = svc.extract_k(q, DURABLE_BATCH / 4).expect("extract");
            assert_eq!(got.len(), DURABLE_BATCH / 4);
        }
        svc
    };
    let fresh_id = std::sync::atomic::AtomicU64::new(0);
    group.bench_with_input(
        BenchmarkId::new("wal_on", DURABLE_GATE_N),
        &DURABLE_GATE_N,
        |b, _| {
            b.iter_batched(
                || {
                    // A fresh directory per iteration: recovery cost stays in
                    // the (untimed) setup and never compounds.
                    let dir = root.join(
                        fresh_id
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            .to_string(),
                    );
                    ServiceBuilder::new()
                        .shards(1)
                        .durable(dir)
                        .try_build()
                        .expect("durable build")
                },
                run,
                BatchSize::LargeInput,
            )
        },
    );
    group.bench_with_input(
        BenchmarkId::new("wal_off", DURABLE_GATE_N),
        &DURABLE_GATE_N,
        |b, _| {
            b.iter_batched(
                || ServiceBuilder::new().shards(1).build(),
                run,
                BatchSize::LargeInput,
            )
        },
    );
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

/// The O(1) peek satellite: `min_root` now answers from the cached
/// `NodeId` every mutator refreshes, vs the pre-cache behavior of
/// rescanning the root list (still exposed as `min_root_scan`). Each iter
/// is 1024 peeks so the ns-scale answers land above timer resolution.
fn bench_peek(c: &mut Criterion, _full: bool) {
    let mut group = c.benchmark_group("peek");
    let n = PEEK_GATE_N;
    let mut rng = workloads::rng(0x9EE4 ^ n as u64);
    let keys = workloads::random_keys(&mut rng, n);
    let h = ParBinomialHeap::from_keys_parallel(&keys);
    group.bench_with_input(BenchmarkId::new("cached", n), &n, |b, _| {
        b.iter(|| {
            for _ in 0..1024 {
                std::hint::black_box(std::hint::black_box(&h).min_root());
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("rescan", n), &n, |b, _| {
        b.iter(|| {
            for _ in 0..1024 {
                std::hint::black_box(std::hint::black_box(&h).min_root_scan());
            }
        })
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_scan");
    for n in [1usize << 14, 1 << 20] {
        let mut rng = workloads::rng(n as u64);
        let xs = workloads::random_keys(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| parscan::seq::scan_inclusive(&xs, |a, b| a.min(b)))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| parscan::par::scan_inclusive(&xs, i64::MAX, |a, b| a.min(b)))
        });
    }
    group.finish();
}

fn bench_bulk_build(c: &mut Criterion, full: bool) {
    let mut group = c.benchmark_group("bulk_build");
    for n in bulk_sizes(full) {
        let mut rng = workloads::rng(99 + n as u64);
        let keys = workloads::random_keys(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| ParBinomialHeap::from_keys(keys.iter().copied()))
        });
        group.bench_with_input(BenchmarkId::new("pooled_slab", n), &n, |b, _| {
            b.iter(|| ParBinomialHeap::<i64>::from_keys_parallel(&keys))
        });
    }
    group.finish();
}

/// A speedup gate between two recorded means: `slow / fast >= threshold`.
/// A regression bound is the same check with `threshold < 1` — e.g. "rayon
/// within 1.2× of seq" is `seq / rayon >= 1/1.2`.
struct Gate {
    name: &'static str,
    /// The arm that must be fast.
    fast: String,
    /// The arm it is compared against.
    slow: String,
    /// Required `slow / fast` ratio.
    threshold: f64,
}

impl Gate {
    /// Evaluate against the recorded results; returns (json, pass).
    fn eval(&self, results: &[BenchResult]) -> (J, bool) {
        let f = find_mean(results, &self.fast);
        let s = find_mean(results, &self.slow);
        match (f, s) {
            (Some(f), Some(s)) if f > 0.0 => {
                let ratio = s / f;
                let pass = ratio >= self.threshold;
                println!(
                    "gate {}: {} {s:.0} ns / {} {f:.0} ns = {ratio:.2}x (need >={:.2}x) {}",
                    self.name,
                    self.slow,
                    self.fast,
                    self.threshold,
                    if pass { "ok" } else { "FAIL" },
                );
                (
                    J::obj([
                        ("name", J::Str(self.name.into())),
                        ("fast", J::Str(self.fast.clone())),
                        ("slow", J::Str(self.slow.clone())),
                        ("fast_mean_ns", J::Num(f)),
                        ("slow_mean_ns", J::Num(s)),
                        ("ratio", J::Num(ratio)),
                        ("threshold", J::Num(self.threshold)),
                        ("pass", J::Bool(pass)),
                    ]),
                    pass,
                )
            }
            _ => {
                println!("gate {}: sizes missing from the run — FAIL", self.name);
                (
                    J::obj([
                        ("name", J::Str(self.name.into())),
                        ("pass", J::Bool(false)),
                        ("error", J::Str("gate sizes missing from the run".into())),
                    ]),
                    false,
                )
            }
        }
    }
}

/// The bound sizes: meld at 2^20 (the representation's whole point), the
/// kernel speedups at 2^18, the mixed-regression assertion at the 16384 size
/// where the pre-cutoff rayon engine used to lose by 5.8×.
const MELD_GATE_N: usize = 1 << 20;
const KERNEL_GATE_N: usize = 1 << 18;
const MIXED_GATE_N: usize = 1 << 14;
/// `mixed/rayon` may cost at most 1.2× `mixed/seq`.
const MIXED_BOUND: f64 = 1.2;
/// Ops in the flight-recorder overhead workload.
const FLIGHT_GATE_N: usize = 4096;
/// Heap size for the peek-cache regression arm (2^18 keys ⇒ a root list
/// long enough that a rescan visibly costs).
const PEEK_GATE_N: usize = 1 << 18;
/// The recorder-on arm may cost at most 1.1× the recorder-off arm.
const FLIGHT_BOUND: f64 = 1.1;
/// Keys per coalesced batch in the durability overhead workload — far past
/// the CI pin `MELDPQ_BATCH_CUTOFF=64`, so every batch takes the bulk path
/// and the per-record WAL cost (one CRC + one `write(2)`) amortizes the
/// way a batched durable deployment would run it.
const DURABLE_BATCH: usize = 1024;
/// Total keys the durability workload admits per iteration (8 rounds).
const DURABLE_GATE_N: usize = 8 * DURABLE_BATCH;
/// The WAL-on arm may cost at most 1.15× the WAL-off arm.
const WAL_BOUND: f64 = 1.15;

fn gates() -> Vec<Gate> {
    vec![
        Gate {
            name: "meld_zero_copy_speedup",
            fast: format!("meld/zero_copy/{MELD_GATE_N}"),
            slow: format!("meld/absorb/{MELD_GATE_N}"),
            threshold: 10.0,
        },
        Gate {
            name: "multi_insert_bulk_speedup",
            fast: format!("multi_insert/rayon/{KERNEL_GATE_N}"),
            slow: format!("multi_insert/seq/{KERNEL_GATE_N}"),
            threshold: 2.0,
        },
        Gate {
            name: "b_union_merge_path_speedup",
            fast: format!("b_union/rayon/{KERNEL_GATE_N}"),
            slow: format!("b_union/seq/{KERNEL_GATE_N}"),
            threshold: 2.0,
        },
        Gate {
            name: "mixed_rayon_regression",
            fast: format!("mixed/rayon/{MIXED_GATE_N}"),
            slow: format!("mixed/seq/{MIXED_GATE_N}"),
            threshold: 1.0 / MIXED_BOUND,
        },
        Gate {
            name: "peek_min_cache_speedup",
            fast: format!("peek/cached/{PEEK_GATE_N}"),
            slow: format!("peek/rescan/{PEEK_GATE_N}"),
            threshold: 2.0,
        },
        Gate {
            name: "flight_recorder_overhead",
            fast: format!("flight/recorder_on/{FLIGHT_GATE_N}"),
            slow: format!("flight/recorder_off/{FLIGHT_GATE_N}"),
            threshold: 1.0 / FLIGHT_BOUND,
        },
        Gate {
            name: "wal_append_overhead",
            fast: format!("durable/wal_on/{DURABLE_GATE_N}"),
            slow: format!("durable/wal_off/{DURABLE_GATE_N}"),
            threshold: 1.0 / WAL_BOUND,
        },
    ]
}

fn find_mean(results: &[BenchResult], id: &str) -> Option<f64> {
    results
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.mean_ns as f64)
}

fn write_report(results: &[BenchResult], gates: Vec<J>, path: &std::path::Path) {
    let rows: Vec<J> = results
        .iter()
        .map(|r| {
            J::obj([
                ("id", J::Str(r.id.clone())),
                ("mean_ns", J::UInt(r.mean_ns)),
                ("min_ns", J::UInt(r.min_ns)),
                ("samples", J::UInt(r.samples as u64)),
            ])
        })
        .collect();
    let doc = J::obj([
        ("report", J::Str("wallclock".into())),
        ("unit", J::Str("ns/iter".into())),
        (
            "note",
            J::Str(
                "wall-clock means from the vendored criterion harness; \
                 machine-dependent, unlike the deterministic PRAM meters in \
                 BENCH_baseline.json"
                    .into(),
            ),
        ),
        ("cutoffs", J::Str(meldpq::cutoff::describe())),
        ("results", J::Arr(rows)),
        ("gates", J::Arr(gates)),
    ]);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_wallclock.json");
    println!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    // Calibrate (or read the env pins) before any timing so the probe cost
    // never lands inside a measurement window.
    println!("{}", meldpq::cutoff::describe());
    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .configure_from_args();

    bench_meld(&mut c, full);
    bench_multi_insert(&mut c, full);
    bench_b_union(&mut c, full);
    bench_multi_extract(&mut c, full);
    bench_mixed(&mut c, full);
    bench_flight(&mut c, full);
    bench_durable(&mut c, full);
    bench_peek(&mut c, full);
    bench_scans(&mut c);
    bench_bulk_build(&mut c, full);

    let results = criterion::take_results();
    let mut all_pass = true;
    let mut rows = Vec::new();
    for gate in gates() {
        let (row, pass) = gate.eval(&results);
        all_pass &= pass;
        rows.push(row);
    }

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../reports/BENCH_wallclock.json");
    write_report(&results, rows, &path);

    if !all_pass {
        eprintln!("FAIL: wall-clock gate violated (see lines above)");
        std::process::exit(1);
    }
}
