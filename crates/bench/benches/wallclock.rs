//! W2: where real threads actually pay — the bulk prefix primitives
//! (rayon vs sequential) that back the parallel engines. A single union's
//! `O(log n)` positions are far below thread-dispatch cost (documented in
//! DESIGN.md §5); the scans only win at bulk sizes, shown here.

use std::time::Duration;

use bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_scan");
    for n in [1usize << 14, 1 << 20, 1 << 22] {
        let mut rng = workloads::rng(n as u64);
        let xs = workloads::random_keys(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| parscan::seq::scan_inclusive(&xs, |a, b| a.min(b)))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| parscan::par::scan_inclusive(&xs, i64::MAX, |a, b| a.min(b)))
        });
    }
    group.finish();
}

fn bench_segmented_min(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmented_min");
    for n in [1usize << 14, 1 << 20] {
        let mut rng = workloads::rng(7 + n as u64);
        let xs = workloads::random_keys(&mut rng, n);
        let flags: Vec<bool> = (0..n).map(|i| i % 97 == 0).collect();
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| parscan::seq::segmented_prefix_min(&flags, &xs))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| parscan::par::segmented_prefix_min(&flags, &xs, i64::MAX))
        });
    }
    group.finish();
}

fn bench_bulk_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_build");
    for n in [1usize << 16, 1 << 20] {
        let mut rng = workloads::rng(99 + n as u64);
        let keys = workloads::random_keys(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| meldpq::ParBinomialHeap::from_keys(keys.iter().copied()))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| meldpq::ParBinomialHeap::<i64>::from_keys_parallel(&keys))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scans, bench_segmented_min, bench_bulk_build
}
criterion_main!(benches);
