//! T1 wall-clock companion: the three Union engines on worst-case melds.
//!
//! The PRAM engine is a *simulator* — its wall clock measures simulation
//! overhead, not the algorithm (the algorithm's cost is the simulator's step
//! meter, see `report_theorem1`). The interesting wall-clock comparison is
//! sequential vs rayon plan construction, plus the full meld including arena
//! surgery.

use std::time::Duration;

use bench::workloads::{self, theorem_p};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meldpq::engine_pram::build_plan_pram;
use meldpq::engine_rayon::build_plan_rayon;
use meldpq::plan::build_plan_seq;
use meldpq::Engine;

fn bench_plan_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_plan");
    for bits in [16usize, 24] {
        let mut rng = workloads::rng(bits as u64);
        let n = (1usize << bits) - 1;
        let (h1, h2) = workloads::all_ones_pair(&mut rng, bits);
        let r1 = workloads::root_refs_for_meld(&h1, n);
        let r2 = workloads::root_refs_for_meld(&h2, n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| build_plan_seq(&r1, &r2))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| build_plan_rayon(&r1, &r2))
        });
        let p = theorem_p(n);
        group.bench_with_input(BenchmarkId::new("pram_simulated", n), &n, |b, _| {
            b.iter(|| build_plan_pram(&r1, &r2, p).expect("EREW-legal"))
        });
    }
    group.finish();
}

fn bench_full_meld(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_meld");
    for bits in [12usize, 16] {
        let mut rng = workloads::rng(100 + bits as u64);
        let n = (1usize << bits) - 1;
        for (label, engine) in [("seq", Engine::Sequential), ("rayon", Engine::Rayon)] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter_batched(
                    || workloads::all_ones_pair(&mut rng, bits),
                    |(mut a, bh)| {
                        a.meld(bh, engine);
                        a
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_plan_engines, bench_full_meld
}
criterion_main!(benches);
