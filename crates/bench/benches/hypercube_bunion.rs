//! T3 wall-clock companion: the distributed queue's throughput at different
//! bandwidths (the simulated-network cost is in `report_theorem3`; this
//! measures the simulation's real cost per queue operation).

use std::time::Duration;

use bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmpq::DistributedPq;
use rand::Rng;

fn bench_queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmpq_512ops");
    for (q, b) in [(2usize, 4usize), (3, 8), (3, 32)] {
        group.bench_with_input(BenchmarkId::new(format!("q{q}"), b), &b, |bench, &b| {
            bench.iter(|| {
                let mut rng = workloads::rng(b as u64);
                let mut pq = DistributedPq::new(q, b);
                for _ in 0..256 {
                    pq.insert(rng.gen_range(-1_000_000..1_000_000))
                        .expect("fault-free net");
                }
                let mut out = 0i64;
                for _ in 0..256 {
                    out ^= pq.extract_min().expect("fault-free net").expect("nonempty");
                }
                out
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_queue_throughput
}
criterion_main!(benches);
