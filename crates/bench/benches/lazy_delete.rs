//! T2/A2 wall-clock companion: lazy Delete (Take-Up + periodic
//! Arrange-Heap) against eager Delete on identical victim sequences.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meldpq::lazy::LazyBinomialHeap;
use meldpq::NodeId;

fn build(n: usize, p: usize) -> (LazyBinomialHeap, Vec<NodeId>) {
    let mut h = LazyBinomialHeap::new(p);
    let ids = (0..n as i64).map(|k| h.insert(k)).collect();
    (h, ids)
}

fn bench_delete_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("delete_batch");
    for n in [1usize << 10, 1 << 12] {
        // Victims: a prefix of internal (non-root) nodes.
        group.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, &n| {
            b.iter_batched(
                || build(n, 4),
                |(mut h, ids)| {
                    let batch = h.arrange_threshold();
                    let mut done = 0;
                    for id in ids.iter().rev() {
                        if done == batch {
                            break;
                        }
                        if h.key_of(*id).is_some() && h.parent_of(*id).is_some() {
                            h.delete(*id);
                            done += 1;
                        }
                    }
                    h
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("eager", n), &n, |b, &n| {
            b.iter_batched(
                || build(n, 4),
                |(mut h, ids)| {
                    let batch = h.arrange_threshold();
                    let mut done = 0;
                    for id in ids.iter().rev() {
                        if done == batch {
                            break;
                        }
                        if h.key_of(*id).is_some() && h.parent_of(*id).is_some() {
                            h.delete_eager(*id);
                            done += 1;
                        }
                    }
                    h
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_delete_modes
}
criterion_main!(benches);
