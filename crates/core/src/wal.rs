//! Durability: a write-ahead log + checkpoints for [`HeapPool`] (DESIGN.md
//! §15).
//!
//! The pooled arena is a single contiguous slab — the ideal persistence
//! unit. This module makes it survive restarts with the classic redo-log
//! discipline:
//!
//! * **WAL** (`wal.log`): every logical mutation is appended *before* it is
//!   applied in memory. Records are fixed-width `u64` little-endian words —
//!   `[N][payload × N][crc]` — where the trailer word is FNV-1a folded one
//!   64-bit word at a time over the length word plus payload (the chaos
//!   network's trailer-word idea, widened from bytes to words so hashing a
//!   multi-KiB `from_keys` record costs ⅛ the multiplies and stays off the
//!   append path's critical ns budget). The payload is `[seq, tag, args…]`.
//! * **Checkpoints** (`checkpoint.json`): the whole slab + root tables,
//!   serialized through [`obs::json::J`] behind a leading CRC line, written
//!   to a temp file and atomically renamed. A checkpoint bounds replay work;
//!   the WAL keeps its full history so a corrupt checkpoint degrades to a
//!   full genesis replay, never to data loss.
//! * **Recovery** ([`HeapPool::recover`] / [`recover_dir`]): load the last
//!   valid checkpoint (if any), replay every WAL record with a later
//!   sequence number, and truncate the log at the first torn or
//!   CRC-failing record. The recovered pool must pass
//!   [`check_pool`](crate::check::check_pool) before it is served.
//!
//! Torn-write rules: a record is accepted iff it is completely present and
//! its trailer CRC matches; the first rejected record ends the log — all
//! prior records are preserved, everything from the tear onward is
//! discarded (and physically truncated, so the next append starts on a
//! record boundary). Because appends happen *ahead* of the in-memory
//! mutation, the recovered state can only be **ahead** of what a crashed
//! process had applied, never behind what it acknowledged.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use obs::flight::{self, EventKind};
use obs::json::J;

use crate::arena::{Arena, Node, NodeId};
use crate::check::check_pool;
use crate::heap::Engine;
use crate::pool::{CapacityError, HeapPool, PooledHeap};

/// The log file inside a durability directory.
pub const WAL_FILE: &str = "wal.log";
/// The checkpoint file inside a durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// Upper bound on a record's payload word count — anything larger is
/// treated as a tear (a real record of this size would be a ~0.5 GiB
/// `from_keys`, far beyond any admission path).
const MAX_PAYLOAD_WORDS: u64 = 1 << 26;

// FNV-1a, the same constants as the chaos network's frame trailer.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Byte-granular FNV-1a — used for the textual checkpoint body, where the
/// input is a JSON string and throughput does not matter.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Word-granular FNV-1a for WAL record trailers: one xor+multiply per
/// `u64` word instead of per byte. Records are all-words already, and a
/// bulk `FromKeys` record can be multiple KiB — the byte loop's serial
/// multiply chain (~1 ns/byte) would dominate the append path that the
/// `wal_append_overhead` bench gate bounds at 1.15×.
fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One logical pool mutation, as logged. Slots and generations are the
/// *caller's* handle space (the service's queue table or
/// [`DurablePool`]'s slot table) so recovered handles stay valid across a
/// restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A heap was created at `slot` with generation `gen`.
    CreateHeap {
        /// Slot index in the owner's table.
        slot: u32,
        /// Generation stamped into handles for this incarnation.
        gen: u32,
    },
    /// One key was inserted into the heap at `slot`.
    Insert {
        /// Target slot.
        slot: u32,
        /// The inserted key.
        key: i64,
    },
    /// A bulk build was melded into the heap at `slot`.
    FromKeys {
        /// Target slot.
        slot: u32,
        /// The admitted keys, in submission order.
        keys: Vec<i64>,
    },
    /// `Extract-Min` ran against the heap at `slot`.
    ExtractMin {
        /// Target slot.
        slot: u32,
    },
    /// `Multi-Extract-Min(k)` ran against the heap at `slot`.
    MultiExtractMin {
        /// Target slot.
        slot: u32,
        /// Number of keys requested (clamped to the heap length on apply).
        k: u64,
    },
    /// The heap at `src` was melded into the heap at `dst`; `src` died.
    Meld {
        /// Surviving slot.
        dst: u32,
        /// Consumed slot.
        src: u32,
    },
    /// The heap at `slot` was destroyed.
    FreeHeap {
        /// Target slot.
        slot: u32,
    },
}

impl WalOp {
    fn tag(&self) -> u64 {
        match self {
            WalOp::CreateHeap { .. } => 1,
            WalOp::Insert { .. } => 2,
            WalOp::FromKeys { .. } => 3,
            WalOp::ExtractMin { .. } => 4,
            WalOp::MultiExtractMin { .. } => 5,
            WalOp::Meld { .. } => 6,
            WalOp::FreeHeap { .. } => 7,
        }
    }

    fn arg_words(&self, out: &mut Vec<u64>) {
        match self {
            WalOp::CreateHeap { slot, gen } => out.extend([*slot as u64, *gen as u64]),
            WalOp::Insert { slot, key } => out.extend([*slot as u64, *key as u64]),
            WalOp::FromKeys { slot, keys } => {
                out.push(*slot as u64);
                out.push(keys.len() as u64);
                out.extend(keys.iter().map(|k| *k as u64));
            }
            WalOp::ExtractMin { slot } => out.push(*slot as u64),
            WalOp::MultiExtractMin { slot, k } => out.extend([*slot as u64, *k]),
            WalOp::Meld { dst, src } => out.extend([*dst as u64, *src as u64]),
            WalOp::FreeHeap { slot } => out.push(*slot as u64),
        }
    }

    /// Decode from the payload words that follow `[seq, tag]`.
    fn from_words(tag: u64, args: &[u64]) -> Option<WalOp> {
        let slot32 = |w: u64| u32::try_from(w).ok();
        match tag {
            1 => Some(WalOp::CreateHeap {
                slot: slot32(*args.first()?)?,
                gen: slot32(*args.get(1)?)?,
            }),
            2 => Some(WalOp::Insert {
                slot: slot32(*args.first()?)?,
                key: *args.get(1)? as i64,
            }),
            3 => {
                let slot = slot32(*args.first()?)?;
                let n = usize::try_from(*args.get(1)?).ok()?;
                let words = args.get(2..)?;
                if words.len() != n {
                    return None;
                }
                Some(WalOp::FromKeys {
                    slot,
                    keys: words.iter().map(|w| *w as i64).collect(),
                })
            }
            4 => Some(WalOp::ExtractMin {
                slot: slot32(*args.first()?)?,
            }),
            5 => Some(WalOp::MultiExtractMin {
                slot: slot32(*args.first()?)?,
                k: *args.get(1)?,
            }),
            6 => Some(WalOp::Meld {
                dst: slot32(*args.first()?)?,
                src: slot32(*args.get(1)?)?,
            }),
            7 => Some(WalOp::FreeHeap {
                slot: slot32(*args.first()?)?,
            }),
            _ => None,
        }
    }
}

/// Encode one record: `[N][seq, tag, args…][crc]`, all `u64` LE.
fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut words: Vec<u64> = vec![seq, op.tag()];
    op.arg_words(&mut words);
    let n = words.len() as u64;
    let crc = fnv1a_words(std::iter::once(n).chain(words.iter().copied()));
    let mut bytes = Vec::with_capacity(8 * (words.len() + 2));
    bytes.extend_from_slice(&n.to_le_bytes());
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// A durability failure.
#[derive(Debug)]
pub enum WalError {
    /// The underlying file system said no.
    Io(std::io::Error),
    /// The log or checkpoint is internally inconsistent beyond the
    /// torn-tail rules (e.g. a replayed op names an occupied slot, or the
    /// recovered pool fails `check_pool`).
    Corrupt {
        /// Sequence number of the offending record (0 when unknown).
        seq: u64,
        /// What was wrong.
        reason: String,
    },
    /// An op named a slot with no live heap.
    UnknownSlot(u32),
    /// A logged bulk build no longer fits the `u32` id space.
    Capacity(CapacityError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { seq, reason } => {
                write!(f, "wal corrupt at seq {seq}: {reason}")
            }
            WalError::UnknownSlot(s) => write!(f, "wal op names unknown slot {s}"),
            WalError::Capacity(e) => write!(f, "wal replay refused: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<CapacityError> for WalError {
    fn from(e: CapacityError) -> Self {
        WalError::Capacity(e)
    }
}

/// Appender for one WAL file. Buffered; [`WalWriter::flush`] pushes the
/// bytes to the OS (surviving a process kill), [`WalWriter::sync`] forces
/// them to the device.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
    next_seq: u64,
    bytes: u64,
}

impl WalWriter {
    /// Create (or truncate) a fresh log at `path`; sequence numbers start
    /// at 1.
    pub fn create(path: &Path) -> std::io::Result<WalWriter> {
        let file = File::create(path)?;
        Ok(WalWriter {
            file: BufWriter::new(file),
            next_seq: 1,
            bytes: 0,
        })
    }

    /// Open `path` for appending after recovery decided `next_seq`.
    pub fn append_to(path: &Path, next_seq: u64) -> std::io::Result<WalWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(WalWriter {
            file: BufWriter::new(file),
            next_seq,
            bytes,
        })
    }

    /// Append one op, returning the sequence number it was logged under.
    pub fn append(&mut self, op: &WalOp) -> std::io::Result<u64> {
        let seq = self.next_seq;
        let rec = encode_record(seq, op);
        self.file.write_all(&rec)?;
        self.next_seq += 1;
        self.bytes += rec.len() as u64;
        flight::record_here(EventKind::WalAppend, rec.len() as u64);
        Ok(seq)
    }

    /// Push buffered records to the OS. Call before applying the op in
    /// memory — that ordering is the whole write-ahead contract.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }

    /// Flush and `fsync` to the device (checkpoint boundaries).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total bytes in the log including this writer's appends — the byte
    /// offset a crash harness can cut at.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes
    }
}

/// The readable prefix of a WAL file.
#[derive(Debug, Default)]
pub struct WalRead {
    /// Every record that survived framing + CRC, in log order.
    pub records: Vec<(u64, WalOp)>,
    /// Byte length of the valid prefix (recovery truncates to this).
    pub valid_len: u64,
    /// Byte length of the file as found on disk.
    pub file_len: u64,
}

/// Read a WAL, stopping at the first torn or CRC-failing record. A missing
/// file reads as empty — genesis is an absent log.
pub fn read_wal(path: &Path) -> std::io::Result<WalRead> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let mut out = WalRead {
        file_len: buf.len() as u64,
        ..WalRead::default()
    };
    let word = |at: usize| -> u64 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&buf[at..at + 8]);
        u64::from_le_bytes(w)
    };
    let mut pos = 0usize;
    while pos + 8 <= buf.len() {
        let n = word(pos);
        // Payload must at least hold [seq, tag]; an absurd length is a tear.
        if !(2..=MAX_PAYLOAD_WORDS).contains(&n) {
            break;
        }
        let n = n as usize;
        let total = 8 * (n + 2);
        let Some(end) = pos.checked_add(total) else {
            break;
        };
        if end > buf.len() {
            break;
        }
        let crc = fnv1a_words((0..=n).map(|i| word(pos + 8 * i)));
        if crc != word(pos + 8 * (n + 1)) {
            break;
        }
        let seq = word(pos + 8);
        let tag = word(pos + 16);
        let args: Vec<u64> = (2..n).map(|i| word(pos + 8 * (1 + i))).collect();
        let Some(op) = WalOp::from_words(tag, &args) else {
            break;
        };
        out.records.push((seq, op));
        pos = end;
        out.valid_len = pos as u64;
    }
    Ok(out)
}

/// Physically truncate a log to its valid prefix.
pub fn truncate_wal(path: &Path, len: u64) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)
}

fn j_u64(j: &J) -> Option<u64> {
    match j {
        J::UInt(v) => Some(*v),
        J::Int(v) => u64::try_from(*v).ok(),
        _ => None,
    }
}

fn j_i64(j: &J) -> Option<i64> {
    match j {
        J::Int(v) => Some(*v),
        J::UInt(v) => i64::try_from(*v).ok(),
        _ => None,
    }
}

fn j_u32(j: &J) -> Option<u32> {
    j_u64(j).and_then(|v| u32::try_from(v).ok())
}

/// Serialize the slab + root tables to `dir/checkpoint.json` (temp file +
/// rename, CRC line first) under checkpoint sequence `seq` — replay then
/// skips every record with `seq' <= seq`.
pub fn write_checkpoint<'a, I>(
    dir: &Path,
    seq: u64,
    pool: &HeapPool<i64>,
    heaps: I,
    free_slots: &[(u32, u32)],
) -> std::io::Result<()>
where
    I: IntoIterator<Item = (u32, u32, &'a PooledHeap)>,
{
    let nodes: Vec<J> = pool
        .arena()
        .raw_slots()
        .iter()
        .map(|slot| match slot {
            None => J::Num(f64::NAN), // emitted as `null`
            Some(n) => J::Arr(vec![
                J::Int(n.key),
                J::Int(n.parent.map_or(-1, |p| p.0 as i64)),
                J::Arr(n.children.iter().map(|c| J::UInt(c.0 as u64)).collect()),
            ]),
        })
        .collect();
    let free: Vec<J> = pool
        .arena()
        .free_list()
        .iter()
        .map(|f| J::UInt(*f as u64))
        .collect();
    let heaps: Vec<J> = heaps
        .into_iter()
        .map(|(slot, gen, h)| {
            J::Arr(vec![
                J::UInt(slot as u64),
                J::UInt(gen as u64),
                J::UInt(h.len() as u64),
                J::Arr(
                    h.roots()
                        .iter()
                        .map(|r| J::Int(r.map_or(-1, |id| id.0 as i64)))
                        .collect(),
                ),
            ])
        })
        .collect();
    let slots: Vec<J> = free_slots
        .iter()
        .map(|(s, g)| J::Arr(vec![J::UInt(*s as u64), J::UInt(*g as u64)]))
        .collect();
    let body = J::obj([
        ("seq", J::UInt(seq)),
        ("nodes", J::Arr(nodes)),
        ("free", J::Arr(free)),
        ("heaps", J::Arr(heaps)),
        ("free_slots", J::Arr(slots)),
    ])
    .to_string();
    let crc = fnv1a(body.as_bytes());
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(format!("{crc}\n").as_bytes())?;
        f.write_all(body.as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    flight::record_here(EventKind::Checkpoint, seq);
    Ok(())
}

/// A checkpoint decoded back into live structures.
struct RecoveredCheckpoint {
    seq: u64,
    pool: HeapPool<i64>,
    heaps: Vec<Option<(u32, PooledHeap)>>,
    free_slots: Vec<(u32, u32)>,
}

/// Load `dir/checkpoint.json`. Any failure — missing file, CRC mismatch,
/// malformed JSON, inconsistent free list — yields `None`: the checkpoint
/// is advisory, recovery then replays the WAL from genesis.
fn read_checkpoint(dir: &Path, engine: Engine) -> Option<RecoveredCheckpoint> {
    let text = std::fs::read_to_string(dir.join(CHECKPOINT_FILE)).ok()?;
    let (crc_line, body) = text.split_once('\n')?;
    let want: u64 = crc_line.trim().parse().ok()?;
    if fnv1a(body.as_bytes()) != want {
        return None;
    }
    let doc = J::parse(body).ok()?;
    let seq = doc.get("seq").and_then(j_u64)?;
    let mut nodes: Vec<Option<Node<i64>>> = Vec::new();
    for slot in doc.get("nodes")?.as_arr()? {
        match slot {
            J::Num(_) => nodes.push(None),
            J::Arr(parts) => {
                let key = j_i64(parts.first()?)?;
                let parent = match j_i64(parts.get(1)?)? {
                    -1 => None,
                    p => Some(NodeId(u32::try_from(p).ok()?)),
                };
                let children = parts
                    .get(2)?
                    .as_arr()?
                    .iter()
                    .map(|c| j_u32(c).map(NodeId))
                    .collect::<Option<Vec<_>>>()?;
                nodes.push(Some(Node {
                    key,
                    parent,
                    children,
                }));
            }
            _ => return None,
        }
    }
    let free = doc
        .get("free")?
        .as_arr()?
        .iter()
        .map(j_u32)
        .collect::<Option<Vec<_>>>()?;
    let arena = Arena::from_raw_parts(nodes, free)?;
    let pool = HeapPool::from_arena(arena, engine);
    let mut heaps: Vec<Option<(u32, PooledHeap)>> = Vec::new();
    for h in doc.get("heaps")?.as_arr()? {
        let parts = h.as_arr()?;
        let slot = j_u32(parts.first()?)? as usize;
        let gen = j_u32(parts.get(1)?)?;
        let len = j_u64(parts.get(2)?)? as usize;
        let roots = parts
            .get(3)?
            .as_arr()?
            .iter()
            .map(|r| match j_i64(r) {
                Some(-1) => Some(None),
                Some(p) => u32::try_from(p).ok().map(|v| Some(NodeId(v))),
                None => None,
            })
            .collect::<Option<Vec<_>>>()?;
        if heaps.len() <= slot {
            heaps.resize_with(slot + 1, || None);
        }
        if heaps[slot].is_some() {
            return None;
        }
        heaps[slot] = Some((gen, pool.restore_heap(roots, len)));
    }
    let free_slots = doc
        .get("free_slots")?
        .as_arr()?
        .iter()
        .map(|p| {
            let parts = p.as_arr()?;
            Some((j_u32(parts.first()?)?, j_u32(parts.get(1)?)?))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(RecoveredCheckpoint {
        seq,
        pool,
        heaps,
        free_slots,
    })
}

/// Apply one logged op to a pool + slot table. Shared by replay and the
/// live [`DurablePool`] path so the two can never diverge. Returns the
/// extracted keys (empty for non-extracting ops).
fn apply_op(
    pool: &mut HeapPool<i64>,
    slots: &mut Vec<Option<(u32, PooledHeap)>>,
    free_slots: &mut Vec<(u32, u32)>,
    seq: u64,
    op: &WalOp,
) -> Result<Vec<i64>, WalError> {
    let live = |slots: &mut Vec<Option<(u32, PooledHeap)>>, s: u32| -> Result<usize, WalError> {
        let i = s as usize;
        match slots.get(i) {
            Some(Some(_)) => Ok(i),
            _ => Err(WalError::UnknownSlot(s)),
        }
    };
    match op {
        WalOp::CreateHeap { slot, gen } => {
            let i = *slot as usize;
            if slots.len() <= i {
                slots.resize_with(i + 1, || None);
            }
            if slots[i].is_some() {
                return Err(WalError::Corrupt {
                    seq,
                    reason: format!("create_heap on occupied slot {slot}"),
                });
            }
            // Retire the free-list entry this create consumed (search from
            // the back: allocation is LIFO).
            if let Some(at) = free_slots.iter().rposition(|(s, _)| s == slot) {
                free_slots.remove(at);
            }
            slots[i] = Some((*gen, pool.new_heap()));
            Ok(Vec::new())
        }
        WalOp::Insert { slot, key } => {
            let i = live(slots, *slot)?;
            let (_, heap) = slots[i].as_mut().expect("live slot");
            pool.insert(heap, *key);
            Ok(Vec::new())
        }
        WalOp::FromKeys { slot, keys } => {
            let i = live(slots, *slot)?;
            let engine = pool.engine();
            let built = pool.try_from_keys_parallel_with(keys, engine)?;
            let (_, heap) = slots[i].as_mut().expect("live slot");
            pool.meld(heap, built);
            Ok(Vec::new())
        }
        WalOp::ExtractMin { slot } => {
            let i = live(slots, *slot)?;
            let (_, heap) = slots[i].as_mut().expect("live slot");
            Ok(pool.extract_min(heap).into_iter().collect())
        }
        WalOp::MultiExtractMin { slot, k } => {
            let i = live(slots, *slot)?;
            let (_, heap) = slots[i].as_mut().expect("live slot");
            let k = usize::try_from(*k).unwrap_or(usize::MAX).min(heap.len());
            Ok(pool.multi_extract_min(heap, k))
        }
        WalOp::Meld { dst, src } => {
            if dst == src {
                return Err(WalError::Corrupt {
                    seq,
                    reason: format!("meld of slot {dst} into itself"),
                });
            }
            let di = live(slots, *dst)?;
            let si = live(slots, *src)?;
            let (sgen, sheap) = slots[si].take().expect("live slot");
            let (_, dheap) = slots[di].as_mut().expect("live slot");
            pool.meld(dheap, sheap);
            free_slots.push((*src, sgen.wrapping_add(1)));
            Ok(Vec::new())
        }
        WalOp::FreeHeap { slot } => {
            let i = live(slots, *slot)?;
            let (gen, heap) = slots[i].take().expect("live slot");
            pool.free_heap(heap);
            free_slots.push((*slot, gen.wrapping_add(1)));
            Ok(Vec::new())
        }
    }
}

/// Everything recovery reconstructs from a durability directory. The
/// service's shard recovery and [`DurablePool::open`] both build on this.
pub struct RecoveredState {
    /// The pool, checkpoint-restored and replayed up to the valid WAL tail.
    pub pool: HeapPool<i64>,
    /// Slot table: `heaps[slot] = Some((generation, heap))` for live slots.
    pub heaps: Vec<Option<(u32, PooledHeap)>>,
    /// Recyclable `(slot, next_generation)` pairs.
    pub free_slots: Vec<(u32, u32)>,
    /// Sequence number the next append must use.
    pub next_seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: usize,
}

/// Recover a durability directory: last valid checkpoint + WAL suffix
/// replay + physical truncation of any torn tail. The result has passed
/// `check_pool`; a missing directory recovers to the empty state.
pub fn recover_dir(dir: &Path, engine: Engine) -> Result<RecoveredState, WalError> {
    std::fs::create_dir_all(dir)?;
    let (ckpt_seq, mut pool, mut heaps, mut free_slots) = match read_checkpoint(dir, engine) {
        Some(c) => (c.seq, c.pool, c.heaps, c.free_slots),
        None => (
            0,
            HeapPool::new().with_engine(engine),
            Vec::new(),
            Vec::new(),
        ),
    };
    let wal_path = dir.join(WAL_FILE);
    let log = read_wal(&wal_path)?;
    if log.valid_len < log.file_len {
        truncate_wal(&wal_path, log.valid_len)?;
    }
    let mut last_seq = ckpt_seq;
    let mut replayed = 0usize;
    for (seq, op) in &log.records {
        if *seq <= ckpt_seq {
            continue; // already folded into the checkpoint
        }
        if *seq <= last_seq {
            return Err(WalError::Corrupt {
                seq: *seq,
                reason: format!("sequence went backwards (after {last_seq})"),
            });
        }
        apply_op(&mut pool, &mut heaps, &mut free_slots, *seq, op)?;
        last_seq = *seq;
        replayed += 1;
    }
    let refs: Vec<&PooledHeap> = heaps.iter().flatten().map(|(_, h)| h).collect();
    check_pool(&pool, &refs).map_err(|reason| WalError::Corrupt {
        seq: last_seq,
        reason,
    })?;
    flight::record_here(EventKind::Recover, replayed as u64);
    Ok(RecoveredState {
        pool,
        heaps,
        free_slots,
        next_seq: last_seq + 1,
        replayed,
    })
}

impl HeapPool<i64> {
    /// Recover (or initialize) a durable pool from `path`: load the last
    /// valid checkpoint, replay the WAL suffix, truncate any torn tail,
    /// and return the pool wrapped in its logging front-end.
    pub fn recover(path: &Path) -> Result<DurablePool, WalError> {
        DurablePool::open(path, Engine::Sequential)
    }
}

/// A [`HeapPool`] whose every mutation is logged ahead of application, with
/// periodic checkpoints. Heaps are addressed by `(slot, generation)` pairs
/// (the same generational-handle scheme the service's queue table uses) so
/// handles survive a restart.
#[derive(Debug)]
pub struct DurablePool {
    dir: PathBuf,
    pool: HeapPool<i64>,
    slots: Vec<Option<(u32, PooledHeap)>>,
    free_slots: Vec<(u32, u32)>,
    writer: WalWriter,
    checkpoint_every: u64,
    ops_since_checkpoint: u64,
}

/// Default number of logged ops between automatic checkpoints.
const DEFAULT_CHECKPOINT_EVERY: u64 = 256;

impl DurablePool {
    /// Open `dir`, recovering whatever state it holds (an empty or missing
    /// directory opens as an empty pool).
    pub fn open(dir: &Path, engine: Engine) -> Result<DurablePool, WalError> {
        let state = recover_dir(dir, engine)?;
        let writer = WalWriter::append_to(&dir.join(WAL_FILE), state.next_seq)?;
        Ok(DurablePool {
            dir: dir.to_path_buf(),
            pool: state.pool,
            slots: state.heaps,
            free_slots: state.free_slots,
            writer,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            ops_since_checkpoint: 0,
        })
    }

    /// Log-then-apply: the write-ahead contract lives here. The op reaches
    /// the OS before the slab changes, so recovery can only be ahead of
    /// (never behind) acknowledged state.
    fn log_apply(&mut self, op: &WalOp) -> Result<Vec<i64>, WalError> {
        if let WalOp::FromKeys { keys, .. } = op {
            // Refuse at admission: the log must never hold an op that
            // cannot replay.
            self.pool.can_admit(keys.len())?;
        }
        let seq = self.writer.append(op)?;
        self.writer.flush()?;
        let out = apply_op(
            &mut self.pool,
            &mut self.slots,
            &mut self.free_slots,
            seq,
            op,
        )?;
        self.ops_since_checkpoint += 1;
        if self.ops_since_checkpoint >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(out)
    }

    fn require_live(&self, slot: u32) -> Result<(), WalError> {
        match self.slots.get(slot as usize) {
            Some(Some(_)) => Ok(()),
            _ => Err(WalError::UnknownSlot(slot)),
        }
    }

    /// Create a heap; returns its `(slot, generation)` handle.
    pub fn create_heap(&mut self) -> Result<(u32, u32), WalError> {
        let (slot, gen) = match self.free_slots.last() {
            Some(&(s, g)) => (s, g),
            None => (self.slots.len() as u32, 0),
        };
        self.log_apply(&WalOp::CreateHeap { slot, gen })?;
        Ok((slot, gen))
    }

    /// Insert one key.
    pub fn insert(&mut self, slot: u32, key: i64) -> Result<(), WalError> {
        self.require_live(slot)?;
        self.log_apply(&WalOp::Insert { slot, key })?;
        Ok(())
    }

    /// Bulk-admit keys (logged as one record, built with the pool engine).
    pub fn from_keys(&mut self, slot: u32, keys: &[i64]) -> Result<(), WalError> {
        self.require_live(slot)?;
        self.log_apply(&WalOp::FromKeys {
            slot,
            keys: keys.to_vec(),
        })?;
        Ok(())
    }

    /// Extract the minimum key.
    pub fn extract_min(&mut self, slot: u32) -> Result<Option<i64>, WalError> {
        self.require_live(slot)?;
        let out = self.log_apply(&WalOp::ExtractMin { slot })?;
        Ok(out.into_iter().next())
    }

    /// Extract the `k` smallest keys.
    pub fn multi_extract_min(&mut self, slot: u32, k: usize) -> Result<Vec<i64>, WalError> {
        self.require_live(slot)?;
        self.log_apply(&WalOp::MultiExtractMin { slot, k: k as u64 })
    }

    /// Meld the heap at `src` into the heap at `dst`; `src` dies.
    pub fn meld(&mut self, dst: u32, src: u32) -> Result<(), WalError> {
        self.require_live(dst)?;
        self.require_live(src)?;
        if dst == src {
            return Err(WalError::Corrupt {
                seq: self.writer.next_seq(),
                reason: "meld of a slot into itself".into(),
            });
        }
        self.log_apply(&WalOp::Meld { dst, src })?;
        Ok(())
    }

    /// Destroy the heap at `slot`, recycling its nodes and slot.
    pub fn free_heap(&mut self, slot: u32) -> Result<(), WalError> {
        self.require_live(slot)?;
        self.log_apply(&WalOp::FreeHeap { slot })?;
        Ok(())
    }

    /// Write a checkpoint now and reset the cadence counter. The WAL keeps
    /// its history (compaction is future work); replay skips everything the
    /// checkpoint already folded in.
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        self.writer.sync()?;
        let seq = self.writer.next_seq() - 1;
        let heaps = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|(g, h)| (i as u32, *g, h)));
        write_checkpoint(&self.dir, seq, &self.pool, heaps, &self.free_slots)?;
        self.ops_since_checkpoint = 0;
        Ok(())
    }

    /// Change the automatic checkpoint cadence (`u64::MAX` disables it).
    pub fn set_checkpoint_every(&mut self, every: u64) {
        self.checkpoint_every = every.max(1);
    }

    /// The underlying pool (read-only).
    pub fn pool(&self) -> &HeapPool<i64> {
        &self.pool
    }

    /// Number of keys in the heap at `slot`, if live.
    pub fn len(&self, slot: u32) -> Option<usize> {
        match self.slots.get(slot as usize) {
            Some(Some((_, h))) => Some(h.len()),
            _ => None,
        }
    }

    /// Whether the heap at `slot` is live but empty (`None` if not live).
    pub fn is_empty(&self, slot: u32) -> Option<bool> {
        self.len(slot).map(|l| l == 0)
    }

    /// Generation of the heap at `slot`, if live.
    pub fn generation(&self, slot: u32) -> Option<u32> {
        match self.slots.get(slot as usize) {
            Some(Some((g, _))) => Some(*g),
            _ => None,
        }
    }

    /// Live slot indices, ascending.
    pub fn live_slots(&self) -> Vec<u32> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i as u32))
            .collect()
    }

    /// Every key in the heap at `slot`, in arbitrary order (oracle checks).
    pub fn keys_unsorted(&self, slot: u32) -> Option<Vec<i64>> {
        match self.slots.get(slot as usize) {
            Some(Some((_, h))) => {
                let mut ids = Vec::with_capacity(h.len());
                self.pool.collect_node_ids(h, &mut ids);
                Some(
                    ids.into_iter()
                        .map(|id| self.pool.arena().get(id).key)
                        .collect(),
                )
            }
            _ => None,
        }
    }

    /// Bytes in the WAL — the offsets a crash harness cuts at.
    pub fn wal_bytes(&self) -> u64 {
        self.writer.bytes_logged()
    }

    /// Deep validation of every live heap via `check_pool`.
    pub fn validate(&self) -> Result<(), String> {
        let refs: Vec<&PooledHeap> = self.slots.iter().flatten().map(|(_, h)| h).collect();
        check_pool(&self.pool, &refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "meldpq-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn all_ops() -> Vec<WalOp> {
        vec![
            WalOp::CreateHeap { slot: 3, gen: 7 },
            WalOp::Insert { slot: 3, key: -42 },
            WalOp::FromKeys {
                slot: 3,
                keys: vec![i64::MIN, -1, 0, 1, i64::MAX],
            },
            WalOp::ExtractMin { slot: 3 },
            WalOp::MultiExtractMin { slot: 3, k: 999 },
            WalOp::Meld { dst: 1, src: 2 },
            WalOp::FreeHeap { slot: 3 },
        ]
    }

    #[test]
    fn record_roundtrip_all_ops() {
        let dir = tmp_dir("roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path).unwrap();
        for op in all_ops() {
            w.append(&op).unwrap();
        }
        w.flush().unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.valid_len, read.file_len);
        let got: Vec<WalOp> = read.records.iter().map(|(_, op)| op.clone()).collect();
        assert_eq!(got, all_ops());
        let seqs: Vec<u64> = read.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6, 7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_the_read() {
        let dir = tmp_dir("torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path).unwrap();
        for op in all_ops() {
            w.append(&op).unwrap();
        }
        w.flush().unwrap();
        let full = read_wal(&path).unwrap();
        // Cut 5 bytes into the last record: everything before survives.
        let cut = full.valid_len - 5;
        truncate_wal(&path, cut).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), all_ops().len() - 1);
        assert!(read.valid_len < cut);
        // A bit flip mid-file stops the read at the flipped record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.records.len(), 0);
        assert_eq!(read.valid_len, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_pool_recovers_exactly() {
        let dir = tmp_dir("recover");
        let (slot, gen) = {
            let mut dp = HeapPool::recover(&dir).unwrap();
            let (slot, gen) = dp.create_heap().unwrap();
            dp.from_keys(slot, &[5, 3, 9, 1, 7]).unwrap();
            dp.insert(slot, -2).unwrap();
            assert_eq!(dp.extract_min(slot).unwrap(), Some(-2));
            let (other, _) = dp.create_heap().unwrap();
            dp.from_keys(other, &[100, 50]).unwrap();
            dp.meld(slot, other).unwrap();
            (slot, gen)
        };
        let dp = HeapPool::recover(&dir).unwrap();
        assert_eq!(dp.generation(slot), Some(gen));
        let mut keys = dp.keys_unsorted(slot).unwrap();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 3, 5, 7, 9, 50, 100]);
        dp.validate().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_roundtrip_and_corruption_fallback() {
        let dir = tmp_dir("ckpt");
        {
            let mut dp = HeapPool::recover(&dir).unwrap();
            let (slot, _) = dp.create_heap().unwrap();
            dp.from_keys(slot, &(0..100).collect::<Vec<_>>()).unwrap();
            dp.extract_min(slot).unwrap();
            dp.checkpoint().unwrap();
            dp.insert(slot, -5).unwrap(); // lives only in the WAL suffix
        }
        {
            let dp = HeapPool::recover(&dir).unwrap();
            let mut keys = dp.keys_unsorted(0).unwrap();
            keys.sort_unstable();
            let mut want: Vec<i64> = (1..100).collect();
            want.insert(0, -5);
            assert_eq!(keys, want);
        }
        // Corrupt the checkpoint: recovery falls back to genesis replay and
        // still reaches the same state (the WAL holds full history).
        let ck = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&ck).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&ck, &bytes).unwrap();
        let dp = HeapPool::recover(&dir).unwrap();
        let mut keys = dp.keys_unsorted(0).unwrap();
        keys.sort_unstable();
        let mut want: Vec<i64> = (1..100).collect();
        want.insert(0, -5);
        assert_eq!(keys, want);
        dp.validate().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slot_recycling_survives_recovery() {
        let dir = tmp_dir("slots");
        {
            let mut dp = HeapPool::recover(&dir).unwrap();
            let (s0, g0) = dp.create_heap().unwrap();
            dp.insert(s0, 1).unwrap();
            dp.free_heap(s0).unwrap();
            let (s1, g1) = dp.create_heap().unwrap();
            assert_eq!(s1, s0, "slot is recycled");
            assert_eq!(g1, g0 + 1, "generation advances");
            dp.insert(s1, 2).unwrap();
        }
        let dp = HeapPool::recover(&dir).unwrap();
        assert_eq!(dp.generation(0), Some(1));
        assert_eq!(dp.keys_unsorted(0).unwrap(), vec![2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_slot_is_typed() {
        let dir = tmp_dir("unknown");
        let mut dp = HeapPool::recover(&dir).unwrap();
        assert!(matches!(dp.insert(9, 1), Err(WalError::UnknownSlot(9))));
        assert!(matches!(dp.extract_min(0), Err(WalError::UnknownSlot(0))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_recover_is_idempotent() {
        let dir = tmp_dir("double");
        {
            let mut dp = HeapPool::recover(&dir).unwrap();
            let (slot, _) = dp.create_heap().unwrap();
            dp.from_keys(slot, &[8, 6, 7]).unwrap();
        }
        let a = HeapPool::recover(&dir).unwrap();
        let mut ka = a.keys_unsorted(0).unwrap();
        ka.sort_unstable();
        drop(a);
        let b = HeapPool::recover(&dir).unwrap();
        let mut kb = b.keys_unsorted(0).unwrap();
        kb.sort_unstable();
        assert_eq!(ka, kb);
        b.validate().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
