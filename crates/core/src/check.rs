//! Workspace-wide invariant checking.
//!
//! Every queue structure in the workspace carries a `validate()` method
//! checking its own representation. This module layers on top of those:
//!
//! * [`check_heap`] / [`check_lazy`] / [`check_plan`] — *deep* checks that
//!   re-derive redundant facts (binary-representation isomorphism, the
//!   carry recurrence, deletion-buffer hygiene) instead of trusting the
//!   structure's own bookkeeping;
//! * the [`CheckedPq`] trait — one spelling for "assert everything you
//!   know about yourself", implemented by every queue in the workspace
//!   (including `dmpq::DistributedPq`, which implements it crate-side), so
//!   harnesses like the differential fuzzer and the soak test can validate
//!   heterogeneous fleets through one interface;
//! * the `debug-validate` cargo feature — when enabled, the hot paths
//!   (`meld`, `extract_min`, `insert`, `delete`, `arrange_heap`) run these
//!   checks after every mutation and panic on the first violation. CI runs
//!   the core test suite once with the feature on; release builds pay
//!   nothing.
//!
//! The checks return `Err(String)` with a human-readable reason rather than
//! panicking, so property tests can assert on the message.

use std::collections::HashSet;

use crate::heap::ParBinomialHeap;
use crate::lazy::LazyBinomialHeap;
use crate::plan::{classify_point, PointType, UnionPlan};
use crate::pool::{HeapPool, PooledHeap};

/// A priority queue that can assert its own structural invariants.
///
/// `check_invariants` must be read-only and side-effect-free; it returns a
/// human-readable description of the first violation found.
pub trait CheckedPq {
    /// Verify every invariant this structure maintains.
    fn check_invariants(&self) -> Result<(), String>;
}

/// Deep check of a [`ParBinomialHeap`]: the structure's own `validate`
/// (BH1 heap order, BH2 shapes, parent pointers, size ledger) plus the
/// binary-representation isomorphism — the orders present in `H` are
/// exactly the set bits of `len` (paper §2).
pub fn check_heap<K: Ord + Copy + Send + Sync>(h: &ParBinomialHeap<K>) -> Result<(), String> {
    h.validate()?;
    let bits: usize = h.root_orders().iter().map(|&i| 1usize << i).sum();
    if bits != h.len() {
        return Err(format!(
            "binary representation broken: root orders {:?} encode {bits}, len is {}",
            h.root_orders(),
            h.len()
        ));
    }
    Ok(())
}

/// Deep check of a [`LazyBinomialHeap`]: the structure's own `validate`
/// (Invariants 1.2/1.3, live heap order, live roots, ledgers) plus
/// deletion-buffer hygiene — every `Del`-buffer entry that still exists
/// must be an empty marker (a live entry would mean a deletion was
/// recorded but never performed).
pub fn check_lazy(h: &LazyBinomialHeap) -> Result<(), String> {
    h.validate()?;
    for (i, d) in h.del_buffer.iter().enumerate() {
        if h.arena.contains(*d) && !h.arena.get(*d).empty {
            return Err(format!(
                "Del buffer entry {i} ({d:?}) refers to a live node"
            ));
        }
    }
    Ok(())
}

/// Deep check of a [`UnionPlan`]: the plan's own `validate` (sum-bit/H
/// agreement, link count, slot ordering) plus a re-derivation of Phase I
/// from the presence bits — the carry recurrence, sum bits, point
/// classification and segment limits must all be consistent, and every
/// Phase II winner slot must match the presence bits.
pub fn check_plan<K: Ord + Copy>(plan: &UnionPlan<K>) -> Result<(), String> {
    plan.validate()?;
    let w = plan.width;
    for (name, len) in [
        ("a", plan.a.len()),
        ("b", plan.b.len()),
        ("g", plan.g.len()),
        ("p", plan.p.len()),
        ("c", plan.c.len()),
        ("s", plan.s.len()),
        ("class", plan.class.len()),
        ("i_lim", plan.i_lim.len()),
        ("i_value_b", plan.i_value_b.len()),
        ("i_value_a", plan.i_value_a.len()),
        ("new_roots", plan.new_roots.len()),
    ] {
        if len != w {
            return Err(format!("vector {name} has length {len}, width is {w}"));
        }
    }
    for i in 0..w {
        let c_prev = i > 0 && plan.c[i - 1];
        let p_next = i + 1 < w && plan.p[i + 1];
        if plan.g[i] != (plan.a[i] && plan.b[i]) {
            return Err(format!("position {i}: g != a∧b"));
        }
        if plan.p[i] != (plan.a[i] ^ plan.b[i]) {
            return Err(format!("position {i}: p != a⊕b"));
        }
        if plan.c[i] != (plan.g[i] || (plan.p[i] && c_prev)) {
            return Err(format!("position {i}: carry recurrence broken"));
        }
        if plan.s[i] != (plan.p[i] ^ c_prev) {
            return Err(format!("position {i}: s != p⊕c_prev"));
        }
        if plan.class[i] != classify_point(plan.g[i], plan.p[i], c_prev, p_next) {
            return Err(format!("position {i}: classification mismatch"));
        }
        if plan.i_lim[i] == (plan.p[i] && c_prev) {
            return Err(format!("position {i}: segment limit mismatch"));
        }
        // A winner exists exactly where at least one tree sits.
        if plan.i_value_b[i].is_some() != (plan.a[i] || plan.b[i]) {
            return Err(format!("position {i}: winner/presence mismatch"));
        }
        // Chain positions always carry a dominant root.
        if matches!(plan.class[i], PointType::Internal | PointType::End)
            && plan.i_value_a[i].is_none()
        {
            return Err(format!("position {i}: chain position without dominant"));
        }
    }
    // The top position never carries out (widths are chosen to fit n1+n2).
    if w > 0 && plan.c[w - 1] {
        return Err("carry out of the top position".into());
    }
    Ok(())
}

/// Deep check of a [`HeapPool`] against the full set of heaps it is
/// supposed to hold: every heap passes [`HeapPool::validate_heap`]
/// (ownership stamp, BH1/BH2, binary representation), **no node is
/// reachable from two heaps** (the aliasing hazard of the shared-slab
/// representation — a corrupted meld could splice one tree under two
/// parents), and the heaps together account for every live node of the
/// pool (no leaks, no strays).
pub fn check_pool<K: Ord + Copy + Send + Sync>(
    pool: &HeapPool<K>,
    heaps: &[&PooledHeap],
) -> Result<(), String> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut ids = Vec::new();
    for (hi, h) in heaps.iter().enumerate() {
        pool.validate_heap(h)
            .map_err(|e| format!("heap {hi}: {e}"))?;
        ids.clear();
        pool.collect_node_ids(h, &mut ids);
        for id in &ids {
            if !seen.insert(id.0) {
                return Err(format!(
                    "node {id:?} is reachable from heap {hi} and an earlier heap \
                     (cross-heap aliasing)"
                ));
            }
        }
    }
    if seen.len() != pool.live_nodes() {
        return Err(format!(
            "pool holds {} live nodes but the heaps account for {} \
             (leaked or stray nodes in the slab)",
            pool.live_nodes(),
            seen.len()
        ));
    }
    Ok(())
}

/// Deep check of a [`seqheaps::HollowHeap`]: the structure's own `validate`
/// (DAG in-degree accounting, heap order per edge, second-parent flags only
/// on hollow nodes, tracked-item bijection) plus the lazy-deletion ledger —
/// live node count must be full count plus hollow debt, and an empty heap
/// must carry no residual hollow nodes.
pub fn check_hollow<K: Ord + Clone>(h: &seqheaps::HollowHeap<K>) -> Result<(), String> {
    h.validate()?;
    let (full, live) = h.counts();
    if full != seqheaps::MeldableHeap::len(h) {
        return Err(format!(
            "hollow ledger broken: counts full={full}, len={}",
            seqheaps::MeldableHeap::len(h)
        ));
    }
    if full != h.full_keys().count() {
        return Err(format!(
            "hollow ledger broken: counts full={full}, but {} full slots",
            h.full_keys().count()
        ));
    }
    let Some(hollow) = live.checked_sub(full) else {
        return Err(format!("hollow ledger broken: live={live} < full={full}"));
    };
    if hollow != h.hollow_count() {
        return Err(format!(
            "hollow ledger broken: live-full={hollow}, hollow_count={}",
            h.hollow_count()
        ));
    }
    if full == 0 && hollow != 0 {
        return Err(format!("empty heap retains {hollow} hollow nodes"));
    }
    Ok(())
}

impl<K: Ord + Copy + Send + Sync> CheckedPq for ParBinomialHeap<K> {
    fn check_invariants(&self) -> Result<(), String> {
        check_heap(self)
    }
}

impl CheckedPq for LazyBinomialHeap {
    fn check_invariants(&self) -> Result<(), String> {
        check_lazy(self)
    }
}

impl<K: Ord + Clone> CheckedPq for seqheaps::HollowHeap<K> {
    fn check_invariants(&self) -> Result<(), String> {
        check_hollow(self)
    }
}

impl CheckedPq for crate::decrease::IndexedBinomialPq {
    fn check_invariants(&self) -> Result<(), String> {
        self.validate()
    }
}

impl CheckedPq for crate::decrease::LazyDecreasePq {
    fn check_invariants(&self) -> Result<(), String> {
        self.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plan_seq, RootRef};
    use crate::NodeId;

    fn refs(present_mask: usize, width: usize, base: u32) -> Vec<Option<RootRef>> {
        (0..width)
            .map(|i| {
                (present_mask >> i & 1 == 1).then_some(RootRef {
                    key: (base as i64) * 100 + i as i64,
                    id: NodeId(base + i as u32),
                })
            })
            .collect()
    }

    #[test]
    fn deep_checks_accept_healthy_structures() {
        let h = ParBinomialHeap::from_keys(0..13);
        check_heap(&h).unwrap();
        h.check_invariants().unwrap();

        let mut lz = LazyBinomialHeap::new(2);
        let ids: Vec<NodeId> = (0..16).map(|k| lz.insert(k)).collect();
        lz.delete(ids[15]);
        check_lazy(&lz).unwrap();
        lz.check_invariants().unwrap();

        let plan = build_plan_seq(&refs(0b1011, 5, 0), &refs(0b0110, 5, 100));
        check_plan(&plan).unwrap();
    }

    #[test]
    fn plan_check_catches_carry_corruption() {
        let mut plan = build_plan_seq(&refs(0b1011, 5, 0), &refs(0b0110, 5, 100));
        plan.c[1] = !plan.c[1];
        let err = check_plan(&plan).unwrap_err();
        assert!(err.contains("carry") || err.contains("s !="), "got: {err}");
    }

    #[test]
    fn plan_check_catches_classification_corruption() {
        let mut plan = build_plan_seq(&refs(0b1011, 5, 0), &refs(0b0110, 5, 100));
        // Find a non-Independent point and flip it.
        let i = plan
            .class
            .iter()
            .position(|c| *c != PointType::Independent)
            .expect("this shape has chain points");
        plan.class[i] = PointType::Independent;
        let err = check_plan(&plan).unwrap_err();
        assert!(
            err.contains("classification") || err.contains("links"),
            "got: {err}"
        );
    }

    #[test]
    fn plan_check_catches_length_mismatch() {
        let mut plan = build_plan_seq(&refs(0b1011, 5, 0), &refs(0b0110, 5, 100));
        plan.g.push(false);
        assert!(check_plan(&plan).unwrap_err().contains("length"));
    }

    #[test]
    fn pool_check_accepts_healthy_pools_and_finds_leaks() {
        let mut pool: HeapPool<i64> = HeapPool::new();
        let mut a = pool.from_keys(0..9);
        let b = pool.from_keys(20..25);
        check_pool(&pool, &[&a, &b]).unwrap();
        pool.meld(&mut a, b);
        check_pool(&pool, &[&a]).unwrap();
        // A heap the caller forgot to list shows up as leaked nodes.
        let c = pool.from_keys([99]);
        let err = check_pool(&pool, &[&a]).unwrap_err();
        assert!(err.contains("account for"), "got: {err}");
        check_pool(&pool, &[&a, &c]).unwrap();
    }

    #[test]
    fn pool_check_catches_cross_heap_aliasing() {
        let mut pool: HeapPool<i64> = HeapPool::new();
        let a = pool.from_keys([1, 2, 3, 4]);
        // Listing the same heap twice makes every node "shared" — the exact
        // signature of a meld that left a tree reachable from two handles.
        let err = check_pool(&pool, &[&a, &a]).unwrap_err();
        assert!(err.contains("aliasing"), "got: {err}");
    }

    #[test]
    fn lazy_check_catches_stale_del_buffer() {
        let mut lz = LazyBinomialHeap::new(2);
        let ids: Vec<NodeId> = (0..8).map(|k| lz.insert(k)).collect();
        // Record a deletion that never happened.
        lz.del_buffer.push(ids[3]);
        assert!(check_lazy(&lz).unwrap_err().contains("live node"));
    }
}
