//! Shared node pool: the zero-copy meld representation.
//!
//! [`ParBinomialHeap::meld`](crate::heap::ParBinomialHeap::meld) owns its
//! arena, so melding two heaps must *absorb* the second arena — copy and
//! id-remap every node, `Θ(n)` wall-clock for an operation the paper proves
//! is `O(log n)` work (Theorem 1). The fix is a representation change in the
//! spirit of Hollow Heaps (Hansen–Kaplan–Tarjan–Zwick) and rank-pairing
//! heaps: **one shared slab, links instead of moves**.
//!
//! A [`HeapPool`] owns a single [`Arena`] from which *every* heap in the
//! pool allocates its [`NodeId`]s. A [`PooledHeap`] is then nothing but
//! bookkeeping — a root array `H` and a length — so melding two heaps of the
//! same pool is pure Phase I–III plan application: `O(log n)` pointer writes,
//! **zero node copies** (asserted by the [`Arena::stats`] counters and the
//! `tests/pool_zero_copy.rs` gate). Planning scratch (the two padded root
//! reference arrays and the [`UnionPlan`] buffers) lives in the pool and is
//! reused across melds, so the hot loop performs no per-meld allocation.
//!
//! Cross-pool operations still exist as explicit, counted fallbacks:
//! [`HeapPool::adopt`] absorbs a free-standing heap and
//! [`HeapPool::meld_cross_pool`] moves another pool's trees node by node.
//! Ownership is enforced by a generational [`PoolId`] stamped into every
//! handle — using a handle against the wrong pool panics immediately instead
//! of silently corrupting two slabs.
//!
//! The parallel builder ([`HeapPool::from_keys_parallel`]) removes the last
//! copy from the bulk path: the key range is split recursively, each half
//! builds into a *disjoint* sub-slice of one pre-sized slab (ids baked
//! against the final base offset, so nothing is ever remapped), and the
//! halves meld on the way up inside the shared slab — the tree of unions
//! costs `O(log² n)` pointer writes total instead of the old
//! `Θ(n log n)` absorb cascade.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::arena::{Arena, ArenaStats, Node, NodeId};
use crate::heap::{Engine, ParBinomialHeap};
use crate::plan::{build_plan_into, plan_width, RootRef, UnionPlan};

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// Generational identity of a [`HeapPool`]. Every [`PooledHeap`] carries the
/// id of the pool that created it; all pool operations verify the stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolId(u64);

/// Typed admission error: accepting `requested` more nodes would push the
/// slab past the `u32` [`NodeId`] space, so the build is refused *before*
/// any id is baked. (The old behavior was a silent `as u32` wrap deep in
/// the parallel builder — corrupted NodeIds instead of an error.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Nodes the caller asked to admit.
    pub requested: usize,
    /// Slab slots already in use (live + free) at admission time.
    pub slab_len: usize,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool capacity exceeded: slab holds {} slots, admitting {} more \
             would overflow the u32 node-id space",
            self.slab_len, self.requested
        )
    }
}

impl std::error::Error for CapacityError {}

/// A heap living inside a [`HeapPool`]: the root array `H` plus the length.
/// All node storage belongs to the pool, which is what makes same-pool meld
/// zero-copy. Handles are deliberately not `Clone` — duplicating one would
/// alias live trees; use [`HeapPool::clone_heap`] for a (counted) deep copy.
#[derive(Debug)]
pub struct PooledHeap {
    pool: PoolId,
    roots: Vec<Option<NodeId>>,
    len: usize,
}

impl PooledHeap {
    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root array `H`: slot `i` = root of `B_i`.
    pub fn roots(&self) -> &[Option<NodeId>] {
        &self.roots
    }
}

/// A pool of binomial heaps sharing one node slab. See the module docs.
///
/// Every planning op (`meld`, `extract_min`, `multi_extract_min`,
/// `from_keys_parallel`, `meld_cross_pool`) uses the pool-level default
/// [`Engine`] (set with [`HeapPool::with_engine`]); the `*_with` variants
/// take an explicit engine for call sites that mix planners.
#[derive(Debug)]
pub struct HeapPool<K = i64> {
    id: PoolId,
    arena: Arena<K>,
    /// Default planning engine for every op without an explicit `*_with`.
    engine: Engine,
    // Reusable planning scratch: padded root references for both operands
    // and the plan itself. Cleared and refilled on every sequential meld —
    // no per-meld Vec churn on the hot loop.
    scratch_h1: Vec<Option<RootRef<K>>>,
    scratch_h2: Vec<Option<RootRef<K>>>,
    scratch_plan: UnionPlan<K>,
}

impl<K> Default for HeapPool<K> {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl<K> HeapPool<K> {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A fresh pool with slab room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        HeapPool {
            id: PoolId(NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed)),
            arena: Arena::with_capacity(cap),
            engine: Engine::Sequential,
            scratch_h1: Vec::new(),
            scratch_h2: Vec::new(),
            scratch_plan: UnionPlan::default(),
        }
    }

    /// Builder: set the default planning engine for this pool's ops.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The pool's default planning engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Change the default planning engine in place.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// This pool's identity stamp.
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// Whether `h` was created by (and still belongs to) this pool.
    pub fn owns(&self, h: &PooledHeap) -> bool {
        h.pool == self.id
    }

    /// Borrow the shared arena (read-only; checks and tests).
    pub fn arena(&self) -> &Arena<K> {
        &self.arena
    }

    /// Total live nodes across every heap of the pool.
    pub fn live_nodes(&self) -> usize {
        self.arena.len()
    }

    /// Allocation counters of the shared slab: `(allocs, copies)` — a
    /// same-pool meld must change neither.
    pub fn stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// An empty heap in this pool.
    pub fn new_heap(&self) -> PooledHeap {
        PooledHeap {
            pool: self.id,
            roots: Vec::new(),
            len: 0,
        }
    }

    /// Check that `requested` more nodes fit in the `u32` id space. Bulk
    /// admission paths call this before any id is baked so oversized builds
    /// fail with a typed error instead of wrapping NodeIds mid-build.
    pub fn can_admit(&self, requested: usize) -> Result<(), CapacityError> {
        let slab_len = self.arena.slab_len();
        // `checked_add` first: `slab_len + requested` itself can overflow
        // `usize` on 32-bit targets.
        match slab_len.checked_add(requested) {
            Some(total) if total < u32::MAX as usize => Ok(()),
            _ => Err(CapacityError {
                requested,
                slab_len,
            }),
        }
    }

    /// Rebuild a pool around a deserialized arena (checkpoint recovery).
    pub(crate) fn from_arena(arena: Arena<K>, engine: Engine) -> Self {
        HeapPool {
            id: PoolId(NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed)),
            arena,
            engine,
            scratch_h1: Vec::new(),
            scratch_h2: Vec::new(),
            scratch_plan: UnionPlan::default(),
        }
    }

    /// Re-stamp a recovered root table as a heap of this pool. The caller
    /// (checkpoint recovery) validates the result with `check_pool` before
    /// serving from it.
    pub(crate) fn restore_heap(&self, roots: Vec<Option<NodeId>>, len: usize) -> PooledHeap {
        PooledHeap {
            pool: self.id,
            roots,
            len,
        }
    }

    #[track_caller]
    fn assert_owner(&self, h: &PooledHeap) {
        assert!(
            h.pool == self.id,
            "pool-ownership violation: heap belongs to {:?}, pool is {:?} \
             (use adopt/meld_cross_pool for foreign heaps)",
            h.pool,
            self.id
        );
    }
}

fn trim(roots: &mut Vec<Option<NodeId>>) {
    while matches!(roots.last(), Some(None)) {
        roots.pop();
    }
}

impl<K: Ord + Copy + Send + Sync> HeapPool<K> {
    /// With `--features debug-validate`, deep-check a heap after a hot-path
    /// mutation; a no-op otherwise.
    #[inline]
    pub(crate) fn debug_validate(&self, h: &PooledHeap) {
        #[cfg(feature = "debug-validate")]
        if let Err(e) = self.validate_heap(h) {
            panic!("debug-validate (PooledHeap): {e}");
        }
        #[cfg(not(feature = "debug-validate"))]
        let _ = h;
    }

    /// Build a heap by sequential ripple insertion.
    pub fn from_keys<I: IntoIterator<Item = K>>(&mut self, keys: I) -> PooledHeap {
        let mut h = self.new_heap();
        for k in keys {
            self.insert(&mut h, k);
        }
        h
    }

    /// `Insert(Q, x)`: meld with a singleton (sequential planning — a single
    /// union has `O(log n)` positions, below thread-dispatch granularity).
    pub fn insert(&mut self, h: &mut PooledHeap, key: K) {
        self.assert_owner(h);
        let id = self.arena.alloc(key);
        self.meld_roots(h, &[Some(id)], 1, Engine::Sequential);
        self.debug_validate(h);
    }

    /// The root holding the minimum key (ties to the lowest order).
    pub fn min_root(&self, h: &PooledHeap) -> Option<NodeId> {
        self.assert_owner(h);
        let mut best: Option<NodeId> = None;
        for id in h.roots.iter().flatten() {
            match best {
                None => best = Some(*id),
                Some(b) => {
                    if self.arena.get(*id).key < self.arena.get(b).key {
                        best = Some(*id);
                    }
                }
            }
        }
        best
    }

    /// `Min(Q)`: the minimum key.
    pub fn min(&self, h: &PooledHeap) -> Option<K> {
        self.min_root(h).map(|id| self.arena.get(id).key)
    }

    /// `Extract-Min(Q)` with the pool's default engine.
    pub fn extract_min(&mut self, h: &mut PooledHeap) -> Option<K> {
        self.extract_min_with(h, self.engine)
    }

    /// `Extract-Min(Q)`: remove and return the minimum; the children re-meld
    /// with the chosen engine — all inside the shared slab, zero copies.
    pub fn extract_min_with(&mut self, h: &mut PooledHeap, engine: Engine) -> Option<K> {
        let min_id = self.min_root(h)?;
        let order = self.arena.get(min_id).children.len();
        debug_assert_eq!(h.roots[order], Some(min_id));
        h.roots[order] = None;
        trim(&mut h.roots);
        let Node { key, children, .. } = self.arena.dealloc(min_id);
        let child_count = (1usize << order) - 1;
        h.len -= 1 << order;
        for &c in &children {
            self.arena.get_mut(c).parent = None;
        }
        let residual: Vec<Option<NodeId>> = children.into_iter().map(Some).collect();
        self.meld_roots(h, &residual, child_count, engine);
        self.debug_validate(h);
        Some(key)
    }

    /// `Union(Q1, Q2)` with the pool's default engine.
    pub fn meld(&mut self, a: &mut PooledHeap, b: PooledHeap) {
        self.meld_with(a, b, self.engine)
    }

    /// `Union(Q1, Q2)` for two heaps of this pool: pure plan application —
    /// `O(log n)` pointer writes, zero node copies, zero allocations of node
    /// storage. `b` is consumed.
    pub fn meld_with(&mut self, a: &mut PooledHeap, b: PooledHeap, engine: Engine) {
        self.assert_owner(a);
        self.assert_owner(&b);
        self.meld_roots(a, &b.roots, b.len, engine);
        self.debug_validate(a);
    }

    /// `Multi-Extract-Min` with the pool's default engine.
    pub fn multi_extract_min(&mut self, h: &mut PooledHeap, k: usize) -> Vec<K> {
        self.multi_extract_min_with(h, k, self.engine)
    }

    /// Extract the `k` smallest keys with the root-frontier kernel: one
    /// peel + one re-meld instead of `k` sequential `Extract-Min` plans.
    pub fn multi_extract_min_with(
        &mut self,
        h: &mut PooledHeap,
        k: usize,
        engine: Engine,
    ) -> Vec<K> {
        self.assert_owner(h);
        let take = k.min(h.len);
        if take == 0 {
            return Vec::new();
        }
        let (out, orphan_roots, orphan_len) =
            crate::bulk::peel_k_smallest(&mut self.arena, &mut h.roots, take);
        h.len -= take + orphan_len;
        self.meld_roots(h, &orphan_roots, orphan_len, engine);
        self.debug_validate(h);
        out
    }

    /// Drain a heap into ascending order (consumes the handle).
    pub fn into_sorted_vec(&mut self, mut h: PooledHeap) -> Vec<K> {
        let n = h.len;
        self.multi_extract_min_with(&mut h, n, Engine::Sequential)
    }

    /// Destroy a heap, deallocating every node it owns back to the slab.
    /// Returns the number of nodes freed.
    pub fn free_heap(&mut self, h: PooledHeap) -> usize {
        self.assert_owner(&h);
        let mut ids = Vec::with_capacity(h.len);
        self.collect_node_ids(&h, &mut ids);
        let freed = ids.len();
        for id in ids {
            self.arena.dealloc(id);
        }
        freed
    }

    /// Deep-copy a heap within the pool (counted as copies on the slab).
    pub fn clone_heap(&mut self, h: &PooledHeap) -> PooledHeap {
        self.assert_owner(h);
        let mut roots = vec![None; h.roots.len()];
        for (slot, r) in h.roots.iter().enumerate() {
            if let Some(id) = r {
                roots[slot] = Some(copy_subtree(&mut self.arena, *id, None));
            }
        }
        let out = PooledHeap {
            pool: self.id,
            roots,
            len: h.len,
        };
        self.debug_validate(&out);
        out
    }

    /// Absorb a free-standing [`ParBinomialHeap`] into the pool — the
    /// cross-pool fallback, `Θ(n)` counted copies.
    pub fn adopt(&mut self, heap: ParBinomialHeap<K>) -> PooledHeap {
        let (arena, roots, len) = heap.into_raw_parts();
        let remap = self.arena.absorb(arena);
        let roots: Vec<Option<NodeId>> = roots.iter().map(|r| r.map(&remap)).collect();
        let out = PooledHeap {
            pool: self.id,
            roots,
            len,
        };
        self.debug_validate(&out);
        out
    }

    /// [`Self::meld_cross_pool_with`] with the pool's default engine.
    pub fn meld_cross_pool(
        &mut self,
        dst: &mut PooledHeap,
        src_pool: &mut HeapPool<K>,
        src: PooledHeap,
    ) {
        self.meld_cross_pool_with(dst, src_pool, src, self.engine)
    }

    /// `Union` across pools: move `src`'s trees node by node out of
    /// `src_pool` into this pool (counted copies), then meld zero-copy.
    /// The explicit fallback for when two heaps do *not* share a slab.
    pub fn meld_cross_pool_with(
        &mut self,
        dst: &mut PooledHeap,
        src_pool: &mut HeapPool<K>,
        src: PooledHeap,
        engine: Engine,
    ) {
        self.assert_owner(dst);
        src_pool.assert_owner(&src);
        assert!(
            self.id != src_pool.id,
            "same-pool meld must go through HeapPool::meld"
        );
        let mut moved = vec![None; src.roots.len()];
        for (slot, r) in src.roots.iter().enumerate() {
            if let Some(id) = r {
                moved[slot] = Some(move_subtree(
                    &mut self.arena,
                    &mut src_pool.arena,
                    *id,
                    None,
                ));
            }
        }
        self.meld_roots(dst, &moved, src.len, engine);
        self.debug_validate(dst);
    }

    /// Convert the pool into a free-standing heap — zero-copy, but only
    /// legal when `h` is the pool's sole surviving heap (the slab *is* the
    /// heap's arena). Panics otherwise.
    pub fn into_heap(self, h: PooledHeap) -> ParBinomialHeap<K> {
        self.assert_owner(&h);
        assert_eq!(
            self.arena.len(),
            h.len,
            "into_heap requires the pool to hold exactly this heap \
             ({} live nodes vs heap of {})",
            self.arena.len(),
            h.len
        );
        ParBinomialHeap::from_raw_parts(self.arena, h.roots, h.len)
    }

    /// Deep structural validation of one heap of the pool: BH1 heap order,
    /// BH2 shapes, parent pointers, ownership stamp, and the binary
    /// representation (root orders = set bits of `len`).
    pub fn validate_heap(&self, h: &PooledHeap) -> Result<(), String> {
        if h.pool != self.id {
            return Err(format!(
                "ownership: heap stamped {:?}, pool is {:?}",
                h.pool, self.id
            ));
        }
        let mut total = 0usize;
        for (i, r) in h.roots.iter().enumerate() {
            if let Some(id) = r {
                if !self.arena.contains(*id) {
                    return Err(format!("root {id:?} is not a live pool node"));
                }
                if self.arena.get(*id).parent.is_some() {
                    return Err(format!("root {id:?} has a parent pointer"));
                }
                total += walk_tree(&self.arena, *id, i)?;
            }
        }
        if total != h.len {
            return Err(format!("len {} but trees hold {total}", h.len));
        }
        if matches!(h.roots.last(), Some(None)) {
            return Err("root array not trimmed".into());
        }
        let bits: usize = h
            .roots
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| 1usize << i)
            .sum();
        if bits != h.len {
            return Err(format!(
                "binary representation broken: root orders encode {bits}, len is {}",
                h.len
            ));
        }
        Ok(())
    }

    /// Append every node id reachable from `h` to `out` (aliasing checks).
    pub fn collect_node_ids(&self, h: &PooledHeap, out: &mut Vec<NodeId>) {
        let mut stack: Vec<NodeId> = h.roots.iter().flatten().copied().collect();
        while let Some(id) = stack.pop() {
            out.push(id);
            stack.extend(self.arena.get(id).children.iter().copied());
        }
    }

    /// [`Self::from_keys_parallel_with`] with the pool's default engine.
    pub fn from_keys_parallel(&mut self, keys: &[K]) -> PooledHeap {
        self.from_keys_parallel_with(keys, self.engine)
    }

    /// Build a heap from keys using all rayon workers, entirely inside the
    /// pool's slab: the key range splits recursively, each half builds into
    /// a disjoint slice of one pre-sized slab with ids baked against the
    /// final base offset, and the halves meld zero-copy on the way up using
    /// the chosen planning engine. No absorb, no remap — ever.
    ///
    /// Panics if the build would overflow the `u32` id space; callers that
    /// want a typed error use [`Self::try_from_keys_parallel_with`].
    pub fn from_keys_parallel_with(&mut self, keys: &[K], engine: Engine) -> PooledHeap {
        self.try_from_keys_parallel_with(keys, engine)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::from_keys_parallel_with`] with capacity checked at admission:
    /// an oversized build returns [`CapacityError`] before any id is baked.
    pub fn try_from_keys_parallel_with(
        &mut self,
        keys: &[K],
        engine: Engine,
    ) -> Result<PooledHeap, CapacityError> {
        self.can_admit(keys.len())?;
        let base = self.arena.slab_len();
        // `can_admit` proved base + keys.len() < u32::MAX, so every id the
        // recursive builder bakes (`base ..= base + keys.len() - 1`) fits.
        let base_u32 = u32::try_from(base).expect("admission check bounds the base offset");
        let mut slab: Vec<Option<Node<K>>> = Vec::new();
        slab.resize_with(keys.len(), || None);
        let cutoff = crate::cutoff::bulk_join_cutoff();
        let mut roots = build_slab_rec(keys, &mut slab, base_u32, engine, cutoff);
        self.arena.extend_slab(slab);
        trim(&mut roots);
        let h = PooledHeap {
            pool: self.id,
            roots,
            len: keys.len(),
        };
        self.debug_validate(&h);
        Ok(h)
    }

    /// Meld `other_roots` (nodes already in this pool's slab) into `dst`.
    /// The scratch buffers make repeated sequential melds allocation-free.
    fn meld_roots(
        &mut self,
        dst: &mut PooledHeap,
        other_roots: &[Option<NodeId>],
        other_len: usize,
        engine: Engine,
    ) {
        let n1 = dst.len;
        let n2 = other_len;
        if n2 == 0 {
            return;
        }
        if n1 == 0 {
            dst.roots.clear();
            dst.roots.extend_from_slice(other_roots);
            dst.len = n2;
            trim(&mut dst.roots);
            return;
        }
        let width = plan_width(n1, n2);
        self.scratch_h1.clear();
        for i in 0..width {
            self.scratch_h1
                .push(dst.roots.get(i).copied().flatten().map(|id| RootRef {
                    key: self.arena.get(id).key,
                    id,
                }));
        }
        self.scratch_h2.clear();
        for i in 0..width {
            self.scratch_h2
                .push(other_roots.get(i).copied().flatten().map(|id| RootRef {
                    key: self.arena.get(id).key,
                    id,
                }));
        }
        match engine {
            Engine::Sequential => {
                build_plan_into(&mut self.scratch_plan, &self.scratch_h1, &self.scratch_h2);
            }
            Engine::Rayon => {
                crate::engine_rayon::build_plan_rayon_into(
                    &mut self.scratch_plan,
                    &self.scratch_h1,
                    &self.scratch_h2,
                );
            }
        }
        #[cfg(feature = "debug-validate")]
        if let Err(e) = crate::check::check_plan(&self.scratch_plan) {
            panic!("debug-validate (UnionPlan, pooled): {e}");
        }
        let (arena, plan) = (&mut self.arena, &self.scratch_plan);
        debug_assert!(plan.links.windows(2).all(|w| w[0].slot <= w[1].slot));
        for l in &plan.links {
            debug_assert_eq!(arena.get(l.child).children.len(), l.slot);
            debug_assert_eq!(arena.get(l.parent).children.len(), l.slot);
            arena.get_mut(l.parent).children.push(l.child);
            arena.get_mut(l.child).parent = Some(l.parent);
        }
        dst.roots.clear();
        dst.roots.extend_from_slice(&plan.new_roots);
        for r in dst.roots.iter().flatten() {
            arena.get_mut(*r).parent = None;
        }
        trim(&mut dst.roots);
        dst.len = n1 + n2;
    }
}

/// Walk one binomial tree verifying shape, heap order and parent pointers;
/// returns the subtree size.
fn walk_tree<K: Ord + Copy>(
    arena: &Arena<K>,
    id: NodeId,
    expected_order: usize,
) -> Result<usize, String> {
    let n = arena.get(id);
    if n.children.len() != expected_order {
        return Err(format!(
            "node {id:?}: degree {} expected {expected_order}",
            n.children.len()
        ));
    }
    let mut size = 1;
    for (i, &c) in n.children.iter().enumerate() {
        let cn = arena.get(c);
        if cn.key < n.key {
            return Err("heap order violated".into());
        }
        if cn.parent != Some(id) {
            return Err(format!("child {c:?} has wrong parent pointer"));
        }
        size += walk_tree(arena, c, i)?;
    }
    Ok(size)
}

/// Deep-copy a subtree within one arena (recursion depth = tree order ≤ 32).
fn copy_subtree<K: Ord + Copy>(arena: &mut Arena<K>, id: NodeId, parent: Option<NodeId>) -> NodeId {
    let key = arena.get(id).key;
    let kids = arena.get(id).children.clone();
    let new = arena.alloc_node(Node {
        key,
        parent,
        children: Vec::with_capacity(kids.len()),
    });
    for c in kids {
        let nc = copy_subtree(arena, c, Some(new));
        arena.get_mut(new).children.push(nc);
    }
    new
}

/// Move a subtree out of `src` into `dst` (recursion depth = order ≤ 32).
fn move_subtree<K>(
    dst: &mut Arena<K>,
    src: &mut Arena<K>,
    id: NodeId,
    parent: Option<NodeId>,
) -> NodeId {
    let node = src.dealloc(id);
    let new = dst.alloc_node(Node {
        key: node.key,
        parent,
        children: Vec::with_capacity(node.children.len()),
    });
    for c in node.children {
        let nc = move_subtree(dst, src, c, Some(new));
        dst.get_mut(new).children.push(nc);
    }
    new
}

/// Recursive slab builder: build `keys` into `slab` (a disjoint slice of the
/// final arena slab) with node `i` at global id `base + i`, melding the two
/// halves' root arrays inside the slab on the way up. `cutoff` is the
/// calibrated minimum sub-range worth a `rayon::join` split
/// ([`crate::cutoff::bulk_join_cutoff`]); smaller ranges run the leaf kernel.
fn build_slab_rec<K: Ord + Copy + Send + Sync>(
    keys: &[K],
    slab: &mut [Option<Node<K>>],
    base: u32,
    engine: Engine,
    cutoff: usize,
) -> Vec<Option<NodeId>> {
    debug_assert_eq!(keys.len(), slab.len());
    // Admission (`can_admit`) bounds base + keys.len() below u32::MAX, so
    // the u32 offset arithmetic below cannot wrap.
    debug_assert!((base as u64) + (keys.len() as u64) < u32::MAX as u64);
    if keys.len() <= cutoff {
        return build_slab_leaf(keys, slab, base);
    }
    let mid = keys.len() / 2;
    let (left_slab, right_slab) = slab.split_at_mut(mid);
    let (left_roots, right_roots) = rayon::join(
        || build_slab_rec(&keys[..mid], left_slab, base, engine, cutoff),
        || build_slab_rec(&keys[mid..], right_slab, base + mid as u32, engine, cutoff),
    );
    meld_in_slab(
        slab,
        base,
        left_roots,
        &right_roots,
        mid,
        keys.len() - mid,
        engine,
    )
}

/// Sequential ripple-carry build of one slab segment (ids = `base + index`).
/// `pub(crate)` so the cutoff calibrator can probe its per-key cost.
pub(crate) fn build_slab_leaf<K: Ord + Copy>(
    keys: &[K],
    slab: &mut [Option<Node<K>>],
    base: u32,
) -> Vec<Option<NodeId>> {
    let at = |id: NodeId| (id.0 - base) as usize;
    let mut roots: Vec<Option<NodeId>> = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        slab[i] = Some(Node {
            key: k,
            parent: None,
            children: Vec::new(),
        });
        let mut carry = NodeId(base + i as u32);
        let mut order = 0usize;
        loop {
            if roots.len() <= order {
                roots.push(None);
            }
            match roots[order].take() {
                None => {
                    roots[order] = Some(carry);
                    break;
                }
                Some(existing) => {
                    // Tie rule: the resident tree wins, matching the
                    // planners (the heap is the first operand).
                    let ek = slab[at(existing)].as_ref().expect("live").key;
                    let ck = slab[at(carry)].as_ref().expect("live").key;
                    let (win, lose) = if ek <= ck {
                        (existing, carry)
                    } else {
                        (carry, existing)
                    };
                    let li = at(lose);
                    slab[li].as_mut().expect("live").parent = Some(win);
                    let wi = at(win);
                    slab[wi].as_mut().expect("live").children.push(lose);
                    carry = win;
                    order += 1;
                }
            }
        }
    }
    roots
}

/// Plan + apply a union of two root arrays whose nodes live in `slab`.
fn meld_in_slab<K: Ord + Copy + Send + Sync>(
    slab: &mut [Option<Node<K>>],
    base: u32,
    mut left_roots: Vec<Option<NodeId>>,
    right_roots: &[Option<NodeId>],
    left_len: usize,
    right_len: usize,
    engine: Engine,
) -> Vec<Option<NodeId>> {
    if right_len == 0 {
        return left_roots;
    }
    if left_len == 0 {
        left_roots.clear();
        left_roots.extend_from_slice(right_roots);
        return left_roots;
    }
    let idx = |id: NodeId| (id.0 - base) as usize;
    let key_of = |slab: &[Option<Node<K>>], id: NodeId| slab[idx(id)].as_ref().expect("live").key;
    let width = plan_width(left_len, right_len);
    let h1: Vec<Option<RootRef<K>>> = (0..width)
        .map(|i| {
            left_roots.get(i).copied().flatten().map(|id| RootRef {
                key: key_of(slab, id),
                id,
            })
        })
        .collect();
    let h2: Vec<Option<RootRef<K>>> = (0..width)
        .map(|i| {
            right_roots.get(i).copied().flatten().map(|id| RootRef {
                key: key_of(slab, id),
                id,
            })
        })
        .collect();
    let plan = match engine {
        Engine::Sequential => crate::plan::build_plan_seq(&h1, &h2),
        Engine::Rayon => crate::engine_rayon::build_plan_rayon(&h1, &h2),
    };
    for l in &plan.links {
        debug_assert_eq!(
            slab[idx(l.child)].as_ref().expect("live").children.len(),
            l.slot
        );
        debug_assert_eq!(
            slab[idx(l.parent)].as_ref().expect("live").children.len(),
            l.slot
        );
        slab[idx(l.parent)]
            .as_mut()
            .expect("live")
            .children
            .push(l.child);
        slab[idx(l.child)].as_mut().expect("live").parent = Some(l.parent);
    }
    let mut out = plan.new_roots.clone();
    for r in out.iter().flatten() {
        slab[idx(*r)].as_mut().expect("live").parent = None;
    }
    trim(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pool_meld_is_zero_copy() {
        let mut pool: HeapPool<i64> = HeapPool::new();
        let mut a = pool.from_keys(0..100);
        let b = pool.from_keys(200..250);
        let before = pool.stats();
        pool.meld(&mut a, b);
        let after = pool.stats();
        assert_eq!(before, after, "same-pool meld must not alloc or copy");
        assert_eq!(a.len(), 150);
        pool.validate_heap(&a).unwrap();
        assert_eq!(pool.into_sorted_vec(a).len(), 150);
    }

    #[test]
    fn pooled_ops_match_oracle() {
        let mut pool: HeapPool<i64> = HeapPool::new();
        let mut h = pool.new_heap();
        let keys = [5i64, 3, 9, 1, 7, 3, 8];
        for &k in &keys {
            pool.insert(&mut h, k);
            pool.validate_heap(&h).unwrap();
        }
        assert_eq!(pool.min(&h), Some(1));
        assert_eq!(pool.extract_min(&mut h), Some(1));
        assert_eq!(pool.extract_min_with(&mut h, Engine::Rayon), Some(3));
        pool.validate_heap(&h).unwrap();
        let rest = pool.into_sorted_vec(h);
        assert_eq!(rest, vec![3, 5, 7, 8, 9]);
    }

    #[test]
    fn clone_heap_is_independent() {
        let mut pool: HeapPool<i64> = HeapPool::new();
        let mut a = pool.from_keys([4, 2, 6]);
        let b = pool.clone_heap(&a);
        assert_eq!(pool.stats().copies, 3);
        pool.validate_heap(&b).unwrap();
        // Mutating the original leaves the clone intact.
        pool.extract_min(&mut a);
        pool.validate_heap(&a).unwrap();
        pool.validate_heap(&b).unwrap();
        assert_eq!(pool.into_sorted_vec(b), vec![2, 4, 6]);
        assert_eq!(pool.into_sorted_vec(a), vec![4, 6]);
    }

    #[test]
    fn cross_pool_meld_falls_back_to_counted_moves() {
        let mut p1: HeapPool<i64> = HeapPool::new();
        let mut p2: HeapPool<i64> = HeapPool::new();
        let mut a = p1.from_keys([1, 5, 9]);
        let b = p2.from_keys([2, 4, 6, 8]);
        p1.meld_cross_pool(&mut a, &mut p2, b);
        assert_eq!(p1.stats().copies, 4, "cross-pool meld copies the source");
        assert_eq!(p2.live_nodes(), 0, "source pool is drained");
        p1.validate_heap(&a).unwrap();
        assert_eq!(p1.into_sorted_vec(a), vec![1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn adopt_and_into_heap_roundtrip() {
        let mut pool: HeapPool<i64> = HeapPool::new();
        let h = pool.adopt(ParBinomialHeap::from_keys([3, 1, 2]));
        assert_eq!(pool.stats().copies, 3);
        pool.validate_heap(&h).unwrap();
        let free = pool.into_heap(h);
        free.validate().unwrap();
        assert_eq!(free.into_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "pool-ownership violation")]
    fn wrong_pool_handle_panics() {
        let mut p1: HeapPool<i64> = HeapPool::new();
        let p2: HeapPool<i64> = HeapPool::new();
        let mut h = p2.new_heap();
        p1.insert(&mut h, 1);
    }

    #[test]
    fn parallel_build_in_pool_is_alloc_only() {
        let keys: Vec<i64> = (0..50_000)
            .map(|i| (i * 2654435761u64 as i64) % 9973)
            .collect();
        let mut pool: HeapPool<i64> = HeapPool::with_capacity(keys.len());
        let h = pool.from_keys_parallel_with(&keys, Engine::Rayon);
        assert_eq!(pool.stats().allocs, keys.len() as u64);
        assert_eq!(pool.stats().copies, 0, "parallel build must never copy");
        pool.validate_heap(&h).unwrap();
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(pool.into_sorted_vec(h), expected);
    }

    #[test]
    fn multi_extract_matches_sequential_extracts() {
        let keys: Vec<i64> = (0..2000).map(|i| (i * 37) % 211).collect();
        let mut pool: HeapPool<i64> = HeapPool::new();
        let mut h = pool.from_keys(keys.iter().copied());
        let got = pool.multi_extract_min(&mut h, 500);
        pool.validate_heap(&h).unwrap();
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(got, expected[..500]);
        assert_eq!(h.len(), 1500);
        let rest = pool.into_sorted_vec(h);
        assert_eq!(rest, expected[500..]);
    }
}
