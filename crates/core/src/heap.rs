//! The parallel meldable binomial heap (the paper's §3 structure).
//!
//! [`ParBinomialHeap`] owns an [`Arena`] of nodes plus the root array `H`.
//! `Union` builds a [`UnionPlan`] with one of three engines — sequential
//! oracle, rayon threads, or the PRAM simulator — and applies it with
//! [`ParBinomialHeap::apply_plan`]; the engines must (and are tested to)
//! produce identical plans.

use crate::arena::{Arena, Node, NodeId};
use crate::plan::{build_plan_seq, plan_width, RootRef, UnionPlan};

/// Which execution strategy carries out the parallel phases of `Union`,
/// `Extract-Min` and `Min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Plain loops — the oracle.
    Sequential,
    /// Real threads via rayon (wall-clock experiments).
    Rayon,
}

/// A meldable priority queue backed by a binomial heap.
///
/// Generic over the key type `K: Ord + Copy` (use a `(priority, payload)`
/// tuple to carry data). The default `K = i64` is the PRAM machine word: the
/// measured engines (`meld_pram`, `from_keys_pram`, …) exist only for
/// word keys, because the simulator stores keys in memory cells.
#[derive(Debug, Clone)]
pub struct ParBinomialHeap<K = i64> {
    arena: Arena<K>,
    /// Root array `H`: slot `i` = root of `B_i`.
    roots: Vec<Option<NodeId>>,
    len: usize,
    /// Default planning engine, used by the engine-less [`MeldablePq`]
    /// surface (`crate::meldable`); the explicit-engine methods ignore it.
    engine: Engine,
    /// Cumulative Theorem-1 cost of every op planned on the PRAM simulator
    /// (`*_pram` methods; `i64` keys only). `pram::Cost` implements
    /// [`obs::Recorder`], so this ledger snapshots straight into a registry.
    ledger: pram::Cost,
    /// Cached minimum root, refreshed eagerly by every mutator so `min` /
    /// `min_root` are O(1). `None` either means the heap is empty or the
    /// cache was invalidated by raw-parts surgery; `min_root` falls back to
    /// the scan in that case, so stale-`None` is safe, stale-`Some` never
    /// happens.
    min_cache: Option<NodeId>,
}

impl<K> Default for ParBinomialHeap<K> {
    fn default() -> Self {
        ParBinomialHeap {
            arena: Arena::new(),
            roots: Vec::new(),
            len: 0,
            engine: Engine::Sequential,
            ledger: pram::Cost::ZERO,
            min_cache: None,
        }
    }
}

impl<K: Ord + Copy + Send + Sync> ParBinomialHeap<K> {
    /// `Make-Queue`: an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: set the default planning engine used by the engine-less
    /// [`crate::MeldablePq`] surface. The explicit-engine methods
    /// (`meld(.., engine)`, …) are unaffected.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The default planning engine (see [`Self::with_engine`]).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Change the default planning engine in place.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// With `--features debug-validate`, run the deep `meldpq::check` pass
    /// and panic on the first violation; a no-op otherwise. Called after
    /// every hot-path mutation.
    #[inline]
    pub(crate) fn debug_validate(&self) {
        #[cfg(feature = "debug-validate")]
        if let Err(e) = crate::check::check_heap(self) {
            panic!("debug-validate (ParBinomialHeap): {e}");
        }
    }

    /// Build from keys by repeated insertion (sequential engine).
    pub fn from_keys<I: IntoIterator<Item = K>>(keys: I) -> Self {
        let mut h = Self::new();
        for k in keys {
            h.insert(k);
        }
        h
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the arena (read-only; used by engines and tests).
    pub fn arena(&self) -> &Arena<K> {
        &self.arena
    }

    /// Borrow the root array.
    pub fn roots(&self) -> &[Option<NodeId>] {
        &self.roots
    }

    /// Orders of the trees present (the set bits of `len`).
    pub fn root_orders(&self) -> Vec<usize> {
        self.roots
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i))
            .collect()
    }

    /// Root references padded to `width` (engine input).
    pub fn root_refs(&self, width: usize) -> Vec<Option<RootRef<K>>> {
        (0..width)
            .map(|i| {
                self.roots.get(i).copied().flatten().map(|id| RootRef {
                    key: self.arena.get(id).key,
                    id,
                })
            })
            .collect()
    }

    fn trim(&mut self) {
        while matches!(self.roots.last(), Some(None)) {
            self.roots.pop();
        }
    }

    /// `Insert(Q, x)`: meld with a singleton heap.
    pub fn insert(&mut self, key: K) {
        let mut single = ParBinomialHeap::new();
        let id = single.arena.alloc(key);
        single.roots.push(Some(id));
        single.len = 1;
        self.meld(single, Engine::Sequential);
    }

    /// `Min(Q)`: the minimum key (always at some root by BH1).
    pub fn min(&self) -> Option<K> {
        self.min_root().map(|id| self.arena.get(id).key)
    }

    /// The root holding the minimum key (ties to the lowest order).
    ///
    /// O(1) when the cache is warm (every mutator refreshes it); falls back
    /// to [`Self::min_root_scan`] after raw-parts surgery invalidated it.
    pub fn min_root(&self) -> Option<NodeId> {
        self.min_cache.or_else(|| self.min_root_scan())
    }

    /// The uncached O(log n) scan over the root array (the pre-cache
    /// behaviour; kept public so the wallclock bench can race the two).
    pub fn min_root_scan(&self) -> Option<NodeId> {
        let mut best: Option<NodeId> = None;
        for id in self.roots.iter().flatten() {
            match best {
                None => best = Some(*id),
                Some(b) => {
                    if self.arena.get(*id).key < self.arena.get(b).key {
                        best = Some(*id);
                    }
                }
            }
        }
        best
    }

    /// Recompute the cached min root from the current root array.
    fn refresh_min_cache(&mut self) {
        self.min_cache = self.min_root_scan();
    }

    /// `Extract-Min(Q)`: remove and return the minimum key. The children of
    /// the removed root — exactly `B_{k-1}, …, B_0` — become a heap that is
    /// melded back with the chosen engine.
    pub fn extract_min(&mut self, engine: Engine) -> Option<K> {
        let min_id = self.min_root()?;
        let order = self.arena.get(min_id).children.len();
        debug_assert_eq!(self.roots[order], Some(min_id));
        self.roots[order] = None;
        self.trim();
        let Node { key, children, .. } = self.arena.dealloc(min_id);
        let child_count = (1usize << order) - 1;
        self.len -= 1 << order;
        // Orphan the children and build the residual heap *sharing the same
        // arena*: we split the bookkeeping, not the storage — self keeps the
        // arena; the residual heap is described by a root array only.
        for &c in &children {
            self.arena.get_mut(c).parent = None;
        }
        let residual_roots: Vec<Option<NodeId>> = children.into_iter().map(Some).collect();
        self.meld_roots_in_arena(residual_roots, child_count, engine);
        // The residual meld may have been a no-op (order-0 root); the root
        // array still changed above, so always refresh here.
        self.refresh_min_cache();
        self.debug_validate();
        Some(key)
    }

    /// `Union(Q1, Q2)`: absorb `other` (its arena is merged in, ids remapped),
    /// then meld the two root arrays with the chosen engine.
    pub fn meld(&mut self, other: ParBinomialHeap<K>, engine: Engine) {
        let other_len = other.len;
        let remap = self.arena.absorb(other.arena);
        let other_roots: Vec<Option<NodeId>> = other.roots.iter().map(|r| r.map(&remap)).collect();
        self.meld_roots_in_arena(other_roots, other_len, engine);
    }

    /// Meld a second root array whose nodes already live in `self.arena`.
    pub(crate) fn meld_roots_in_arena(
        &mut self,
        other_roots: Vec<Option<NodeId>>,
        other_len: usize,
        engine: Engine,
    ) {
        let n1 = self.len;
        let n2 = other_len;
        if n2 == 0 {
            return;
        }
        if n1 == 0 {
            self.roots = other_roots;
            self.len = n2;
            self.trim();
            self.refresh_min_cache();
            return;
        }
        let width = plan_width(n1, n2);
        let h1 = self.root_refs(width);
        let h2: Vec<Option<RootRef<K>>> = (0..width)
            .map(|i| {
                other_roots.get(i).copied().flatten().map(|id| RootRef {
                    key: self.arena.get(id).key,
                    id,
                })
            })
            .collect();
        let plan = match engine {
            Engine::Sequential => build_plan_seq(&h1, &h2),
            Engine::Rayon => crate::engine_rayon::build_plan_rayon(&h1, &h2),
        };
        #[cfg(feature = "debug-validate")]
        if let Err(e) = crate::check::check_plan(&plan) {
            panic!("debug-validate (UnionPlan): {e}");
        }
        self.apply_plan(&plan);
        self.len = n1 + n2;
        self.debug_validate();
    }
}

impl ParBinomialHeap<i64> {
    /// Cumulative Theorem-1 cost of every `*_pram` op run so far. The
    /// returned [`pram::Cost`] implements `obs::Recorder`, so callers report
    /// it straight into an `obs::Registry`:
    ///
    /// ```
    /// # let mut h = meldpq::ParBinomialHeap::new();
    /// # h.insert_pram(3, 2);
    /// let mut reg = obs::Registry::new();
    /// reg.record("union", h.pram_ledger());
    /// ```
    pub fn pram_ledger(&self) -> &pram::Cost {
        &self.ledger
    }

    /// Take the ledger, resetting it to zero (per-window deltas).
    pub fn take_pram_ledger(&mut self) -> pram::Cost {
        std::mem::take(&mut self.ledger)
    }

    /// Accumulate an externally measured cost (e.g. a PRAM `Make-Queue`
    /// build feeding `multi_insert_pram`) onto the ledger.
    pub(crate) fn add_pram_cost(&mut self, cost: pram::Cost) {
        self.ledger += cost;
    }

    /// Ledger growth since `before` (the per-op delta the deprecated
    /// `*_measured` shims return).
    fn ledger_since(&self, before: pram::Cost) -> pram::Cost {
        pram::Cost {
            time: self.ledger.time - before.time,
            work: self.ledger.work - before.work,
        }
    }

    /// The one measured meld core behind `insert_pram` / `meld_pram` /
    /// `extract_min_pram`: plan `other_roots` (already in `self.arena`) on a
    /// `p`-processor EREW PRAM, apply, and accumulate the measured cost on
    /// [`Self::pram_ledger`]. Trivial melds (either side empty) are free,
    /// exactly as in the paper's accounting.
    fn meld_roots_pram(&mut self, other_roots: Vec<Option<NodeId>>, other_len: usize, p: usize) {
        if other_len == 0 {
            return;
        }
        if self.len == 0 {
            self.roots = other_roots;
            self.len = other_len;
            self.trim();
            self.refresh_min_cache();
            return;
        }
        let width = plan_width(self.len, other_len);
        let h1 = self.root_refs(width);
        let h2: Vec<Option<RootRef>> = (0..width)
            .map(|i| {
                other_roots.get(i).copied().flatten().map(|id| RootRef {
                    key: self.arena.get(id).key,
                    id,
                })
            })
            .collect();
        let out = crate::engine_pram::build_plan_pram(&h1, &h2, p)
            .expect("the Union program is EREW-legal");
        self.apply_plan(&out.plan);
        self.len += other_len;
        self.ledger += out.cost;
        self.debug_validate();
    }

    /// `Union(Q1, Q2)` planned on the EREW PRAM simulator with `p`
    /// processors; the measured Theorem-1 cost lands on [`Self::pram_ledger`].
    pub fn meld_pram(&mut self, other: ParBinomialHeap, p: usize) {
        let other_len = other.len;
        if other_len == 0 {
            return;
        }
        let remap = self.arena.absorb(other.arena);
        let other_roots: Vec<Option<NodeId>> = other.roots.iter().map(|r| r.map(&remap)).collect();
        self.meld_roots_pram(other_roots, other_len, p);
    }

    /// `Insert(Q, x)` planned on the PRAM simulator (a singleton `Union`);
    /// cost lands on [`Self::pram_ledger`].
    pub fn insert_pram(&mut self, key: i64, p: usize) {
        let mut single = ParBinomialHeap::new();
        let id = single.arena.alloc(key);
        single.roots.push(Some(id));
        single.len = 1;
        self.meld_pram(single, p);
    }

    /// `Extract-Min(Q)` planned on the PRAM simulator: an EREW min-reduction
    /// over the root array plus the children re-meld, both measured onto
    /// [`Self::pram_ledger`].
    pub fn extract_min_pram(&mut self, p: usize) -> Option<i64> {
        let width = self.roots.len();
        let refs = self.root_refs(width);
        let (min, reduce_cost) =
            crate::engine_pram::min_pram(&refs, p).expect("the reduction is EREW-legal");
        self.ledger += reduce_cost;
        let min_id = min?.id;
        let order = self.arena.get(min_id).children.len();
        debug_assert_eq!(self.roots[order], Some(min_id));
        self.roots[order] = None;
        self.trim();
        let Node { key, children, .. } = self.arena.dealloc(min_id);
        let child_count = (1usize << order) - 1;
        self.len -= 1 << order;
        for &c in &children {
            self.arena.get_mut(c).parent = None;
        }
        let residual: Vec<Option<NodeId>> = children.into_iter().map(Some).collect();
        self.meld_roots_pram(residual, child_count, p);
        self.refresh_min_cache();
        self.debug_validate();
        Some(key)
    }

    /// Deprecated shim kept for the report binaries (seed meters must stay
    /// byte-identical): [`Self::meld_pram`] + the ledger delta.
    #[deprecated(note = "use meld_pram and read pram_ledger() via obs::Recorder")]
    pub fn meld_measured(&mut self, other: ParBinomialHeap, p: usize) -> pram::Cost {
        let before = self.ledger;
        self.meld_pram(other, p);
        self.ledger_since(before)
    }

    /// Deprecated shim kept for the report binaries: [`Self::insert_pram`] +
    /// the ledger delta.
    #[deprecated(note = "use insert_pram and read pram_ledger() via obs::Recorder")]
    pub fn insert_measured(&mut self, key: i64, p: usize) -> pram::Cost {
        let before = self.ledger;
        self.insert_pram(key, p);
        self.ledger_since(before)
    }

    /// Deprecated shim kept for the report binaries:
    /// [`Self::extract_min_pram`] + the ledger delta.
    #[deprecated(note = "use extract_min_pram and read pram_ledger() via obs::Recorder")]
    pub fn extract_min_measured(&mut self, p: usize) -> (Option<i64>, pram::Cost) {
        let before = self.ledger;
        let got = self.extract_min_pram(p);
        (got, self.ledger_since(before))
    }
}

impl<K: Ord + Copy + Send + Sync> ParBinomialHeap<K> {
    /// Carry out a [`UnionPlan`]'s Phase III surgery on the arena: links in
    /// ascending slot order (so child vectors stay dense) and the new root
    /// array.
    pub fn apply_plan(&mut self, plan: &UnionPlan<K>) {
        debug_assert!(plan.links.windows(2).all(|w| w[0].slot <= w[1].slot));
        for l in &plan.links {
            debug_assert_eq!(
                self.arena.get(l.child).children.len(),
                l.slot,
                "link child must have order == slot"
            );
            debug_assert_eq!(
                self.arena.get(l.parent).children.len(),
                l.slot,
                "link parent must have order == slot before gaining the child"
            );
            self.arena.get_mut(l.parent).children.push(l.child);
            self.arena.get_mut(l.child).parent = Some(l.parent);
        }
        self.roots = plan.new_roots.clone();
        for r in self.roots.iter().flatten() {
            self.arena.get_mut(*r).parent = None;
        }
        self.trim();
        self.refresh_min_cache();
    }

    /// Assemble a heap from a pool-built arena + root array (the zero-copy
    /// handoff in [`HeapPool::into_heap`](crate::pool::HeapPool::into_heap)).
    /// The arena must hold exactly the heap's nodes.
    pub(crate) fn from_raw_parts(arena: Arena<K>, roots: Vec<Option<NodeId>>, len: usize) -> Self {
        let mut h = ParBinomialHeap {
            arena,
            roots,
            len,
            engine: Engine::Sequential,
            ledger: pram::Cost::ZERO,
            min_cache: None,
        };
        h.trim();
        h.refresh_min_cache();
        h.debug_validate();
        h
    }

    /// Decompose into `(arena, roots, len)` (the zero-copy handoff into
    /// [`HeapPool::adopt`](crate::pool::HeapPool::adopt)).
    pub(crate) fn into_raw_parts(self) -> (Arena<K>, Vec<Option<NodeId>>, usize) {
        (self.arena, self.roots, self.len)
    }

    /// Mutable access to arena + roots together (the bulk peel kernel).
    /// Invalidates the min cache — the caller mutates roots out of our
    /// sight, and the finishing `set_len` rebuilds it.
    pub(crate) fn parts_mut(&mut self) -> (&mut Arena<K>, &mut Vec<Option<NodeId>>) {
        self.min_cache = None;
        (&mut self.arena, &mut self.roots)
    }

    /// Allocate a node without attaching it anywhere (the parallel builders
    /// wire structure up separately). Not counted in `len` until
    /// `set_len`/`install_root` finish the build.
    pub(crate) fn alloc_detached(&mut self, key: K) -> NodeId {
        self.arena.alloc(key)
    }

    /// Link two equal-order detached trees: `loser` becomes the next child
    /// of `winner`.
    pub(crate) fn link_detached(&mut self, winner: NodeId, loser: NodeId) {
        debug_assert_eq!(
            self.arena.get(winner).children.len(),
            self.arena.get(loser).children.len()
        );
        debug_assert!(self.arena.get(winner).key <= self.arena.get(loser).key);
        self.arena.get_mut(winner).children.push(loser);
        self.arena.get_mut(loser).parent = Some(winner);
    }

    /// Install a finished tree into root slot `order`.
    pub(crate) fn install_root(&mut self, order: usize, id: NodeId) {
        if self.roots.len() <= order {
            self.roots.resize(order + 1, None);
        }
        debug_assert!(self.roots[order].is_none());
        debug_assert_eq!(self.arena.get(id).children.len(), order);
        self.roots[order] = Some(id);
        self.min_cache = None;
    }

    /// Finish a detached build by recording the key count (and rebuild the
    /// min cache the detached surgery bypassed).
    pub(crate) fn set_len(&mut self, n: usize) {
        self.len = n;
        self.refresh_min_cache();
    }

    /// Iterate over all stored keys in arbitrary (arena) order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.arena.iter().map(|(_, n)| n.key)
    }

    /// Drain into ascending order (sequential engine).
    pub fn into_sorted_vec(mut self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(k) = self.extract_min(Engine::Sequential) {
            out.push(k);
        }
        out
    }

    /// Verify BH1 (heap order), BH2 (tree shapes & one tree per order),
    /// parent pointers, and size bookkeeping.
    pub fn validate(&self) -> Result<(), String> {
        fn walk<K: Ord + Copy>(
            arena: &Arena<K>,
            id: NodeId,
            expected_order: usize,
        ) -> Result<usize, String> {
            let n = arena.get(id);
            if n.children.len() != expected_order {
                return Err(format!(
                    "node {id:?}: degree {} expected {expected_order}",
                    n.children.len()
                ));
            }
            let mut size = 1;
            for (i, &c) in n.children.iter().enumerate() {
                let cn = arena.get(c);
                if cn.key < n.key {
                    return Err("heap order violated".into());
                }
                if cn.parent != Some(id) {
                    return Err(format!("child {c:?} has wrong parent pointer"));
                }
                size += walk(arena, c, i)?;
            }
            Ok(size)
        }
        let mut total = 0usize;
        for (i, r) in self.roots.iter().enumerate() {
            if let Some(id) = r {
                if self.arena.get(*id).parent.is_some() {
                    return Err(format!("root {id:?} has a parent pointer"));
                }
                total += walk(&self.arena, *id, i)?;
            }
        }
        if total != self.len {
            return Err(format!("len {} but trees hold {total}", self.len));
        }
        if matches!(self.roots.last(), Some(None)) {
            return Err("root array not trimmed".into());
        }
        if self.arena.len() != self.len {
            return Err(format!(
                "arena holds {} nodes for {} keys",
                self.arena.len(),
                self.len
            ));
        }
        if let Some(cached) = self.min_cache {
            if !self.roots.contains(&Some(cached)) {
                return Err("min cache points at a non-root".into());
            }
            let cached_key = self.arena.get(cached).key;
            if let Some(best) = self.min_root_scan() {
                if self.arena.get(best).key < cached_key {
                    return Err("min cache is stale (scan found a smaller root)".into());
                }
            }
        }
        Ok(())
    }
}

impl<K: Ord + Copy + Send + Sync> FromIterator<K> for ParBinomialHeap<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        ParBinomialHeap::from_keys(iter)
    }
}

impl<K: Ord + Copy + Send + Sync> Extend<K> for ParBinomialHeap<K> {
    fn extend<T: IntoIterator<Item = K>>(&mut self, iter: T) {
        for k in iter {
            self.insert(k);
        }
    }
}

impl<K: Ord + Copy + Send + Sync> IntoIterator for ParBinomialHeap<K> {
    type Item = K;
    type IntoIter = std::vec::IntoIter<K>;

    /// Consume the heap, yielding keys in ascending order.
    fn into_iter(self) -> Self::IntoIter {
        self.into_sorted_vec().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_trait_impls() {
        let mut h: ParBinomialHeap = [4i64, 1, 3].into_iter().collect();
        h.extend([2i64, 0]);
        let drained: Vec<i64> = h.into_iter().collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn validate_detects_heap_order_corruption() {
        let mut h = ParBinomialHeap::from_keys(0..8);
        let root = h.roots[3].expect("B_3 root");
        let child = h.arena.get(root).children[0];
        h.arena.get_mut(child).key = -100;
        assert!(h.validate().unwrap_err().contains("heap order"));
    }

    #[test]
    fn validate_detects_parent_pointer_corruption() {
        let mut h = ParBinomialHeap::from_keys(0..8);
        let root = h.roots[3].expect("B_3 root");
        let child = h.arena.get(root).children[1];
        h.arena.get_mut(child).parent = None;
        assert!(h.validate().unwrap_err().contains("parent"));
    }

    #[test]
    fn validate_detects_len_corruption() {
        let mut h = ParBinomialHeap::from_keys(0..8);
        h.len = 9;
        assert!(h.validate().is_err());
    }

    #[test]
    fn insert_extract_roundtrip() {
        let mut h = ParBinomialHeap::new();
        for k in [5, 1, 4, 2, 3] {
            h.insert(k);
            h.validate().unwrap();
        }
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.into_sorted_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn meld_sequential_matches_binary_addition() {
        let mut a = ParBinomialHeap::from_keys(0..11);
        let b = ParBinomialHeap::from_keys(100..105);
        a.meld(b, Engine::Sequential);
        assert_eq!(a.len(), 16);
        assert_eq!(a.root_orders(), vec![4]);
        a.validate().unwrap();
        assert_eq!(a.into_sorted_vec().len(), 16);
    }

    #[test]
    fn extract_min_across_melds() {
        let mut a = ParBinomialHeap::from_keys([9, 7, 5]);
        let b = ParBinomialHeap::from_keys([8, 6, 4]);
        a.meld(b, Engine::Sequential);
        a.validate().unwrap();
        let mut out = Vec::new();
        while let Some(k) = a.extract_min(Engine::Sequential) {
            a.validate().unwrap();
            out.push(k);
        }
        assert_eq!(out, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn empty_meld_cases() {
        let mut e: ParBinomialHeap = ParBinomialHeap::new();
        e.meld(ParBinomialHeap::new(), Engine::Sequential);
        assert!(e.is_empty());
        let mut a = ParBinomialHeap::from_keys([1]);
        a.meld(ParBinomialHeap::new(), Engine::Sequential);
        assert_eq!(a.len(), 1);
        let mut e2 = ParBinomialHeap::new();
        e2.meld(a, Engine::Sequential);
        assert_eq!(e2.len(), 1);
        assert_eq!(e2.min(), Some(1));
    }

    #[test]
    fn min_cache_tracks_scan_through_all_mutators() {
        let mut h = ParBinomialHeap::new();
        // Insert / extract keep the cache warm and correct.
        for k in [13i64, 4, 9, 4, 22, -3, 17, 0] {
            h.insert(k);
            assert_eq!(h.min_cache, h.min_root_scan(), "cache after insert");
            h.validate().unwrap();
        }
        assert_eq!(h.extract_min(Engine::Sequential), Some(-3));
        assert_eq!(h.min_cache, h.min_root_scan(), "cache after extract");
        // Melds (both directions, including meld-into-empty) refresh it.
        let mut e = ParBinomialHeap::new();
        e.meld(ParBinomialHeap::from_keys([-7, 5]), Engine::Sequential);
        assert_eq!(e.min_cache, e.min_root_scan(), "cache after empty-meld");
        h.meld(e, Engine::Rayon);
        assert_eq!(h.min_cache, h.min_root_scan(), "cache after meld");
        assert_eq!(h.min(), Some(-7));
        // PRAM ops refresh it too.
        h.insert_pram(-9, 3);
        assert_eq!(h.min_cache, h.min_root_scan(), "cache after insert_pram");
        assert_eq!(h.extract_min_pram(3), Some(-9));
        assert_eq!(h.min_cache, h.min_root_scan(), "cache after extract_pram");
        h.validate().unwrap();
        // And a stale cache is caught by validate.
        // Keys [3,1,2]: B_1 holds {3,1} (root key 1), B_0 holds {2}. Pointing
        // the cache at the B_0 root (key 2) makes it stale.
        let mut bad = ParBinomialHeap::from_keys([3i64, 1, 2]);
        bad.min_cache = bad.roots[0];
        assert!(bad.validate().unwrap_err().contains("min cache"));
    }

    #[test]
    fn pram_ops_match_unmeasured_semantics() {
        let mut a = ParBinomialHeap::from_keys([5, 9, 1, 7, 3]);
        let b = ParBinomialHeap::from_keys([2, 8, 4, 6]);
        a.meld_pram(b, 3);
        assert!(a.pram_ledger().time > 0);
        a.validate().unwrap();
        let before = *a.pram_ledger();
        a.insert_pram(0, 3);
        assert!(a.pram_ledger().time > before.time);
        a.validate().unwrap();
        let mut out = Vec::new();
        while let Some(k) = a.extract_min_pram(3) {
            out.push(k);
            a.validate().unwrap();
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        let total = a.take_pram_ledger();
        assert!(total.work >= total.time);
        assert_eq!(*a.pram_ledger(), pram::Cost::ZERO);
    }

    #[test]
    #[allow(deprecated)]
    fn measured_shims_report_per_op_deltas() {
        let mut e = ParBinomialHeap::new();
        assert_eq!(e.meld_measured(ParBinomialHeap::new(), 2), pram::Cost::ZERO);
        let c = e.meld_measured(ParBinomialHeap::from_keys([4, 2]), 2);
        assert_eq!(c, pram::Cost::ZERO); // moving into an empty heap is free
        assert_eq!(e.len(), 2);
        e.validate().unwrap();
        // The shim's delta must match a fresh heap's full ledger for the
        // same single op.
        let mut a = ParBinomialHeap::from_keys([5, 9, 1, 7, 3]);
        let b = ParBinomialHeap::from_keys([2, 8, 4, 6]);
        let mut a2 = a.clone();
        let delta = a.meld_measured(b.clone(), 3);
        a2.meld_pram(b, 3);
        assert_eq!(delta, *a2.pram_ledger());
        let (k, c) = a.extract_min_measured(3);
        assert_eq!(k, Some(1));
        assert!(c.time > 0);
    }

    #[test]
    fn duplicates_supported() {
        let h = ParBinomialHeap::from_keys([3, 3, 3, 1, 1]);
        h.validate().unwrap();
        assert_eq!(h.into_sorted_vec(), vec![1, 1, 3, 3, 3]);
    }
}
