//! Workload-adaptive backend selection for the service layer.
//!
//! The workspace now carries a dozen queue engines behind one
//! [`MeldablePq`] surface. Which one should a [`crate::MeldablePq`]-generic
//! harness (most importantly `svc::QueueService`) construct by default? The
//! honest answer is *measured, per workload class*: the shootout benchmark
//! (`crates/bench/src/bin/shootout.rs`) races every backend over uniform,
//! adversarial and Dijkstra-style workloads and writes
//! `reports/BENCH_shootout.json`; the selection table in this module is the
//! committed distillation of that run.
//!
//! Like the cutoffs in [`crate::cutoff`], the choice honors an environment
//! override read once per process — `MELDPQ_BACKEND=<name>` pins every
//! class to one engine, so CI gates and A/B experiments can force any
//! backend regardless of the table.

use std::sync::OnceLock;

use crate::heap::ParBinomialHeap;
use crate::lazy::LazyBinomialHeap;
use crate::meldable::{MeldablePq, PoolGuard};
use seqheaps::MeldableHeap;

/// Every constructible queue engine in the workspace (the shootout roster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the engine names
pub enum Backend {
    /// Zero-copy pooled parallel binomial heap (`PoolGuard`).
    Pooled,
    /// The §3 parallel binomial heap, sequential planner.
    ParBinomial,
    /// The §4 lazy binomial heap with empty nodes.
    Lazy,
    /// Sequential CLRS binomial heap.
    Binomial,
    /// Leftist heap.
    Leftist,
    /// Skew heap.
    Skew,
    /// Pairing heap, two-pass combine.
    Pairing,
    /// Pairing heap, multipass combine.
    PairingMultipass,
    /// Implicit 4-ary heap.
    Dary4,
    /// Implicit 8-ary heap.
    Dary8,
    /// Hollow heap (lazy deletion, O(1) decrease-key).
    Hollow,
    /// Indexed 4-ary heap (position map for decrease-key).
    IndexedDary4,
    /// Sequential arena binomial heap with handles.
    IndexedBinomial,
    /// `std::collections::BinaryHeap` adapter (meld rebuilds).
    Binary,
}

impl Backend {
    /// The full roster, in shootout order.
    pub const ALL: [Backend; 14] = [
        Backend::Pooled,
        Backend::ParBinomial,
        Backend::Lazy,
        Backend::Binomial,
        Backend::Leftist,
        Backend::Skew,
        Backend::Pairing,
        Backend::PairingMultipass,
        Backend::Dary4,
        Backend::Dary8,
        Backend::Hollow,
        Backend::IndexedDary4,
        Backend::IndexedBinomial,
        Backend::Binary,
    ];

    /// Stable snake_case name (report keys, env values).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Pooled => "pooled",
            Backend::ParBinomial => "par_binomial",
            Backend::Lazy => "lazy",
            Backend::Binomial => "binomial",
            Backend::Leftist => "leftist",
            Backend::Skew => "skew",
            Backend::Pairing => "pairing",
            Backend::PairingMultipass => "pairing_multipass",
            Backend::Dary4 => "dary4",
            Backend::Dary8 => "dary8",
            Backend::Hollow => "hollow",
            Backend::IndexedDary4 => "indexed_dary4",
            Backend::IndexedBinomial => "indexed_binomial",
            Backend::Binary => "binary",
        }
    }

    /// Parse a [`Backend::name`] (the `MELDPQ_BACKEND` format).
    pub fn from_name(s: &str) -> Option<Backend> {
        Backend::ALL.iter().copied().find(|b| b.name() == s.trim())
    }

    /// Construct an empty queue of this backend.
    pub fn make(self) -> Box<dyn MeldablePq<i64> + Send> {
        let p = std::thread::available_parallelism().map_or(2, |n| n.get());
        match self {
            Backend::Pooled => Box::new(PoolGuard::new()),
            Backend::ParBinomial => Box::new(ParBinomialHeap::new()),
            Backend::Lazy => Box::new(LazyBinomialHeap::new(p)),
            Backend::Binomial => Box::new(seqheaps::BinomialHeap::new()),
            Backend::Leftist => Box::new(seqheaps::LeftistHeap::new()),
            Backend::Skew => Box::new(seqheaps::SkewHeap::new()),
            Backend::Pairing => Box::new(seqheaps::PairingHeap::new()),
            Backend::PairingMultipass => Box::new(seqheaps::PairingHeap::with_strategy(
                seqheaps::MergeStrategy::MultiPass,
            )),
            Backend::Dary4 => Box::new(seqheaps::DaryHeap::<i64, 4>::new()),
            Backend::Dary8 => Box::new(seqheaps::DaryHeap::<i64, 8>::new()),
            Backend::Hollow => Box::new(seqheaps::HollowHeap::new()),
            Backend::IndexedDary4 => Box::new(seqheaps::IndexedDaryHeap::<i64, 4>::new()),
            Backend::IndexedBinomial => Box::new(crate::decrease::IndexedBinomialPq::new()),
            Backend::Binary => Box::new(seqheaps::BinaryHeapAdapter::new()),
        }
    }

    /// Construct an empty queue with native decrease-key, when this backend
    /// has one. `None` means the engine must fall back to the
    /// reinsert-and-skip-stale simulation (the classic Dijkstra workaround),
    /// which is exactly what the shootout charges it for.
    pub fn make_decrease(self) -> Option<Box<dyn crate::decrease::DecreaseKeyPq<i64> + Send>> {
        let p = std::thread::available_parallelism().map_or(2, |n| n.get());
        match self {
            Backend::Binomial => Some(Box::new(seqheaps::BinomialHeap::new())),
            Backend::Leftist => Some(Box::new(seqheaps::LeftistHeap::new())),
            Backend::Skew => Some(Box::new(seqheaps::SkewHeap::new())),
            Backend::Pairing => Some(Box::new(seqheaps::PairingHeap::new())),
            Backend::PairingMultipass => Some(Box::new(seqheaps::PairingHeap::with_strategy(
                seqheaps::MergeStrategy::MultiPass,
            ))),
            Backend::Hollow => Some(Box::new(seqheaps::HollowHeap::new())),
            Backend::IndexedDary4 => Some(Box::new(seqheaps::IndexedDaryHeap::<i64, 4>::new())),
            Backend::IndexedBinomial => Some(Box::new(crate::decrease::IndexedBinomialPq::new())),
            Backend::Lazy => Some(Box::new(crate::decrease::LazyDecreasePq::new(p))),
            Backend::Pooled
            | Backend::ParBinomial
            | Backend::Dary4
            | Backend::Dary8
            | Backend::Binary => None,
        }
    }
}

/// The workload classes the shootout measures (one selection-table row
/// each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Well-mixed keys, insert/extract churn with periodic melds.
    Uniform,
    /// Ascending key stream (adversarial for self-adjusting shapes).
    Sorted,
    /// Descending key stream.
    Reverse,
    /// Heavy key duplication (16 distinct keys).
    DupHeavy,
    /// SSSP-style: tracked inserts, decrease-key bursts, extract-all.
    Dijkstra,
    /// The service layer's mix: bulk admission, melds, paced extraction.
    Service,
}

impl WorkloadClass {
    /// Every class, in shootout order.
    pub const ALL: [WorkloadClass; 6] = [
        WorkloadClass::Uniform,
        WorkloadClass::Sorted,
        WorkloadClass::Reverse,
        WorkloadClass::DupHeavy,
        WorkloadClass::Dijkstra,
        WorkloadClass::Service,
    ];

    /// Stable snake_case name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::Uniform => "uniform",
            WorkloadClass::Sorted => "sorted",
            WorkloadClass::Reverse => "reverse",
            WorkloadClass::DupHeavy => "dup_heavy",
            WorkloadClass::Dijkstra => "dijkstra",
            WorkloadClass::Service => "service",
        }
    }

    /// Parse a [`WorkloadClass::name`].
    pub fn from_name(s: &str) -> Option<WorkloadClass> {
        WorkloadClass::ALL
            .iter()
            .copied()
            .find(|c| c.name() == s.trim())
    }
}

/// The committed selection table: measured winners of the shootout run in
/// `reports/BENCH_shootout.json` (regenerate with
/// `cargo run --release --bin shootout`, then update here; the CI
/// `shootout-smoke` job gates the table against drifting more than 1.25×
/// from the measured best).
/// Measured 2026-08: `binary` (std `BinaryHeap` behind the adapter) sweeps
/// every sequential class at every size — even Dijkstra, where its
/// reinsert-and-skip-stale simulation beats the native decrease-key
/// engines' pointer chasing, a well-documented real-world result. The
/// service class is the one place structure pays: `pooled` zero-copy melds
/// win on geomean (crossover: `binary` edges ahead at n ≥ 4096, but the
/// table is per-class and geomean picks `pooled`).
const SELECTION: [(WorkloadClass, Backend); 6] = [
    (WorkloadClass::Uniform, Backend::Binary),
    (WorkloadClass::Sorted, Backend::Binary),
    (WorkloadClass::Reverse, Backend::Binary),
    (WorkloadClass::DupHeavy, Backend::Binary),
    (WorkloadClass::Dijkstra, Backend::Binary),
    (WorkloadClass::Service, Backend::Pooled),
];

/// The measured-fastest backend for `class` (no env consultation).
pub fn table_pick(class: WorkloadClass) -> Backend {
    SELECTION
        .iter()
        .find(|(c, _)| *c == class)
        .map(|(_, b)| *b)
        .expect("selection table covers every class")
}

/// The backend to use for `class`: the `MELDPQ_BACKEND` pin when set (read
/// once per process), else the committed selection table.
pub fn pick_for(class: WorkloadClass) -> Backend {
    env_pin().unwrap_or_else(|| table_pick(class))
}

/// The default backend for the service layer ([`WorkloadClass::Service`]).
pub fn default_backend() -> Backend {
    pick_for(WorkloadClass::Service)
}

/// The `MELDPQ_BACKEND` pin, if set to a recognized name.
pub fn env_pin() -> Option<Backend> {
    static PIN: OnceLock<Option<Backend>> = OnceLock::new();
    *PIN.get_or_init(|| {
        std::env::var("MELDPQ_BACKEND")
            .ok()
            .as_deref()
            .and_then(Backend::from_name)
    })
}

/// One-line rendering of the live table (bench logs, provenance).
pub fn describe() -> String {
    let rows: Vec<String> = WorkloadClass::ALL
        .iter()
        .map(|c| format!("{}={}", c.name(), pick_for(*c).name()))
        .collect();
    let pin = env_pin().map_or_else(String::new, |b| format!(" (pinned: {})", b.name()));
    format!("backends: {}{pin}", rows.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        for c in WorkloadClass::ALL {
            assert_eq!(WorkloadClass::from_name(c.name()), Some(c));
        }
        assert_eq!(Backend::from_name("no-such-engine"), None);
    }

    #[test]
    fn every_backend_constructs_a_working_queue() {
        for b in Backend::ALL {
            let mut q = b.make();
            q.multi_insert(&[5, 1, 3]);
            assert_eq!(q.peek_min(), Some(1), "{}", b.name());
            assert_eq!(q.extract_min(), Some(1), "{}", b.name());
            assert_eq!(q.len(), 2, "{}", b.name());
            assert_eq!(q.drain_sorted(), vec![3, 5], "{}", b.name());
        }
    }

    #[test]
    fn decrease_capable_backends_honor_handles() {
        let mut native = 0;
        for b in Backend::ALL {
            let Some(mut q) = b.make_decrease() else {
                continue;
            };
            native += 1;
            let h = q.insert_handle(50);
            q.insert_handle(20);
            assert!(q.decrease_key(h, 5), "{}", b.name());
            assert_eq!(q.extract_min(), Some(5), "{}", b.name());
            assert_eq!(q.extract_min(), Some(20), "{}", b.name());
        }
        assert_eq!(native, 9, "decrease-key roster drifted");
    }

    #[test]
    fn table_covers_every_class() {
        for c in WorkloadClass::ALL {
            // Must not panic; the winner must be on the roster.
            let b = table_pick(c);
            assert!(Backend::ALL.contains(&b), "{}", c.name());
        }
    }

    #[test]
    fn describe_lists_all_classes() {
        let d = describe();
        for c in WorkloadClass::ALL {
            assert!(d.contains(c.name()), "missing {}: {d}", c.name());
        }
    }
}
