//! `DecreaseKeyPq` — Definition 1 operation 6 across the whole fleet.
//!
//! [`crate::MeldablePq`] unified operations 1–5 (`Make-Queue` … `Union`);
//! this module extends the surface with the paper's `Decrease-Key` so
//! SSSP-style workloads (the shootout's Dijkstra class, the differential
//! fuzzer's decrease ops) can dispatch over *any* backend:
//!
//! * the seqheaps baselines implement it by delegating to their
//!   [`seqheaps::DecreaseKeyHeap`] impls (hollow / pairing / indexed d-ary
//!   natively, binomial / leftist / skew by content sift);
//! * [`IndexedBinomialPq`] wraps the sequential arena heap, remapping its
//!   `ItemId`s through the meld translator so process-unique [`PqHandle`]s
//!   survive `Union`;
//! * [`LazyDecreasePq`] wraps the paper's §4 lazy heap, mapping handles to
//!   `NodeId` hints and realising `Decrease-Key` as `Change-Key`
//!   (delete + reinsert via a persistent empty node).
//!
//! Handles are minted from one process-wide counter, so melding two queues
//! never collides or needs caller-side translation. The sift-based engines
//! track handles by *key* (multiset semantics — see `seqheaps::decrease`);
//! the arena engines track physical identity. Under the fuzzer's multiset
//! checking the two are indistinguishable.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::lazy::LazyBinomialHeap;
use crate::meldable::MeldablePq;
use crate::NodeId;
use seqheaps::{DecreaseKeyHeap, IndexedBinomialHeap, ItemId};

/// An opaque, process-unique handle to a tracked element of a
/// [`DecreaseKeyPq`]. Survives `meld`; goes stale when its element leaves
/// the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PqHandle(u64);

impl PqHandle {
    /// The raw unique id.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuild from [`PqHandle::raw`].
    pub fn from_raw(raw: u64) -> Self {
        PqHandle(raw)
    }
}

/// Mint a fresh handle for the adapter queues in this module. (The seqheaps
/// engines mint from their own crate-level counter; uniqueness only matters
/// *within* one queue's lifetime, and each queue sticks to one mint.)
fn mint() -> PqHandle {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    PqHandle(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// A meldable priority queue with `Decrease-Key` (Definition 1, op 6).
/// Object safe — harnesses hold `Box<dyn DecreaseKeyPq<i64>>`.
pub trait DecreaseKeyPq<K: Ord + Copy>: MeldablePq<K> {
    /// Insert a key and return a handle naming the inserted element.
    fn insert_handle(&mut self, key: K) -> PqHandle;

    /// Lower the tracked element's key to `new_key`.
    ///
    /// Returns `false` (changing nothing) when the handle is stale or
    /// `new_key` is greater than the current key; `new_key == current` is
    /// accepted and returns `true`.
    fn decrease_key(&mut self, h: PqHandle, new_key: K) -> bool;

    /// The tracked element's current key, or `None` once it left the queue.
    fn key_of_handle(&self, h: PqHandle) -> Option<K>;
}

// The seqheaps engines already implement `seqheaps::DecreaseKeyHeap`; wire
// their `MeldablePq` impls (meldable.rs) through to it. `Handle` raw values
// round-trip losslessly into `PqHandle`.
macro_rules! impl_decrease_for_seqheap {
    ($($ty:ident),+ $(,)?) => {$(
        impl<K: Ord + Copy> DecreaseKeyPq<K> for seqheaps::$ty<K> {
            fn insert_handle(&mut self, key: K) -> PqHandle {
                PqHandle(DecreaseKeyHeap::insert_tracked(self, key).raw())
            }
            fn decrease_key(&mut self, h: PqHandle, new_key: K) -> bool {
                DecreaseKeyHeap::decrease_key(
                    self,
                    seqheaps::Handle::from_raw(h.0),
                    new_key,
                )
            }
            fn key_of_handle(&self, h: PqHandle) -> Option<K> {
                DecreaseKeyHeap::tracked_key(self, seqheaps::Handle::from_raw(h.0))
            }
        }
    )+};
}

impl_decrease_for_seqheap!(BinomialHeap, LeftistHeap, SkewHeap, PairingHeap, HollowHeap);

impl<K: Ord + Copy, const D: usize> DecreaseKeyPq<K> for seqheaps::IndexedDaryHeap<K, D> {
    fn insert_handle(&mut self, key: K) -> PqHandle {
        PqHandle(DecreaseKeyHeap::insert_tracked(self, key).raw())
    }
    fn decrease_key(&mut self, h: PqHandle, new_key: K) -> bool {
        DecreaseKeyHeap::decrease_key(self, seqheaps::Handle::from_raw(h.0), new_key)
    }
    fn key_of_handle(&self, h: PqHandle) -> Option<K> {
        DecreaseKeyHeap::tracked_key(self, seqheaps::Handle::from_raw(h.0))
    }
}

/// The sequential arena binomial heap (`seqheaps::IndexedBinomialHeap`)
/// behind the [`DecreaseKeyPq`] surface.
///
/// The inner heap's `ItemId`s are dense per-heap indices that shift on
/// `meld` (its translator closure); this wrapper owns the remapping so the
/// outward [`PqHandle`]s stay valid across any number of `Union`s.
#[derive(Debug, Default)]
pub struct IndexedBinomialPq {
    heap: IndexedBinomialHeap,
    /// handle → current item.
    by_handle: HashMap<u64, ItemId>,
    /// item → handle (retire the right handle on extraction).
    by_item: HashMap<ItemId, u64>,
}

impl IndexedBinomialPq {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow the wrapped heap (stats, inspection).
    pub fn heap(&self) -> &IndexedBinomialHeap {
        &self.heap
    }

    /// Deep validation: the heap's own invariants plus the handle maps
    /// mirroring each other and naming only live items.
    pub fn validate(&self) -> Result<(), String> {
        self.heap.validate()?;
        if self.by_handle.len() != self.by_item.len() {
            return Err("indexed-pq: handle maps disagree on size".into());
        }
        for (h, id) in &self.by_handle {
            if self.by_item.get(id) != Some(h) {
                return Err(format!("indexed-pq: handle {h} not mirrored"));
            }
            if self.heap.key_of(*id).is_none() {
                return Err(format!("indexed-pq: handle {h} names a dead item"));
            }
        }
        Ok(())
    }

    fn retire_item(&mut self, id: ItemId) {
        if let Some(h) = self.by_item.remove(&id) {
            self.by_handle.remove(&h);
        }
    }
}

impl MeldablePq<i64> for IndexedBinomialPq {
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn insert(&mut self, key: i64) {
        let _ = self.heap.insert(key);
    }

    fn peek_min(&mut self) -> Option<i64> {
        self.heap.min()
    }

    fn extract_min(&mut self) -> Option<i64> {
        let (id, key) = self.heap.extract_min()?;
        self.retire_item(id);
        Some(key)
    }

    fn meld(&mut self, other: Self) {
        let translate = self.heap.meld(other.heap);
        for (h, id) in other.by_handle {
            let new_id = translate(id);
            self.by_handle.insert(h, new_id);
            self.by_item.insert(new_id, h);
        }
    }
}

impl DecreaseKeyPq<i64> for IndexedBinomialPq {
    fn insert_handle(&mut self, key: i64) -> PqHandle {
        let id = self.heap.insert(key);
        let h = mint();
        self.by_handle.insert(h.0, id);
        self.by_item.insert(id, h.0);
        h
    }

    fn decrease_key(&mut self, h: PqHandle, new_key: i64) -> bool {
        let Some(&id) = self.by_handle.get(&h.0) else {
            return false;
        };
        let current = self
            .heap
            .key_of(id)
            .expect("tracked items are live (extraction retires them)");
        if new_key > current {
            return false;
        }
        self.heap.decrease_key(id, new_key);
        true
    }

    fn key_of_handle(&self, h: PqHandle) -> Option<i64> {
        self.by_handle
            .get(&h.0)
            .and_then(|&id| self.heap.key_of(id))
    }
}

/// Key-multiset handle bookkeeping for [`LazyDecreasePq`] (the lazy heap's
/// eager delete sifts *keys* between nodes, so physical `NodeId`s don't
/// follow elements; handles name "one live element holding key `k`").
#[derive(Debug, Default)]
struct Tracked {
    by_handle: HashMap<u64, i64>,
    /// key → handles holding it, oldest first.
    by_key: BTreeMap<i64, Vec<u64>>,
}

impl Tracked {
    fn track(&mut self, k: i64) -> PqHandle {
        let h = mint();
        self.by_key.entry(k).or_default().push(h.0);
        self.by_handle.insert(h.0, k);
        h
    }

    fn on_extract(&mut self, k: i64) -> Option<u64> {
        let handles = self.by_key.get_mut(&k)?;
        let h = handles.remove(0);
        if handles.is_empty() {
            self.by_key.remove(&k);
        }
        self.by_handle.remove(&h);
        Some(h)
    }

    fn rekey(&mut self, h: PqHandle, new: i64) -> Option<i64> {
        let old = *self.by_handle.get(&h.0)?;
        if let Some(hs) = self.by_key.get_mut(&old) {
            hs.retain(|x| *x != h.0);
            if hs.is_empty() {
                self.by_key.remove(&old);
            }
        }
        let slot = self.by_key.entry(new).or_default();
        let pos = slot.binary_search(&h.0).unwrap_or_else(|p| p);
        slot.insert(pos, h.0);
        self.by_handle.insert(h.0, new);
        Some(old)
    }

    fn merge(&mut self, other: Tracked) {
        for (h, k) in other.by_handle {
            self.by_handle.insert(h, k);
        }
        for (k, hs) in other.by_key {
            let slot = self.by_key.entry(k).or_default();
            slot.extend(hs);
            slot.sort_unstable();
        }
    }
}

/// The paper's §4 lazy heap ([`LazyBinomialHeap`]) behind the
/// [`DecreaseKeyPq`] surface: `Decrease-Key` is realised as the paper's
/// `Change-Key` (delete via a persistent empty node + reinsert).
///
/// Eager deletes sift keys along ancestor paths, so a `NodeId` does not
/// permanently name an element; the wrapper tracks handles by key multiset
/// and keeps a per-handle `NodeId` *hint* that short-circuits the locate
/// step whenever it still holds the expected key.
#[derive(Debug)]
pub struct LazyDecreasePq {
    heap: LazyBinomialHeap,
    tracked: Tracked,
    /// handle → last known node (fast path; verified before use).
    hints: HashMap<u64, NodeId>,
}

impl LazyDecreasePq {
    /// An empty queue assuming `p` processors for the inner heap's planner.
    pub fn new(p: usize) -> Self {
        LazyDecreasePq {
            heap: LazyBinomialHeap::new(p),
            tracked: Tracked::default(),
            hints: HashMap::new(),
        }
    }

    /// Borrow the wrapped lazy heap (cost log, inspection).
    pub fn heap(&self) -> &LazyBinomialHeap {
        &self.heap
    }

    /// Deep validation: the lazy heap's own invariants plus the handle
    /// bookkeeping (mirrored maps; tracked keys a sub-multiset of the live
    /// key multiset).
    pub fn validate(&self) -> Result<(), String> {
        crate::check::check_lazy(&self.heap)?;
        let mut mirrored = 0usize;
        for (k, hs) in &self.tracked.by_key {
            if hs.is_empty() {
                return Err("lazy-pq: empty handle bucket".into());
            }
            for h in hs {
                if self.tracked.by_handle.get(h) != Some(k) {
                    return Err(format!("lazy-pq: handle {h} not mirrored"));
                }
                mirrored += 1;
            }
        }
        if mirrored != self.tracked.by_handle.len() {
            return Err("lazy-pq: by_handle entries absent from by_key".into());
        }
        // Sub-multiset: count live keys once, then subtract tracked ones.
        let mut live: HashMap<i64, isize> = HashMap::new();
        let mut stack: Vec<NodeId> = self.heap.roots_snapshot().into_iter().flatten().collect();
        while let Some(id) = stack.pop() {
            if !self.heap.is_empty_node(id) {
                *live.entry(self.heap.raw_key(id)).or_default() += 1;
            }
            stack.extend(self.heap.children_of(id).into_iter().flatten());
        }
        for (k, hs) in &self.tracked.by_key {
            let avail = live.get(k).copied().unwrap_or(0);
            if (hs.len() as isize) > avail {
                return Err(format!(
                    "lazy-pq: {} handles track key {k} but only {avail} live copies exist",
                    hs.len()
                ));
            }
        }
        Ok(())
    }

    /// Locate a live node holding `key`: the hint if still accurate, else a
    /// full walk (empty nodes hold garbage keys and are skipped; their
    /// children are real and descended into).
    fn find_live_with_key(&self, h: PqHandle, key: i64) -> Option<NodeId> {
        if let Some(&hint) = self.hints.get(&h.0) {
            if self.heap.key_of(hint) == Some(key) {
                return Some(hint);
            }
        }
        let mut stack: Vec<NodeId> = self.heap.roots_snapshot().into_iter().flatten().collect();
        while let Some(id) = stack.pop() {
            if !self.heap.is_empty_node(id) && self.heap.raw_key(id) == key {
                return Some(id);
            }
            stack.extend(self.heap.children_of(id).into_iter().flatten());
        }
        None
    }
}

impl MeldablePq<i64> for LazyDecreasePq {
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn insert(&mut self, key: i64) {
        let _ = self.heap.insert(key);
    }

    fn peek_min(&mut self) -> Option<i64> {
        MeldablePq::peek_min(&mut self.heap)
    }

    fn extract_min(&mut self) -> Option<i64> {
        let key = MeldablePq::extract_min(&mut self.heap)?;
        if let Some(h) = self.tracked.on_extract(key) {
            self.hints.remove(&h);
        }
        Some(key)
    }

    fn meld(&mut self, other: Self) {
        LazyBinomialHeap::meld(&mut self.heap, other.heap);
        self.tracked.merge(other.tracked);
        // The absorb remapped the other arena's ids; its hints are dead
        // weight, and the locate fallback recovers without them.
    }

    fn meld_from_keys(&mut self, keys: &[i64]) {
        MeldablePq::meld_from_keys(&mut self.heap, keys);
    }
}

impl DecreaseKeyPq<i64> for LazyDecreasePq {
    fn insert_handle(&mut self, key: i64) -> PqHandle {
        let id = self.heap.insert(key);
        let h = self.tracked.track(key);
        self.hints.insert(h.0, id);
        h
    }

    fn decrease_key(&mut self, h: PqHandle, new_key: i64) -> bool {
        let Some(&old) = self.tracked.by_handle.get(&h.0) else {
            return false;
        };
        if new_key > old {
            return false;
        }
        if new_key == old {
            return true;
        }
        let node = self
            .find_live_with_key(h, old)
            .expect("tracked keys are a sub-multiset of live keys");
        let new_id = self.heap.change_key(node, new_key);
        self.tracked.rekey(h, new_key);
        self.hints.insert(h.0, new_id);
        true
    }

    fn key_of_handle(&self, h: PqHandle) -> Option<i64> {
        self.tracked.by_handle.get(&h.0).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqheaps::MeldableHeap;

    /// One generic driver; every engine must produce the same transcript.
    fn transcript<Q: DecreaseKeyPq<i64>>(mut q: Q) -> Vec<i64> {
        let mut out = Vec::new();
        q.insert(50);
        let a = q.insert_handle(40);
        let b = q.insert_handle(30);
        q.insert(20);
        assert_eq!(q.key_of_handle(a), Some(40));
        assert!(q.decrease_key(a, 10)); // a: 40 → 10
        assert!(!q.decrease_key(b, 35), "raise must refuse");
        assert!(q.decrease_key(b, 30), "no-op decrease is fine");
        out.push(q.extract_min().expect("nonempty")); // 10 (= a)
        assert_eq!(q.key_of_handle(a), None, "a went stale");
        assert!(!q.decrease_key(a, 0), "stale handle refuses");
        assert!(q.decrease_key(b, 5)); // b: 30 → 5
        out.extend(q.drain_sorted()); // 5, 20, 50
        assert_eq!(q.key_of_handle(b), None);
        out.push(q.len() as i64);
        out
    }

    fn expected() -> Vec<i64> {
        vec![10, 5, 20, 50, 0]
    }

    #[test]
    fn seqheaps_engines_agree() {
        assert_eq!(transcript(seqheaps::BinomialHeap::new()), expected());
        assert_eq!(transcript(seqheaps::LeftistHeap::new()), expected());
        assert_eq!(transcript(seqheaps::SkewHeap::new()), expected());
        assert_eq!(transcript(seqheaps::PairingHeap::new()), expected());
        assert_eq!(transcript(seqheaps::HollowHeap::new()), expected());
        assert_eq!(
            transcript(seqheaps::IndexedDaryHeap::<i64, 4>::new()),
            expected()
        );
    }

    #[test]
    fn indexed_adapter_agrees() {
        let q = IndexedBinomialPq::new();
        assert_eq!(transcript(q), expected());
    }

    #[test]
    fn lazy_adapter_agrees() {
        assert_eq!(transcript(LazyDecreasePq::new(2)), expected());
        assert_eq!(transcript(LazyDecreasePq::new(4)), expected());
    }

    #[test]
    fn indexed_handles_survive_meld_translation() {
        let mut a = IndexedBinomialPq::new();
        let ha = a.insert_handle(100);
        let mut b = IndexedBinomialPq::new();
        let hb = b.insert_handle(200);
        b.insert(150);
        a.meld(b);
        a.validate().expect("valid after meld");
        assert_eq!(a.key_of_handle(ha), Some(100));
        assert_eq!(a.key_of_handle(hb), Some(200));
        assert!(a.decrease_key(hb, 1));
        assert_eq!(a.extract_min(), Some(1));
        assert_eq!(a.key_of_handle(hb), None);
        a.validate().expect("valid after extract");
    }

    #[test]
    fn lazy_adapter_survives_key_sifting_deletes() {
        // Eager deletes swap keys along ancestor paths; the multiset
        // tracking (plus hint fallback) must keep handles answering.
        let mut q = LazyDecreasePq::new(2);
        let hs: Vec<PqHandle> = (0..32).map(|k| q.insert_handle(k * 10)).collect();
        for (i, h) in hs.iter().enumerate().skip(16) {
            assert!(q.decrease_key(*h, (i as i64 * 10) - 155));
            q.validate().expect("valid after decrease");
        }
        let mut drained = q.drain_sorted();
        drained.sort_unstable();
        assert_eq!(drained.len(), 32);
        q.validate().expect("valid when empty");
    }

    #[test]
    fn object_safe_fleet() {
        let mut fleet: Vec<Box<dyn DecreaseKeyPq<i64>>> = vec![
            Box::new(seqheaps::HollowHeap::new()),
            Box::new(seqheaps::PairingHeap::new()),
            Box::new(seqheaps::BinomialHeap::new()),
            Box::new(IndexedBinomialPq::new()),
            Box::new(LazyDecreasePq::new(2)),
        ];
        for q in &mut fleet {
            let h = q.insert_handle(9);
            q.insert(4);
            assert!(q.decrease_key(h, 1));
            assert_eq!(q.extract_min(), Some(1));
            assert_eq!(q.key_of_handle(h), None);
        }
    }
}
