#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # meldpq — the paper's contribution
//!
//! Parallel meldable priority queues based on binomial heaps, after
//! Crupi, Das & Pinotti (ICPP 1996):
//!
//! * [`heap::ParBinomialHeap`] — the §3 structure with `Union` by carry
//!   chains + segmented prefix minima + one parallel link round, runnable on
//!   the sequential oracle, rayon threads ([`heap::Engine`]) or the PRAM
//!   simulator ([`engine_pram`], which returns measured [`pram::Cost`]).
//! * [`lazy::LazyBinomialHeap`] — the §4 structure with `Delete` /
//!   `Change-Key` via persistent empty nodes (`Take-Up`) and periodic
//!   `Arrange-Heap` rebuilds.
//!
//! See DESIGN.md at the workspace root for the experiment map.
//!
//! ```
//! use meldpq::{Engine, ParBinomialHeap};
//!
//! let mut a = ParBinomialHeap::from_keys([5, 1, 9]);
//! let b = ParBinomialHeap::from_keys([2, 8]);
//! a.meld(b, Engine::Rayon);
//! assert_eq!(a.extract_min(Engine::Rayon), Some(1));
//!
//! // The same Union measured on the EREW PRAM simulator (Theorem 1):
//! let h1 = ParBinomialHeap::from_keys(0..31);
//! let h2 = ParBinomialHeap::from_keys(100..131);
//! let w = meldpq::plan::plan_width(h1.len(), h2.len());
//! let out = meldpq::engine_pram::build_plan_pram(
//!     &h1.root_refs(w), &h2.root_refs(w), 2).unwrap();
//! assert!(out.cost.time > 0 && out.cost.work >= out.cost.time);
//! ```

pub mod arena;
pub mod backend;
pub mod build;
pub mod bulk;
pub mod check;
pub mod cutoff;
pub mod decrease;
pub mod engine_pram;
pub mod engine_rayon;
pub mod heap;
pub mod lazy;
pub mod meldable;
pub mod plan;
pub mod pool;
pub mod viz;
pub mod wal;

pub use arena::{Arena, ArenaStats, Node, NodeId};
pub use backend::{Backend, WorkloadClass};
pub use check::CheckedPq;
pub use decrease::{DecreaseKeyPq, IndexedBinomialPq, LazyDecreasePq, PqHandle};
pub use heap::{Engine, ParBinomialHeap};
pub use meldable::{MeldablePq, PoolGuard, PramMeasured};
pub use plan::{LinkOp, PointType, RootRef, UnionPlan};
pub use pool::{CapacityError, HeapPool, PooledHeap};
pub use wal::{DurablePool, WalError, WalOp, WalWriter};
