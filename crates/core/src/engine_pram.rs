//! The PRAM engine: Phases I–III executed on the EREW simulator.
//!
//! This is the measured reproduction of Theorem 1. The host lays the two root
//! arrays out in shared memory, then the whole decision process — carry
//! statuses, the carry prefix scan, point classification, `I_lim`,
//! `I_valueB`, the segmented prefix minima, the per-position link round and
//! the new-`H` assignment — runs as synchronous PRAM steps under EREW
//! conflict checking. Neighbour values (`c_{i-1}`, `p_{i+1}`,
//! `I_valueA[i-1]`) are staged through shifted copies so no cell is ever
//! double-read in a step; the simulator verifies this.
//!
//! The extracted [`UnionPlan`] must equal the sequential oracle's bit for bit
//! (tested), and the returned [`Cost`] is the measured `{time, work}`.

use pram::{Cost, Model, PhaseCost, Pram, PramError, Word, NIL};

use crate::arena::NodeId;
use crate::plan::{
    classify_point, link_decision, new_root_decision, PointType, RootRef, UnionPlan,
};

/// Key word for an absent tree.
const NO_KEY: Word = i64::MAX;

fn encode_class(t: PointType) -> Word {
    match t {
        PointType::Start => 0,
        PointType::Internal => 1,
        PointType::End => 2,
        PointType::Independent => 3,
    }
}

fn decode_class(w: Word) -> PointType {
    match w {
        0 => PointType::Start,
        1 => PointType::Internal,
        2 => PointType::End,
        3 => PointType::Independent,
        other => panic!("bad class word {other}"),
    }
}

fn root_ref(key: Word, ptr: Word) -> Option<RootRef> {
    (ptr != NIL).then(|| RootRef {
        key,
        id: NodeId::from_word(ptr),
    })
}

/// Result of a PRAM-hosted union planning run.
#[derive(Debug, Clone)]
pub struct PramUnionOutcome {
    /// The plan (identical to the sequential oracle's).
    pub plan: UnionPlan,
    /// Total measured cost.
    pub cost: Cost,
    /// Per-phase breakdown (labels "I", "II", "III").
    pub phases: PhaseCost,
}

/// Build the union plan on a fresh `p`-processor EREW PRAM.
pub fn build_plan_pram(
    h1: &[Option<RootRef>],
    h2: &[Option<RootRef>],
    p: usize,
) -> Result<PramUnionOutcome, PramError> {
    let width = h1.len().max(h2.len());
    // `i64::MAX` is this engine's absent-root sentinel: a real key equal to
    // it would be silently treated as "no tree" and dropped. Reject loudly.
    for r in h1.iter().chain(h2.iter()).flatten() {
        assert!(
            r.key != NO_KEY,
            "key i64::MAX is reserved as the PRAM engine's nil sentinel"
        );
    }
    let mut m = Pram::new(Model::Erew, p);
    let at = |v: &[Option<RootRef>], i: usize| v.get(i).copied().flatten();

    // -------- host I/O: lay the inputs out in shared memory --------
    let key_of = |r: Option<RootRef>| r.map_or(NO_KEY, |x| x.key);
    let ptr_of = |r: Option<RootRef>| r.map_or(NIL, |x| x.id.to_word());
    let a_key = m.alloc_init(&(0..width).map(|i| key_of(at(h1, i))).collect::<Vec<_>>());
    let a_ptr = m.alloc_init(&(0..width).map(|i| ptr_of(at(h1, i))).collect::<Vec<_>>());
    let b_key = m.alloc_init(&(0..width).map(|i| key_of(at(h2, i))).collect::<Vec<_>>());
    let b_ptr = m.alloc_init(&(0..width).map(|i| ptr_of(at(h2, i))).collect::<Vec<_>>());

    let g = m.alloc(width, 0);
    let pw = m.alloc(width, 0);
    let status = m.alloc(width, 0);
    let carry = m.alloc(width, 0);
    let c_prev = m.alloc(width, 0); // c_{i-1}, 0 at i = 0
    let p_next = m.alloc(width, 0); // p_{i+1}, 0 at i = width-1
    let s = m.alloc(width, 0);
    let class = m.alloc(width, 3);
    let i_lim = m.alloc(width, 0);
    let ivb_key = m.alloc(width, NO_KEY);
    let ivb_ptr = m.alloc(width, NIL);
    let iva_flag = m.alloc(width, 0); // scratch for the scanned flag component
    let iva_key = m.alloc(width, NO_KEY);
    let iva_ptr = m.alloc(width, NIL);
    let ivp_key = m.alloc(width, NO_KEY); // I_valueA[i-1]
    let ivp_ptr = m.alloc(width, NIL);
    let link_child = m.alloc(width, NIL);
    let link_parent = m.alloc(width, NIL);
    let h_out = m.alloc(width, NIL);

    if width == 0 {
        let plan = UnionPlan {
            width: 0,
            a: vec![],
            b: vec![],
            g: vec![],
            p: vec![],
            c: vec![],
            s: vec![],
            class: vec![],
            i_lim: vec![],
            i_value_b: vec![],
            i_value_a: vec![],
            links: vec![],
            new_roots: vec![],
        };
        return Ok(PramUnionOutcome {
            plan,
            cost: Cost::ZERO,
            phases: PhaseCost::new(),
        });
    }

    m.reset_cost();
    let _sp = obs::span("union/pram");

    // -------- Phase I: g, p, carry statuses, carries, classification --------
    m.phase("I");
    let sp_phase = obs::span("union/phase1");
    m.par_for(width, |i, ctx| {
        let ak = ctx.read(a_key + i)?;
        let bk = ctx.read(b_key + i)?;
        let a = ak != NO_KEY;
        let b = bk != NO_KEY;
        ctx.write(g + i, (a && b) as Word)?;
        ctx.write(pw + i, (a ^ b) as Word)?;
        ctx.write(status + i, parscan::carry_status(a, b).to_word())
    })?;
    parscan::pram_host::scan_inclusive(
        &mut m,
        status,
        carry,
        width,
        parscan::CarryStatus::Propagate.to_word(),
        parscan::compose_status_words,
    )?;
    // carry[i] currently holds the status prefix; collapse to a carry bit.
    // A malformed word (or propagated poison) can only mean corrupted PRAM
    // cells; it collapses to "no carry" here and is impossible for statuses
    // written by Phase I above.
    m.par_for(width, |i, ctx| {
        let st = ctx.read(carry + i)?;
        let is_generate = matches!(
            parscan::CarryStatus::try_from_word(st),
            Ok(parscan::CarryStatus::Generate)
        );
        ctx.write(carry + i, is_generate as Word)
    })?;
    // Shifted neighbours.
    if width > 1 {
        m.par_for(width - 1, |i, ctx| {
            let c = ctx.read(carry + i)?;
            ctx.write(c_prev + i + 1, c)
        })?;
        m.par_for(width - 1, |i, ctx| {
            let pv = ctx.read(pw + i + 1)?;
            ctx.write(p_next + i, pv)
        })?;
    }
    // s, classification, I_lim.
    m.par_for(width, |i, ctx| {
        let gi = ctx.read(g + i)? != 0;
        let pi = ctx.read(pw + i)? != 0;
        let cp = ctx.read(c_prev + i)? != 0;
        let pn = ctx.read(p_next + i)? != 0;
        ctx.write(s + i, (pi ^ cp) as Word)?;
        ctx.write(class + i, encode_class(classify_point(gi, pi, cp, pn)))?;
        ctx.write(i_lim + i, !(pi && cp) as Word)
    })?;

    // -------- Phase II: I_valueB, segmented prefix minima --------
    drop(sp_phase);
    m.phase("II");
    let sp_phase = obs::span("union/phase2");
    m.par_for(width, |i, ctx| {
        let ak = ctx.read(a_key + i)?;
        let ap = ctx.read(a_ptr + i)?;
        let bk = ctx.read(b_key + i)?;
        let bp = ctx.read(b_ptr + i)?;
        // position_winner with the same tie rule: H1 wins ties.
        let (wk, wp) = if ap == NIL {
            (bk, bp)
        } else if bp == NIL || ak <= bk {
            (ak, ap)
        } else {
            (bk, bp)
        };
        ctx.write(ivb_key + i, wk)?;
        ctx.write(ivb_ptr + i, wp)
    })?;
    // Segmented min over tuples (flag, key, ptr); ties keep the left.
    parscan::pram_host::scan_inclusive_tuples::<3, _>(
        &mut m,
        [i_lim, ivb_key, ivb_ptr],
        [iva_flag, iva_key, iva_ptr],
        width,
        [0, NO_KEY, NIL],
        |l, r| {
            if r[0] != 0 {
                r
            } else {
                if r[1] < l[1] {
                    [l[0], r[1], r[2]]
                } else {
                    [l[0], l[1], l[2]]
                }
            }
        },
    )?;
    // Shifted dominant-of-previous-position copies.
    if width > 1 {
        m.par_for(width - 1, |i, ctx| {
            let k = ctx.read(iva_key + i)?;
            let q = ctx.read(iva_ptr + i)?;
            ctx.write(ivp_key + i + 1, k)?;
            ctx.write(ivp_ptr + i + 1, q)
        })?;
    }

    // -------- Phase III: links and the new root array --------
    drop(sp_phase);
    m.phase("III");
    let sp_phase = obs::span("union/phase3");
    m.par_for(width, |i, ctx| {
        let cls = decode_class(ctx.read(class + i)?);
        let gi = ctx.read(g + i)? != 0;
        let pi = ctx.read(pw + i)? != 0;
        let cp = ctx.read(c_prev + i)? != 0;
        let pn = ctx.read(p_next + i)? != 0;
        let h1r = root_ref(ctx.read(a_key + i)?, ctx.read(a_ptr + i)?);
        let h2r = root_ref(ctx.read(b_key + i)?, ctx.read(b_ptr + i)?);
        let winner = root_ref(ctx.read(ivb_key + i)?, ctx.read(ivb_ptr + i)?);
        let dom = root_ref(ctx.read(iva_key + i)?, ctx.read(iva_ptr + i)?);
        let dom_prev = root_ref(ctx.read(ivp_key + i)?, ctx.read(ivp_ptr + i)?);
        if let Some(op) = link_decision(cls, gi, h1r, h2r, winner, dom, dom_prev, i) {
            ctx.write(link_child + i, op.child.to_word())?;
            ctx.write(link_parent + i, op.parent.to_word())?;
        }
        if let Some((slot, root)) = new_root_decision(i, cls, gi, pi, cp, pn, dom) {
            // Distinct positions target distinct slots (the simulator's EREW
            // write check proves this on every run).
            ctx.write(h_out + slot, root.to_word())?;
        }
        Ok(())
    })?;

    drop(sp_phase);
    let cost = m.cost();
    let phases = m.phases().clone();

    // -------- host I/O: extract the plan --------
    let rd = |base: usize| m.host_slice(base, width).to_vec();
    let gv = rd(g);
    let pv = rd(pw);
    let cv = rd(carry);
    let sv = rd(s);
    let classv = rd(class);
    let limv = rd(i_lim);
    let ivbk = rd(ivb_key);
    let ivbp = rd(ivb_ptr);
    let ivak = rd(iva_key);
    let ivap = rd(iva_ptr);
    let lc = rd(link_child);
    let lp = rd(link_parent);
    let hv = rd(h_out);

    let plan = UnionPlan {
        width,
        a: (0..width).map(|i| at(h1, i).is_some()).collect(),
        b: (0..width).map(|i| at(h2, i).is_some()).collect(),
        g: gv.iter().map(|&w| w != 0).collect(),
        p: pv.iter().map(|&w| w != 0).collect(),
        c: cv.iter().map(|&w| w != 0).collect(),
        s: sv.iter().map(|&w| w != 0).collect(),
        class: classv.iter().map(|&w| decode_class(w)).collect(),
        i_lim: limv.iter().map(|&w| w != 0).collect(),
        i_value_b: (0..width).map(|i| root_ref(ivbk[i], ivbp[i])).collect(),
        i_value_a: (0..width).map(|i| root_ref(ivak[i], ivap[i])).collect(),
        links: (0..width)
            .filter(|&i| lc[i] != NIL)
            .map(|i| crate::plan::LinkOp {
                child: NodeId::from_word(lc[i]),
                parent: NodeId::from_word(lp[i]),
                slot: i,
            })
            .collect(),
        new_roots: hv
            .iter()
            .map(|&w| (w != NIL).then(|| NodeId::from_word(w)))
            .collect(),
    };

    Ok(PramUnionOutcome { plan, cost, phases })
}

/// PRAM-measured `Min`: an EREW reduction over the root array; returns the
/// minimum key and the measured cost.
pub fn min_pram(roots: &[Option<RootRef>], p: usize) -> Result<(Option<RootRef>, Cost), PramError> {
    let width = roots.len();
    for r in roots.iter().flatten() {
        assert!(
            r.key != NO_KEY,
            "key i64::MAX is reserved as the PRAM engine's nil sentinel"
        );
    }
    let mut m = Pram::new(Model::Erew, p);
    let keys: Vec<Word> = roots.iter().map(|r| r.map_or(NO_KEY, |x| x.key)).collect();
    let vals = m.alloc_init(&keys);
    let ov = m.alloc(1, 0);
    let oi = m.alloc(1, 0);
    m.reset_cost();
    parscan::pram_host::reduce_min_argmin(&mut m, vals, width, ov, oi)?;
    let idx = m.host_read(oi);
    let out = if idx == NIL || m.host_read(ov) == NO_KEY {
        None
    } else {
        roots[idx as usize]
    };
    Ok((out, m.cost()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan_seq;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_side(rng: &mut StdRng, n: usize, width: usize, id_base: u32) -> Vec<Option<RootRef>> {
        (0..width)
            .map(|i| {
                (n >> i & 1 == 1).then(|| RootRef {
                    key: rng.gen_range(-1000..1000),
                    id: NodeId(id_base + i as u32),
                })
            })
            .collect()
    }

    #[test]
    fn pram_plan_equals_sequential_plan() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..200 {
            let n1 = rng.gen_range(0usize..50_000);
            let n2 = rng.gen_range(0usize..50_000);
            let width = crate::plan::plan_width(n1, n2);
            let h1 = random_side(&mut rng, n1, width, 0);
            let h2 = random_side(&mut rng, n2, width, 1_000);
            let p = rng.gen_range(1usize..8);
            let seq = build_plan_seq(&h1, &h2);
            let out = build_plan_pram(&h1, &h2, p).expect("EREW-legal program");
            assert_eq!(seq, out.plan, "trial {trial}: n1={n1} n2={n2} p={p}");
        }
    }

    #[test]
    fn erew_legality_on_worst_case_chains() {
        // All-ones inputs maximise chain length; the simulator must not
        // report a single conflict.
        let mut rng = StdRng::seed_from_u64(3);
        for bits in [1usize, 2, 4, 8, 16, 30] {
            let n = (1usize << bits) - 1;
            let width = crate::plan::plan_width(n, n);
            let h1 = random_side(&mut rng, n, width, 0);
            let h2 = random_side(&mut rng, n, width, 100);
            for p in [1usize, 2, 3, 5, 8] {
                let out = build_plan_pram(&h1, &h2, p).expect("EREW-legal program");
                out.plan.validate().unwrap();
            }
        }
    }

    #[test]
    fn cost_decreases_with_processors() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = (1usize << 20) - 1;
        let width = crate::plan::plan_width(n, n);
        let h1 = random_side(&mut rng, n, width, 0);
        let h2 = random_side(&mut rng, n, width, 100);
        let t1 = build_plan_pram(&h1, &h2, 1).unwrap().cost.time;
        let t4 = build_plan_pram(&h1, &h2, 4).unwrap().cost.time;
        assert!(t4 < t1, "t1={t1} t4={t4}");
        // Work stays within a constant of the p=1 time (work-optimality).
        let w4 = build_plan_pram(&h1, &h2, 4).unwrap().cost.work;
        assert!(w4 <= 2 * t1, "w4={w4} t1={t1}");
    }

    #[test]
    fn min_reduction_matches_host_min() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(1usize..10_000);
            let width = crate::plan::plan_width(n, 0).max(1);
            let roots = random_side(&mut rng, n, width, 0);
            let (got, _) = min_pram(&roots, 3).unwrap();
            let expect = roots
                .iter()
                .flatten()
                .copied()
                .min_by_key(|r| (r.key, r.id.0));
            // min_pram ties to lowest index, which is the same as lowest
            // position; keys are random so exact tie semantics rarely bite,
            // but compare keys which must always agree.
            assert_eq!(got.map(|r| r.key), expect.map(|r| r.key));
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn sentinel_key_rejected_not_dropped() {
        // A real i64::MAX key must abort rather than silently vanish
        // (regression: found by the verification probe).
        let h1 = vec![Some(RootRef {
            key: i64::MAX,
            id: NodeId(0),
        })];
        let h2 = vec![Some(RootRef {
            key: 5,
            id: NodeId(1),
        })];
        let _ = build_plan_pram(&h1, &h2, 2);
    }

    #[test]
    fn empty_inputs() {
        let out = build_plan_pram(&[], &[], 2).unwrap();
        assert_eq!(out.plan.width, 0);
        assert_eq!(out.cost, Cost::ZERO);
        let (min, _) = min_pram(&[], 2).unwrap();
        assert!(min.is_none());
    }
}
