//! Graphviz rendering of heap structures — the inspection tool behind the
//! `union_anatomy --dot` example and handy in test failure triage.

use crate::heap::ParBinomialHeap;
use crate::lazy::LazyBinomialHeap;

/// Render the heap as a Graphviz `digraph`: one node per key, edges from
/// parents to children labelled by slot, roots annotated with their order.
pub fn par_heap_dot(h: &ParBinomialHeap) -> String {
    let mut out = String::from("digraph binomial_heap {\n  rankdir=TB;\n  node [shape=circle];\n");
    for (i, r) in h.roots().iter().enumerate() {
        if let Some(id) = r {
            out.push_str(&format!(
                "  n{} [label=\"{}\", xlabel=\"B{}\", penwidth=2];\n",
                id.0,
                h.arena().get(*id).key,
                i
            ));
        }
    }
    for (id, node) in h.arena().iter() {
        if node.parent.is_some() {
            out.push_str(&format!("  n{} [label=\"{}\"];\n", id.0, node.key));
        }
        for (slot, c) in node.children.iter().enumerate() {
            out.push_str(&format!("  n{} -> n{} [label=\"{slot}\"];\n", id.0, c.0));
        }
    }
    out.push_str("}\n");
    out
}

/// Render a lazy heap; empty (deleted) nodes are drawn filled/grey and the
/// `L`/`D` classification shows as solid/dashed edges.
pub fn lazy_heap_dot(h: &LazyBinomialHeap) -> String {
    let mut out =
        String::from("digraph lazy_binomial_heap {\n  rankdir=TB;\n  node [shape=circle];\n");
    let mut stack: Vec<crate::arena::NodeId> = h.roots_snapshot().into_iter().flatten().collect();
    let roots = stack.clone();
    while let Some(id) = stack.pop() {
        let empty = h.is_empty_node(id);
        let label = if empty {
            "-inf".to_string()
        } else {
            h.raw_key(id).to_string()
        };
        let style = if empty {
            ", style=filled, fillcolor=gray70"
        } else {
            ""
        };
        let pen = if roots.contains(&id) {
            ", penwidth=2"
        } else {
            ""
        };
        out.push_str(&format!("  n{} [label=\"{label}\"{style}{pen}];\n", id.0));
        for (slot, c) in h.children_of(id).into_iter().enumerate() {
            if let Some(c) = c {
                let dashed = if h.is_empty_node(c) {
                    ", style=dashed"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "  n{} -> n{} [label=\"{slot}\"{dashed}];\n",
                    id.0, c.0
                ));
                stack.push(c);
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_dot_contains_every_key_and_edge() {
        let h = ParBinomialHeap::from_keys([3, 1, 4, 1, 5, 9, 2, 6]);
        let dot = par_heap_dot(&h);
        assert!(dot.starts_with("digraph"));
        // 8 keys → one B_3 → 7 edges.
        assert_eq!(dot.matches(" -> ").count(), 7);
        for k in ["\"1\"", "\"9\"", "\"2\""] {
            assert!(dot.contains(k), "missing {k}");
        }
        assert!(dot.contains("xlabel=\"B3\""));
    }

    #[test]
    fn lazy_dot_marks_empties() {
        let mut h = LazyBinomialHeap::new(2);
        h.set_auto_arrange(false);
        let ids: Vec<_> = (0..8).map(|k| h.insert(k)).collect();
        h.delete(ids[7]);
        let dot = lazy_heap_dot(&h);
        assert!(dot.contains("-inf"));
        assert!(dot.contains("style=filled"));
        assert!(dot.contains("style=dashed"));
        assert_eq!(dot.matches(" -> ").count(), 7);
    }
}
