//! Bulk operations on [`ParBinomialHeap`] — where real threads pay off.
//!
//! A single `Union` touches only `O(log n)` root positions, far below the
//! granularity at which thread dispatch wins (DESIGN.md §5). Bulk builds are
//! different: `from_keys_parallel` splits the key set, builds sub-heaps on
//! rayon workers, and melds the results up a binary tree — the same
//! balanced-union pattern `Arrange-Heap` uses (§4.2), here applied for
//! wall-clock speed-up. `multi_insert` reuses it for batched insertion.

use crate::heap::{Engine, ParBinomialHeap};

/// Sub-heaps below this size are built sequentially.
const SEQ_THRESHOLD: usize = 8 * 1024;

impl ParBinomialHeap<i64> {
    /// `Multi-Insert` with measured Theorem 1-style cost: the batch is built
    /// by the PRAM `Make-Queue` and melded by the PRAM Union; both costs
    /// sum.
    pub fn multi_insert_measured(&mut self, keys: &[i64], p: usize) -> pram::Cost {
        if keys.is_empty() {
            return pram::Cost::ZERO;
        }
        let (batch, build_cost) =
            ParBinomialHeap::from_keys_pram(keys, p).expect("EREW-legal build");
        let meld_cost = self.meld_measured(batch, p);
        build_cost + meld_cost
    }
}

impl<K: Ord + Copy + Send + Sync> ParBinomialHeap<K> {
    /// Build a heap from keys using all rayon workers: recursive
    /// divide-and-conquer — both halves build concurrently (`rayon::join`)
    /// and meld on the way up. The melds themselves are `O(log n)` but the
    /// arena *absorption* copies the smaller side's nodes, so keeping the
    /// reductions inside the parallel recursion (rather than a sequential
    /// final pass) is what makes large builds scale.
    pub fn from_keys_parallel(keys: &[K]) -> ParBinomialHeap<K> {
        if keys.len() <= SEQ_THRESHOLD {
            return ParBinomialHeap::from_keys(keys.iter().copied());
        }
        let mid = keys.len() / 2;
        let (mut a, b) = rayon::join(
            || Self::from_keys_parallel(&keys[..mid]),
            || Self::from_keys_parallel(&keys[mid..]),
        );
        a.meld(b, Engine::Sequential);
        a
    }

    /// Insert a batch of keys at once (parallel build + one meld) — the
    /// shared-memory analogue of the hypercube queue's `Multi-Insert`.
    pub fn multi_insert(&mut self, keys: &[K]) {
        if keys.is_empty() {
            return;
        }
        let batch = ParBinomialHeap::from_keys_parallel(keys);
        self.meld(batch, Engine::Sequential);
    }

    /// Extract the `k` smallest keys (repeated `Extract-Min`) — the
    /// shared-memory analogue of `Multi-Extract-Min`.
    pub fn multi_extract_min(&mut self, k: usize, engine: Engine) -> Vec<K> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        for _ in 0..k {
            match self.extract_min(engine) {
                Some(x) => out.push(x),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_keys_carry_payloads() {
        // (priority, payload) tuples order lexicographically — the idiomatic
        // way to attach data to entries.
        let mut h: ParBinomialHeap<(i32, u32)> = ParBinomialHeap::new();
        h.insert((5, 100));
        h.insert((1, 200));
        h.insert((5, 50));
        h.meld(ParBinomialHeap::from_keys([(0, 9), (3, 7)]), Engine::Rayon);
        h.validate().unwrap();
        assert_eq!(h.extract_min(Engine::Sequential), Some((0, 9)));
        assert_eq!(h.extract_min(Engine::Rayon), Some((1, 200)));
        assert_eq!(h.into_sorted_vec(), vec![(3, 7), (5, 50), (5, 100)]);
    }

    #[test]
    fn parallel_build_equals_sequential_content() {
        let keys: Vec<i64> = (0..100_000)
            .map(|i| (i * 2654435761u64 as i64) % 99991)
            .collect();
        let par = ParBinomialHeap::from_keys_parallel(&keys);
        par.validate().unwrap();
        assert_eq!(par.len(), keys.len());
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(par.into_sorted_vec(), expected);
    }

    #[test]
    fn parallel_build_small_input() {
        let par = ParBinomialHeap::from_keys_parallel(&[3, 1, 2]);
        assert_eq!(par.into_sorted_vec(), vec![1, 2, 3]);
        let empty = ParBinomialHeap::<i64>::from_keys_parallel(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn measured_multi_insert() {
        let mut h = ParBinomialHeap::from_keys([100, 200, 300]);
        let c = h.multi_insert_measured(&[5, 1, 4, 1, 5], 3);
        assert!(c.time > 0 && c.work >= c.time);
        h.validate().unwrap();
        assert_eq!(h.len(), 8);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.multi_insert_measured(&[], 3), pram::Cost::ZERO);
    }

    #[test]
    fn multi_insert_and_extract() {
        let mut h = ParBinomialHeap::from_keys([50, 60, 70]);
        h.multi_insert(&[10, 20, 30, 40]);
        h.validate().unwrap();
        assert_eq!(h.len(), 7);
        assert_eq!(
            h.multi_extract_min(4, Engine::Sequential),
            vec![10, 20, 30, 40]
        );
        assert_eq!(h.len(), 3);
        // Asking for more than available drains and stops.
        assert_eq!(h.multi_extract_min(10, Engine::Rayon), vec![50, 60, 70]);
        assert!(h.is_empty());
    }
}
