//! Bulk operations on [`ParBinomialHeap`] — where real threads pay off.
//!
//! A single `Union` touches only `O(log n)` root positions, far below the
//! granularity at which thread dispatch wins (DESIGN.md §5). Bulk builds are
//! different: `from_keys_parallel` now runs on the pooled slab builder
//! ([`HeapPool::from_keys_parallel`]) — every worker writes into a disjoint
//! slice of one pre-sized slab with its `NodeId`s baked against the final
//! base offset, and the halves meld *zero-copy* on the way up. The old
//! tree-of-absorbs (`Θ(n log n)` node moves) is gone; a build of `n` keys
//! performs exactly `n` allocations and zero copies.
//!
//! `multi_extract_min` is a real kernel too: instead of `k` sequential
//! `Extract-Min` rounds (each planning its own union), a root-frontier
//! heap-of-heaps peels the `k` smallest in one pass and re-melds the
//! orphaned subtrees with a single engine-planned union.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::arena::{Arena, NodeId};
use crate::heap::{Engine, ParBinomialHeap};
use crate::pool::HeapPool;

impl ParBinomialHeap<i64> {
    /// `Multi-Insert` planned on the PRAM simulator: the batch is built by
    /// the PRAM `Make-Queue` and melded by the PRAM Union; both costs land on
    /// [`Self::pram_ledger`](ParBinomialHeap::pram_ledger).
    pub fn multi_insert_pram(&mut self, keys: &[i64], p: usize) {
        if keys.is_empty() {
            return;
        }
        let (batch, build_cost) =
            ParBinomialHeap::from_keys_pram(keys, p).expect("EREW-legal build");
        self.add_pram_cost(build_cost);
        self.meld_pram(batch, p);
    }

    /// Deprecated shim kept for the report binaries:
    /// [`Self::multi_insert_pram`] + the ledger delta.
    #[deprecated(note = "use multi_insert_pram and read pram_ledger() via obs::Recorder")]
    pub fn multi_insert_measured(&mut self, keys: &[i64], p: usize) -> pram::Cost {
        let before = *self.pram_ledger();
        self.multi_insert_pram(keys, p);
        let after = *self.pram_ledger();
        pram::Cost {
            time: after.time - before.time,
            work: after.work - before.work,
        }
    }
}

impl<K: Ord + Copy + Send + Sync> ParBinomialHeap<K> {
    /// Build a heap from keys using all rayon workers. Defaults to the
    /// sequential planner for the per-level unions — a single union touches
    /// `O(log n)` positions, below thread-dispatch granularity; the
    /// parallelism comes from building the slab halves concurrently. Use
    /// [`Self::from_keys_parallel_with`] to exercise the rayon planner.
    pub fn from_keys_parallel(keys: &[K]) -> ParBinomialHeap<K> {
        Self::from_keys_parallel_with(keys, Engine::Sequential)
    }

    /// [`Self::from_keys_parallel`] with an explicit planning engine for the
    /// unions up the build tree. Batches below the calibrated admission
    /// cutoff ([`crate::cutoff::batch_bulk_cutoff`]) ripple-insert instead —
    /// the slab staging cost dominates at tiny sizes.
    pub fn from_keys_parallel_with(keys: &[K], engine: Engine) -> ParBinomialHeap<K> {
        Self::from_keys_parallel_at(keys, engine, crate::cutoff::batch_bulk_cutoff())
    }

    /// [`Self::from_keys_parallel_with`] with an explicit admission cutoff
    /// instead of the calibrated one. Differential tests pin the cutoff to
    /// exercise both sides of the threshold in one deterministic program
    /// (the calibrated value is host-dependent and `OnceLock`-cached, so it
    /// cannot be varied within a process).
    #[doc(hidden)]
    pub fn from_keys_parallel_at(
        keys: &[K],
        engine: Engine,
        admission: usize,
    ) -> ParBinomialHeap<K> {
        if keys.len() < admission {
            return ParBinomialHeap::from_keys(keys.iter().copied());
        }
        let mut pool = HeapPool::with_capacity(keys.len());
        let h = pool.from_keys_parallel_with(keys, engine);
        pool.into_heap(h)
    }

    /// Insert a batch of keys at once (parallel build + one meld) — the
    /// shared-memory analogue of the hypercube queue's `Multi-Insert`.
    /// Plans the final meld sequentially; see [`Self::multi_insert_with`].
    pub fn multi_insert(&mut self, keys: &[K]) {
        self.multi_insert_with(keys, Engine::Sequential);
    }

    /// [`Self::multi_insert`] with an explicit planning engine for both the
    /// build-tree unions and the final meld.
    pub fn multi_insert_with(&mut self, keys: &[K], engine: Engine) {
        self.multi_insert_at(keys, engine, crate::cutoff::batch_bulk_cutoff());
    }

    /// [`Self::multi_insert_with`] with an explicit admission cutoff; see
    /// [`Self::from_keys_parallel_at`].
    #[doc(hidden)]
    pub fn multi_insert_at(&mut self, keys: &[K], engine: Engine, admission: usize) {
        if keys.is_empty() {
            return;
        }
        let batch = ParBinomialHeap::from_keys_parallel_at(keys, engine, admission);
        self.meld(batch, engine);
    }

    /// Extract the `k` smallest keys — the shared-memory analogue of
    /// `Multi-Extract-Min`. A root-frontier heap-of-heaps peels the `k`
    /// smallest nodes (ancestor-closed, so exactly the nodes `k` sequential
    /// `Extract-Min`s would remove), then the orphaned subtrees re-meld with
    /// **one** engine-planned union instead of `k`.
    pub fn multi_extract_min(&mut self, k: usize, engine: Engine) -> Vec<K> {
        let take = k.min(self.len());
        if take == 0 {
            return Vec::new();
        }
        let (arena, roots) = self.parts_mut();
        let (out, orphan_roots, orphan_len) = peel_k_smallest(arena, roots, take);
        self.set_len(self.len() - take - orphan_len);
        self.meld_roots_in_arena(orphan_roots, orphan_len, engine);
        self.debug_validate();
        out
    }
}

/// Peel the `take` smallest keys off a forest in one frontier pass.
///
/// The frontier is a min-heap over "nodes whose parent has already been
/// peeled (or who are roots)". By BH1 every parent key ≤ its children's, so
/// the peeled set is ancestor-closed and equals the multiset a sequence of
/// `take` `Extract-Min`s would remove. On return:
///
/// * `roots` holds only the untouched trees (peeled roots' slots cleared),
/// * the second value is a dense root array of the orphaned subtrees
///   (children of peeled nodes, carry-combined to one tree per order),
/// * the third is the total size of those orphans.
///
/// The caller subtracts `take + orphan_len` from its length and melds the
/// orphans back in — one planned union for the whole batch.
pub(crate) fn peel_k_smallest<K: Ord + Copy>(
    arena: &mut Arena<K>,
    roots: &mut Vec<Option<NodeId>>,
    take: usize,
) -> (Vec<K>, Vec<Option<NodeId>>, usize) {
    let mut frontier: BinaryHeap<Reverse<(K, u32)>> = roots
        .iter()
        .flatten()
        .map(|id| Reverse((arena.get(*id).key, id.0)))
        .collect();
    let mut out = Vec::with_capacity(take);
    let mut peeled = Vec::with_capacity(take);
    for _ in 0..take {
        let Reverse((key, raw)) = frontier.pop().expect("take <= total keys");
        let id = NodeId(raw);
        out.push(key);
        peeled.push(id);
        for &c in &arena.get(id).children {
            frontier.push(Reverse((arena.get(c).key, c.0)));
        }
    }
    // Peeled roots leave the root array; peeled internal nodes die with
    // their subtree bookkeeping (their un-peeled children become orphans —
    // they are exactly the frontier remnant with a parent pointer).
    for &id in &peeled {
        if arena.get(id).parent.is_none() {
            let order = arena.get(id).children.len();
            debug_assert_eq!(roots[order], Some(id));
            roots[order] = None;
        }
    }
    while matches!(roots.last(), Some(None)) {
        roots.pop();
    }
    let mut orphan_len = 0usize;
    let mut comb: Vec<Option<NodeId>> = Vec::new();
    for Reverse((_, raw)) in frontier.into_vec() {
        let id = NodeId(raw);
        if arena.get(id).parent.is_none() {
            continue; // a surviving root, already in `roots`
        }
        arena.get_mut(id).parent = None;
        orphan_len += 1usize << arena.get(id).children.len();
        // Ripple-carry the orphan into `comb`: orders collide across
        // different peeled parents, so link equal-order pairs as we go
        // (resident tree wins ties, matching the planners).
        let mut carry = id;
        let mut order = arena.get(carry).children.len();
        loop {
            while comb.len() <= order {
                comb.push(None);
            }
            match comb[order].take() {
                None => {
                    comb[order] = Some(carry);
                    break;
                }
                Some(existing) => {
                    let (win, lose) = if arena.get(existing).key <= arena.get(carry).key {
                        (existing, carry)
                    } else {
                        (carry, existing)
                    };
                    arena.get_mut(win).children.push(lose);
                    arena.get_mut(lose).parent = Some(win);
                    carry = win;
                    order += 1;
                }
            }
        }
    }
    for id in peeled {
        arena.dealloc(id);
    }
    (out, comb, orphan_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_keys_carry_payloads() {
        // (priority, payload) tuples order lexicographically — the idiomatic
        // way to attach data to entries.
        let mut h: ParBinomialHeap<(i32, u32)> = ParBinomialHeap::new();
        h.insert((5, 100));
        h.insert((1, 200));
        h.insert((5, 50));
        h.meld(ParBinomialHeap::from_keys([(0, 9), (3, 7)]), Engine::Rayon);
        h.validate().unwrap();
        assert_eq!(h.extract_min(Engine::Sequential), Some((0, 9)));
        assert_eq!(h.extract_min(Engine::Rayon), Some((1, 200)));
        assert_eq!(h.into_sorted_vec(), vec![(3, 7), (5, 50), (5, 100)]);
    }

    #[test]
    fn parallel_build_equals_sequential_content() {
        let keys: Vec<i64> = (0..100_000)
            .map(|i| (i * 2654435761u64 as i64) % 99991)
            .collect();
        let par = ParBinomialHeap::from_keys_parallel(&keys);
        par.validate().unwrap();
        assert_eq!(par.len(), keys.len());
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(par.into_sorted_vec(), expected);
    }

    #[test]
    fn parallel_build_is_zero_copy() {
        let keys: Vec<i64> = (0..40_000).map(|i| (i * 7919) % 6007).collect();
        let par = ParBinomialHeap::from_keys_parallel_with(&keys, Engine::Rayon);
        par.validate().unwrap();
        assert_eq!(par.arena().stats().allocs, keys.len() as u64);
        assert_eq!(par.arena().stats().copies, 0, "pooled build must not copy");
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(par.into_sorted_vec(), expected);
    }

    #[test]
    fn parallel_build_small_input() {
        let par = ParBinomialHeap::from_keys_parallel(&[3, 1, 2]);
        assert_eq!(par.into_sorted_vec(), vec![1, 2, 3]);
        let empty = ParBinomialHeap::<i64>::from_keys_parallel(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn measured_multi_insert() {
        let mut h = ParBinomialHeap::from_keys([100, 200, 300]);
        h.multi_insert_pram(&[5, 1, 4, 1, 5], 3);
        let c = *h.pram_ledger();
        assert!(c.time > 0 && c.work >= c.time);
        h.validate().unwrap();
        assert_eq!(h.len(), 8);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.multi_insert_measured(&[], 3), pram::Cost::ZERO);
    }

    #[test]
    fn multi_insert_and_extract() {
        let mut h = ParBinomialHeap::from_keys([50, 60, 70]);
        h.multi_insert(&[10, 20, 30, 40]);
        h.validate().unwrap();
        assert_eq!(h.len(), 7);
        assert_eq!(
            h.multi_extract_min(4, Engine::Sequential),
            vec![10, 20, 30, 40]
        );
        assert_eq!(h.len(), 3);
        // Asking for more than available drains and stops.
        assert_eq!(h.multi_extract_min(10, Engine::Rayon), vec![50, 60, 70]);
        assert!(h.is_empty());
    }

    #[test]
    fn multi_extract_matches_sequential_extracts() {
        // The frontier peel must produce exactly what k sequential
        // Extract-Mins produce, for every k, duplicates included.
        let keys: Vec<i64> = (0..300).map(|i| (i * 37) % 53).collect();
        for k in [0usize, 1, 2, 7, 64, 255, 300, 400] {
            let mut fast = ParBinomialHeap::from_keys(keys.iter().copied());
            let mut slow = ParBinomialHeap::from_keys(keys.iter().copied());
            let got = fast.multi_extract_min(k, Engine::Rayon);
            fast.validate().unwrap();
            let mut expected = Vec::new();
            for _ in 0..k {
                match slow.extract_min(Engine::Sequential) {
                    Some(x) => expected.push(x),
                    None => break,
                }
            }
            assert_eq!(got, expected, "k={k}");
            assert_eq!(fast.len(), slow.len(), "k={k}");
            assert_eq!(fast.into_sorted_vec(), slow.into_sorted_vec(), "k={k}");
        }
    }

    #[test]
    fn multi_extract_with_engine_on_large_heap() {
        let keys: Vec<i64> = (0..20_000)
            .map(|i| (i * 2654435761u64 as i64) % 9973)
            .collect();
        let mut h = ParBinomialHeap::from_keys_parallel(&keys);
        let got = h.multi_extract_min(5_000, Engine::Rayon);
        h.validate().unwrap();
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(got, expected[..5_000]);
        assert_eq!(h.len(), 15_000);
        assert_eq!(h.into_sorted_vec(), expected[5_000..]);
    }
}
