//! Slab arena for binomial-heap nodes.
//!
//! Nodes are stored in a contiguous `Vec` and addressed by [`NodeId`]
//! handles, mirroring the paper's shared-memory representation (§2): each
//! node carries `key`, `parent`, and the child array `L` where slot `i`
//! points at the root of the child sub-tree `B_i`. The arena keeps a free
//! list so deleted nodes are recycled.

/// Handle to a node in an [`Arena`]. `u32` keeps the hot structures small
/// (perf-book: smaller indices beat pointers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Convert to a PRAM machine word.
    pub fn to_word(self) -> i64 {
        self.0 as i64
    }

    /// Convert back from a PRAM machine word (must not be `NIL`).
    pub fn from_word(w: i64) -> NodeId {
        debug_assert!(w >= 0, "NIL is not a NodeId");
        NodeId(w as u32)
    }
}

/// A binomial-tree node: key plus the paper's `parent` and `L` fields.
/// The degree is `children.len()`.
#[derive(Debug, Clone)]
pub struct Node<K> {
    /// The priority key.
    pub key: K,
    /// Parent pointer (`None` for roots).
    pub parent: Option<NodeId>,
    /// Child array `L`: slot `i` is the root of the child `B_i`. Dense for a
    /// clean binomial tree of degree `children.len()`.
    pub children: Vec<NodeId>,
}

/// Allocation counters for an [`Arena`] — the instrumentation behind the
/// zero-copy meld guarantee (see `pool.rs` and DESIGN.md §7): a same-pool
/// meld must leave *both* counters unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Fresh nodes created (`alloc`, slab extension).
    pub allocs: u64,
    /// Nodes copied in from another arena (`absorb`, cross-pool moves).
    pub copies: u64,
}

/// Slab arena with free-list recycling.
#[derive(Debug, Clone, Default)]
pub struct Arena<K> {
    nodes: Vec<Option<Node<K>>>,
    free: Vec<u32>,
    stats: ArenaStats,
}

impl<K> Arena<K> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            nodes: Vec::new(),
            free: Vec::new(),
            stats: ArenaStats::default(),
        }
    }

    /// An empty arena with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            stats: ArenaStats::default(),
        }
    }

    /// Allocation counters since construction (clones inherit the history).
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Number of slab slots (live + free) — the id space upper bound, used
    /// by the pool builder to reserve a fresh contiguous id range.
    pub fn slab_len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a fresh leaf node.
    pub fn alloc(&mut self, key: K) -> NodeId {
        self.stats.allocs += 1;
        let node = Node {
            key,
            parent: None,
            children: Vec::new(),
        };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = Some(node);
                NodeId(idx)
            }
            None => {
                assert!(
                    self.nodes.len() < u32::MAX as usize,
                    "arena slab exceeds the u32 id space"
                );
                self.nodes.push(Some(node));
                NodeId((self.nodes.len() - 1) as u32)
            }
        }
    }

    /// Free a node, recycling its slot. The caller must have unlinked it.
    pub fn dealloc(&mut self, id: NodeId) -> Node<K> {
        let n = self.nodes[id.0 as usize]
            .take()
            .expect("dealloc of a dead node");
        self.free.push(id.0);
        n
    }

    /// Borrow a node.
    pub fn get(&self, id: NodeId) -> &Node<K> {
        self.nodes[id.0 as usize].as_ref().expect("dead node")
    }

    /// Borrow a node mutably.
    pub fn get_mut(&mut self, id: NodeId) -> &mut Node<K> {
        self.nodes[id.0 as usize].as_mut().expect("dead node")
    }

    /// Whether `id` refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.0 as usize)
            .is_some_and(|slot| slot.is_some())
    }

    /// Iterate over `(id, node)` for all live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node<K>)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NodeId(i as u32), n)))
    }

    /// Move a fully-formed node in from another arena (pointers still in the
    /// source id space — the caller rewrites them afterwards). Counted as a
    /// copy, not a fresh allocation.
    pub(crate) fn alloc_node(&mut self, node: Node<K>) -> NodeId {
        self.stats.copies += 1;
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = Some(node);
                NodeId(idx)
            }
            None => {
                assert!(
                    self.nodes.len() < u32::MAX as usize,
                    "arena slab exceeds the u32 id space"
                );
                self.nodes.push(Some(node));
                NodeId((self.nodes.len() - 1) as u32)
            }
        }
    }

    /// Append a pre-built contiguous slab of live nodes whose ids were baked
    /// against `self.slab_len()` at build time (the pool's parallel builder).
    /// No remapping happens — the ids are already final.
    pub(crate) fn extend_slab(&mut self, slab: Vec<Option<Node<K>>>) {
        debug_assert!(slab.iter().all(|s| s.is_some()), "slab must be dense");
        self.stats.allocs += slab.len() as u64;
        if self.nodes.is_empty() && self.free.is_empty() {
            self.nodes = slab;
        } else {
            self.nodes.extend(slab);
        }
    }

    /// Raw slab view for checkpoint serialization: every slot, dead or alive,
    /// in id order. Dead slots are the free list.
    pub(crate) fn raw_slots(&self) -> &[Option<Node<K>>] {
        &self.nodes
    }

    /// The free-list slots, in pop order (last entry is popped first).
    pub(crate) fn free_list(&self) -> &[u32] {
        &self.free
    }

    /// Rebuild an arena from a checkpoint image. The caller guarantees that
    /// `free` names exactly the `None` slots of `nodes`; this is re-checked
    /// here because the image crosses a trust boundary (it was read from
    /// disk).
    pub(crate) fn from_raw_parts(nodes: Vec<Option<Node<K>>>, free: Vec<u32>) -> Option<Self> {
        let dead = nodes.iter().filter(|s| s.is_none()).count();
        if free.len() != dead {
            return None;
        }
        let mut seen = vec![false; nodes.len()];
        for &f in &free {
            let slot = nodes.get(f as usize)?;
            if slot.is_some() || seen[f as usize] {
                return None;
            }
            seen[f as usize] = true;
        }
        Some(Arena {
            nodes,
            free,
            stats: ArenaStats::default(),
        })
    }

    /// Absorb all nodes of `other`, returning a remapping function applied to
    /// its ids: every `NodeId` from `other` must be translated. Children and
    /// parent pointers inside the moved nodes are rewritten here.
    pub fn absorb(&mut self, other: Arena<K>) -> impl Fn(NodeId) -> NodeId {
        // Map other's slot -> new id.
        let mut map: Vec<u32> = vec![u32::MAX; other.nodes.len()];
        let mut moved: Vec<(u32, Node<K>)> = Vec::with_capacity(other.len());
        for (i, slot) in other.nodes.into_iter().enumerate() {
            if let Some(node) = slot {
                moved.push((i as u32, node));
            }
        }
        // Reserve the net growth up front: one slab doubling instead of
        // log(moved) incremental ones on the copy loop below.
        self.stats.copies += moved.len() as u64;
        self.nodes
            .reserve(moved.len().saturating_sub(self.free.len()));
        for (old, node) in &moved {
            let new_id = match self.free.pop() {
                Some(idx) => {
                    self.nodes[idx as usize] = None; // placeholder, filled below
                    idx
                }
                None => {
                    self.nodes.push(None);
                    (self.nodes.len() - 1) as u32
                }
            };
            map[*old as usize] = new_id;
            let _ = node; // moved in next pass
        }
        for (old, mut node) in moved {
            let new_id = map[old as usize];
            node.parent = node.parent.map(|p| NodeId(map[p.0 as usize]));
            for c in &mut node.children {
                *c = NodeId(map[c.0 as usize]);
            }
            self.nodes[new_id as usize] = Some(node);
        }
        move |id: NodeId| {
            let m = map[id.0 as usize];
            debug_assert_ne!(m, u32::MAX, "remapping a dead node");
            NodeId(m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_dealloc_roundtrip() {
        let mut a: Arena<i64> = Arena::new();
        let x = a.alloc(5);
        let y = a.alloc(9);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(x).key, 5);
        assert_eq!(a.get(y).key, 9);
        let n = a.dealloc(x);
        assert_eq!(n.key, 5);
        assert!(!a.contains(x));
        assert_eq!(a.len(), 1);
        // Slot is recycled.
        let z = a.alloc(7);
        assert_eq!(z, x);
    }

    #[test]
    fn absorb_remaps_pointers() {
        let mut a: Arena<i64> = Arena::new();
        let _pad = a.alloc(0); // offset a's ids
        let mut b: Arena<i64> = Arena::new();
        let child = b.alloc(10);
        let root = b.alloc(1);
        b.get_mut(root).children.push(child);
        b.get_mut(child).parent = Some(root);

        let remap = a.absorb(b);
        let new_root = remap(root);
        let new_child = remap(child);
        assert_eq!(a.get(new_root).key, 1);
        assert_eq!(a.get(new_root).children, vec![new_child]);
        assert_eq!(a.get(new_child).parent, Some(new_root));
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dead node")]
    fn get_after_dealloc_panics() {
        let mut a: Arena<i64> = Arena::new();
        let x = a.alloc(1);
        a.dealloc(x);
        let _ = a.get(x);
    }

    #[test]
    fn word_roundtrip() {
        let id = NodeId(42);
        assert_eq!(NodeId::from_word(id.to_word()), id);
    }
}
