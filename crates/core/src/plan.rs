//! The `Union` plan: Phases I–III of the paper as pure data transforms.
//!
//! A [`UnionPlan`] captures everything the three phases decide:
//!
//! * **Phase I** (§3.1): presence bits, carry generators/propagators/carries,
//!   point classification (`str`/`int`/`end`/`ind`), and the segment limits
//!   `I_lim`;
//! * **Phase II** (§3.2): per-position winners `I_valueB` and the segmented
//!   prefix minima `I_valueA` identifying dominant roots;
//! * **Phase III** (§3.3): the link operations (child, parent, slot) and the
//!   new root array `H` (rules 1–3).
//!
//! Every engine (sequential, rayon, PRAM) produces this same structure, and
//! the differential tests require bit-identical plans. This module holds the
//! *sequential oracle* implementation plus the shared per-position logic the
//! parallel engines reuse.
//!
//! # Tie-breaking contract (equal keys)
//!
//! Plans are only comparable across engines if equal keys resolve the same
//! way everywhere, so the workspace fixes **one** rule: *the first/left
//! operand wins ties*. Concretely:
//!
//! * [`position_winner`]: on `h1.key == h2.key` the **h1** root wins (the
//!   comparison is strict — `y.key < x.key` — so `x`, the first operand,
//!   survives ties);
//! * [`seg_combine`]: on equal keys the **left** (lower-position prefix)
//!   operand wins, again via a strict comparison on the right operand;
//! * `engine_pram` implements the identical rule arithmetically: the
//!   Phase II seed picks h1 on `a_key <= b_key`, and the tuple scan keeps
//!   the left tuple unless the right key is strictly smaller.
//!
//! Consequences: with all-equal keys the dominant root of every fragment is
//! the *lowest-position* candidate, preferring **h1** at its seed position,
//! and the three engines emit bit-identical plans — enforced by the
//! duplicate-key regression tests in `tests/engine_differential.rs` and
//! continuously by the differential fuzzer.

use crate::arena::NodeId;

/// Classification of a bit position (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointType {
    /// `g_i ∧ p_{i+1}`: the link of the two `B_i` cascades into `B_{i+1}`.
    Start,
    /// `p_i ∧ c_{i-1} ∧ p_{i+1}`: mid-chain position.
    Internal,
    /// `p_i ∧ c_{i-1} ∧ ¬p_{i+1}`: the chain terminates here.
    End,
    /// Everything else: an isolated link (`g_i = 1`), a copied tree, or an
    /// empty position.
    Independent,
}

/// A root candidate at a position: the key (for ordering decisions) and the
/// arena node. Orders by `(key, tie → first operand)` — engines must apply
/// identical tie-breaking for plans to be comparable.
///
/// Generic over the key type (default `i64`, the PRAM machine word); the
/// sequential and rayon engines plan over any `K: Ord + Copy`, while the
/// PRAM engine requires word keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootRef<K = i64> {
    /// Root key.
    pub key: K,
    /// The node in the melded arena.
    pub id: NodeId,
}

/// One link of Phase III: make `child` the `slot`-th child of `parent`
/// (`L_parent[slot] := child`, `child.parent := parent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOp {
    /// The tree becoming a child.
    pub child: NodeId,
    /// The dominant root receiving the child.
    pub parent: NodeId,
    /// Child-array slot, equal to the order of `child`'s tree.
    pub slot: usize,
}

/// The complete decision record of one `Union`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionPlan<K = i64> {
    /// Number of bit positions considered (enough for `n1 + n2`).
    pub width: usize,
    /// Presence bits of the two heaps.
    pub a: Vec<bool>,
    /// Presence bits of the second heap.
    pub b: Vec<bool>,
    /// Carry generators `g_i = a_i ∧ b_i`.
    pub g: Vec<bool>,
    /// Carry propagators `p_i = a_i ⊕ b_i`.
    pub p: Vec<bool>,
    /// Carries `c_i` (out of position `i`).
    pub c: Vec<bool>,
    /// Sum bits `s_i` — `B_i ∈ H` iff `s_i`.
    pub s: Vec<bool>,
    /// Point classification.
    pub class: Vec<PointType>,
    /// Segment limits: `true` starts a fragment (`I_lim[i] = 1`).
    pub i_lim: Vec<bool>,
    /// `I_value` before the prefix: the smaller of the two roots at `i`.
    pub i_value_b: Vec<Option<RootRef<K>>>,
    /// `I_value` after the segmented prefix minima: the dominant root.
    pub i_value_a: Vec<Option<RootRef<K>>>,
    /// Phase III links, in ascending slot order.
    pub links: Vec<LinkOp>,
    /// The new root array `H` (slot `i` = root of `B_i`).
    pub new_roots: Vec<Option<NodeId>>,
}

impl<K> Default for UnionPlan<K> {
    /// An empty plan (all vectors empty, width 0) — the starting state for
    /// the buffer-reusing [`build_plan_into`]. Hand-written so `K` needs no
    /// `Default` bound.
    fn default() -> Self {
        UnionPlan {
            width: 0,
            a: Vec::new(),
            b: Vec::new(),
            g: Vec::new(),
            p: Vec::new(),
            c: Vec::new(),
            s: Vec::new(),
            class: Vec::new(),
            i_lim: Vec::new(),
            i_value_b: Vec::new(),
            i_value_a: Vec::new(),
            links: Vec::new(),
            new_roots: Vec::new(),
        }
    }
}

/// Width (bit positions) needed to meld heaps of `n1` and `n2` elements.
pub fn plan_width(n1: usize, n2: usize) -> usize {
    let n = n1 + n2;
    if n == 0 {
        0
    } else {
        (usize::BITS - n.leading_zeros()) as usize
    }
}

/// Pick the smaller root of a position, ties to `h1` — the shared Phase II
/// seed logic.
pub fn position_winner<K: Ord + Copy>(
    h1: Option<RootRef<K>>,
    h2: Option<RootRef<K>>,
) -> Option<RootRef<K>> {
    match (h1, h2) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(if y.key < x.key { y } else { x }),
    }
}

/// Segmented-minimum combine for `Option<RootRef>` values, ties to the left
/// (prefix) operand — the shared Phase II scan operator.
pub fn seg_combine<K: Ord + Copy>(
    l: (bool, Option<RootRef<K>>),
    r: (bool, Option<RootRef<K>>),
) -> (bool, Option<RootRef<K>>) {
    if r.0 {
        r
    } else {
        let v = match (l.1, r.1) {
            (None, x) | (x, None) => x,
            (Some(x), Some(y)) => Some(if y.key < x.key { y } else { x }),
        };
        (l.0, v)
    }
}

/// Classify position `i` given its flags (shared by all engines).
/// `p_next` is `p_{i+1}` (false past the top), `c_prev` is `c_{i-1}`.
pub fn classify_point(g: bool, p: bool, c_prev: bool, p_next: bool) -> PointType {
    if g && p_next {
        PointType::Start
    } else if p && c_prev && p_next {
        PointType::Internal
    } else if p && c_prev && !p_next {
        PointType::End
    } else {
        PointType::Independent
    }
}

/// Phase III per-position link decision (shared by all engines).
///
/// * internal/ending points emit Case 1 or Case 2;
/// * starting points and independent points with `g_i = 1` emit Case 3
///   (the plain linking rule on the two local roots).
///
/// `h1`/`h2` are the original roots at `i`; `winner` is `I_valueB[i]`;
/// `dom` is `I_valueA[i]`; `dom_prev` is `I_valueA[i-1]`.
#[allow(clippy::too_many_arguments)]
pub fn link_decision<K: Ord + Copy>(
    class: PointType,
    g: bool,
    h1: Option<RootRef<K>>,
    h2: Option<RootRef<K>>,
    winner: Option<RootRef<K>>,
    dom: Option<RootRef<K>>,
    dom_prev: Option<RootRef<K>>,
    slot: usize,
) -> Option<LinkOp> {
    match class {
        PointType::Internal | PointType::End => {
            let t = dom.expect("chain positions have a dominant root");
            let prev = dom_prev.expect("chain positions follow a nonempty prefix");
            if t.id == prev.id {
                // Case 1: the unique local tree joins the running dominant.
                let r = winner.expect("internal/ending points hold exactly one tree");
                Some(LinkOp {
                    child: r.id,
                    parent: t.id,
                    slot,
                })
            } else {
                // Case 2: a new fragment begins; the previous aggregate
                // (order = slot) becomes a child of the new dominant.
                Some(LinkOp {
                    child: prev.id,
                    parent: t.id,
                    slot,
                })
            }
        }
        PointType::Start | PointType::Independent if g => {
            // Case 3: linking rule on the two local roots.
            let x = h1.expect("g implies both trees present");
            let y = h2.expect("g implies both trees present");
            let w = winner.expect("both present");
            let loser = if w.id == x.id { y } else { x };
            Some(LinkOp {
                child: loser.id,
                parent: w.id,
                slot,
            })
        }
        _ => None,
    }
}

/// New-root-array decision for position `i` (paper §3.3 rules 1–3), shared by
/// all engines. Returns `(target_slot, root)` pairs to store into `H`.
pub fn new_root_decision<K: Ord + Copy>(
    i: usize,
    class: PointType,
    g: bool,
    p: bool,
    c_prev: bool,
    p_next: bool,
    dom: Option<RootRef<K>>,
) -> Option<(usize, NodeId)> {
    // Rule 1: independent point with g=1 and no cascade — the freshly linked
    // B_{i+1} lands in H[i+1].
    if g && !p_next {
        return Some((i + 1, dom.expect("g implies a dominant root").id));
    }
    // Rule 2: a lone tree with no incoming carry is copied across.
    if p && !c_prev {
        return Some((i, dom.expect("p implies a tree").id));
    }
    // Rule 3: an ending point produces B_{i+1}.
    if class == PointType::End {
        return Some((i + 1, dom.expect("chains have dominants").id));
    }
    None
}

/// Sequential oracle: build the full plan with plain loops.
///
/// `h1`/`h2` give, per position, the root reference if the heap has a `B_i`.
/// All root ids must be *distinct across both inputs* (the Phase III case
/// analysis compares ids); `ParBinomialHeap::meld` guarantees this by
/// absorbing the second arena before planning.
pub fn build_plan_seq<K: Ord + Copy>(
    h1: &[Option<RootRef<K>>],
    h2: &[Option<RootRef<K>>],
) -> UnionPlan<K> {
    let mut plan = UnionPlan::default();
    build_plan_into(&mut plan, h1, h2);
    plan
}

/// Sequential oracle, reusing a caller-owned plan's buffers: every vector is
/// cleared and refilled in place, so hot loops (pooled melds, the parallel
/// builder's reduction tree) plan without per-meld allocation after the
/// first call. Produces exactly what [`build_plan_seq`] returns.
pub fn build_plan_into<K: Ord + Copy>(
    plan: &mut UnionPlan<K>,
    h1: &[Option<RootRef<K>>],
    h2: &[Option<RootRef<K>>],
) {
    #[cfg(debug_assertions)]
    {
        let mut ids: Vec<u32> = h1
            .iter()
            .chain(h2.iter())
            .flatten()
            .map(|r| r.id.0)
            .collect();
        ids.sort_unstable();
        let len = ids.len();
        ids.dedup();
        debug_assert_eq!(ids.len(), len, "root ids must be unique across inputs");
    }
    let width = h1.len().max(h2.len());
    let at = |v: &[Option<RootRef<K>>], i: usize| v.get(i).copied().flatten();

    plan.width = width;
    plan.a.clear();
    plan.a.extend((0..width).map(|i| at(h1, i).is_some()));
    plan.b.clear();
    plan.b.extend((0..width).map(|i| at(h2, i).is_some()));
    plan.g.clear();
    plan.g.extend((0..width).map(|i| plan.a[i] && plan.b[i]));
    plan.p.clear();
    plan.p.extend((0..width).map(|i| plan.a[i] ^ plan.b[i]));
    // The ripple carry recurrence (`parscan::carry::carries_ripple`),
    // inlined so no scratch vector is allocated per meld.
    plan.c.clear();
    let mut carry = false;
    for i in 0..width {
        carry = plan.g[i] || (plan.p[i] && carry);
        plan.c.push(carry);
    }
    plan.s.clear();
    plan.s.extend((0..width).map(|i| {
        let c_prev = i > 0 && plan.c[i - 1];
        plan.p[i] ^ c_prev
    }));
    plan.class.clear();
    plan.class.extend((0..width).map(|i| {
        let c_prev = i > 0 && plan.c[i - 1];
        let p_next = i + 1 < width && plan.p[i + 1];
        classify_point(plan.g[i], plan.p[i], c_prev, p_next)
    }));
    plan.i_lim.clear();
    plan.i_lim.extend((0..width).map(|i| {
        let c_prev = i > 0 && plan.c[i - 1];
        !(plan.p[i] && c_prev)
    }));
    plan.i_value_b.clear();
    plan.i_value_b
        .extend((0..width).map(|i| position_winner(at(h1, i), at(h2, i))));

    // Phase II: segmented prefix minima.
    plan.i_value_a.clear();
    let mut acc: (bool, Option<RootRef<K>>) = (false, None);
    for i in 0..width {
        let elem = (plan.i_lim[i], plan.i_value_b[i]);
        acc = if i == 0 { elem } else { seg_combine(acc, elem) };
        plan.i_value_a.push(acc.1);
    }

    // Phase III.
    plan.links.clear();
    plan.new_roots.clear();
    plan.new_roots.resize(width, None);
    for i in 0..width {
        let c_prev = i > 0 && plan.c[i - 1];
        let p_next = i + 1 < width && plan.p[i + 1];
        let dom_prev = if i > 0 { plan.i_value_a[i - 1] } else { None };
        if let Some(op) = link_decision(
            plan.class[i],
            plan.g[i],
            at(h1, i),
            at(h2, i),
            plan.i_value_b[i],
            plan.i_value_a[i],
            dom_prev,
            i,
        ) {
            plan.links.push(op);
        }
        if let Some((slot, root)) = new_root_decision(
            i,
            plan.class[i],
            plan.g[i],
            plan.p[i],
            c_prev,
            p_next,
            plan.i_value_a[i],
        ) {
            debug_assert!(slot < width, "result width must accommodate all roots");
            debug_assert!(plan.new_roots[slot].is_none(), "H slot assigned twice");
            plan.new_roots[slot] = Some(root);
        }
    }
}

impl<K> UnionPlan<K> {
    /// Structural sanity: `H[i]` occupied exactly when `s_i = 1`; every link
    /// slot below width, self-loop-free and strictly ascending (each bit
    /// position emits at most one link, and `apply_plan` relies on the order
    /// to keep child vectors dense); chains produce one more link than their
    /// length-1.
    pub fn validate(&self) -> Result<(), String> {
        for i in 0..self.width {
            if self.s[i] != self.new_roots[i].is_some() {
                return Err(format!(
                    "position {i}: s={} but H[{i}] {}",
                    self.s[i],
                    if self.new_roots[i].is_some() {
                        "occupied"
                    } else {
                        "empty"
                    }
                ));
            }
        }
        for (k, l) in self.links.iter().enumerate() {
            if l.slot >= self.width {
                return Err(format!(
                    "link {k}: slot {} outside width {}",
                    l.slot, self.width
                ));
            }
            if l.child == l.parent {
                return Err(format!("link {k}: self-link at {:?}", l.child));
            }
        }
        if let Some(w) = self.links.windows(2).position(|w| w[0].slot >= w[1].slot) {
            return Err(format!(
                "links out of order: slot {} at index {w} then slot {}",
                self.links[w].slot,
                self.links[w + 1].slot
            ));
        }
        // Total links = number of positions with both trees (g) + chain
        // continuations (internal/ending points).
        let expected = self.g.iter().filter(|&&x| x).count()
            + self
                .class
                .iter()
                .filter(|t| matches!(t, PointType::Internal | PointType::End))
                .count();
        if self.links.len() != expected {
            return Err(format!(
                "expected {expected} links, planned {}",
                self.links.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(
        present: &[usize],
        width: usize,
        base: u32,
        mut key_of: impl FnMut(usize) -> i64,
    ) -> Vec<Option<RootRef>> {
        let mut v = vec![None; width];
        for &i in present {
            v[i] = Some(RootRef {
                key: key_of(i),
                id: NodeId(base + i as u32),
            });
        }
        v
    }

    /// Figure 1 of the paper: H1 = {B1,B3,B5,B6}, H2 = {B0,B1,B2,B5}.
    #[test]
    fn figure1_classification() {
        use PointType::*;
        let width = 8;
        let h1 = refs(&[1, 3, 5, 6], width, 0, |i| i as i64);
        let h2 = refs(&[0, 1, 2, 5], width, 1000, |i| 10 + i as i64);
        let plan = build_plan_seq(&h1, &h2);
        // Paper's rows, positions 0..=7.
        assert_eq!(
            plan.g,
            [false, true, false, false, false, true, false, false]
        );
        assert_eq!(plan.p, [true, false, true, true, false, false, true, false]);
        assert_eq!(plan.c, [false, true, true, true, false, true, true, false]);
        assert_eq!(
            plan.s,
            [true, false, false, false, true, false, false, true]
        );
        assert_eq!(
            plan.class,
            [
                Independent,
                Start,
                Internal,
                End,
                Independent,
                Start,
                End,
                Independent
            ]
        );
        plan.validate().unwrap();
    }

    /// The sum-bit/H-array correspondence on random inputs.
    #[test]
    fn h_array_matches_sum_bits_randomized() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let n1 = rng.gen_range(0usize..4096);
            let n2 = rng.gen_range(0usize..4096);
            let width = plan_width(n1, n2);
            let h1pos: Vec<usize> = (0..width).filter(|i| n1 >> i & 1 == 1).collect();
            let h2pos: Vec<usize> = (0..width).filter(|i| n2 >> i & 1 == 1).collect();
            let h1 = refs(&h1pos, width, 0, |_| rng.gen_range(-100..100));
            let h2 = refs(&h2pos, width, 1000, |_| rng.gen_range(-100..100));
            let plan = build_plan_seq(&h1, &h2);
            plan.validate().unwrap();
            let result_bits: usize = plan
                .new_roots
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_some())
                .map(|(i, _)| 1usize << i)
                .sum();
            assert_eq!(result_bits, n1 + n2, "n1={n1} n2={n2}");
        }
    }

    #[test]
    fn empty_union_plan() {
        let plan = build_plan_seq::<i64>(&[], &[]);
        assert_eq!(plan.width, 0);
        assert!(plan.links.is_empty());
        plan.validate().unwrap();
    }

    #[test]
    fn singleton_vs_singleton_links_once() {
        let h1 = refs(&[0], 2, 0, |_| 5);
        let h2 = refs(&[0], 2, 1000, |_| 3);
        let plan = build_plan_seq(&h1, &h2);
        assert_eq!(plan.links.len(), 1);
        let l = plan.links[0];
        // Winner is the key-3 root from H2.
        assert_eq!(l.parent, h2[0].unwrap().id);
        assert_eq!(l.child, h1[0].unwrap().id);
        assert_eq!(l.slot, 0);
        assert_eq!(plan.new_roots[1], Some(h2[0].unwrap().id));
        assert_eq!(plan.new_roots[0], None);
    }

    #[test]
    fn tie_break_prefers_h1() {
        let h1 = refs(&[0], 2, 0, |_| 5);
        let h2 = refs(&[0], 2, 1000, |_| 5);
        let plan = build_plan_seq(&h1, &h2);
        assert_eq!(plan.links[0].parent, h1[0].unwrap().id);
        assert_eq!(plan.links[0].child, h2[0].unwrap().id);
    }
}
