//! Lazy deletion (paper §4): `Delete` and `Change-Key` with persistent empty
//! nodes.
//!
//! A deleted non-root node is not removed: it is marked *empty* (key = `-∞`)
//! and the structure is repaired *locally* by `Take-Up`,
//! which re-melds the node's child lists into its parent so that
//!
//! * **Invariant 1.2** — an empty node's entire sub-binomial-tree is empty,
//! * **Invariant 1.3** — every tree stays *complete*: each child slot of a
//!   node is occupied (by a live-rooted or an all-empty subtree),
//!
//! keep holding. After `⌊log n / log log n⌋` deletions, the global
//! [`LazyBinomialHeap::arrange_heap`] rebuild (in `arrange.rs`) bubbles the
//! empty markers to the tree tops, frees them, and re-melds the surviving
//! all-live subtrees with a balanced binary tree of Unions — Theorem 2's
//! amortization.
//!
//! Every `Union` performed by these procedures runs as an actual program on
//! the EREW PRAM simulator (through [`crate::engine_pram::build_plan_pram`])
//! so the reported [`Cost`]s are measured, not estimated; the remaining
//! phases (bubble-up, distance computation) are charged per the paper's CREW
//! schedule by [`CostMeter`].
//!
//! Note on Invariant 1.1: the paper additionally asserts every live node
//! keeps at least one live child in `L`. When the *only* live descendant of a
//! node is deleted this cannot hold (the node becomes a live leaf of its
//! sub-tree whose other children are empty); none of the queue operations
//! depend on it, and our validator checks the operationally load-bearing
//! invariants (1.2, 1.3, live roots, heap order among live nodes) instead.

pub mod arrange;
pub mod bubble;
pub mod meter;

use pram::Cost;

use crate::arena::NodeId;
use crate::engine_pram::build_plan_pram;
use crate::plan::{plan_width, RootRef, UnionPlan};

pub use meter::CostMeter;

/// Key sentinel: empty nodes sort below every live key (the paper's `-∞`).
pub(crate) const EMPTY_KEY: i64 = i64::MIN;

/// A node of the lazy structure. The paper stores two child arrays `L`/`D`;
/// we store one slot array and *derive* the live/dead views from the child's
/// `empty` flag — identical information without stale-classification bugs.
#[derive(Debug, Clone)]
pub struct LazyNode {
    /// The key; meaningless when `empty`.
    pub key: i64,
    /// Whether this node was deleted (the paper's `key = -∞` marker).
    pub empty: bool,
    /// Parent pointer (`None` for roots).
    pub parent: Option<NodeId>,
    /// Slot array: `children[i]` is the root of the order-`i` child subtree.
    /// Complete trees have every slot occupied (Invariant 1.3).
    pub children: Vec<Option<NodeId>>,
}

impl LazyNode {
    /// Degree = number of child slots.
    pub fn degree(&self) -> usize {
        self.children.len()
    }
}

/// Slab arena specialised for [`LazyNode`].
#[derive(Debug, Clone, Default)]
pub struct LazyArena {
    nodes: Vec<Option<LazyNode>>,
    free: Vec<u32>,
}

impl LazyArena {
    fn alloc(&mut self, key: i64) -> NodeId {
        let node = LazyNode {
            key,
            empty: false,
            parent: None,
            children: Vec::new(),
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Some(node);
                NodeId(i)
            }
            None => {
                self.nodes.push(Some(node));
                NodeId((self.nodes.len() - 1) as u32)
            }
        }
    }

    fn dealloc(&mut self, id: NodeId) -> LazyNode {
        let n = self.nodes[id.0 as usize].take().expect("dead node");
        self.free.push(id.0);
        n
    }

    /// Borrow a node.
    pub fn get(&self, id: NodeId) -> &LazyNode {
        self.nodes[id.0 as usize].as_ref().expect("dead node")
    }

    fn get_mut(&mut self, id: NodeId) -> &mut LazyNode {
        self.nodes[id.0 as usize].as_mut().expect("dead node")
    }

    /// Whether `id` is a live arena slot.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.get(id.0 as usize).is_some_and(|s| s.is_some())
    }

    fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }
}

/// Per-operation cost record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `Insert`.
    Insert,
    /// `Min`.
    Min,
    /// `Extract-Min` (or deleting a root).
    ExtractMin,
    /// `Take-Up` portion of a `Delete`.
    TakeUp,
    /// An `Arrange-Heap` rebuild.
    ArrangeHeap,
    /// An eager (non-lazy) deletion — ablation A2's baseline.
    EagerDelete,
    /// `Union` with another lazy heap.
    Union,
}

/// The §4 meldable priority queue with lazy deletion.
///
/// All keys must lie strictly between `i64::MIN` and `i64::MAX` (both are
/// sentinels). `Delete`/`Change-Key` address nodes by the [`NodeId`] returned
/// from [`LazyBinomialHeap::insert`].
#[derive(Debug, Clone, Default)]
pub struct LazyBinomialHeap {
    pub(crate) arena: LazyArena,
    /// Root array `H`; roots are always live.
    pub(crate) roots: Vec<Option<NodeId>>,
    /// Number of live (non-deleted) keys.
    live_len: usize,
    /// The paper's `deleted` counter (Take-Ups since the last Arrange-Heap).
    deleted_since_arrange: usize,
    /// The paper's `Del` array: empty nodes awaiting Arrange-Heap.
    pub(crate) del_buffer: Vec<NodeId>,
    /// Processors assumed for cost accounting (`p` of Theorem 2).
    p: usize,
    /// Measured cost ledger: one entry per (sub)operation.
    cost_log: Vec<(OpKind, Cost)>,
    /// Whether `delete` triggers `Arrange-Heap` at the threshold (disabled
    /// by experiments that drive the rebuild manually, e.g. the Figure 3
    /// reproduction and ablation A2).
    auto_arrange: bool,
}

impl LazyBinomialHeap {
    /// `Make-Queue` with `p` processors for cost accounting.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1);
        LazyBinomialHeap {
            p,
            auto_arrange: true,
            ..Default::default()
        }
    }

    /// Enable/disable the automatic `Arrange-Heap` trigger (experiments that
    /// drive the rebuild manually turn it off).
    pub fn set_auto_arrange(&mut self, on: bool) {
        self.auto_arrange = on;
    }

    /// Processors assumed for cost accounting (`p` of Theorem 2).
    pub fn processors(&self) -> usize {
        self.p
    }

    /// With `--features debug-validate`, run the deep `meldpq::check` pass
    /// and panic on the first violation; a no-op otherwise. Called after
    /// every hot-path mutation.
    #[inline]
    pub(crate) fn debug_validate(&self) {
        #[cfg(feature = "debug-validate")]
        if let Err(e) = crate::check::check_lazy(self) {
            panic!("debug-validate (LazyBinomialHeap): {e}");
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.live_len
    }

    /// Whether no live keys remain.
    pub fn is_empty(&self) -> bool {
        self.live_len == 0
    }

    /// The Theorem 2 rebuild threshold `⌊log n / log log n⌋` (at least 1).
    pub fn arrange_threshold(&self) -> usize {
        let n = self.live_len.max(4);
        let log = (usize::BITS - n.leading_zeros()) as usize; // ⌈log2⌉-ish
        let loglog = (usize::BITS - log.leading_zeros()) as usize;
        (log / loglog.max(1)).max(1)
    }

    /// The measured cost ledger (op kind, PRAM cost), in execution order.
    pub fn cost_log(&self) -> &[(OpKind, Cost)] {
        &self.cost_log
    }

    /// Total cost accumulated so far.
    pub fn total_cost(&self) -> Cost {
        self.cost_log
            .iter()
            .fold(Cost::ZERO, |acc, (_, c)| acc + *c)
    }

    /// Clear the ledger (e.g. after warm-up in experiments).
    pub fn reset_cost_log(&mut self) {
        self.cost_log.clear();
    }

    /// Whether `id` refers to a live arena slot.
    pub fn node_exists(&self, id: NodeId) -> bool {
        self.arena.contains(id)
    }

    /// Whether the node is an empty (deleted) marker.
    pub fn is_empty_node(&self, id: NodeId) -> bool {
        self.arena.get(id).empty
    }

    /// Snapshot of the root array `H`.
    pub fn roots_snapshot(&self) -> Vec<Option<NodeId>> {
        self.roots.clone()
    }

    /// Raw key of a node regardless of liveness (figure reproductions).
    pub fn raw_key(&self, id: NodeId) -> i64 {
        self.arena.get(id).key
    }

    /// Parent handle of a node.
    pub fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        self.arena.get(id).parent
    }

    /// Child slot array of a node.
    pub fn children_of(&self, id: NodeId) -> Vec<Option<NodeId>> {
        self.arena.get(id).children.clone()
    }

    /// Key of a node (for tests/examples holding handles).
    pub fn key_of(&self, id: NodeId) -> Option<i64> {
        (self.arena.contains(id) && !self.arena.get(id).empty).then(|| self.arena.get(id).key)
    }

    // ---------------- derived L/D views ----------------

    /// The live-children view `L_x` (paper §4): slot `i` holds the child iff
    /// that child is live.
    pub fn live_view(&self, x: NodeId) -> Vec<Option<NodeId>> {
        self.arena
            .get(x)
            .children
            .iter()
            .map(|c| c.filter(|&id| !self.arena.get(id).empty))
            .collect()
    }

    /// The dead-children view `D_x`.
    pub fn dead_view(&self, x: NodeId) -> Vec<Option<NodeId>> {
        self.arena
            .get(x)
            .children
            .iter()
            .map(|c| c.filter(|&id| self.arena.get(id).empty))
            .collect()
    }

    // ---------------- planned unions on the PRAM ----------------

    fn refs_of(&self, roots: &[Option<NodeId>], width: usize) -> Vec<Option<RootRef>> {
        (0..width)
            .map(|i| {
                roots.get(i).copied().flatten().map(|id| {
                    let n = self.arena.get(id);
                    RootRef {
                        key: if n.empty { EMPTY_KEY } else { n.key },
                        id,
                    }
                })
            })
            .collect()
    }

    fn collection_size(&self, roots: &[Option<NodeId>]) -> usize {
        roots
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| 1usize << i)
            .sum()
    }

    /// Union two root collections living in this arena; returns the new root
    /// array and the measured PRAM cost. Uses `p_eff` processors.
    pub(crate) fn planned_union(
        &mut self,
        h1: &[Option<NodeId>],
        h2: &[Option<NodeId>],
        p_eff: usize,
    ) -> (Vec<Option<NodeId>>, Cost) {
        let s1 = self.collection_size(h1);
        let s2 = self.collection_size(h2);
        if s2 == 0 {
            return (h1.to_vec(), Cost::ZERO);
        }
        if s1 == 0 {
            return (h2.to_vec(), Cost::ZERO);
        }
        let width = plan_width(s1, s2);
        let r1 = self.refs_of(h1, width);
        let r2 = self.refs_of(h2, width);
        let out = build_plan_pram(&r1, &r2, p_eff).expect("union program is EREW-legal");
        let new_roots = self.apply_lazy_plan(&out.plan);
        (new_roots, out.cost)
    }

    /// Phase III surgery on the lazy arena.
    fn apply_lazy_plan(&mut self, plan: &UnionPlan) -> Vec<Option<NodeId>> {
        for l in &plan.links {
            debug_assert_eq!(self.arena.get(l.child).degree(), l.slot);
            debug_assert_eq!(self.arena.get(l.parent).degree(), l.slot);
            self.arena.get_mut(l.parent).children.push(Some(l.child));
            self.arena.get_mut(l.child).parent = Some(l.parent);
        }
        let mut out = plan.new_roots.clone();
        while matches!(out.last(), Some(None)) {
            out.pop();
        }
        for r in out.iter().flatten() {
            self.arena.get_mut(*r).parent = None;
        }
        out
    }

    // ---------------- the standard operations ----------------

    /// Fast *unmetered* construction: ripple-carry inserts performed host-
    /// side with no PRAM runs and no ledger entries. Experiments use this to
    /// set up large heaps cheaply before measuring the operations of
    /// interest; semantically identical to repeated [`Self::insert`].
    pub fn from_keys_fast<I: IntoIterator<Item = i64>>(p: usize, keys: I) -> Self {
        let mut h = Self::new(p);
        for k in keys {
            h.insert_unmetered(k);
        }
        h
    }

    /// One unmetered ripple-carry insert (see [`Self::from_keys_fast`]).
    pub fn insert_unmetered(&mut self, key: i64) -> NodeId {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel keys reserved");
        let id = self.arena.alloc(key);
        let mut carry = id;
        let mut i = 0usize;
        loop {
            if self.roots.len() <= i {
                self.roots.resize(i + 1, None);
            }
            match self.roots[i].take() {
                None => {
                    self.roots[i] = Some(carry);
                    break;
                }
                Some(existing) => {
                    // Linking rule: the smaller root wins (ties to the
                    // resident tree, matching the planners' tie rule where
                    // the heap is the first operand).
                    let (win, lose) = if self.arena.get(existing).key <= self.arena.get(carry).key {
                        (existing, carry)
                    } else {
                        (carry, existing)
                    };
                    debug_assert_eq!(self.arena.get(win).children.len(), i);
                    self.arena.get_mut(win).children.push(Some(lose));
                    self.arena.get_mut(lose).parent = Some(win);
                    carry = win;
                    i += 1;
                }
            }
        }
        self.arena.get_mut(carry).parent = None;
        self.live_len += 1;
        id
    }

    /// `Insert(Q, x)`: returns the handle for later `Delete`/`Change-Key`.
    pub fn insert(&mut self, key: i64) -> NodeId {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel keys reserved");
        let id = self.arena.alloc(key);
        let single = vec![Some(id)];
        let old = std::mem::take(&mut self.roots);
        let (roots, cost) = self.planned_union(&old, &single, self.p);
        self.roots = roots;
        self.live_len += 1;
        self.cost_log.push((OpKind::Insert, cost));
        self.debug_validate();
        id
    }

    /// `Min(Q)`: the minimum live key (roots are always live), measured by an
    /// EREW reduction.
    pub fn min(&mut self) -> Option<i64> {
        let width = self.roots.len();
        let refs = self.refs_of(&self.roots.clone(), width);
        let (min, cost) = crate::engine_pram::min_pram(&refs, self.p).expect("EREW-legal");
        self.cost_log.push((OpKind::Min, cost));
        min.map(|r| r.key)
    }

    /// `Extract-Min(Q)`.
    pub fn extract_min(&mut self) -> Option<i64> {
        let width = self.roots.len();
        let refs = self.refs_of(&self.roots.clone(), width);
        let (min, cost) = crate::engine_pram::min_pram(&refs, self.p).expect("EREW-legal");
        self.cost_log.push((OpKind::Min, cost));
        let root = min?.id;
        Some(self.extract_root(root))
    }

    /// Remove a specific root (used by `Extract-Min` and by `Delete` on a
    /// root node, which the paper treats like `Extract-Min`).
    fn extract_root(&mut self, root: NodeId) -> i64 {
        let order = self.arena.get(root).degree();
        debug_assert_eq!(self.roots[order], Some(root));
        self.roots[order] = None;
        while matches!(self.roots.last(), Some(None)) {
            self.roots.pop();
        }
        // Split the children: all-empty subtrees are freed outright (their
        // deletions were already counted), live-rooted ones re-meld.
        let live = self.live_view(root);
        let dead = self.dead_view(root);
        for d in dead.into_iter().flatten() {
            self.free_empty_subtree(d);
        }
        let node = self.arena.dealloc(root);
        for c in live.iter().flatten() {
            self.arena.get_mut(*c).parent = None;
        }
        let old = std::mem::take(&mut self.roots);
        let (roots, cost) = self.planned_union(&old, &live, self.p);
        self.roots = roots;
        self.live_len -= 1;
        self.cost_log.push((OpKind::ExtractMin, cost));
        self.debug_validate();
        node.key
    }

    /// `Union(Q1, Q2)`: meld another lazy heap in. `other`'s node handles are
    /// invalidated (its arena is re-indexed).
    pub fn meld(&mut self, other: LazyBinomialHeap) {
        // Move other's nodes into our arena. This is the cross-arena
        // fallback path (Θ(n) copies); the *re-melds* inside `planned_union`
        // and `arrange_heap` stay within one arena and are zero-copy, like
        // the pooled representation (`meldpq::pool`). Reserve the net growth
        // up front so the copy loop does one slab growth, not log(n).
        self.arena
            .nodes
            .reserve(other.arena.len().saturating_sub(self.arena.free.len()));
        let mut map: Vec<u32> = vec![u32::MAX; other.arena.nodes.len()];
        for (i, slot) in other.arena.nodes.iter().enumerate() {
            if slot.is_some() {
                let nid = match self.arena.free.pop() {
                    Some(f) => f,
                    None => {
                        self.arena.nodes.push(None);
                        (self.arena.nodes.len() - 1) as u32
                    }
                };
                map[i] = nid;
            }
        }
        for (i, slot) in other.arena.nodes.into_iter().enumerate() {
            if let Some(mut n) = slot {
                n.parent = n.parent.map(|p| NodeId(map[p.0 as usize]));
                for c in n.children.iter_mut() {
                    *c = c.map(|id| NodeId(map[id.0 as usize]));
                }
                self.arena.nodes[map[i] as usize] = Some(n);
            }
        }
        let other_roots: Vec<Option<NodeId>> = other
            .roots
            .iter()
            .map(|r| r.map(|id| NodeId(map[id.0 as usize])))
            .collect();
        for d in &other.del_buffer {
            if map[d.0 as usize] != u32::MAX {
                self.del_buffer.push(NodeId(map[d.0 as usize]));
            }
        }
        self.deleted_since_arrange += other.deleted_since_arrange;
        let old = std::mem::take(&mut self.roots);
        let (roots, cost) = self.planned_union(&old, &other_roots, self.p);
        self.roots = roots;
        self.live_len += other.live_len;
        self.cost_log.push((OpKind::Union, cost));
        if self.deleted_since_arrange >= self.arrange_threshold() {
            self.arrange_heap();
        }
        self.debug_validate();
    }

    /// `Delete(Q, x)`. Roots are handled like `Extract-Min`; internal nodes
    /// go through `Take-Up`, and every `⌊log n / log log n⌋`-th deletion
    /// triggers `Arrange-Heap`.
    pub fn delete(&mut self, x: NodeId) -> i64 {
        assert!(self.arena.contains(x), "deleting a dead handle");
        assert!(!self.arena.get(x).empty, "node already deleted");
        if self.arena.get(x).parent.is_none() {
            return self.extract_root(x);
        }
        let key = self.arena.get(x).key;
        self.deleted_since_arrange += 1;
        self.del_buffer.push(x);
        self.take_up(x);
        self.live_len -= 1;
        if self.auto_arrange && self.deleted_since_arrange >= self.arrange_threshold() {
            self.arrange_heap();
        }
        self.debug_validate();
        key
    }

    /// *Eager* deletion (the sequential textbook strategy, ablation A2):
    /// bubble the node's slot to the root by repeated content swaps, then
    /// extract that root. Costs `O(log n)` sequential time per deletion —
    /// the baseline the lazy scheme amortizes away.
    pub fn delete_eager(&mut self, x: NodeId) -> i64 {
        assert!(self.arena.contains(x), "deleting a dead handle");
        assert!(!self.arena.get(x).empty, "node already deleted");
        let key = self.arena.get(x).key;
        let mut meter = CostMeter::new(self.p);
        let mut pos = x;
        let mut depth = 0u64;
        while let Some(par) = self.arena.get(pos).parent {
            let pk = self.arena.get(par).key;
            self.arena.get_mut(pos).key = pk;
            self.arena.get_mut(par).key = key;
            depth += 1;
            pos = par;
        }
        // `pos` is now the root carrying the victim key.
        meter.charge_const(depth.max(1));
        self.cost_log.push((OpKind::EagerDelete, meter.total()));
        let out = self.extract_root(pos);
        debug_assert_eq!(out, key);
        out
    }

    /// `Change-Key(Q, x, k)` = `Delete` + `Insert` (paper §4 end); returns
    /// the node's new handle.
    pub fn change_key(&mut self, x: NodeId, k: i64) -> NodeId {
        self.delete(x);
        self.insert(k)
    }

    // ---------------- Take-Up (paper §4.1) ----------------

    /// Locally repair the structure around the freshly deleted non-root `x`.
    fn take_up(&mut self, x: NodeId) {
        let _sp = obs::span("lazy/take_up");
        let mut meter = CostMeter::new(self.p);
        let p_id = self.arena.get(x).parent.expect("take_up on a root");
        let kx = self.arena.get(x).degree();
        let kp = self.arena.get(p_id).degree();

        // Mark empty, detach x from its parent slot, split x's child views.
        let lx = self.live_view(x);
        let dx = self.dead_view(x);
        {
            let xn = self.arena.get_mut(x);
            xn.empty = true;
            xn.children.clear();
            xn.parent = None;
        }
        meter.charge_const(2);

        // x is already marked empty, so the live view of p excludes it and
        // the dead view contains it at slot kx — remove it there (the paper
        // sets L_p[k_x] := nil; x re-enters D_p as a *single* node below).
        let lp = self.live_view(p_id);
        let mut dp = self.dead_view(p_id);
        debug_assert_eq!(dp[kx], Some(x));
        dp[kx] = None;

        // Orphan every sub-root so unions can re-parent them.
        for r in lp.iter().chain(dx.iter()).chain(dp.iter()).chain(lx.iter()) {
            if let Some(id) = *r {
                self.arena.get_mut(id).parent = None;
            }
        }
        meter.charge_par(2 * kp + 2 * kx);

        // D_p := Union(D_p, {x} ∪ D_x);  L_p := Union(L_p, L_x).
        // The single node x is united with its own dead children first (with
        // x preferred by the tie rule), which reproduces Figure 3(b): x ends
        // up rooting the empty tree formed from itself and D_x.
        let single_x = vec![Some(x)];
        let (d1, c1) = self.planned_union(&single_x, &dx, self.p);
        let (d2, c2) = self.planned_union(&dp, &d1, self.p);
        let (l2, c3) = self.planned_union(&lp, &lx, self.p);
        meter.add(c1 + c2 + c3);

        // Reassemble the parent's slot array: the two collections partition
        // the orders 0..kp (completeness, Invariant 1.3).
        let mut slots: Vec<Option<NodeId>> = vec![None; kp];
        for (i, r) in d2.iter().enumerate().chain(l2.iter().enumerate()) {
            if let Some(id) = r {
                debug_assert!(slots[i].is_none(), "D/L collections must be disjoint");
                slots[i] = Some(*id);
                self.arena.get_mut(*id).parent = Some(p_id);
            }
        }
        debug_assert!(
            slots.iter().all(|s| s.is_some()),
            "Invariant 1.3: parent stays complete"
        );
        self.arena.get_mut(p_id).children = slots;
        meter.charge_par(kp);

        self.cost_log.push((OpKind::TakeUp, meter.total()));
    }

    /// Free an all-empty subtree (Invariant 1.2 guarantees no live nodes).
    pub(crate) fn free_empty_subtree(&mut self, root: NodeId) {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let n = self.arena.dealloc(id);
            debug_assert!(n.empty, "Invariant 1.2: empty subtrees are all-empty");
            stack.extend(n.children.into_iter().flatten());
        }
    }

    // ---------------- validation ----------------

    /// Check the operational invariants: tree shapes (1.3), all-empty empty
    /// subtrees (1.2), live heap order, live roots, and the size ledger.
    pub fn validate(&self) -> Result<(), String> {
        fn walk(
            h: &LazyBinomialHeap,
            id: NodeId,
            expected_order: usize,
            parent: Option<NodeId>,
        ) -> Result<(usize, usize), String> {
            let n = h.arena.get(id);
            if n.degree() != expected_order {
                return Err(format!(
                    "degree {} != slot order {expected_order}",
                    n.degree()
                ));
            }
            if n.parent != parent {
                return Err("parent pointer mismatch".into());
            }
            let mut live = usize::from(!n.empty);
            let mut total = 1usize;
            for (i, c) in n.children.iter().enumerate() {
                let c = c.ok_or("Invariant 1.3 violated: missing child slot")?;
                let cn = h.arena.get(c);
                if n.empty && !cn.empty {
                    return Err("Invariant 1.2 violated: live node under empty".into());
                }
                if !n.empty && !cn.empty && cn.key < n.key {
                    return Err("live heap order violated".into());
                }
                let (l, t) = walk(h, c, i, Some(id))?;
                live += l;
                total += t;
            }
            Ok((live, total))
        }
        let mut live = 0usize;
        let mut total = 0usize;
        for (i, r) in self.roots.iter().enumerate() {
            if let Some(id) = r {
                if self.arena.get(*id).empty {
                    return Err("empty root in H".into());
                }
                let (l, t) = walk(self, *id, i, None)?;
                live += l;
                total += t;
                if t != 1 << i {
                    return Err(format!(
                        "tree at slot {i} has {t} nodes, expected {}",
                        1 << i
                    ));
                }
            }
        }
        if live != self.live_len {
            return Err(format!("live_len {} but {live} live nodes", self.live_len));
        }
        if total != self.arena.len() {
            return Err(format!(
                "arena holds {} nodes but trees hold {total}",
                self.arena.len()
            ));
        }
        if matches!(self.roots.last(), Some(None)) {
            return Err("root array not trimmed".into());
        }
        Ok(())
    }

    /// All live keys in arbitrary order.
    pub fn live_keys(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.live_len);
        let mut stack: Vec<NodeId> = self.roots.iter().flatten().copied().collect();
        while let Some(id) = stack.pop() {
            let n = self.arena.get(id);
            if !n.empty {
                out.push(n.key);
            }
            stack.extend(n.children.iter().flatten());
        }
        out
    }

    /// Drain all live keys in ascending order (consumes the heap).
    pub fn into_sorted_vec(mut self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.live_len);
        while let Some(k) = self.extract_min() {
            out.push(k);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_min_extract() {
        let mut h = LazyBinomialHeap::new(3);
        for k in [5, 2, 9, 1, 7] {
            h.insert(k);
            h.validate().unwrap();
        }
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.len(), 5);
        assert_eq!(h.into_sorted_vec(), vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn delete_internal_node_keeps_structure() {
        let mut h = LazyBinomialHeap::new(2);
        let ids: Vec<NodeId> = (0..8).map(|k| h.insert(k)).collect();
        h.validate().unwrap();
        // Node with key 7 is certainly not the root of B_3 (root holds 0).
        let victim = ids[7];
        assert!(h.arena.get(victim).parent.is_some());
        let k = h.delete(victim);
        assert_eq!(k, 7);
        h.validate().unwrap();
        assert_eq!(h.len(), 7);
        assert_eq!(h.into_sorted_vec(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn delete_root_behaves_like_extract() {
        let mut h = LazyBinomialHeap::new(2);
        let ids: Vec<NodeId> = (0..4).map(|k| h.insert(k)).collect();
        // ids[0] holds key 0 and is the root of B_2.
        let k = h.delete(ids[0]);
        assert_eq!(k, 0);
        h.validate().unwrap();
        assert_eq!(h.into_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn change_key_moves_node() {
        let mut h = LazyBinomialHeap::new(2);
        let ids: Vec<NodeId> = [10, 20, 30, 40].iter().map(|&k| h.insert(k)).collect();
        let new_id = h.change_key(ids[3], 5);
        h.validate().unwrap();
        assert_eq!(h.key_of(new_id), Some(5));
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.into_sorted_vec(), vec![5, 10, 20, 30]);
    }

    #[test]
    fn many_deletes_trigger_arrange_and_preserve_content() {
        let mut h = LazyBinomialHeap::new(4);
        let n = 64;
        let ids: Vec<NodeId> = (0..n).map(|k| h.insert(k)).collect();
        // Delete every third key; handles of non-deleted nodes may be
        // invalidated by Arrange-Heap, so track the expected multiset only.
        let mut expected: Vec<i64> = Vec::new();
        let mut arranged = false;
        for (i, &id) in ids.iter().enumerate() {
            if i % 3 == 1 && h.arena.contains(id) && !h.arena.get(id).empty {
                h.delete(id);
                h.validate().unwrap();
            }
        }
        for (_, c) in h.cost_log() {
            let _ = c;
        }
        arranged |= h.cost_log().iter().any(|(k, _)| *k == OpKind::ArrangeHeap);
        assert!(arranged, "threshold must have fired at n=64");
        for k in 0..n {
            if k % 3 != 1 {
                expected.push(k);
            }
        }
        // Some i%3==1 nodes may have been roots (extracted immediately) or
        // already gone; recompute expected from what delete actually removed:
        let removed: usize = ids.iter().enumerate().filter(|(i, _)| i % 3 == 1).count();
        assert_eq!(h.len(), n as usize - removed);
        let drained = h.into_sorted_vec();
        assert_eq!(drained, expected);
    }

    #[test]
    fn meld_two_lazy_heaps() {
        let mut a = LazyBinomialHeap::new(2);
        let mut b = LazyBinomialHeap::new(2);
        for k in [1, 4, 6] {
            a.insert(k);
        }
        for k in [2, 3, 5] {
            b.insert(k);
        }
        a.meld(b);
        a.validate().unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a.into_sorted_vec(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "already deleted")]
    fn double_delete_panics() {
        // n = 256 gives an arrange threshold of 2, so a single delete leaves
        // the node persistently empty and a second delete must be caught.
        let mut h = LazyBinomialHeap::new(2);
        let ids: Vec<NodeId> = (0..256).map(|k| h.insert(k)).collect();
        assert!(h.arrange_threshold() >= 2);
        let victim = ids[255];
        assert!(h.arena.get(victim).parent.is_some());
        h.delete(victim);
        h.delete(victim);
    }

    #[test]
    fn validate_detects_missing_child_slot() {
        // Invariant 1.3: every slot of a node must be occupied.
        let mut h = LazyBinomialHeap::new(2);
        let _ids: Vec<NodeId> = (0..8).map(|k| h.insert(k)).collect();
        let root = h.roots[3].expect("B_3 root");
        h.arena.get_mut(root).children[1] = None;
        assert!(h.validate().unwrap_err().contains("Invariant 1.3"));
    }

    #[test]
    fn validate_detects_live_under_empty() {
        // Invariant 1.2: an empty node's subtree must be all-empty.
        let mut h = LazyBinomialHeap::new(2);
        let ids: Vec<NodeId> = (0..8).map(|k| h.insert(k)).collect();
        let root = h.roots[3].expect("B_3 root");
        // Mark a mid-level node empty without Take-Up repair.
        let victim = h.arena.get(root).children[2].expect("slot 2");
        assert!(h.arena.get(victim).children.iter().any(|c| c.is_some()));
        h.arena.get_mut(victim).empty = true;
        assert!(h.validate().is_err());
        let _ = ids;
    }

    #[test]
    fn costs_are_recorded() {
        let mut h = LazyBinomialHeap::new(2);
        h.insert(3);
        h.insert(1);
        assert!(h
            .cost_log()
            .iter()
            .any(|(k, c)| *k == OpKind::Insert && c.time > 0));
        assert!(h.total_cost().work > 0);
    }
}
