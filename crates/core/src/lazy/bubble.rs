//! The Arrange-Heap bubble-up as a *PRAM program* — Fact 3, machine-checked.
//!
//! The paper claims (Fact 3) that if the empty markers are ordered by their
//! distance from the roots and the swap operations are scheduled in a
//! pipelined manner (nearest markers first), no two processors ever access
//! the same node in a step. This module makes that claim executable:
//!
//! * [`LazyBinomialHeap::distances_pram`] — the distance computation: every
//!   marker climbs its ancestor chain one level per step. Converging paths
//!   *read the same ancestor cell concurrently*, which is exactly why the
//!   paper needs the CREW model here; a test in this module shows the same
//!   program aborts with a read conflict under EREW.
//! * [`LazyBinomialHeap::bubble_up_pram`] — the pipelined bubble-up: marker
//!   `i` (in `(distance, id)` order) starts two rounds after marker `i-1`
//!   and swaps contents with its live parent once per round; blocked markers
//!   (parent currently empty) resume when the occupant moves on, or settle
//!   when the occupant has settled. The stagger keeps any two moving markers
//!   at least two levels apart, so every round's access set is disjoint —
//!   the simulator verifies this on every run (the swap rounds are in fact
//!   EREW-legal; only the distance phase needs CREW).
//!
//! Costs are *measured* simulator costs; `arrange.rs` charges them instead
//! of analytic estimates.

use std::collections::HashMap;

use pram::{Cost, Model, Pram, PramError, Word, NIL};

use crate::arena::NodeId;
use crate::lazy::{LazyBinomialHeap, EMPTY_KEY};

/// Result of the measured bubble-up.
#[derive(Debug, Clone)]
pub struct BubbleOutcome {
    /// Measured PRAM cost of the swap schedule.
    pub cost: Cost,
    /// Total content swaps performed.
    pub swaps: usize,
    /// Final marker positions (the crown).
    pub crown: Vec<NodeId>,
}

/// Per-node PRAM record: `[key, empty, parent_index]`.
const REC: usize = 3;

struct Image {
    m: Pram,
    base: usize,
    index: HashMap<NodeId, usize>,
    nodes: Vec<NodeId>,
}

impl LazyBinomialHeap {
    /// Nodes on the root paths of the markers (the cells the programs touch).
    fn path_closure(&self, markers: &[NodeId]) -> Vec<NodeId> {
        let mut seen: HashMap<NodeId, ()> = HashMap::new();
        let mut order = Vec::new();
        for &m in markers {
            let mut cur = Some(m);
            while let Some(id) = cur {
                if seen.insert(id, ()).is_some() {
                    break;
                }
                order.push(id);
                cur = self.arena.get(id).parent;
            }
        }
        order
    }

    fn build_image(&self, model: Model, p: usize, markers: &[NodeId]) -> Image {
        let nodes = self.path_closure(markers);
        let index: HashMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut m = Pram::new(model, p);
        let base = m.alloc(nodes.len() * REC, 0);
        for (i, &id) in nodes.iter().enumerate() {
            let n = self.arena.get(id);
            m.host_write(base + i * REC, if n.empty { EMPTY_KEY } else { n.key });
            m.host_write(base + i * REC + 1, n.empty as Word);
            let parent_idx = n
                .parent
                .and_then(|pid| index.get(&pid).copied())
                .map_or(NIL, |x| x as Word);
            m.host_write(base + i * REC + 2, parent_idx);
        }
        m.reset_cost();
        Image {
            m,
            base,
            index,
            nodes,
        }
    }

    /// Measured CREW distance computation: returns `(depths, cost)` for the
    /// markers, in input order. Fails with a read conflict if run under EREW
    /// and two markers' ancestor paths converge at the same step.
    pub fn distances_pram(
        &self,
        markers: &[NodeId],
        p: usize,
        model: Model,
    ) -> Result<(Vec<usize>, Cost), PramError> {
        let mut img = self.build_image(model, p, markers);
        // Per-marker register: current position index (processor-local).
        let mut pos: Vec<Option<usize>> = markers.iter().map(|id| Some(img.index[id])).collect();
        let mut depth = vec![0usize; markers.len()];
        loop {
            // The active markers this wave (Brent-scheduled over p).
            let live: Vec<usize> = (0..markers.len()).filter(|&i| pos[i].is_some()).collect();
            if live.is_empty() {
                break;
            }
            let base = img.base;
            let mut next: Vec<(usize, Word)> = Vec::with_capacity(live.len());
            {
                let pos_ref = &pos;
                let mut sink = |i: usize, w: Word| next.push((i, w));
                let mut k = 0usize;
                while k < live.len() {
                    let batch: Vec<usize> = live[k..(k + p).min(live.len())].to_vec();
                    img.m.step(batch.len(), |slot, ctx| {
                        let i = batch[slot];
                        let at = pos_ref[i].expect("live marker has a position");
                        let parent = ctx.read(base + at * REC + 2)?;
                        sink(i, parent);
                        Ok(())
                    })?;
                    k += batch.len();
                }
            }
            for (i, parent) in next {
                if parent == NIL {
                    pos[i] = None;
                } else {
                    pos[i] = Some(parent as usize);
                    depth[i] += 1;
                }
            }
        }
        Ok((depth, img.m.cost()))
    }

    /// Measured pipelined bubble-up (Fact 3). `markers` must be sorted by
    /// `(distance, id)` — the order the paper prescribes. The arena is
    /// updated from the final PRAM image; returns the measured cost and the
    /// crown (final marker positions).
    pub fn bubble_up_pram(
        &mut self,
        markers: &[NodeId],
        p: usize,
        model: Model,
    ) -> Result<BubbleOutcome, PramError> {
        if markers.is_empty() {
            return Ok(BubbleOutcome {
                cost: Cost::ZERO,
                swaps: 0,
                crown: Vec::new(),
            });
        }
        let mut img = self.build_image(model, p, markers);
        let base = img.base;

        // Host-side schedule state (mirrors emptiness; contents stay in PRAM
        // memory only).
        let mut pos: Vec<NodeId> = markers.to_vec();
        let mut done = vec![false; markers.len()];
        // Which marker currently occupies a node (for settle cascades).
        let mut occupant: HashMap<NodeId, usize> =
            markers.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut round = 0usize;
        let mut swaps = 0usize;
        while done.iter().any(|d| !d) {
            // Settle cascade: marker at a root settles; a marker blocked on a
            // settled occupant settles too.
            loop {
                let mut changed = false;
                for i in 0..markers.len() {
                    if done[i] {
                        continue;
                    }
                    match self.arena.get(pos[i]).parent {
                        None => {
                            done[i] = true;
                            changed = true;
                        }
                        Some(par) => {
                            if let Some(&j) = occupant.get(&par) {
                                if done[j] {
                                    done[i] = true;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            // Select this round's swaps: started, unblocked, disjoint cells.
            let mut touched: HashMap<NodeId, ()> = HashMap::new();
            let mut active: Vec<(usize, NodeId, NodeId)> = Vec::new();
            for i in 0..markers.len() {
                if done[i] || round < 2 * i {
                    continue;
                }
                let Some(par) = self.arena.get(pos[i]).parent else {
                    continue;
                };
                if occupant.contains_key(&par) {
                    continue; // blocked: the node above is empty
                }
                if touched.contains_key(&pos[i]) || touched.contains_key(&par) {
                    continue; // defer to keep the round conflict-free
                }
                touched.insert(pos[i], ());
                touched.insert(par, ());
                active.push((i, pos[i], par));
            }
            if !active.is_empty() {
                // Execute the swaps as PRAM steps (Brent-scheduled waves).
                let index = &img.index;
                let mut k = 0usize;
                while k < active.len() {
                    let batch: Vec<(usize, NodeId, NodeId)> =
                        active[k..(k + p).min(active.len())].to_vec();
                    img.m.step(batch.len(), |slot, ctx| {
                        let (_, v, u) = batch[slot];
                        let vi = index[&v];
                        let ui = index[&u];
                        // Swap: the live parent key sinks into v; u empties.
                        let parent_key = ctx.read(base + ui * REC)?;
                        ctx.write(base + vi * REC, parent_key)?;
                        ctx.write(base + vi * REC + 1, 0)?;
                        ctx.write(base + ui * REC, EMPTY_KEY)?;
                        ctx.write(base + ui * REC + 1, 1)?;
                        Ok(())
                    })?;
                    k += batch.len();
                }
                for (i, v, u) in active {
                    occupant.remove(&v);
                    occupant.insert(u, i);
                    pos[i] = u;
                    swaps += 1;
                }
            }
            round += 1;
            assert!(
                round <= 4 * markers.len() + 4 * img.nodes.len() + 8,
                "bubble-up schedule failed to converge"
            );
        }

        // Read the final image back into the arena.
        let cost = img.m.cost();
        for (i, &id) in img.nodes.iter().enumerate() {
            let key = img.m.host_read(base + i * REC);
            let empty = img.m.host_read(base + i * REC + 1) != 0;
            let n = self.arena.get_mut(id);
            n.key = key;
            n.empty = empty;
        }
        Ok(BubbleOutcome {
            cost,
            swaps,
            crown: pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram::Model;

    /// Build a lazy heap with some deleted internal nodes and return the
    /// empties.
    fn dirty_heap(n: usize, deletes: usize) -> (LazyBinomialHeap, Vec<NodeId>) {
        let mut h = LazyBinomialHeap::new(4);
        h.set_auto_arrange(false);
        let ids: Vec<NodeId> = (0..n as i64).map(|k| h.insert(k)).collect();
        let mut empties = Vec::new();
        for id in ids.iter().rev() {
            if empties.len() == deletes {
                break;
            }
            if h.key_of(*id).is_some() && h.parent_of(*id).is_some() {
                h.delete(*id);
                empties.push(*id);
            }
        }
        (h, empties)
    }

    fn sorted_markers(h: &LazyBinomialHeap, empties: &[NodeId]) -> Vec<NodeId> {
        let mut with_depth: Vec<(usize, NodeId)> = empties
            .iter()
            .map(|&e| {
                let mut d = 0;
                let mut cur = e;
                while let Some(p) = h.parent_of(cur) {
                    d += 1;
                    cur = p;
                }
                (d, e)
            })
            .collect();
        with_depth.sort_unstable_by_key(|(d, id)| (*d, id.0));
        with_depth.into_iter().map(|(_, id)| id).collect()
    }

    #[test]
    fn distances_match_host_computation() {
        let (h, empties) = dirty_heap(64, 4);
        let (depths, cost) = h
            .distances_pram(&empties, 2, Model::Crew)
            .expect("CREW-legal");
        for (i, &e) in empties.iter().enumerate() {
            let mut d = 0;
            let mut cur = e;
            while let Some(p) = h.parent_of(cur) {
                d += 1;
                cur = p;
            }
            assert_eq!(depths[i], d);
        }
        assert!(cost.time > 0);
    }

    #[test]
    fn converging_paths_need_crew() {
        // Two sibling leaves of one B_k share every ancestor above their
        // parents; climbing in lockstep forces a concurrent read.
        let (h, empties) = dirty_heap(64, 6);
        let crew = h.distances_pram(&empties, 8, Model::Crew);
        assert!(crew.is_ok(), "CREW must accept the distance program");
        let erew = h.distances_pram(&empties, 8, Model::Erew);
        assert!(
            erew.is_err(),
            "EREW must reject converging ancestor reads (the paper's reason \
             for requiring CREW)"
        );
    }

    #[test]
    fn bubble_up_reaches_fixed_point_and_preserves_keys() {
        let (mut h, empties) = dirty_heap(128, 5);
        let live_before: i64 = {
            // Sum of live keys as a cheap multiset fingerprint.
            (0..128i64).sum::<i64>()
                - empties
                    .iter()
                    .map(|&e| {
                        // keys were deleted; recover from raw storage
                        h.raw_key(e)
                    })
                    .sum::<i64>()
        };
        let markers = sorted_markers(&h, &empties);
        let out = h
            .bubble_up_pram(&markers, 4, Model::Crew)
            .expect("CREW-legal");
        assert_eq!(out.crown.len(), markers.len());
        assert!(out.swaps > 0);
        // Fixed point: every empty node's parent is empty or it is a root.
        let mut live_after = 0i64;
        for slot in 0..512u32 {
            let id = NodeId(slot);
            if !h.node_exists(id) {
                continue;
            }
            if h.is_empty_node(id) {
                if let Some(p) = h.parent_of(id) {
                    assert!(h.is_empty_node(p), "upward-closed crown violated");
                }
            } else {
                live_after += h.raw_key(id);
            }
        }
        assert_eq!(live_after, live_before, "live key multiset changed");
    }

    #[test]
    fn bubble_up_swap_rounds_are_erew_legal() {
        // Fact 3's stronger reading: the *swap* schedule itself never
        // double-touches a node, so it passes even EREW.
        let (mut h, empties) = dirty_heap(256, 7);
        let markers = sorted_markers(&h, &empties);
        h.bubble_up_pram(&markers, 4, Model::Erew)
            .expect("the pipelined swap schedule is EREW-legal");
    }

    /// The negative side of Fact 3: a *naive* schedule that swaps all
    /// markers at once violates exclusivity as soon as two empties share a
    /// live parent — the simulator rejects it with a write conflict. This is
    /// why the paper insists on the distance-ordered pipeline.
    #[test]
    fn naive_simultaneous_schedule_is_rejected() {
        use pram::{Pram, Word};
        // A live parent cell plus two empty children, swapped concurrently.
        let mut m = Pram::new(Model::Crew, 2);
        let parent = m.alloc_init(&[50, 0]); // key, empty
        let child_a = m.alloc_init(&[EMPTY_KEY, 1]);
        let child_b = m.alloc_init(&[EMPTY_KEY, 1]);
        let children = [child_a, child_b];
        let err = m
            .step(2, |pid, ctx| {
                let me = children[pid];
                let pk = ctx.read(parent)?;
                ctx.write(me, pk)?;
                ctx.write(me + 1, 0)?;
                ctx.write(parent, EMPTY_KEY as Word)?;
                ctx.write(parent + 1, 1)?;
                Ok(())
            })
            .unwrap_err();
        assert!(
            matches!(err, pram::PramError::WriteConflict { .. }),
            "both children writing the parent must collide: {err:?}"
        );
    }

    #[test]
    fn empty_marker_set_is_noop() {
        let (mut h, _) = dirty_heap(16, 0);
        let out = h.bubble_up_pram(&[], 2, Model::Crew).unwrap();
        assert_eq!(out.swaps, 0);
        assert_eq!(out.cost, Cost::ZERO);
    }
}
