//! Cost meter for the non-Union phases of the lazy operations.
//!
//! Every `Union` inside `Take-Up`/`Arrange-Heap` is *measured* on the PRAM
//! simulator. The remaining phases — constant-time pointer surgery,
//! data-parallel passes over `O(log n)` slots, the CREW distance computation
//! and the pipelined bubble-up — are charged here with exactly the schedule
//! the paper's analysis uses (Brent-scheduled `⌈n/p⌉` rounds; pipeline time
//! `max-depth + #markers`).

use pram::Cost;

/// Accumulates charged parallel cost for one lazy (sub)operation.
#[derive(Debug, Clone)]
pub struct CostMeter {
    p: usize,
    cost: Cost,
}

impl CostMeter {
    /// A meter for a `p`-processor schedule.
    pub fn new(p: usize) -> Self {
        CostMeter {
            p,
            cost: Cost::ZERO,
        }
    }

    /// Add an already-measured cost (e.g. from a PRAM-run Union).
    pub fn add(&mut self, c: Cost) {
        self.cost += c;
    }

    /// A constant number of sequential steps on one processor.
    pub fn charge_const(&mut self, steps: u64) {
        self.cost += Cost {
            time: steps,
            work: steps,
        };
    }

    /// A data-parallel pass over `n` items, Brent-scheduled on `p`
    /// processors: `⌈n/p⌉` time, `n` work.
    pub fn charge_par(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.cost += Cost {
            time: n.div_ceil(self.p) as u64,
            work: n as u64,
        };
    }

    /// The CREW distance computation of Arrange-Heap: each of `markers`
    /// processors walks up at most `max_depth` ancestors concurrently
    /// (concurrent *reads* of shared ancestors — this is the paper's reason
    /// for requiring CREW). Time `⌈markers/p⌉ · max_depth`, work
    /// `Σ depths ≤ markers · max_depth` (we charge the actual sum).
    pub fn charge_distance_computation(&mut self, depths: &[usize]) {
        if depths.is_empty() {
            return;
        }
        let max = *depths.iter().max().expect("nonempty") as u64;
        let rounds = depths.len().div_ceil(self.p) as u64;
        self.cost += Cost {
            time: rounds * max,
            work: depths.iter().map(|&d| d as u64).sum(),
        };
    }

    /// The pipelined bubble-up (Fact 3): markers sorted by depth move up one
    /// level per step, pipelined, so the parallel time is
    /// `max_depth + #markers` and the work is the total number of swaps.
    pub fn charge_pipeline(&mut self, max_depth: usize, markers: usize, total_swaps: usize) {
        if markers == 0 {
            return;
        }
        // With fewer processors than markers the pipeline issues in waves.
        let waves = markers.div_ceil(self.p) as u64;
        self.cost += Cost {
            time: max_depth as u64 + waves.max(1) * markers.min(self.p) as u64,
            work: total_swaps as u64,
        };
    }

    /// The accumulated cost.
    pub fn total(&self) -> Cost {
        self.cost
    }

    /// The processor count this meter schedules for.
    pub fn p(&self) -> usize {
        self.p
    }
}

impl obs::Recorder for CostMeter {
    fn family(&self) -> &'static str {
        "meldpq.lazy_meter"
    }
    fn fields(&self) -> Vec<(&'static str, u64)> {
        let c = self.total();
        vec![("time", c.time), ("work", c.work), ("p", self.p as u64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_charge_is_brent_scheduled() {
        let mut m = CostMeter::new(4);
        m.charge_par(10);
        assert_eq!(m.total(), Cost { time: 3, work: 10 });
        m.charge_par(0);
        assert_eq!(m.total(), Cost { time: 3, work: 10 });
    }

    #[test]
    fn pipeline_charge_shape() {
        let mut m = CostMeter::new(8);
        m.charge_pipeline(10, 5, 23);
        let c = m.total();
        assert_eq!(c.time, 10 + 5);
        assert_eq!(c.work, 23);
    }

    #[test]
    fn distance_charge_uses_sum_for_work() {
        let mut m = CostMeter::new(2);
        m.charge_distance_computation(&[3, 1, 2]);
        let c = m.total();
        assert_eq!(c.work, 6);
        assert_eq!(c.time, 2 * 3); // ceil(3/2) rounds × max depth 3
    }
}
