//! `Arrange-Heap` (paper §4.2): the periodic global rebuild.
//!
//! 1. **Distance computation** (CREW): each empty marker climbs to its root
//!    recording depth — charged per the paper's schedule.
//! 2. **Pipelined bubble-up** (Fact 3): markers sorted by distance, nearest
//!    first, swap upward through live ancestors; afterwards the empty
//!    positions form an upward-closed *crown* containing the root of every
//!    dirty tree, and every live node owns an all-live subtree.
//! 3. **Regeneration**: the live child lists `L` of the crown nodes are
//!    combined by a balanced binary tree of `Union`s into `H'` (each round's
//!    unions run concurrently — time is the round maximum, work the sum),
//!    then `H'` melds with the untouched trees of `H`. Every `Union` here is
//!    measured on the PRAM simulator.

use pram::Cost;

use crate::arena::NodeId;
use crate::lazy::meter::CostMeter;
use crate::lazy::{LazyBinomialHeap, OpKind};

impl LazyBinomialHeap {
    /// Release all persistent empty nodes and regenerate the heap.
    pub fn arrange_heap(&mut self) {
        let _sp = obs::span("lazy/arrange_heap");
        let mut meter = CostMeter::new(self.p);

        // ---- gather the live set of empty markers ----
        let mut empties: Vec<NodeId> = std::mem::take(&mut self.del_buffer)
            .into_iter()
            .filter(|&id| self.arena.contains(id) && self.arena.get(id).empty)
            .collect();
        empties.sort_unstable();
        empties.dedup();
        self.deleted_since_arrange = 0;
        if empties.is_empty() {
            self.cost_log.push((OpKind::ArrangeHeap, meter.total()));
            return;
        }

        // ---- 1. distances: a measured CREW PRAM program (converging
        //         ancestor paths read cells concurrently) ----
        let sp_stage = obs::span("distance");
        let (depths, dist_cost) = self
            .distances_pram(&empties, self.p, pram::Model::Crew)
            .expect("the distance program is CREW-legal");
        meter.add(dist_cost);
        // Roots of the dirty trees (host bookkeeping; the climb itself was
        // charged above).
        let mut dirty_roots: Vec<NodeId> = empties
            .iter()
            .map(|&e| {
                let mut cur = e;
                while let Some(p) = self.arena.get(cur).parent {
                    cur = p;
                }
                cur
            })
            .collect();

        // ---- 2. pipelined bubble-up: a measured PRAM program whose
        //         conflict-freedom (Fact 3) the simulator verifies ----
        drop(sp_stage);
        let sp_stage = obs::span("bubble_up");
        let mut order: Vec<(usize, NodeId)> = depths
            .iter()
            .copied()
            .zip(empties.iter().copied())
            .collect();
        order.sort_unstable_by_key(|(d, id)| (*d, id.0));
        let markers: Vec<NodeId> = order.into_iter().map(|(_, id)| id).collect();
        let out = self
            .bubble_up_pram(&markers, self.p, pram::Model::Crew)
            .expect("the pipelined swap schedule is conflict-free (Fact 3)");
        meter.add(out.cost);
        let crown = out.crown;
        dirty_roots.sort_unstable();
        dirty_roots.dedup();
        debug_assert!(
            dirty_roots.iter().all(|&r| self.arena.get(r).empty),
            "the shallowest marker of every dirty tree must reach its root"
        );

        drop(sp_stage);
        let sp_stage = obs::span("regenerate");
        // ---- 3a. collect the live child lists of the crown ----
        let mut lists: Vec<Vec<Option<NodeId>>> = Vec::with_capacity(crown.len());
        for &c in &crown {
            let list: Vec<Option<NodeId>> = self
                .arena
                .get(c)
                .children
                .iter()
                .map(|ch| ch.filter(|&id| !self.arena.get(id).empty))
                .collect();
            for r in list.iter().flatten() {
                self.arena.get_mut(*r).parent = None;
            }
            if list.iter().any(|r| r.is_some()) {
                lists.push(list);
            }
            meter.charge_par(self.arena.get(c).degree());
        }
        // Free the crown itself.
        for &c in &crown {
            self.arena.dealloc(c);
        }

        // ---- 3b. detach dirty trees from H ----
        for &r in &dirty_roots {
            if let Some(slot) = self.roots.iter_mut().find(|s| **s == Some(r)) {
                *slot = None;
            }
        }
        while matches!(self.roots.last(), Some(None)) {
            self.roots.pop();
        }

        // ---- 3c. balanced binary tree of Unions over the lists ----
        let p_total = self.p;
        let mut round = lists;
        while round.len() > 1 {
            let pairs = round.len() / 2;
            let p_eff = (p_total / pairs.max(1)).max(1);
            let mut next: Vec<Vec<Option<NodeId>>> = Vec::with_capacity(round.len().div_ceil(2));
            let mut round_time = 0u64;
            let mut round_work = 0u64;
            let mut it = round.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let (merged, c) = self.planned_union(&a, &b, p_eff);
                        round_time = round_time.max(c.time);
                        round_work += c.work;
                        next.push(merged);
                    }
                    None => next.push(a),
                }
            }
            meter.add(Cost {
                time: round_time,
                work: round_work,
            });
            round = next;
        }

        // ---- 3d. meld H' with the untouched trees ----
        if let Some(h_prime) = round.pop() {
            let old = std::mem::take(&mut self.roots);
            let (roots, c) = self.planned_union(&old, &h_prime, p_total);
            self.roots = roots;
            meter.add(c);
        }

        drop(sp_stage);
        self.cost_log.push((OpKind::ArrangeHeap, meter.total()));
        debug_assert!(self.validate().is_ok(), "{:?}", self.validate());
        self.debug_validate();
    }
}

#[cfg(test)]
mod tests {
    use crate::lazy::{LazyBinomialHeap, OpKind};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn arrange_clears_all_empties() {
        let mut h = LazyBinomialHeap::new(2);
        let ids: Vec<_> = (0..32).map(|k| h.insert(k)).collect();
        // Delete a few internal nodes but stay under the threshold, then
        // force the rebuild directly.
        let mut deleted = Vec::new();
        for &id in ids.iter().rev() {
            if h.arena.get(id).parent.is_some() {
                h.delete(id);
                deleted.push(id);
                if deleted.len() == 2 {
                    break;
                }
            }
        }
        h.arrange_heap();
        h.validate().unwrap();
        assert!(h.del_buffer.is_empty());
        // No empty nodes remain anywhere.
        for slot in 0..64u32 {
            let id = crate::arena::NodeId(slot);
            if h.arena.contains(id) {
                assert!(!h.arena.get(id).empty);
            }
        }
        assert_eq!(h.len(), 30);
    }

    #[test]
    fn arrange_on_clean_heap_is_noop() {
        let mut h = LazyBinomialHeap::new(2);
        for k in 0..10 {
            h.insert(k);
        }
        let before = h.len();
        h.arrange_heap();
        h.validate().unwrap();
        assert_eq!(h.len(), before);
        assert_eq!(h.into_sorted_vec(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn randomized_delete_storm_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..10 {
            let n = rng.gen_range(8usize..200);
            let mut h = LazyBinomialHeap::new(rng.gen_range(1usize..6));
            let mut live: Vec<(crate::arena::NodeId, i64)> = Vec::new();
            for _ in 0..n {
                let k = rng.gen_range(-1000i64..1000);
                live.push((h.insert(k), k));
            }
            // Randomly delete half of the keys by handle; handles are only
            // valid until the next arrange, so refresh liveness each time.
            let mut expected: Vec<i64> = live.iter().map(|(_, k)| *k).collect();
            let mut deletions = n / 2;
            while deletions > 0 {
                let idx = rng.gen_range(0..live.len());
                let (id, k) = live[idx];
                if h.arena.contains(id) && !h.arena.get(id).empty && h.key_of(id) == Some(k) {
                    h.delete(id);
                    h.validate().expect("invariant violated");
                    live.swap_remove(idx);
                    let pos = expected.iter().position(|&e| e == k).expect("key tracked");
                    expected.swap_remove(pos);
                    deletions -= 1;
                } else {
                    // Handle invalidated by arrange; drop it from the pool.
                    live.swap_remove(idx);
                    if live.is_empty() {
                        break;
                    }
                }
            }
            expected.sort_unstable();
            assert_eq!(h.into_sorted_vec(), expected, "trial {trial}");
        }
    }

    #[test]
    fn arrange_cost_recorded_with_union_rounds() {
        let mut h = LazyBinomialHeap::new(4);
        let ids: Vec<_> = (0..64).map(|k| h.insert(k)).collect();
        for &id in ids.iter().rev().take(20) {
            if h.arena.contains(id) && !h.arena.get(id).empty && h.arena.get(id).parent.is_some() {
                h.delete(id);
            }
        }
        let arranges: Vec<_> = h
            .cost_log()
            .iter()
            .filter(|(k, _)| *k == OpKind::ArrangeHeap)
            .collect();
        assert!(!arranges.is_empty());
        assert!(arranges.iter().any(|(_, c)| c.time > 0));
    }
}
