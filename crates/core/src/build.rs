//! Parallel `Make-Queue` from `n` keys — the paper's operation 1, made
//! concrete with the classic optimal-initialization strategy (cf. the
//! paper's reference \[8], Olariu & Wen): decompose `n` into its binary
//! representation, carve the key sequence into one segment per set bit, and
//! build each `B_i` by `i` rounds of pairwise linking. All rounds across all
//! trees run concurrently, so with `p` processors the whole build takes
//! `O(n/p + log n)` time and `O(n)` work — measured here on the EREW
//! simulator (`from_keys_pram`), with a rayon twin for wall clock
//! (`bulk::from_keys_parallel`).
//!
//! The PRAM program per round: one processor per surviving pair reads the
//! two roots' keys and writes the comparison outcome; the host mirrors the
//! winning links into the arena (the same plan/apply split the Union engine
//! uses). Each round's reads and writes are disjoint across pairs, so the
//! program is EREW-legal — machine-checked on every run.

use pram::{Cost, Model, Pram, PramError, Word};

use crate::arena::NodeId;
use crate::heap::ParBinomialHeap;

impl ParBinomialHeap {
    /// Build a heap from `keys` with the linking rounds executed (and
    /// metered) on a `p`-processor EREW PRAM. Returns the heap and the
    /// measured cost.
    pub fn from_keys_pram(keys: &[i64], p: usize) -> Result<(ParBinomialHeap, Cost), PramError> {
        let n = keys.len();
        let mut heap = ParBinomialHeap::new();
        if n == 0 {
            return Ok((heap, Cost::ZERO));
        }
        // Host: allocate every node; lay the keys out in PRAM memory.
        let ids: Vec<NodeId> = keys.iter().map(|&k| heap.alloc_detached(k)).collect();
        let mut m = Pram::new(Model::Erew, p);
        let key_base = m.alloc_init(
            keys.iter()
                .map(|&k| k as Word)
                .collect::<Vec<_>>()
                .as_slice(),
        );
        // Decision buffer: one word per pair per round (reused).
        let max_pairs = n / 2;
        let dec = m.alloc(max_pairs.max(1), 0);
        m.reset_cost();

        // Segment the keys: the lowest set bit takes the first 2^i keys, etc.
        // (Any fixed assignment works; this one keeps segments contiguous.)
        let mut segments: Vec<(usize, usize)> = Vec::new(); // (start, order)
        let mut start = 0usize;
        for i in 0..usize::BITS as usize {
            if n >> i & 1 == 1 {
                segments.push((start, i));
                start += 1 << i;
            }
        }

        // Current roots per segment: initially every key is a B_0 root.
        // roots[s] = list of live tree roots (as index into ids/keys).
        let mut roots: Vec<Vec<usize>> = segments
            .iter()
            .map(|&(start, order)| (start..start + (1 << order)).collect())
            .collect();

        // Rounds: while any segment still has more than one root, link its
        // roots pairwise. All segments' pairs share each round.
        loop {
            let mut pairs: Vec<(usize, usize)> = Vec::new(); // (left idx, right idx)
            for seg in &roots {
                debug_assert!(seg.len().is_power_of_two());
                if seg.len() > 1 {
                    for c in seg.chunks(2) {
                        pairs.push((c[0], c[1]));
                    }
                }
            }
            if pairs.is_empty() {
                break;
            }
            // PRAM: each pair's processor reads both keys, writes 0/1.
            let mut k = 0usize;
            while k < pairs.len() {
                let batch = &pairs[k..(k + p).min(pairs.len())];
                let base = k;
                m.step(batch.len(), |slot, ctx| {
                    let (a, b) = batch[slot];
                    let ka = ctx.read(key_base + a)?;
                    let kb = ctx.read(key_base + b)?;
                    // Tie rule: the left (earlier) root wins, matching the
                    // planners.
                    ctx.write(dec + base + slot, (kb < ka) as Word)
                })?;
                k += batch.len();
            }
            // Host: apply the links and shrink the root lists.
            let mut pair_idx = 0usize;
            for seg in roots.iter_mut() {
                if seg.len() <= 1 {
                    continue;
                }
                let mut next = Vec::with_capacity(seg.len() / 2);
                for c in seg.chunks(2) {
                    let right_wins = m.host_read(dec + pair_idx) != 0;
                    pair_idx += 1;
                    let (win, lose) = if right_wins {
                        (c[1], c[0])
                    } else {
                        (c[0], c[1])
                    };
                    heap.link_detached(ids[win], ids[lose]);
                    next.push(win);
                }
                *seg = next;
            }
            debug_assert_eq!(pair_idx, pairs.len());
        }

        // Install the root array.
        for (seg, &(_, order)) in roots.iter().zip(&segments) {
            debug_assert_eq!(seg.len(), 1);
            heap.install_root(order, ids[seg[0]]);
        }
        heap.set_len(n);
        Ok((heap, m.cost()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn builds_valid_heaps_of_every_small_size() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in 0..64usize {
            let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
            let (h, cost) = ParBinomialHeap::from_keys_pram(&keys, 3).unwrap();
            h.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(h.len(), n);
            if n > 1 {
                assert!(cost.time > 0);
            }
            let mut expected = keys;
            expected.sort_unstable();
            assert_eq!(h.into_sorted_vec(), expected, "n={n}");
        }
    }

    #[test]
    fn build_work_is_linear_and_time_parallelises() {
        let mut rng = StdRng::seed_from_u64(4);
        let keys: Vec<i64> = (0..4096).map(|_| rng.gen_range(-1000..1000)).collect();
        let (_, c1) = ParBinomialHeap::from_keys_pram(&keys, 1).unwrap();
        let (_, c8) = ParBinomialHeap::from_keys_pram(&keys, 8).unwrap();
        // Work = number of links = n - #trees, identical regardless of p.
        assert_eq!(c1.work, c8.work);
        assert!(c1.work as usize <= keys.len());
        // Time drops by roughly the processor count.
        assert!(c8.time * 6 < c1.time, "t1={} t8={}", c1.time, c8.time);
    }

    #[test]
    fn matches_sequential_builder_content() {
        let keys: Vec<i64> = (0..1000).map(|i| (i * 37) % 257).collect();
        let (h, _) = ParBinomialHeap::from_keys_pram(&keys, 4).unwrap();
        let seq = ParBinomialHeap::from_keys(keys.iter().copied());
        assert_eq!(h.root_orders(), seq.root_orders());
        assert_eq!(h.into_sorted_vec(), seq.into_sorted_vec());
    }
}
