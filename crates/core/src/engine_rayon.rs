//! The rayon engine: real-thread execution of Phases I–III.
//!
//! Produces bit-identical [`UnionPlan`]s to the sequential oracle; the
//! parallel structure mirrors the PRAM algorithm (maps + prefix scans + an
//! independent per-position link round). Note the honesty caveat from
//! DESIGN.md §5: a single union only has `O(log n)` positions, so rayon's
//! scan falls back to its sequential path below its chunk threshold — the
//! engine exists to execute *bulk* workloads (many unions, multi-inserts)
//! with real parallelism, and to demonstrate the algorithm's data-parallel
//! shape on real threads.

use rayon::prelude::*;

use crate::plan::{
    classify_point, link_decision, new_root_decision, position_winner, seg_combine, PointType,
    RootRef, UnionPlan,
};

/// Build the union plan with rayon primitives.
pub fn build_plan_rayon<K: Ord + Copy + Send + Sync>(
    h1: &[Option<RootRef<K>>],
    h2: &[Option<RootRef<K>>],
) -> UnionPlan<K> {
    let width = h1.len().max(h2.len());
    let at = |v: &[Option<RootRef<K>>], i: usize| v.get(i).copied().flatten();
    let _sp = obs::span("union/rayon");

    // Phase I: presence bits, g/p, carry scan, classification.
    let sp_phase = obs::span("union/phase1");
    let (a, b): (Vec<bool>, Vec<bool>) = (0..width)
        .into_par_iter()
        .map(|i| (at(h1, i).is_some(), at(h2, i).is_some()))
        .unzip();
    let (g, p): (Vec<bool>, Vec<bool>) = (0..width)
        .into_par_iter()
        .map(|i| (a[i] && b[i], a[i] ^ b[i]))
        .unzip();
    let statuses: Vec<parscan::CarryStatus> = (0..width)
        .into_par_iter()
        .map(|i| parscan::carry_status(a[i], b[i]))
        .collect();
    let c: Vec<bool> = parscan::par::scan_inclusive(
        &statuses,
        parscan::CarryStatus::Propagate,
        parscan::compose_status,
    )
    .into_par_iter()
    .map(|s| s == parscan::CarryStatus::Generate)
    .collect();
    let s: Vec<bool> = (0..width)
        .into_par_iter()
        .map(|i| p[i] ^ (i > 0 && c[i - 1]))
        .collect();
    let class: Vec<PointType> = (0..width)
        .into_par_iter()
        .map(|i| classify_point(g[i], p[i], i > 0 && c[i - 1], i + 1 < width && p[i + 1]))
        .collect();
    let i_lim: Vec<bool> = (0..width)
        .into_par_iter()
        .map(|i| !(p[i] && i > 0 && c[i - 1]))
        .collect();

    drop(sp_phase);
    // Phase II: segmented prefix minima over (I_lim, I_valueB).
    let sp_phase = obs::span("union/phase2");
    let i_value_b: Vec<Option<RootRef<K>>> = (0..width)
        .into_par_iter()
        .map(|i| position_winner(at(h1, i), at(h2, i)))
        .collect();
    let pairs: Vec<(bool, Option<RootRef<K>>)> = i_lim
        .par_iter()
        .copied()
        .zip(i_value_b.par_iter().copied())
        .collect();
    let i_value_a: Vec<Option<RootRef<K>>> =
        parscan::par::scan_inclusive(&pairs, (false, None), seg_combine)
            .into_par_iter()
            .map(|p| p.1)
            .collect();

    drop(sp_phase);
    // Phase III: independent per-position decisions.
    let sp_phase = obs::span("union/phase3");
    let links: Vec<_> = (0..width)
        .into_par_iter()
        .filter_map(|i| {
            link_decision(
                class[i],
                g[i],
                at(h1, i),
                at(h2, i),
                i_value_b[i],
                i_value_a[i],
                if i > 0 { i_value_a[i - 1] } else { None },
                i,
            )
        })
        .collect();
    let mut new_roots = vec![None; width];
    let assignments: Vec<(usize, crate::arena::NodeId)> = (0..width)
        .into_par_iter()
        .filter_map(|i| {
            new_root_decision(
                i,
                class[i],
                g[i],
                p[i],
                i > 0 && c[i - 1],
                i + 1 < width && p[i + 1],
                i_value_a[i],
            )
        })
        .collect();
    for (slot, id) in assignments {
        debug_assert!(new_roots[slot].is_none());
        new_roots[slot] = Some(id);
    }
    drop(sp_phase);

    UnionPlan {
        width,
        a,
        b,
        g,
        p,
        c,
        s,
        class,
        i_lim,
        i_value_b,
        i_value_a,
        links,
        new_roots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::NodeId;
    use crate::plan::build_plan_seq;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_side(rng: &mut StdRng, n: usize, width: usize, id_base: u32) -> Vec<Option<RootRef>> {
        (0..width)
            .map(|i| {
                (n >> i & 1 == 1).then(|| RootRef {
                    key: rng.gen_range(-1000..1000),
                    id: NodeId(id_base + i as u32),
                })
            })
            .collect()
    }

    #[test]
    fn rayon_plan_equals_sequential_plan() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let n1 = rng.gen_range(0usize..100_000);
            let n2 = rng.gen_range(0usize..100_000);
            let width = crate::plan::plan_width(n1, n2);
            let h1 = random_side(&mut rng, n1, width, 0);
            let h2 = random_side(&mut rng, n2, width, 1_000);
            let seq = build_plan_seq(&h1, &h2);
            let par = build_plan_rayon(&h1, &h2);
            assert_eq!(seq, par, "n1={n1} n2={n2}");
            seq.validate().unwrap();
        }
    }

    #[test]
    fn all_ones_worst_case_chain() {
        // n1 = n2 = 2^k - 1: every position generates, maximal chains.
        let mut rng = StdRng::seed_from_u64(1);
        let n = (1usize << 12) - 1;
        let width = crate::plan::plan_width(n, n);
        let h1 = random_side(&mut rng, n, width, 0);
        let h2 = random_side(&mut rng, n, width, 500);
        let seq = build_plan_seq(&h1, &h2);
        let par = build_plan_rayon(&h1, &h2);
        assert_eq!(seq, par);
        // 12 generate positions -> 12 links, result = one B_13... precisely:
        // n+n = 2^13 - 2 = 0b1111111111110.
        let expected_roots = (0..width).filter(|i| (2 * n) >> i & 1 == 1).count();
        assert_eq!(seq.new_roots.iter().flatten().count(), expected_roots);
    }
}
