//! The rayon engine: real-thread execution of Phases I–III.
//!
//! Produces bit-identical [`UnionPlan`]s to the sequential oracle. Two
//! schedules live here:
//!
//! * **Sequential fall-through** — a single union only has `O(log n)`
//!   positions, far below thread-dispatch granularity, so widths below the
//!   calibrated cutoff ([`crate::cutoff::plan_par_cutoff`]) route straight to
//!   [`build_plan_into`]. On ordinary unions the rayon engine therefore costs
//!   exactly what the sequential engine costs — this is the fix for the
//!   `mixed/rayon` wall-clock regression, where every log-sized union used to
//!   pay ~10 `par_iter().collect()` passes and a dozen fresh `Vec`s.
//! * **Fused chunked sweeps** — at or above the cutoff (or under the test
//!   hook), the plan is built in **three** fused chunk-parallel sweeps
//!   instead of ten independent maps: (1) presence/generate/propagate bits
//!   plus per-chunk carry-status summaries, (2) carries / sum bits / classes
//!   / segment limits / position winners plus per-chunk segment summaries,
//!   (3) dominant roots plus the link and new-root decisions. Between sweeps
//!   the chunk summaries are stitched sequentially (`O(width / chunk)` work)
//!   — the same two-level scan shape as `parscan::par`, applied to the
//!   carry-lookahead monoid and the segmented-minimum monoid respectively.
//!
//! The buffer-reuse contract: [`build_plan_rayon_into`] clears and refills
//! every vector of the caller's plan in place (same contract as
//! [`build_plan_into`]), so pool-owned scratch plans amortize to zero
//! allocation per meld regardless of engine. The fused path obeys it by
//! destructuring the plan into disjoint field borrows: each sweep splits the
//! fields it *writes* into per-chunk `&mut` slices and reads the fields
//! earlier sweeps produced through plain shared slices — no intermediate
//! collects, no clones.

use rayon::prelude::*;

use crate::arena::NodeId;
use crate::plan::{
    build_plan_into, classify_point, link_decision, new_root_decision, position_winner,
    seg_combine, LinkOp, PointType, RootRef, UnionPlan,
};

/// Positions per chunk for the fused parallel path. Plan widths are bounded
/// by the word size (≤ 64), so this bounds the chunk count at 4 — enough to
/// exercise every boundary case (carry chains, segments and root decisions
/// crossing chunk edges) while keeping the sequential stitch trivial.
pub const FUSED_CHUNK: usize = 16;

/// Build the union plan with rayon primitives (allocating entry point).
pub fn build_plan_rayon<K: Ord + Copy + Send + Sync>(
    h1: &[Option<RootRef<K>>],
    h2: &[Option<RootRef<K>>],
) -> UnionPlan<K> {
    let mut plan = UnionPlan::default();
    build_plan_rayon_into(&mut plan, h1, h2);
    plan
}

/// Build the union plan into reused buffers, choosing the schedule by the
/// calibrated width cutoff: sequential fall-through below it, fused chunked
/// sweeps at or above it. Produces exactly what
/// [`crate::plan::build_plan_seq`] produces, always.
pub fn build_plan_rayon_into<K: Ord + Copy + Send + Sync>(
    plan: &mut UnionPlan<K>,
    h1: &[Option<RootRef<K>>],
    h2: &[Option<RootRef<K>>],
) {
    let _sp = obs::span("union/rayon");
    let width = h1.len().max(h2.len());
    if width < crate::cutoff::plan_par_cutoff() {
        build_plan_into(plan, h1, h2);
        return;
    }
    build_plan_fused_into(plan, h1, h2, FUSED_CHUNK);
}

/// Split `v` into consecutive mutable chunks of length `chunk` (last ragged).
fn chunk_splits<T>(mut v: &mut [T], chunk: usize) -> Vec<&mut [T]> {
    let mut out = Vec::with_capacity(v.len().div_ceil(chunk));
    while !v.is_empty() {
        let take = chunk.min(v.len());
        let (head, rest) = v.split_at_mut(take);
        out.push(head);
        v = rest;
    }
    out
}

fn refill<T: Clone>(v: &mut Vec<T>, n: usize, x: T) {
    v.clear();
    v.resize(n, x);
}

/// The fused chunked planner with an explicit chunk length — the schedule
/// behind [`build_plan_rayon_into`]'s parallel arm, exposed (doc-hidden) so
/// cutoff-boundary tests and the calibrator can force chunking at any width.
#[doc(hidden)]
pub fn build_plan_fused_into<K: Ord + Copy + Send + Sync>(
    plan: &mut UnionPlan<K>,
    h1: &[Option<RootRef<K>>],
    h2: &[Option<RootRef<K>>],
    chunk: usize,
) {
    let width = h1.len().max(h2.len());
    let chunk = chunk.max(1);
    let at = |v: &[Option<RootRef<K>>], i: usize| v.get(i).copied().flatten();

    plan.width = width;
    let UnionPlan {
        width: _,
        a,
        b,
        g,
        p,
        c,
        s,
        class,
        i_lim,
        i_value_b,
        i_value_a,
        links,
        new_roots,
    } = plan;
    refill(a, width, false);
    refill(b, width, false);
    refill(g, width, false);
    refill(p, width, false);
    refill(c, width, false);
    refill(s, width, false);
    refill(class, width, PointType::Independent);
    refill(i_lim, width, false);
    refill(i_value_b, width, None);
    refill(i_value_a, width, None);
    links.clear();
    refill(new_roots, width, None);
    if width == 0 {
        return;
    }

    // ---- Sweep 1: presence / generate / propagate + carry summaries ------
    // Each chunk fills its a/b/g/p slices and folds its positions into one
    // carry status; the exclusive stitch of those summaries under the
    // carry-lookahead monoid is the carry entering each chunk.
    let carry_in: Vec<bool> = {
        let _sp = obs::span("union/phase1");
        let parts: Vec<_> = chunk_splits(a, chunk)
            .into_iter()
            .zip(chunk_splits(b, chunk))
            .zip(chunk_splits(g, chunk))
            .zip(chunk_splits(p, chunk))
            .enumerate()
            .map(|(ci, (((ca, cb), cg), cp))| (ci * chunk, ca, cb, cg, cp))
            .collect();
        let sums: Vec<parscan::CarryStatus> = parts
            .into_par_iter()
            .map(|(lo, ca, cb, cg, cp)| {
                let mut sum = parscan::CarryStatus::Propagate; // monoid identity
                for k in 0..ca.len() {
                    let i = lo + k;
                    let ai = at(h1, i).is_some();
                    let bi = at(h2, i).is_some();
                    ca[k] = ai;
                    cb[k] = bi;
                    cg[k] = ai && bi;
                    cp[k] = ai ^ bi;
                    sum = parscan::compose_status(sum, parscan::carry_status(ai, bi));
                }
                sum
            })
            .collect();
        let mut acc = parscan::CarryStatus::Propagate; // c_{-1} = 0
        sums.iter()
            .map(|&sum| {
                let inbound = acc == parscan::CarryStatus::Generate;
                acc = parscan::compose_status(acc, sum);
                inbound
            })
            .collect()
    };

    // ---- Sweep 2: carries, sum bits, classes, limits, winners ------------
    // Reads the sweep-1 fields through shared slices, writes c/s/class/
    // i_lim/i_value_b per chunk, and folds each chunk into a segment
    // summary for the Phase II stitch.
    let seg_in: Vec<(bool, Option<RootRef<K>>)> = {
        let _sp = obs::span("union/phase2");
        let (g, p) = (&g[..], &p[..]);
        let parts: Vec<_> = chunk_splits(c, chunk)
            .into_iter()
            .zip(chunk_splits(s, chunk))
            .zip(chunk_splits(class, chunk))
            .zip(chunk_splits(i_lim, chunk))
            .zip(chunk_splits(i_value_b, chunk))
            .zip(carry_in)
            .enumerate()
            .map(|(ci, (((((cc, cs), ccl), clim), cvb), inbound))| {
                (ci * chunk, cc, cs, ccl, clim, cvb, inbound)
            })
            .collect();
        let sums: Vec<(bool, Option<RootRef<K>>)> = parts
            .into_par_iter()
            .map(|(lo, cc, cs, ccl, clim, cvb, inbound)| {
                let mut carry = inbound;
                let mut seg = (false, None); // left identity of seg_combine
                for k in 0..cc.len() {
                    let i = lo + k;
                    let c_prev = carry;
                    carry = g[i] || (p[i] && carry);
                    cc[k] = carry;
                    cs[k] = p[i] ^ c_prev;
                    let p_next = i + 1 < width && p[i + 1];
                    ccl[k] = classify_point(g[i], p[i], c_prev, p_next);
                    clim[k] = !(p[i] && c_prev);
                    cvb[k] = position_winner(at(h1, i), at(h2, i));
                    seg = seg_combine(seg, (clim[k], cvb[k]));
                }
                seg
            })
            .collect();
        let mut acc = (false, None);
        sums.iter()
            .map(|&sum| {
                let inbound = acc;
                acc = seg_combine(acc, sum);
                inbound
            })
            .collect()
    };

    // ---- Sweep 3: dominant roots + link / new-root decisions -------------
    // Reads every earlier field shared, writes i_value_a per chunk and
    // stages each chunk's decisions; the staged vectors concatenate in chunk
    // order, so `links` comes out slot-ascending like the oracle's.
    {
        let _sp = obs::span("union/phase3");
        let (g, p, c) = (&g[..], &p[..], &c[..]);
        let (class, i_lim, i_value_b) = (&class[..], &i_lim[..], &i_value_b[..]);
        let parts: Vec<_> = chunk_splits(i_value_a, chunk)
            .into_iter()
            .zip(seg_in)
            .enumerate()
            .map(|(ci, (cva, inbound))| (ci * chunk, cva, inbound))
            .collect();
        type StagedChunk = (Vec<LinkOp>, Vec<(usize, NodeId)>);
        let staged: Vec<StagedChunk> = parts
            .into_par_iter()
            .map(|(lo, cva, inbound)| {
                let mut acc = inbound;
                let mut ops = Vec::new();
                let mut roots = Vec::new();
                for (k, dom_slot) in cva.iter_mut().enumerate() {
                    let i = lo + k;
                    let dom_prev = acc.1;
                    acc = seg_combine(acc, (i_lim[i], i_value_b[i]));
                    *dom_slot = acc.1;
                    let c_prev = i > 0 && c[i - 1];
                    let p_next = i + 1 < width && p[i + 1];
                    if let Some(op) = link_decision(
                        class[i],
                        g[i],
                        at(h1, i),
                        at(h2, i),
                        i_value_b[i],
                        acc.1,
                        dom_prev,
                        i,
                    ) {
                        ops.push(op);
                    }
                    if let Some((slot, root)) =
                        new_root_decision(i, class[i], g[i], p[i], c_prev, p_next, acc.1)
                    {
                        roots.push((slot, root));
                    }
                }
                (ops, roots)
            })
            .collect();
        for (ops, roots) in staged {
            links.extend(ops);
            for (slot, root) in roots {
                debug_assert!(slot < width, "result width must accommodate all roots");
                debug_assert!(new_roots[slot].is_none(), "H slot assigned twice");
                new_roots[slot] = Some(root);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::NodeId;
    use crate::plan::{build_plan_seq, plan_width};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_side(
        rng: &mut StdRng,
        n: usize,
        width: usize,
        id_base: u32,
    ) -> Vec<Option<RootRef<i64>>> {
        (0..width)
            .map(|i| {
                (n >> i & 1 == 1).then(|| RootRef {
                    key: rng.gen_range(-1000..1000),
                    id: NodeId(id_base + i as u32),
                })
            })
            .collect()
    }

    #[test]
    fn rayon_plan_equals_sequential_plan() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let n1 = rng.gen_range(0usize..100_000);
            let n2 = rng.gen_range(0usize..100_000);
            let width = plan_width(n1, n2);
            let h1 = random_side(&mut rng, n1, width, 0);
            let h2 = random_side(&mut rng, n2, width, 1_000);
            let seq = build_plan_seq(&h1, &h2);
            let par = build_plan_rayon(&h1, &h2);
            assert_eq!(seq, par, "n1={n1} n2={n2}");
            seq.validate().expect("plan invariants");
        }
    }

    #[test]
    fn fused_chunked_plan_equals_sequential_at_every_chunk_length() {
        // The fused sweeps must agree with the oracle for every chunking,
        // including chunk edges landing mid carry chain / mid segment.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..60 {
            let n1 = rng.gen_range(0usize..1_000_000);
            let n2 = rng.gen_range(0usize..1_000_000);
            let width = plan_width(n1, n2);
            let h1 = random_side(&mut rng, n1, width, 0);
            let h2 = random_side(&mut rng, n2, width, 1_000);
            let seq = build_plan_seq(&h1, &h2);
            for chunk in [1usize, 2, 3, 5, 8, 16, 64] {
                let mut fused = UnionPlan::default();
                build_plan_fused_into(&mut fused, &h1, &h2, chunk);
                assert_eq!(seq, fused, "n1={n1} n2={n2} chunk={chunk}");
            }
        }
    }

    #[test]
    fn fused_buffers_are_reused_across_calls() {
        // One plan, many melds: the *_into contract refills in place.
        let mut rng = StdRng::seed_from_u64(9);
        let mut plan = UnionPlan::default();
        for trial in 0..20 {
            let n1 = rng.gen_range(1usize..10_000);
            let n2 = rng.gen_range(1usize..10_000);
            let width = plan_width(n1, n2);
            let h1 = random_side(&mut rng, n1, width, 0);
            let h2 = random_side(&mut rng, n2, width, 1_000);
            build_plan_fused_into(&mut plan, &h1, &h2, 4);
            assert_eq!(plan, build_plan_seq(&h1, &h2), "trial {trial}");
        }
    }

    #[test]
    fn all_ones_worst_case_chain() {
        // n1 = n2 = 2^k - 1: every position occupied, maximal carry chain.
        let mut rng = StdRng::seed_from_u64(1);
        let n = (1usize << 12) - 1;
        let width = plan_width(n, n);
        let h1 = random_side(&mut rng, n, width, 0);
        let h2 = random_side(&mut rng, n, width, 500);
        let seq = build_plan_seq(&h1, &h2);
        let par = build_plan_rayon(&h1, &h2);
        assert_eq!(seq, par);
        let mut fused = UnionPlan::default();
        build_plan_fused_into(&mut fused, &h1, &h2, 4);
        assert_eq!(seq, fused);
        // Result population = 2n = 2^13 - 2: one root per set bit.
        let expected_roots = (0..width).filter(|i| (2 * n) >> i & 1 == 1).count();
        assert_eq!(seq.new_roots.iter().flatten().count(), expected_roots);
    }

    #[test]
    fn empty_and_one_sided_fused() {
        let mut plan = UnionPlan::<i64>::default();
        build_plan_fused_into(&mut plan, &[], &[], 4);
        assert_eq!(plan, build_plan_seq::<i64>(&[], &[]));
        let h1 = vec![
            Some(RootRef {
                key: 3i64,
                id: NodeId(0),
            }),
            None,
        ];
        let h2 = vec![None, None];
        build_plan_fused_into(&mut plan, &h1, &h2, 1);
        assert_eq!(plan, build_plan_seq(&h1, &h2));
    }
}
