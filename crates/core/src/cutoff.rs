//! Machine-calibrated sequential↔parallel cutoffs, measured at first use.
//!
//! Every hybrid kernel in the crate needs a granularity constant: the width
//! below which the rayon planner falls through to the sequential oracle, the
//! sub-range size below which the slab builder stops splitting
//! `rayon::join`, the batch size above which the bulk build kernel beats a
//! ripple-insert loop. PR 4 hardcoded one of these (`SEQ_THRESHOLD = 8 *
//! 1024`) — right for one machine, wrong for the next. This module replaces
//! the guesses with [`obs::calib::CostModel`] fits over micro-probes run
//! **once per process at first use** (`OnceLock`), on the machine the kernel
//! is about to run on:
//!
//! * each probe times the real sequential kernel and the real parallel
//!   kernel on a representative input plus the fixed dispatch overhead
//!   (an empty `rayon::join`, or the kernel at trivial size);
//! * the fitted affine model is solved for the crossover with a 25% win
//!   margin, so fit noise cannot flip a borderline machine to the slower
//!   path;
//! * the result is clamped into a per-kernel sane range
//!   ([`obs::calib::clamp_cutoff`]).
//!
//! On a single-core host the parallel probes come back no faster than the
//! sequential ones, the crossover is [`obs::calib::Crossover::Never`], and
//! every cutoff saturates at its ceiling — the kernels degenerate to their
//! sequential paths, which is the wall-clock-optimal schedule there.
//!
//! **CI determinism:** each cutoff honors an environment variable override
//! (`MELDPQ_PLAN_CUTOFF`, `MELDPQ_BULK_CUTOFF`, `MELDPQ_BATCH_CUTOFF`) read
//! before any probe runs, so pinned CI runs and the differential fuzzer can
//! force both sides of every threshold regardless of host speed.

use std::sync::OnceLock;
use std::time::Instant;

use obs::calib::{clamp_cutoff, CostModel};

use crate::arena::{Node, NodeId};
use crate::engine_rayon::{build_plan_fused_into, FUSED_CHUNK};
use crate::heap::Engine;
use crate::plan::{build_plan_into, RootRef, UnionPlan};
use crate::pool::HeapPool;

/// Clamp range for [`plan_par_cutoff`]: at least one fused chunk of width,
/// and a ceiling one past the maximum possible plan width (≤ 64 positions on
/// a 64-bit length), so `Never` calibrations disable the fused path outright.
const PLAN_RANGE: (usize, usize) = (FUSED_CHUNK, 65);
/// Clamp range for [`bulk_join_cutoff`]: splitting below a few cache lines
/// of keys is absurd, serializing multi-megabyte builds is equally so.
const BULK_RANGE: (usize, usize) = (1 << 10, 1 << 22);
/// Clamp range for [`batch_bulk_cutoff`]: a batch of 2 can already win, and
/// past 64k keys the bulk kernel wins on any plausible hardware.
const BATCH_RANGE: (usize, usize) = (2, 1 << 16);

/// Fallbacks when a probe cannot produce a usable fit (e.g. a timer of too
/// little resolution): the old hardcoded constants, now demoted to last
/// resort.
const PLAN_FALLBACK: usize = 65;
const BULK_FALLBACK: usize = 8 * 1024;
const BATCH_FALLBACK: usize = 64;

/// The margin the parallel path must win by before it is chosen.
const MARGIN: f64 = 1.25;

/// Minimum union width the fused chunk-parallel planner is dispatched at;
/// below it `build_plan_rayon_into` falls through to the sequential oracle.
/// Override: `MELDPQ_PLAN_CUTOFF`.
pub fn plan_par_cutoff() -> usize {
    static CUTOFF: OnceLock<usize> = OnceLock::new();
    *CUTOFF.get_or_init(|| {
        env_override("MELDPQ_PLAN_CUTOFF", PLAN_RANGE).unwrap_or_else(calibrate_plan)
    })
}

/// Minimum sub-range size the parallel slab builder keeps splitting with
/// `rayon::join`; ranges below it build with the sequential leaf kernel.
/// Override: `MELDPQ_BULK_CUTOFF`.
pub fn bulk_join_cutoff() -> usize {
    static CUTOFF: OnceLock<usize> = OnceLock::new();
    *CUTOFF.get_or_init(|| {
        env_override("MELDPQ_BULK_CUTOFF", BULK_RANGE).unwrap_or_else(calibrate_bulk)
    })
}

/// Minimum batch size at which the bulk build-then-meld kernel beats a
/// per-key ripple-insert loop — the default admission threshold for
/// `multi_insert` and the service layer's batcher. Override:
/// `MELDPQ_BATCH_CUTOFF`.
pub fn batch_bulk_cutoff() -> usize {
    static CUTOFF: OnceLock<usize> = OnceLock::new();
    *CUTOFF.get_or_init(|| {
        env_override("MELDPQ_BATCH_CUTOFF", BATCH_RANGE).unwrap_or_else(calibrate_batch)
    })
}

/// One-line rendering of the three calibrated cutoffs (for bench logs and
/// `EXPERIMENTS.md` provenance).
pub fn describe() -> String {
    format!(
        "cutoffs: plan_par={} bulk_join={} batch_bulk={}",
        plan_par_cutoff(),
        bulk_join_cutoff(),
        batch_bulk_cutoff()
    )
}

/// Parse an environment override, clamped into the kernel's sane range so a
/// typo cannot request a pathological schedule.
fn env_override(var: &str, range: (usize, usize)) -> Option<usize> {
    let v = std::env::var(var).ok()?;
    parse_override(&v, range)
}

fn parse_override(v: &str, (lo, hi): (usize, usize)) -> Option<usize> {
    v.trim().parse::<usize>().ok().map(|n| n.clamp(lo, hi))
}

/// Best-of-`reps` wall-clock of one invocation of `f`, in ns.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Probe keys: deterministic, well-mixed, key-comparison-realistic.
fn probe_keys(n: usize) -> Vec<i64> {
    (0..n as i64)
        .map(|i| i.wrapping_mul(2654435761) % 65537)
        .collect()
}

/// Probe the planner: sequential oracle vs fused chunked sweeps at the
/// maximum width (64 fully-occupied positions), overhead = the fused path at
/// trivial width (its fixed chunk-staging and stitch cost).
fn calibrate_plan() -> usize {
    const W: usize = 64;
    const INNER: usize = 64;
    // Occupy every position except the top one (the carry out of position
    // w-2 needs the headroom slot a real `plan_width` always provides).
    let side = |w: usize, base: u32, salt: i64| -> Vec<Option<RootRef<i64>>> {
        (0..w)
            .map(|i| {
                (i + 1 < w).then(|| RootRef {
                    key: (i as i64).wrapping_mul(salt) % 61,
                    id: NodeId(base + i as u32),
                })
            })
            .collect()
    };
    let h1 = side(W, 0, 7);
    let h2 = side(W, W as u32, 13);
    let mut plan = UnionPlan::default();
    build_plan_into(&mut plan, &h1, &h2); // warm buffers
    let per = |total: f64| total / INNER as f64;
    let seq_ns = per(time_ns(5, || {
        for _ in 0..INNER {
            build_plan_into(&mut plan, &h1, &h2);
            std::hint::black_box(&plan);
        }
    }));
    let par_ns = per(time_ns(5, || {
        for _ in 0..INNER {
            build_plan_fused_into(&mut plan, &h1, &h2, FUSED_CHUNK);
            std::hint::black_box(&plan);
        }
    }));
    let t1 = side(4, 200, 7);
    let t2 = side(4, 300, 13);
    let overhead_ns = per(time_ns(5, || {
        for _ in 0..INNER {
            build_plan_fused_into(&mut plan, &t1, &t2, FUSED_CHUNK);
            std::hint::black_box(&plan);
        }
    }));
    match CostModel::fit("plan_par", &[(W, seq_ns)], &[(W, par_ns)], overhead_ns) {
        Some(m) => clamp_cutoff(m.crossover(MARGIN), PLAN_RANGE.0, PLAN_RANGE.1),
        None => PLAN_FALLBACK,
    }
}

/// Probe the slab builder: one sequential leaf build of `n` keys vs a
/// `rayon::join` of two half builds into the split slab, overhead = an empty
/// join (thread scope + spawn).
fn calibrate_bulk() -> usize {
    const N: usize = 8 * 1024;
    let keys = probe_keys(N);
    let mut slab: Vec<Option<Node<i64>>> = Vec::new();
    let seq_ns = time_ns(3, || {
        slab.clear();
        slab.resize_with(N, || None);
        std::hint::black_box(crate::pool::build_slab_leaf(&keys, &mut slab, 0));
    });
    let par_ns = time_ns(3, || {
        slab.clear();
        slab.resize_with(N, || None);
        let (left, right) = slab.split_at_mut(N / 2);
        std::hint::black_box(rayon::join(
            || crate::pool::build_slab_leaf(&keys[..N / 2], left, 0),
            || crate::pool::build_slab_leaf(&keys[N / 2..], right, (N / 2) as u32),
        ));
    });
    let join_ns = time_ns(16, || {
        std::hint::black_box(rayon::join(|| (), || ()));
    });
    match CostModel::fit("bulk_build", &[(N, seq_ns)], &[(N, par_ns)], join_ns) {
        Some(m) => clamp_cutoff(m.crossover(MARGIN), BULK_RANGE.0, BULK_RANGE.1),
        None => BULK_FALLBACK,
    }
}

/// Probe batch admission: a ripple-insert loop of `m` keys vs the bulk slab
/// kernel on the same keys, overhead = the bulk kernel at trivial size (its
/// fixed slab-staging and meld cost).
fn calibrate_batch() -> usize {
    const M: usize = 1024;
    const TINY: usize = 16;
    let keys = probe_keys(M);
    let mut pool: HeapPool<i64> = HeapPool::with_capacity(2 * M);
    // Warm both paths once so neither arm pays first-touch growth.
    let h = pool.from_keys(keys.iter().copied());
    pool.free_heap(h);
    let h = pool.from_keys_parallel_with(&keys, Engine::Sequential);
    pool.free_heap(h);
    let seq_ns = time_ns(3, || {
        let h = pool.from_keys(keys.iter().copied());
        pool.free_heap(std::hint::black_box(h));
    });
    let par_ns = time_ns(3, || {
        let h = pool.from_keys_parallel_with(&keys, Engine::Sequential);
        pool.free_heap(std::hint::black_box(h));
    });
    let overhead_ns = time_ns(8, || {
        let h = pool.from_keys_parallel_with(&keys[..TINY], Engine::Sequential);
        pool.free_heap(std::hint::black_box(h));
    });
    match CostModel::fit("batch_bulk", &[(M, seq_ns)], &[(M, par_ns)], overhead_ns) {
        Some(m) => clamp_cutoff(m.crossover(MARGIN), BATCH_RANGE.0, BATCH_RANGE.1),
        None => BATCH_FALLBACK,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_parse_and_clamp() {
        assert_eq!(parse_override("4096", (2, 1 << 16)), Some(4096));
        assert_eq!(parse_override(" 12 ", (2, 1 << 16)), Some(12));
        assert_eq!(parse_override("1", (2, 1 << 16)), Some(2));
        assert_eq!(parse_override("999999999", (2, 1 << 16)), Some(1 << 16));
        assert_eq!(parse_override("not-a-number", (2, 1 << 16)), None);
        assert_eq!(parse_override("", (2, 1 << 16)), None);
    }

    #[test]
    fn cutoffs_are_cached_and_in_range() {
        // First call calibrates (or reads the env override), later calls
        // return the identical cached value.
        let p1 = plan_par_cutoff();
        let b1 = bulk_join_cutoff();
        let m1 = batch_bulk_cutoff();
        assert_eq!(p1, plan_par_cutoff());
        assert_eq!(b1, bulk_join_cutoff());
        assert_eq!(m1, batch_bulk_cutoff());
        assert!((PLAN_RANGE.0..=PLAN_RANGE.1).contains(&p1), "plan {p1}");
        assert!((BULK_RANGE.0..=BULK_RANGE.1).contains(&b1), "bulk {b1}");
        assert!((BATCH_RANGE.0..=BATCH_RANGE.1).contains(&m1), "batch {m1}");
    }

    #[test]
    fn describe_mentions_every_cutoff() {
        let d = describe();
        assert!(d.contains("plan_par="));
        assert!(d.contains("bulk_join="));
        assert!(d.contains("batch_bulk="));
    }

    #[test]
    fn probes_produce_usable_fits() {
        // Run the probes directly (bypassing env overrides) — whatever the
        // host, the probe must come back with an in-range answer rather
        // than panicking or falling outside the clamps.
        let p = calibrate_plan();
        assert!((PLAN_RANGE.0..=PLAN_RANGE.1).contains(&p), "plan {p}");
        let b = calibrate_bulk();
        assert!((BULK_RANGE.0..=BULK_RANGE.1).contains(&b), "bulk {b}");
        let m = calibrate_batch();
        assert!((BATCH_RANGE.0..=BATCH_RANGE.1).contains(&m), "batch {m}");
    }
}
