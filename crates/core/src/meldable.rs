//! `MeldablePq` — the one trait every engine in the workspace speaks.
//!
//! Definition 1 of the paper names five operations (`Make-Queue`, `Insert`,
//! `Min`, `Extract-Min`, `Union`); the repo grew five engines each exposing
//! them with a different accent — `ParBinomialHeap` threads an [`Engine`]
//! through every call, `LazyBinomialHeap` returns `NodeId`s, pooled heaps
//! split the state between a [`HeapPool`] and a [`PooledHeap`] handle, and
//! the seqheaps baselines have their own `MeldableHeap` trait. This module
//! is the unification: one engine-less surface with provided bulk defaults,
//! so generic harnesses (the differential fuzzer, the service layer's
//! oracle) dispatch over *any* backend with zero per-engine duplication.
//!
//! Engine selection moves into the value: `ParBinomialHeap::with_engine` /
//! `HeapPool::with_engine` pick the planner once at construction, and the
//! trait methods use it. The explicit-engine inherent methods remain for
//! call sites that mix planners.
//!
//! ```
//! use meldpq::{MeldablePq, ParBinomialHeap, PoolGuard};
//!
//! fn drain_two<Q: MeldablePq<i64>>(mut a: Q, b: Q) -> Vec<i64> {
//!     a.meld(b);
//!     a.drain_sorted()
//! }
//!
//! let a = ParBinomialHeap::from_keys([3, 1]);
//! let b = ParBinomialHeap::from_keys([2]);
//! assert_eq!(drain_two(a, b), vec![1, 2, 3]);
//!
//! let mut pa = PoolGuard::new();
//! pa.multi_insert(&[3, 1]);
//! let mut pb = PoolGuard::new();
//! pb.insert(2);
//! assert_eq!(drain_two(pa, pb), vec![1, 2, 3]);
//! ```

use crate::heap::{Engine, ParBinomialHeap};
use crate::lazy::LazyBinomialHeap;
use crate::pool::{HeapPool, PooledHeap};

/// A meldable priority queue: the paper's Definition 1 surface plus the
/// bulk operations (`Multi-Insert` / `Multi-Extract-Min`) that the batched
/// engines accelerate. Object safe — harnesses hold `Box<dyn MeldablePq<K>>`.
///
/// `peek_min` takes `&mut self` because the lazy engine tidies (and meters)
/// on reads; pure engines simply ignore the mutability.
pub trait MeldablePq<K: Ord + Copy> {
    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Whether the queue holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `Insert(Q, x)`: add a key.
    fn insert(&mut self, key: K);

    /// `Min(Q)`: the minimum key without removing it.
    fn peek_min(&mut self) -> Option<K>;

    /// `Extract-Min(Q)`: remove and return the minimum key.
    fn extract_min(&mut self) -> Option<K>;

    /// `Union(Q1, Q2)`: absorb all keys of `other`, destroying it (by move),
    /// as the paper's Union destroys its arguments.
    fn meld(&mut self, other: Self)
    where
        Self: Sized;

    /// `Multi-Insert`: add a batch of keys. Default: one `insert` per key;
    /// bulk engines override with a parallel build + single meld.
    fn multi_insert(&mut self, keys: &[K]) {
        for &k in keys {
            self.insert(k);
        }
    }

    /// Build a queue from `keys` and meld it in — the shape of the
    /// differential fuzzer's `Meld` op. Default: [`Self::multi_insert`].
    fn meld_from_keys(&mut self, keys: &[K]) {
        self.multi_insert(keys);
    }

    /// `Multi-Extract-Min`: remove and return the `k` smallest keys in
    /// ascending order. Default: `k` sequential extracts; bulk engines
    /// override with the root-frontier peel.
    fn multi_extract_min(&mut self, k: usize) -> Vec<K> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        for _ in 0..k {
            match self.extract_min() {
                Some(x) => out.push(x),
                None => break,
            }
        }
        out
    }

    /// Drain everything in ascending order.
    fn drain_sorted(&mut self) -> Vec<K> {
        let n = self.len();
        self.multi_extract_min(n)
    }
}

// NOTE: inherent methods shadow trait methods of the same name on concrete
// receivers, so every body below calls the inherent op fully qualified.

impl<K: Ord + Copy + Send + Sync> MeldablePq<K> for ParBinomialHeap<K> {
    fn len(&self) -> usize {
        ParBinomialHeap::len(self)
    }

    fn insert(&mut self, key: K) {
        // A singleton Union through the configured planner, so a
        // `with_engine(Engine::Rayon)` queue exercises the rayon planner on
        // every op — not just on melds.
        let engine = self.engine();
        ParBinomialHeap::meld(self, ParBinomialHeap::from_keys([key]), engine);
    }

    fn peek_min(&mut self) -> Option<K> {
        ParBinomialHeap::min(self)
    }

    fn extract_min(&mut self) -> Option<K> {
        let engine = self.engine();
        ParBinomialHeap::extract_min(self, engine)
    }

    fn meld(&mut self, other: Self) {
        let engine = self.engine();
        ParBinomialHeap::meld(self, other, engine);
    }

    fn multi_insert(&mut self, keys: &[K]) {
        let engine = self.engine();
        ParBinomialHeap::multi_insert_with(self, keys, engine);
    }

    fn multi_extract_min(&mut self, k: usize) -> Vec<K> {
        let engine = self.engine();
        ParBinomialHeap::multi_extract_min(self, k, engine)
    }
}

impl MeldablePq<i64> for LazyBinomialHeap {
    fn len(&self) -> usize {
        LazyBinomialHeap::len(self)
    }

    fn insert(&mut self, key: i64) {
        let _ = LazyBinomialHeap::insert(self, key);
    }

    fn peek_min(&mut self) -> Option<i64> {
        LazyBinomialHeap::min(self)
    }

    fn extract_min(&mut self) -> Option<i64> {
        LazyBinomialHeap::extract_min(self)
    }

    fn meld(&mut self, other: Self) {
        LazyBinomialHeap::meld(self, other);
    }

    fn meld_from_keys(&mut self, keys: &[i64]) {
        let batch = LazyBinomialHeap::from_keys_fast(self.processors(), keys.iter().copied());
        LazyBinomialHeap::meld(self, batch);
    }
}

/// An owning pool-plus-handle pair: the `O(log n)` zero-copy pooled engine
/// behind the engine-less [`MeldablePq`] surface.
///
/// [`HeapPool`] deliberately splits state (one slab, many handles); this
/// guard re-joins a pool with its *single* heap so the pair can be passed
/// around as one value. Melding two guards is the cross-pool fallback
/// (counted moves); `multi_insert` stays zero-copy because the batch builds
/// in this guard's own slab.
#[derive(Debug)]
pub struct PoolGuard<K = i64> {
    pool: HeapPool<K>,
    heap: PooledHeap,
}

impl<K: Ord + Copy + Send + Sync> Default for PoolGuard<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy + Send + Sync> PoolGuard<K> {
    /// An empty queue in a fresh pool (sequential planning).
    pub fn new() -> Self {
        let pool = HeapPool::new();
        let heap = pool.new_heap();
        PoolGuard { pool, heap }
    }

    /// Builder: pick the pool's default planning engine.
    pub fn with_engine(engine: Engine) -> Self {
        let pool = HeapPool::new().with_engine(engine);
        let heap = pool.new_heap();
        PoolGuard { pool, heap }
    }

    /// Build from keys with the pool's parallel slab builder.
    pub fn from_keys(keys: &[K]) -> Self {
        let mut pool = HeapPool::with_capacity(keys.len());
        let heap = pool.from_keys_parallel(keys);
        PoolGuard { pool, heap }
    }

    /// The underlying pool (stats, validation).
    pub fn pool(&self) -> &HeapPool<K> {
        &self.pool
    }

    /// The underlying handle.
    pub fn heap(&self) -> &PooledHeap {
        &self.heap
    }

    /// Split back into pool + handle.
    pub fn into_parts(self) -> (HeapPool<K>, PooledHeap) {
        (self.pool, self.heap)
    }

    /// Deep structural validation of the guarded heap.
    pub fn validate(&self) -> Result<(), String> {
        self.pool.validate_heap(&self.heap)
    }
}

impl<K: Ord + Copy + Send + Sync> MeldablePq<K> for PoolGuard<K> {
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn insert(&mut self, key: K) {
        self.pool.insert(&mut self.heap, key);
    }

    fn peek_min(&mut self) -> Option<K> {
        self.pool.min(&self.heap)
    }

    fn extract_min(&mut self) -> Option<K> {
        self.pool.extract_min(&mut self.heap)
    }

    fn meld(&mut self, mut other: Self) {
        self.pool
            .meld_cross_pool(&mut self.heap, &mut other.pool, other.heap);
    }

    fn multi_insert(&mut self, keys: &[K]) {
        let batch = self.pool.from_keys_parallel(keys);
        self.pool.meld(&mut self.heap, batch);
    }

    fn multi_extract_min(&mut self, k: usize) -> Vec<K> {
        self.pool.multi_extract_min(&mut self.heap, k)
    }
}

/// The PRAM-measured engine behind the [`MeldablePq`] surface: every op is
/// planned on the `p`-processor EREW simulator and its Theorem-1 cost lands
/// on the heap's ledger ([`ParBinomialHeap::pram_ledger`]).
#[derive(Debug, Clone)]
pub struct PramMeasured {
    heap: ParBinomialHeap<i64>,
    p: usize,
}

impl PramMeasured {
    /// An empty measured queue assuming `p` processors.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1);
        PramMeasured {
            heap: ParBinomialHeap::new(),
            p,
        }
    }

    /// Processors assumed for cost accounting.
    pub fn processors(&self) -> usize {
        self.p
    }

    /// The cumulative Theorem-1 cost so far (implements `obs::Recorder`).
    pub fn cost(&self) -> pram::Cost {
        *self.heap.pram_ledger()
    }

    /// Borrow the underlying heap (validation, inspection).
    pub fn heap(&self) -> &ParBinomialHeap<i64> {
        &self.heap
    }
}

impl MeldablePq<i64> for PramMeasured {
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn insert(&mut self, key: i64) {
        self.heap.insert_pram(key, self.p);
    }

    fn peek_min(&mut self) -> Option<i64> {
        // Reads are free in the ledger model (the fuzzer compares only
        // mutation costs); the unmeasured root scan keeps it that way.
        self.heap.min()
    }

    fn extract_min(&mut self) -> Option<i64> {
        self.heap.extract_min_pram(self.p)
    }

    fn meld(&mut self, other: Self) {
        self.heap.meld_pram(other.heap, self.p);
    }

    fn meld_from_keys(&mut self, keys: &[i64]) {
        let batch = ParBinomialHeap::from_keys(keys.iter().copied());
        self.heap.meld_pram(batch, self.p);
    }

    fn multi_insert(&mut self, keys: &[i64]) {
        self.heap.multi_insert_pram(keys, self.p);
    }
}

// One impl per seqheaps baseline. A blanket
// `impl<H: seqheaps::MeldableHeap<K>> MeldablePq<K> for H` would be rejected
// by coherence (E0119) next to the local-type impls above, so a macro stamps
// them out instead.
macro_rules! impl_meldable_for_seqheap {
    ($($ty:ident),+ $(,)?) => {$(
        impl<K: Ord + Copy> MeldablePq<K> for seqheaps::$ty<K> {
            fn len(&self) -> usize {
                seqheaps::MeldableHeap::len(self)
            }
            fn insert(&mut self, key: K) {
                seqheaps::MeldableHeap::insert(self, key);
            }
            fn peek_min(&mut self) -> Option<K> {
                seqheaps::MeldableHeap::min(self).copied()
            }
            fn extract_min(&mut self) -> Option<K> {
                seqheaps::MeldableHeap::extract_min(self)
            }
            fn meld(&mut self, other: Self) {
                seqheaps::MeldableHeap::meld(self, other);
            }
        }
    )+};
}

impl_meldable_for_seqheap!(
    BinomialHeap,
    LeftistHeap,
    SkewHeap,
    PairingHeap,
    BinaryHeapAdapter,
    HollowHeap,
);

impl<K: Ord + Copy, const D: usize> MeldablePq<K> for seqheaps::DaryHeap<K, D> {
    fn len(&self) -> usize {
        seqheaps::MeldableHeap::len(self)
    }
    fn insert(&mut self, key: K) {
        seqheaps::MeldableHeap::insert(self, key);
    }
    fn peek_min(&mut self) -> Option<K> {
        seqheaps::MeldableHeap::min(self).copied()
    }
    fn extract_min(&mut self) -> Option<K> {
        seqheaps::MeldableHeap::extract_min(self)
    }
    fn meld(&mut self, other: Self) {
        seqheaps::MeldableHeap::meld(self, other);
    }
}

impl<K: Ord + Copy, const D: usize> MeldablePq<K> for seqheaps::IndexedDaryHeap<K, D> {
    fn len(&self) -> usize {
        seqheaps::MeldableHeap::len(self)
    }
    fn insert(&mut self, key: K) {
        seqheaps::MeldableHeap::insert(self, key);
    }
    fn peek_min(&mut self) -> Option<K> {
        seqheaps::MeldableHeap::min(self).copied()
    }
    fn extract_min(&mut self) -> Option<K> {
        seqheaps::MeldableHeap::extract_min(self)
    }
    fn meld(&mut self, other: Self) {
        seqheaps::MeldableHeap::meld(self, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqheaps::MeldableHeap;

    /// One generic driver exercising every trait method; each engine must
    /// produce the identical transcript.
    fn transcript<Q: MeldablePq<i64>>(mut q: Q, fresh: impl Fn(&[i64]) -> Q) -> Vec<i64> {
        let mut out = Vec::new();
        q.insert(5);
        q.insert(1);
        q.multi_insert(&[9, 3, 7]);
        out.push(q.peek_min().unwrap());
        out.push(q.extract_min().unwrap());
        q.meld(fresh(&[2, 8]));
        q.meld_from_keys(&[4, 6]);
        out.extend(q.multi_extract_min(3));
        out.push(q.len() as i64);
        out.extend(q.drain_sorted());
        assert!(q.is_empty());
        out
    }

    fn expected() -> Vec<i64> {
        // peek 1, extract 1, multi-extract [2,3,4], len 5, drain [5..=9].
        vec![1, 1, 2, 3, 4, 5, 5, 6, 7, 8, 9]
    }

    #[test]
    fn par_heap_both_engines() {
        for e in [Engine::Sequential, Engine::Rayon] {
            let got = transcript(ParBinomialHeap::new().with_engine(e), |ks| {
                ParBinomialHeap::from_keys(ks.iter().copied()).with_engine(e)
            });
            assert_eq!(got, expected(), "{e:?}");
        }
    }

    #[test]
    fn lazy_heap() {
        let got = transcript(LazyBinomialHeap::new(3), |ks| {
            LazyBinomialHeap::from_keys_fast(3, ks.iter().copied())
        });
        assert_eq!(got, expected());
    }

    #[test]
    fn pool_guard() {
        let got = transcript(PoolGuard::new(), PoolGuard::from_keys);
        assert_eq!(got, expected());
        let got = transcript(PoolGuard::with_engine(Engine::Rayon), PoolGuard::from_keys);
        assert_eq!(got, expected());
    }

    #[test]
    fn pram_measured_accumulates_cost() {
        let mut q = PramMeasured::new(3);
        let got = transcript(
            PramMeasured {
                heap: ParBinomialHeap::new(),
                p: 3,
            },
            |ks| {
                let mut f = PramMeasured::new(3);
                f.multi_insert(ks);
                f
            },
        );
        assert_eq!(got, expected());
        q.multi_insert(&[4, 2, 7]);
        q.extract_min();
        let c = q.cost();
        assert!(c.time > 0 && c.work >= c.time);
    }

    #[test]
    fn seqheaps_backends() {
        assert_eq!(
            transcript(seqheaps::BinomialHeap::new(), |ks| {
                seqheaps::BinomialHeap::from_iter_keys(ks.iter().copied())
            }),
            expected()
        );
        assert_eq!(
            transcript(seqheaps::LeftistHeap::new(), |ks| {
                seqheaps::LeftistHeap::from_iter_keys(ks.iter().copied())
            }),
            expected()
        );
        assert_eq!(
            transcript(seqheaps::DaryHeap::<i64, 4>::new(), |ks| {
                seqheaps::DaryHeap::from_iter_keys(ks.iter().copied())
            }),
            expected()
        );
    }

    #[test]
    fn object_safe() {
        let mut boxed: Vec<Box<dyn MeldablePq<i64>>> = vec![
            Box::new(ParBinomialHeap::new()),
            Box::new(LazyBinomialHeap::new(2)),
            Box::new(PoolGuard::new()),
            Box::new(seqheaps::SkewHeap::new()),
        ];
        for q in &mut boxed {
            q.multi_insert(&[3, 1, 2]);
            assert_eq!(q.extract_min(), Some(1));
            assert_eq!(q.len(), 2);
        }
    }
}
