//! Property-based tests of the §4 lazy heap: random mixes of every
//! operation against a multiset oracle, with invariant validation after
//! each step.

use meldpq::lazy::LazyBinomialHeap;
use meldpq::NodeId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    ExtractMin,
    /// Delete the i-th tracked handle (mod live handles).
    Delete(usize),
    /// Change-Key on the i-th tracked handle to a new value.
    ChangeKey(usize, i64),
    /// Meld in a small fresh heap.
    Meld(Vec<i64>),
    Min,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (-100_000i64..100_000).prop_map(Op::Insert),
        3 => Just(Op::ExtractMin),
        2 => any::<usize>().prop_map(Op::Delete),
        2 => (any::<usize>(), -100_000i64..100_000).prop_map(|(i, k)| Op::ChangeKey(i, k)),
        1 => proptest::collection::vec(-100_000i64..100_000, 0..8).prop_map(Op::Meld),
        1 => Just(Op::Min),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lazy_heap_full_mix_matches_oracle(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        p in 1usize..5,
    ) {
        let mut heap = LazyBinomialHeap::new(p);
        let mut oracle: Vec<i64> = Vec::new();
        // Handles become stale at Arrange-Heap; track (id, key) and verify
        // freshness before use.
        let mut handles: Vec<(NodeId, i64)> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(k) => {
                    handles.push((heap.insert(k), k));
                    oracle.push(k);
                }
                Op::ExtractMin => {
                    let got = heap.extract_min();
                    let want = oracle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, k)| **k)
                        .map(|(i, _)| i);
                    match want {
                        None => prop_assert_eq!(got, None),
                        Some(i) => prop_assert_eq!(got, Some(oracle.swap_remove(i))),
                    }
                }
                Op::Delete(i) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let idx = i % handles.len();
                    let (id, k) = handles.swap_remove(idx);
                    if heap.key_of(id) == Some(k) {
                        prop_assert_eq!(heap.delete(id), k);
                        let pos = oracle.iter().position(|&e| e == k).expect("tracked");
                        oracle.swap_remove(pos);
                    }
                }
                Op::ChangeKey(i, nk) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let idx = i % handles.len();
                    let (id, k) = handles.swap_remove(idx);
                    if heap.key_of(id) == Some(k) {
                        let new_id = heap.change_key(id, nk);
                        handles.push((new_id, nk));
                        let pos = oracle.iter().position(|&e| e == k).expect("tracked");
                        oracle.swap_remove(pos);
                        oracle.push(nk);
                    }
                }
                Op::Meld(keys) => {
                    let mut other = LazyBinomialHeap::new(p);
                    for &k in &keys {
                        other.insert(k);
                        oracle.push(k);
                    }
                    // Meld invalidates other's handles; ours survive unless
                    // an arrange fires inside meld — key_of checks handle it.
                    heap.meld(other);
                }
                Op::Min => {
                    prop_assert_eq!(heap.min(), oracle.iter().min().copied());
                }
            }
            prop_assert_eq!(heap.len(), oracle.len());
            heap.validate().expect("lazy invariants");
        }
        let mut expected = oracle;
        expected.sort_unstable();
        prop_assert_eq!(heap.into_sorted_vec(), expected);
    }

    /// Every operation appends nonnegative, plausible costs to the ledger.
    #[test]
    fn cost_ledger_is_monotone(keys in proptest::collection::vec(-1000i64..1000, 1..40)) {
        let mut heap = LazyBinomialHeap::new(2);
        let mut last_total = pram::Cost::ZERO;
        for &k in &keys {
            heap.insert(k);
            let t = heap.total_cost();
            prop_assert!(t.time >= last_total.time);
            prop_assert!(t.work >= t.time, "work >= time always (p >= 1)");
            last_total = t;
        }
    }
}
