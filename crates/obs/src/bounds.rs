//! Theorem-bound envelopes and the conformance checker.
//!
//! The paper's claims are cost claims, so the telemetry layer evaluates each
//! recorded operation against the theorem that covers it:
//!
//! * **Theorem 1** — `Union` (and the other basic operations) on the EREW
//!   PRAM: `O(log log n + log n / p)` time and `O(log n)` work.
//! * **Theorem 2** — lazy `Delete`/`Change-Key` on the CREW PRAM: amortized
//!   `O(log log n)` time and `O(log n)` work with
//!   `p = O(log n / log log n)` processors.
//! * **Theorem 3** — `b-Union` on the single-port `q`-cube:
//!   `O(log² n + b·log n·log b / 2^q)` communication time.
//!
//! Asymptotic bounds hide constants, so each [`Envelope`] carries an
//! explicit constant `c` *fitted at small n* ([`Envelope::fit`] takes
//! `(shape, measured)` calibration samples and keeps the max ratio). A
//! conformance check then reports `measured / (c · shape)` at the full
//! problem size: a ratio ≤ 1 means the small-n constant still covers the
//! large-n run; the configurable threshold (default
//! [`DEFAULT_THRESHOLD`]) allows bounded drift before a run is declared
//! non-conforming — a regressing schedule fails loudly instead of silently
//! losing its `O(log log n)` story.

use crate::json::J;
use std::fmt;

/// Default headroom on `measured / (c · shape)` before a row fails.
pub const DEFAULT_THRESHOLD: f64 = 1.5;

/// `log2` clamped so that the shapes stay positive and finite for `n ≥ 1`.
pub fn log2(n: f64) -> f64 {
    n.max(2.0).log2()
}

/// `log2 log2`, same clamping.
pub fn loglog2(n: f64) -> f64 {
    log2(log2(n))
}

/// Theorem 1 time shape: `log log n + log n / p`.
pub fn th1_union_time(n: f64, p: f64) -> f64 {
    loglog2(n) + log2(n) / p.max(1.0)
}

/// Theorem 1 work shape: `log n`.
pub fn th1_union_work(n: f64) -> f64 {
    log2(n)
}

/// Theorem 2 amortized-time shape: `log log n`.
pub fn th2_amortized_time(n: f64) -> f64 {
    loglog2(n)
}

/// Theorem 2 amortized-work shape: `log n`.
pub fn th2_amortized_work(n: f64) -> f64 {
    log2(n)
}

/// Theorem 3 `b-Union` communication-time shape:
/// `log² n + b·log n·log b / 2^q`.
pub fn th3_bunion_time(n: f64, b: f64, q: f64) -> f64 {
    let cube = (2.0_f64).powf(q.max(0.0));
    log2(n) * log2(n) + b.max(1.0) * log2(n) * log2(b) / cube
}

/// The paper's processor count for Theorems 1–2: `⌈log n / log log n⌉ ≥ 1`.
pub fn paper_p(n: usize) -> usize {
    ((log2(n as f64) / loglog2(n as f64)).ceil() as usize).max(1)
}

/// A theorem bound with an explicitly fitted constant.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Which theorem, e.g. `"theorem1"`.
    pub theorem: &'static str,
    /// Which metric of it, e.g. `"union.time"`.
    pub metric: &'static str,
    /// The fitted constant `c`.
    pub c: f64,
    /// Allowed `measured / (c · shape)` before a check fails.
    pub threshold: f64,
}

impl Envelope {
    /// Fit `c` as the max `measured / shape` over small-n calibration
    /// samples (each sample is `(shape value, measured value)`), with the
    /// default threshold. Degenerate samples (`shape ≤ 0`) are skipped;
    /// returns `None` when no usable sample remains (an empty or zero-ops
    /// calibration run) — a constant fitted from nothing would make every
    /// later check an artificial `VIOLATION`, so absence is made explicit
    /// instead. The constant is floored at a tiny epsilon so later ratios
    /// stay finite.
    pub fn fit(
        theorem: &'static str,
        metric: &'static str,
        samples: &[(f64, f64)],
    ) -> Option<Envelope> {
        let usable = samples.iter().filter(|(shape, _)| *shape > 0.0);
        let mut any = false;
        let c = usable
            .map(|(shape, measured)| {
                any = true;
                measured / shape
            })
            .fold(0.0, f64::max)
            .max(1e-9);
        any.then_some(Envelope {
            theorem,
            metric,
            c,
            threshold: DEFAULT_THRESHOLD,
        })
    }

    /// Same as [`Envelope::fit`] with an explicit threshold.
    pub fn fit_with_threshold(
        theorem: &'static str,
        metric: &'static str,
        samples: &[(f64, f64)],
        threshold: f64,
    ) -> Option<Envelope> {
        Envelope::fit(theorem, metric, samples).map(|e| Envelope { threshold, ..e })
    }

    /// Evaluate `measured` against `c · shape` at the full problem size.
    pub fn check(&self, label: &str, shape: f64, measured: f64) -> Conformance {
        let bound = self.c * shape;
        let ratio = if bound > 0.0 {
            measured / bound
        } else if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        Conformance {
            theorem: self.theorem,
            metric: self.metric,
            label: label.to_string(),
            measured,
            bound,
            ratio,
            threshold: self.threshold,
        }
    }
}

/// One measured-vs-bound row of the conformance report.
#[derive(Debug, Clone, PartialEq)]
pub struct Conformance {
    /// Which theorem.
    pub theorem: &'static str,
    /// Which metric.
    pub metric: &'static str,
    /// Operation/size label, e.g. `"n=4096 p=4"`.
    pub label: String,
    /// The measured value.
    pub measured: f64,
    /// The envelope value `c · shape` at this size.
    pub bound: f64,
    /// `measured / bound`.
    pub ratio: f64,
    /// The envelope's threshold.
    pub threshold: f64,
}

impl Conformance {
    /// Whether the row conforms: a finite ratio within the threshold.
    pub fn within(&self) -> bool {
        self.ratio.is_finite() && self.ratio <= self.threshold
    }

    /// JSON object for the report file.
    pub fn to_json(&self) -> J {
        J::obj([
            ("theorem", J::Str(self.theorem.to_string())),
            ("metric", J::Str(self.metric.to_string())),
            ("label", J::Str(self.label.clone())),
            ("measured", J::Num(self.measured)),
            ("bound", J::Num(self.bound)),
            ("ratio", J::Num(self.ratio)),
            ("threshold", J::Num(self.threshold)),
            ("within", J::Bool(self.within())),
        ])
    }
}

impl fmt::Display for Conformance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} {:<22} {:<18} measured={:<10.2} bound={:<10.2} ratio={:.3} [{}]",
            self.theorem,
            self.metric,
            self.label,
            self.measured,
            self.bound,
            self.ratio,
            if self.within() { "ok" } else { "VIOLATION" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_finite_and_monotone() {
        for &n in &[1.0, 2.0, 64.0, 1e6] {
            assert!(th1_union_time(n, 4.0).is_finite());
            assert!(th1_union_work(n) > 0.0);
            assert!(th2_amortized_time(n) > 0.0);
            assert!(th3_bunion_time(n, 8.0, 3.0) > 0.0);
        }
        assert!(th1_union_work(1e6) > th1_union_work(64.0));
        assert!(th3_bunion_time(1e6, 8.0, 3.0) > th3_bunion_time(64.0, 8.0, 3.0));
    }

    #[test]
    fn paper_p_small_values() {
        assert_eq!(paper_p(1), 1);
        assert!(paper_p(1 << 16) >= 4);
    }

    #[test]
    fn fit_takes_max_ratio_and_check_divides() {
        let env =
            Envelope::fit("theorem1", "union.time", &[(2.0, 6.0), (4.0, 8.0)]).expect("samples");
        assert!((env.c - 3.0).abs() < 1e-12);
        let row = env.check("n=64", 10.0, 15.0);
        assert!((row.bound - 30.0).abs() < 1e-9);
        assert!((row.ratio - 0.5).abs() < 1e-9);
        assert!(row.within());
        let bad = env.check("n=64", 10.0, 60.0);
        assert!(!bad.within());
        assert!(bad.to_json().to_string().contains(r#""within":false"#));
    }

    #[test]
    fn degenerate_calibration_yields_no_envelope() {
        // A zero-ops calibration (no samples, or only shape-0 samples) has
        // nothing to fit a constant from: the fit says so instead of
        // handing back an epsilon constant that fails every later check.
        assert_eq!(Envelope::fit("theorem2", "amortized.time", &[]), None);
        assert_eq!(
            Envelope::fit("theorem2", "amortized.time", &[(0.0, 5.0), (-1.0, 2.0)]),
            None
        );
        assert_eq!(
            Envelope::fit_with_threshold("theorem2", "amortized.time", &[(0.0, 5.0)], 2.0),
            None
        );
        // One usable sample among degenerates still fits.
        let env = Envelope::fit_with_threshold(
            "theorem2",
            "amortized.time",
            &[(0.0, 5.0), (2.0, 4.0)],
            2.0,
        )
        .expect("one usable sample");
        assert!((env.c - 2.0).abs() < 1e-12);
        assert!((env.threshold - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_bound_cases() {
        let env = Envelope::fit("theorem2", "amortized.time", &[(1.0, 1e-12)]).expect("sample");
        // A vanishing constant: zero measured conforms, nonzero does not.
        let ok = env.check("zero", 0.0, 0.0);
        assert!(ok.within());
        let bad = env.check("zero", 0.0, 1.0);
        assert!(!bad.within());
    }

    #[test]
    fn display_marks_violations() {
        let env = Envelope::fit("theorem3", "bunion.time", &[(1.0, 1.0)]).expect("sample");
        let row = env.check("q=3", 1.0, 10.0);
        let line = row.to_string();
        assert!(line.contains("VIOLATION"));
    }
}
