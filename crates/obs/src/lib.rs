#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # obs — the unified telemetry layer
//!
//! Every engine crate in the workspace charges its costs to a different
//! meter: the PRAM simulator returns `pram::Cost` time/work, the
//! sequential heaps count comparisons/links, the lazy operations charge a
//! `CostMeter`, and the hypercube counts rounds/messages/word-hops. This
//! crate is the leaf they all depend on so those meters can be *captured in
//! one place*:
//!
//! * [`span`] — nestable wall-clock spans at the algorithm's phase
//!   boundaries (`union/phase2`, `lazy/arrange_heap;bubble_up`,
//!   `dmpq/b_union;preprocess`, …). Compiled to zero-cost no-ops unless the
//!   `telemetry` feature is on, so the bench hot loops pay nothing.
//! * [`Recorder`]/[`Registry`] — the cross-crate meter registry; each meter
//!   family implements [`Recorder`] in its home crate.
//! * [`bounds`] — the Theorem 1–3 cost envelopes with explicitly fitted
//!   constants, and the measured-vs-bound conformance rows.
//! * [`calib`] — the same fitting discipline pointed at scheduling: affine
//!   sequential-vs-parallel cost models and the crossover cutoffs the hybrid
//!   kernels run on (instead of hardcoded thresholds).
//! * [`Telemetry`] — the run-level document tying spans + meters +
//!   conformance together, with hand-rolled JSON export ([`json::J`]) and a
//!   human-readable phase-tree rendering.
//!
//! The `meldpq-trace` binary in the `bench` crate is the reference consumer:
//! it runs a scripted workload and emits `reports/TELEMETRY_<workload>.json`.
//!
//! ```
//! let _root = obs::span("union/pram");
//! {
//!     let _p2 = obs::span("union/phase2");
//!     // ... segmented prefix minima ...
//! } // phase2 closes here
//! let spans = obs::take_spans(); // empty unless --features telemetry
//! assert!(spans.len() <= 2);
//! ```

pub mod bounds;
pub mod calib;
pub mod flight;
pub mod json;
pub mod latency;
pub mod recorder;
pub mod span;

pub use flight::TraceId;
pub use latency::LatencyHistogram;
pub use recorder::{Record, Recorder, Registry, Telemetry};
pub use span::{enabled, span, take_all_spans, take_spans, SpanGuard, SpanStat};
