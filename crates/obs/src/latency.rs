//! Log-bucketed latency histogram for the service layer's per-op timings.
//!
//! A fixed-shape histogram in the HdrHistogram family: buckets are powers of
//! two subdivided into `2^SUB_BITS` linear sub-buckets, giving a guaranteed
//! relative error of `2^-SUB_BITS` (6.25%) at every magnitude — accurate
//! enough for p50/p95/p99 tails while recording in O(1) with no allocation
//! on the hot path after warm-up. Thread-local histograms merge losslessly
//! ([`LatencyHistogram::merge`]), so client threads record contention-free
//! and the harness folds them at the end.

use crate::recorder::Recorder;

/// Sub-bucket resolution: each power-of-two range splits into `2^SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range.
const SUB: usize = 1 << SUB_BITS;

/// A latency histogram over `u64` samples (nanoseconds by convention).
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros();
    let shift = top - SUB_BITS;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    (top - SUB_BITS + 1) as usize * SUB + sub
}

/// Lower bound of the value range covered by bucket `idx` (the histogram's
/// reported quantiles are these conservative lower bounds).
fn bucket_value(idx: usize) -> u64 {
    let block = idx / SUB;
    let sub = (idx % SUB) as u64;
    if block == 0 {
        return sub;
    }
    (SUB as u64 + sub) << (block as u32 - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Counters saturate instead of wrapping, so a
    /// histogram that has been fed astronomically many samples degrades to
    /// pinned counts rather than corrupting its quantiles.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (lossless until counters
    /// saturate, at which point they pin at `u64::MAX`).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] = self.buckets[i].saturating_add(c);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (exact sum / count), `0` when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the bucket lower bound below
    /// which at least `q * count` samples fall. `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_value(i);
            }
        }
        self.max
    }
}

impl Recorder for LatencyHistogram {
    fn family(&self) -> &'static str {
        "latency.histogram"
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("count", self.count),
            ("mean_ns", self.mean()),
            ("p50_ns", self.quantile(0.50)),
            ("p95_ns", self.quantile(0.95)),
            ("p99_ns", self.quantile(0.99)),
            ("max_ns", self.max),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_continuous_and_monotone() {
        let mut prev = 0;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            prev = idx;
            let lo = bucket_value(idx);
            assert!(lo <= v, "lower bound {lo} above sample {v}");
            // Relative error bounded by one sub-bucket width.
            assert!(v - lo <= v >> SUB_BITS, "error too large at {v}");
        }
    }

    #[test]
    fn quantiles_on_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000);
        let p50 = h.quantile(0.5);
        // Bucket lower bounds under-report by at most 6.25%.
        assert!((4600..=5000).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((9200..=9900).contains(&p99), "p99={p99}");
        assert!(h.quantile(1.0) <= 10_000);
        assert!(h.mean() >= 4900 && h.mean() <= 5100);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [3u64, 17, 90_000, 5, 1 << 40, 0, 12_345] {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn recorder_fields() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        assert_eq!(h.family(), "latency.histogram");
        let fields = h.fields();
        assert_eq!(fields[0], ("count", 1));
        assert!(fields.iter().any(|&(k, _)| k == "p99_ns"));
    }
}
