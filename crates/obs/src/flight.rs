//! The always-on flight recorder: per-thread, lock-free, fixed-capacity
//! rings of compact structured events, cheap enough to leave enabled in
//! release builds.
//!
//! Post-hoc meters ([`crate::Recorder`]) answer "how much did it cost";
//! they cannot answer "what *sequence* of events preceded this failure" in
//! a concurrent system. This module records that sequence:
//!
//! * **[`TraceId`]** — a process-unique causal id minted at an operation's
//!   ingress and threaded (via an ambient per-thread scope) through every
//!   layer it touches, so one logical op's journey — service ingress →
//!   combiner → bulk kernel → dmpq `b-Union` rounds → transport retries —
//!   reconstructs from the event stream by filtering on one id.
//! * **[`FlightEvent`]** — a fixed-size record: relative timestamp, trace
//!   id, [`EventKind`], one argument word, recording thread.
//! * **Per-thread rings** — each thread writes to its own fixed-capacity
//!   ring through a seqlock (a version word per slot plus relaxed stores),
//!   so the hot path takes no lock and never allocates after the ring
//!   exists; the ring overwrites its oldest events when full. Readers
//!   ([`snapshot`], [`tail`]) skip slots whose version changed mid-read
//!   instead of blocking writers.
//!
//! Unlike [`crate::span`], none of this is feature-gated: the recorder is
//! compiled in always and guarded by a single relaxed [`set_enabled`]
//! switch, with a wall-clock gate in the bench suite holding the recorder's
//! overhead on a mixed service workload to ≤ 1.1× of recorder-off.
//!
//! ```
//! use obs::flight::{self, EventKind, TraceId};
//!
//! let t = TraceId::next();
//! let _scope = flight::trace_scope(t);
//! flight::record(flight::current(), EventKind::OpBegin, 1);
//! flight::record(flight::current(), EventKind::OpEnd, 1);
//! let events = flight::snapshot();
//! assert!(events.iter().any(|e| e.trace == t && e.kind == EventKind::OpEnd));
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::J;

/// Events each thread's ring retains (oldest overwritten beyond this).
pub const RING_CAPACITY: usize = 4096;

/// A process-unique causal trace id. `0` is reserved for "untraced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The untraced sentinel: events that belong to no logical operation.
    pub const NONE: TraceId = TraceId(0);

    /// Mint a fresh process-unique id (never [`TraceId::NONE`]).
    pub fn next() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id word.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this id names a real trace (not the untraced sentinel).
    pub fn is_traced(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What happened. The argument word's meaning is per-kind (batch length,
/// node index, retry attempt, …) and documented at each recording site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A logical operation entered the system (arg = operation code).
    OpBegin = 1,
    /// The operation's result was published (arg = operation code).
    OpEnd = 2,
    /// A combiner drained one ingress batch (arg = batch length).
    BatchFlush = 3,
    /// A thread became the combiner with work pending (arg = shard index).
    CombinerHandoff = 4,
    /// A ticket waiter parked on its completion slot (arg = shard index).
    TicketPark = 5,
    /// A parked waiter observed its published result (arg = shard index).
    TicketUnpark = 6,
    /// A coalesced batch was admitted to the bulk slab builder
    /// (arg = coalesced key count).
    BulkAdmission = 7,
    /// A coalesced pop demand was served by one multi-extract
    /// (arg = keys pulled).
    MultiExtract = 8,
    /// The transport retried an unacknowledged message (arg = receiver).
    NetRetry = 9,
    /// The transport discarded a duplicate delivery (arg = receiver).
    NetRedelivery = 10,
    /// A reliable round exhausted its retry budget (arg = blamed node).
    NetTimeout = 11,
    /// A dead processor's residents were rehomed (arg = node count).
    NetRehome = 12,
    /// A logical op was appended to a write-ahead log (arg = record bytes).
    WalAppend = 13,
    /// A durability checkpoint was written (arg = checkpoint sequence).
    Checkpoint = 14,
    /// A pool or shard recovered from its log (arg = ops replayed).
    Recover = 15,
}

impl EventKind {
    /// Stable lower-case name (used by the JSON export and renderers).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::OpBegin => "op_begin",
            EventKind::OpEnd => "op_end",
            EventKind::BatchFlush => "batch_flush",
            EventKind::CombinerHandoff => "combiner_handoff",
            EventKind::TicketPark => "ticket_park",
            EventKind::TicketUnpark => "ticket_unpark",
            EventKind::BulkAdmission => "bulk_admission",
            EventKind::MultiExtract => "multi_extract",
            EventKind::NetRetry => "net_retry",
            EventKind::NetRedelivery => "net_redelivery",
            EventKind::NetTimeout => "net_timeout",
            EventKind::NetRehome => "net_rehome",
            EventKind::WalAppend => "wal_append",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Recover => "recover",
        }
    }

    fn from_word(w: u64) -> Option<EventKind> {
        Some(match w {
            1 => EventKind::OpBegin,
            2 => EventKind::OpEnd,
            3 => EventKind::BatchFlush,
            4 => EventKind::CombinerHandoff,
            5 => EventKind::TicketPark,
            6 => EventKind::TicketUnpark,
            7 => EventKind::BulkAdmission,
            8 => EventKind::MultiExtract,
            9 => EventKind::NetRetry,
            10 => EventKind::NetRedelivery,
            11 => EventKind::NetTimeout,
            12 => EventKind::NetRehome,
            13 => EventKind::WalAppend,
            14 => EventKind::Checkpoint,
            15 => EventKind::Recover,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the process's first recorded event (monotonic).
    pub ts_nanos: u64,
    /// The causal trace this event belongs to ([`TraceId::NONE`] = none).
    pub trace: TraceId,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument word.
    pub arg: u64,
    /// Index of the recording thread's ring (stable for a thread's life).
    pub thread: usize,
}

const WORDS: usize = 4;

/// One ring slot: a seqlock version word plus the event's four words
/// (timestamp, trace, kind, arg). The version is odd while the owning
/// thread rewrites the slot; readers that observe an odd or changed version
/// drop the slot instead of blocking.
struct Slot {
    seq: AtomicU64,
    w: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            w: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A single-writer ring. Only the owning thread writes; any thread may read.
struct Ring {
    slots: Box<[Slot]>,
    /// Total events ever written by the owner (monotonic).
    head: AtomicU64,
    /// Owning thread's name at registration, for rendering.
    thread_name: String,
}

impl Ring {
    fn new(thread_name: String) -> Ring {
        Ring {
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            thread_name,
        }
    }

    /// Single-writer push (owner thread only).
    fn push(&self, ts: u64, trace: u64, kind: u64, arg: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        // Odd version = write in progress; readers bail out.
        slot.seq.store(2 * h + 1, Ordering::Release);
        slot.w[0].store(ts, Ordering::Relaxed);
        slot.w[1].store(trace, Ordering::Relaxed);
        slot.w[2].store(kind, Ordering::Relaxed);
        slot.w[3].store(arg, Ordering::Relaxed);
        slot.seq.store(2 * h + 2, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Read every intact retained event, oldest first.
    fn read(&self, thread: usize, out: &mut Vec<FlightEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        for h in start..head {
            let slot = &self.slots[(h % cap) as usize];
            let v1 = slot.seq.load(Ordering::Acquire);
            if v1 != 2 * h + 2 {
                continue; // overwritten or mid-write
            }
            let ts = slot.w[0].load(Ordering::Relaxed);
            let trace = slot.w[1].load(Ordering::Relaxed);
            let kind = slot.w[2].load(Ordering::Relaxed);
            let arg = slot.w[3].load(Ordering::Relaxed);
            let v2 = slot.seq.load(Ordering::Acquire);
            if v1 != v2 {
                continue; // torn: the owner lapped us mid-read
            }
            let Some(kind) = EventKind::from_word(kind) else {
                continue;
            };
            out.push(FlightEvent {
                ts_nanos: ts,
                trace: TraceId(trace),
                kind,
                arg,
                thread,
            });
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static ENABLED: AtomicBool = AtomicBool::new(true);

thread_local! {
    static RING: std::cell::RefCell<Option<Arc<Ring>>> =
        const { std::cell::RefCell::new(None) };
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// Turn recording on or off process-wide (on by default). The hot path
/// reduces to one relaxed load when off — this is what the bench overhead
/// gate toggles to measure the recorder's cost.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the recorder's epoch (the first call in the process).
/// Always reads the clock, even when recording is disabled — callers use it
/// for latency arithmetic too, and sharing one read between a latency sample
/// and a [`record_at`] halves the hot path's clock traffic.
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Record one event into the calling thread's ring. Lock-free after the
/// thread's first event (which registers its ring); a no-op when disabled.
pub fn record(trace: TraceId, kind: EventKind, arg: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    record_at(now_nanos(), trace, kind, arg);
}

/// [`record`] with a caller-supplied timestamp from [`now_nanos`] — the
/// zero-extra-clock-read variant for paths that already timed themselves.
pub fn record_at(ts: u64, trace: TraceId, kind: EventKind, arg: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    RING.with(|cell| {
        let mut cell = cell.borrow_mut();
        let ring = cell.get_or_insert_with(|| {
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("{:?}", std::thread::current().id()));
            let ring = Arc::new(Ring::new(name));
            registry()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            ring
        });
        ring.push(ts, trace.0, kind as u64, arg);
    });
}

/// Record under the ambient trace (see [`trace_scope`]).
pub fn record_here(kind: EventKind, arg: u64) {
    record(current(), kind, arg);
}

/// The calling thread's ambient trace id ([`TraceId::NONE`] outside any
/// [`trace_scope`]).
pub fn current() -> TraceId {
    TraceId(CURRENT.with(|c| c.get()))
}

/// Guard restoring the previous ambient trace on drop (scopes nest).
#[must_use = "the ambient trace reverts when the scope drops"]
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Make `t` the calling thread's ambient trace until the guard drops.
/// Layers below the operation's ingress call [`current`] (or
/// [`record_here`]) to tag their events without any API threading.
pub fn trace_scope(t: TraceId) -> TraceScope {
    let prev = CURRENT.with(|c| c.replace(t.0));
    TraceScope { prev }
}

/// The ambient trace if one is set, else a freshly minted id — either way
/// scoped until the guard drops. This is how interior layers (the
/// distributed queue, the bulk kernels) stay reconstructible both when
/// driven through a traced front end and when driven directly.
pub fn ambient_or_new() -> (TraceId, TraceScope) {
    let cur = current();
    let t = if cur.is_traced() {
        cur
    } else {
        TraceId::next()
    };
    (t, trace_scope(t))
}

/// Snapshot every thread's retained events, oldest first (merged on the
/// recorded timestamp). Non-destructive: rings keep recording.
pub fn snapshot() -> Vec<FlightEvent> {
    let rings: Vec<Arc<Ring>> = registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut out = Vec::new();
    for (i, ring) in rings.iter().enumerate() {
        ring.read(i, &mut out);
    }
    out.sort_by_key(|e| e.ts_nanos);
    out
}

/// The last `n` events across all threads (the "attach to the assertion
/// failure" view).
pub fn tail(n: usize) -> Vec<FlightEvent> {
    let mut all = snapshot();
    let start = all.len().saturating_sub(n);
    all.drain(..start);
    all
}

/// Registered ring owners' thread names, indexed by [`FlightEvent::thread`].
pub fn thread_names() -> Vec<String> {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|r| r.thread_name.clone())
        .collect()
}

/// The events of one trace, in time order.
pub fn trace_timeline(events: &[FlightEvent], t: TraceId) -> Vec<FlightEvent> {
    events.iter().copied().filter(|e| e.trace == t).collect()
}

/// JSON document for a drained event set: `{"report":"flight", "threads":
/// [...], "events":[{ts_ns, trace, kind, arg, thread}, ...]}`.
pub fn to_json(events: &[FlightEvent]) -> J {
    J::obj([
        ("report", J::Str("flight".into())),
        (
            "threads",
            J::Arr(thread_names().into_iter().map(J::Str).collect()),
        ),
        (
            "events",
            J::Arr(
                events
                    .iter()
                    .map(|e| {
                        J::obj([
                            ("ts_ns", J::UInt(e.ts_nanos)),
                            ("trace", J::UInt(e.trace.raw())),
                            ("kind", J::Str(e.kind.name().into())),
                            ("arg", J::UInt(e.arg)),
                            ("thread", J::UInt(e.thread as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Render events as an indented text timeline (for panic messages).
pub fn render(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "  {:>12} ns  {:<8} {:<18} arg={} thread={}\n",
            e.ts_nanos,
            e.trace.to_string(),
            e.kind.name(),
            e.arg,
            e.thread
        ));
    }
    out
}

/// Write the current snapshot as JSON to `path` (used by the harnesses'
/// drain-on-failure hooks). Errors are reported, not propagated — a failed
/// dump must never mask the original failure.
pub fn dump(path: &std::path::Path) {
    let events = snapshot();
    let doc = to_json(&events);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, format!("{doc}\n")) {
        Ok(()) => eprintln!(
            "flight recorder: {} events drained to {}",
            events.len(),
            path.display()
        ),
        Err(e) => eprintln!("flight recorder: dump to {} failed: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The rings and the registry are process-global, so (as with the span
    // sink) everything that drains or toggles them lives in one test.
    #[test]
    fn record_snapshot_trace_scopes_and_disable() {
        // Ambient scoping nests and restores.
        assert_eq!(current(), TraceId::NONE);
        let outer = TraceId::next();
        let scope = trace_scope(outer);
        assert_eq!(current(), outer);
        {
            let (inner, _s) = ambient_or_new();
            assert_eq!(inner, outer, "ambient trace is reused, not replaced");
        }
        record_here(EventKind::OpBegin, 7);
        record_here(EventKind::NetRetry, 1);
        record_here(EventKind::NetRehome, 2);
        record_here(EventKind::OpEnd, 7);
        drop(scope);
        assert_eq!(current(), TraceId::NONE);
        let (fresh, scope2) = ambient_or_new();
        assert_ne!(fresh, outer, "no ambient trace mints a fresh id");
        drop(scope2);

        // The journey reconstructs from one trace id, in order.
        let events = snapshot();
        let line = trace_timeline(&events, outer);
        assert_eq!(line.len(), 4);
        assert_eq!(line[0].kind, EventKind::OpBegin);
        assert_eq!(line[1].kind, EventKind::NetRetry);
        assert_eq!(line[2].kind, EventKind::NetRehome);
        assert_eq!(line[3].kind, EventKind::OpEnd);
        assert!(line.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));

        // Cross-thread: events land in the spawning thread's own ring and
        // still merge into one snapshot.
        let t2 = TraceId::next();
        std::thread::spawn(move || {
            record(t2, EventKind::BatchFlush, 3);
        })
        .join()
        .expect("recorder thread");
        let events = snapshot();
        let remote = trace_timeline(&events, t2);
        assert_eq!(remote.len(), 1);
        assert_ne!(
            remote[0].thread, line[0].thread,
            "rings are per-thread, merged at snapshot"
        );
        assert!(thread_names().len() >= 2);

        // JSON and text renderings cover every event.
        let json = to_json(&events).to_string();
        assert!(json.contains("\"kind\":\"net_rehome\""));
        assert!(json.contains(&format!("\"trace\":{}", outer.raw())));
        assert!(render(&tail(2)).lines().count() == 2);

        // Disabled = nothing recorded, and the switch restores.
        let before = snapshot().len();
        set_enabled(false);
        record(TraceId::next(), EventKind::OpBegin, 0);
        assert!(!is_enabled());
        set_enabled(true);
        assert_eq!(snapshot().len(), before, "disabled recorder stays silent");
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let ring = Ring::new("test".into());
        let n = (RING_CAPACITY + 100) as u64;
        for i in 0..n {
            ring.push(i, 1, EventKind::OpBegin as u64, i);
        }
        let mut out = Vec::new();
        ring.read(0, &mut out);
        assert_eq!(out.len(), RING_CAPACITY);
        assert_eq!(out[0].arg, 100, "oldest 100 overwritten");
        assert_eq!(out.last().map(|e| e.arg), Some(n - 1));
    }

    #[test]
    fn torn_and_stale_slots_are_skipped() {
        let ring = Ring::new("test".into());
        ring.push(1, 1, EventKind::OpBegin as u64, 1);
        // Fake a write-in-progress on the slot: readers must drop it.
        ring.slots[0].seq.store(3, Ordering::Release);
        let mut out = Vec::new();
        ring.read(0, &mut out);
        assert!(out.is_empty(), "odd seqlock version must be skipped");
    }
}
