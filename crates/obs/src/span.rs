//! Nestable wall-clock spans, compiled to no-ops unless `--features
//! telemetry`.
//!
//! Usage: `let _sp = obs::span("union/phase2");` — the span closes when the
//! guard drops. Guards must drop in LIFO order (the natural shape when each
//! guard is a local), because nesting is tracked with a per-thread stack:
//! a span entered while another is open records under the path
//! `outer;inner`, so instrumentation points in lower layers (e.g. the
//! hypercube collectives) automatically attach below whatever higher-level
//! operation invoked them (e.g. `dmpq/b_union;preprocess;hc/sort`).
//!
//! With the feature **off**, [`span`] returns a zero-sized guard with no
//! `Drop` logic — the call inlines to nothing, which is what keeps the
//! `cargo bench` hot loops unaffected. With the feature **on**, every
//! closed span folds into a *per-thread* aggregation table keyed by full
//! path (`count`, total `nanos`): threads never contend on a shared sink.
//! [`take_spans`] drains only the calling thread's table (the right scope
//! for a single-threaded trace harness); [`take_all_spans`] drains every
//! thread's table — including threads that have already exited — and
//! merges rows by path, which is what a parallel workload wants.

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Full nesting path, segments joined by `';'` (segment names themselves
    /// may contain `'/'`, e.g. `lazy/arrange_heap;distance`).
    pub path: String,
    /// How many times a span with this path closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across those closings.
    pub nanos: u64,
}

/// Separator between nesting levels in a [`SpanStat::path`].
pub const PATH_SEP: char = ';';

#[cfg(feature = "telemetry")]
mod imp {
    use super::SpanStat;
    use std::cell::RefCell;
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    type Sink = Arc<Mutex<Vec<SpanStat>>>;

    thread_local! {
        static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        // The thread's own aggregation table. The registry holds a second
        // Arc, so rows written by a thread that has since exited are still
        // reachable from `take_all_spans`.
        static SINK: Sink = {
            let sink: Sink = Arc::new(Mutex::new(Vec::new()));
            registry()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&sink));
            sink
        };
    }

    fn registry() -> &'static Mutex<Vec<Sink>> {
        static REGISTRY: OnceLock<Mutex<Vec<Sink>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn fold(rows: &mut Vec<SpanStat>, path: String, count: u64, nanos: u64) {
        match rows.iter_mut().find(|r| r.path == path) {
            Some(r) => {
                r.count += count;
                r.nanos += nanos;
            }
            None => rows.push(SpanStat { path, count, nanos }),
        }
    }

    /// Live guard for one open span (telemetry build).
    #[must_use = "a span closes when its guard drops"]
    pub struct SpanGuard {
        start: Instant,
    }

    /// Open a span; it closes (and records) when the guard drops.
    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            start: Instant::now(),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let nanos = self.start.elapsed().as_nanos() as u64;
            let path = STACK.with(|s| {
                let mut st = s.borrow_mut();
                let path = st.join(&super::PATH_SEP.to_string());
                st.pop();
                path
            });
            SINK.with(|sink| {
                let mut rows = sink.lock().unwrap_or_else(|e| e.into_inner());
                fold(&mut rows, path, 1, nanos);
            });
        }
    }

    /// Drain the spans recorded *by the calling thread* (first-closed
    /// order). Spans closed on other threads are untouched — use
    /// [`take_all_spans`] to aggregate across threads.
    pub fn take_spans() -> Vec<SpanStat> {
        SINK.with(|sink| std::mem::take(&mut *sink.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Drain every thread's spans (including threads that already exited)
    /// and merge rows with equal paths. Row order follows registration
    /// order of the recording threads, then first-closed order within one.
    pub fn take_all_spans() -> Vec<SpanStat> {
        let sinks: Vec<Sink> = registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect();
        let mut out: Vec<SpanStat> = Vec::new();
        for sink in sinks {
            let rows = std::mem::take(&mut *sink.lock().unwrap_or_else(|e| e.into_inner()));
            for r in rows {
                fold(&mut out, r.path, r.count, r.nanos);
            }
        }
        out
    }

    /// Whether span recording is compiled in.
    pub const fn enabled() -> bool {
        true
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::SpanStat;

    /// Zero-sized guard (no-`Drop`): the whole span API inlines to nothing.
    #[must_use = "a span closes when its guard drops"]
    pub struct SpanGuard(());

    /// Open a span; a no-op in this build.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard(())
    }

    /// No spans are ever recorded in this build.
    pub fn take_spans() -> Vec<SpanStat> {
        Vec::new()
    }

    /// No spans are ever recorded in this build, on any thread.
    pub fn take_all_spans() -> Vec<SpanStat> {
        Vec::new()
    }

    /// Whether span recording is compiled in.
    pub const fn enabled() -> bool {
        false
    }
}

pub use imp::{enabled, span, take_all_spans, take_spans, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    // The sinks are process-global and the `take_*` calls drain them, so
    // everything exercising them lives in one test (unit tests run
    // concurrently).
    #[test]
    fn nesting_aggregation_and_noop_build() {
        let g = span("nesting-outer");
        let h = span("nesting-inner");
        drop(h);
        drop(g);
        for _ in 0..3 {
            let _g = span("agg-test");
        }
        // A span closed on another thread must NOT surface in this
        // thread's `take_spans`, only in `take_all_spans` — even after the
        // recording thread has exited.
        std::thread::spawn(|| {
            let _g = span("other-thread");
        })
        .join()
        .expect("span thread");
        let spans = take_spans();
        if enabled() {
            let inner = spans.iter().find(|r| r.path.contains("nesting-inner"));
            assert_eq!(
                inner.expect("inner recorded").path,
                "nesting-outer;nesting-inner"
            );
            assert!(spans.iter().any(|r| r.path == "nesting-outer"));
            let agg = spans.iter().find(|r| r.path == "agg-test").expect("agg");
            assert_eq!(agg.count, 3);
            assert!(
                !spans.iter().any(|r| r.path == "other-thread"),
                "take_spans must stay calling-thread-local"
            );
            let all = take_all_spans();
            let other = all.iter().find(|r| r.path == "other-thread");
            assert_eq!(other.map(|r| r.count), Some(1));
            // Own-thread rows were already drained above; a second drain of
            // everything is empty.
            assert!(take_all_spans().is_empty());
        } else {
            assert!(spans.is_empty());
        }
    }

    // The compiled-out path must be literally free: a zero-sized guard
    // with nothing to drop, and drains that always come back empty.
    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn compiled_out_path_is_zero_cost() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!std::mem::needs_drop::<SpanGuard>());
        assert!(!enabled());
        let _g = span("never-recorded");
        assert!(take_spans().is_empty());
        assert!(take_all_spans().is_empty());
    }
}
