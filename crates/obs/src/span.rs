//! Nestable wall-clock spans, compiled to no-ops unless `--features
//! telemetry`.
//!
//! Usage: `let _sp = obs::span("union/phase2");` — the span closes when the
//! guard drops. Guards must drop in LIFO order (the natural shape when each
//! guard is a local), because nesting is tracked with a per-thread stack:
//! a span entered while another is open records under the path
//! `outer;inner`, so instrumentation points in lower layers (e.g. the
//! hypercube collectives) automatically attach below whatever higher-level
//! operation invoked them (e.g. `dmpq/b_union;preprocess;hc/sort`).
//!
//! With the feature **off**, [`span`] returns a zero-sized guard with no
//! `Drop` logic — the call inlines to nothing, which is what keeps the
//! `cargo bench` hot loops unaffected. With the feature **on**, every closed
//! span is folded into a process-global aggregation table keyed by full path
//! (`count`, total `nanos`), drained by [`take_spans`].

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Full nesting path, segments joined by `';'` (segment names themselves
    /// may contain `'/'`, e.g. `lazy/arrange_heap;distance`).
    pub path: String,
    /// How many times a span with this path closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across those closings.
    pub nanos: u64,
}

/// Separator between nesting levels in a [`SpanStat::path`].
pub const PATH_SEP: char = ';';

#[cfg(feature = "telemetry")]
mod imp {
    use super::SpanStat;
    use std::cell::RefCell;
    use std::sync::Mutex;
    use std::time::Instant;

    thread_local! {
        static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    static SINK: Mutex<Vec<SpanStat>> = Mutex::new(Vec::new());

    /// Live guard for one open span (telemetry build).
    #[must_use = "a span closes when its guard drops"]
    pub struct SpanGuard {
        start: Instant,
    }

    /// Open a span; it closes (and records) when the guard drops.
    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            start: Instant::now(),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let nanos = self.start.elapsed().as_nanos() as u64;
            let path = STACK.with(|s| {
                let mut st = s.borrow_mut();
                let path = st.join(&super::PATH_SEP.to_string());
                st.pop();
                path
            });
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            match sink.iter_mut().find(|r| r.path == path) {
                Some(r) => {
                    r.count += 1;
                    r.nanos += nanos;
                }
                None => sink.push(SpanStat {
                    path,
                    count: 1,
                    nanos,
                }),
            }
        }
    }

    /// Drain every aggregated span recorded so far (first-closed order).
    pub fn take_spans() -> Vec<SpanStat> {
        std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Whether span recording is compiled in.
    pub const fn enabled() -> bool {
        true
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::SpanStat;

    /// Zero-sized guard (no-`Drop`): the whole span API inlines to nothing.
    #[must_use = "a span closes when its guard drops"]
    pub struct SpanGuard(());

    /// Open a span; a no-op in this build.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard(())
    }

    /// No spans are ever recorded in this build.
    pub fn take_spans() -> Vec<SpanStat> {
        Vec::new()
    }

    /// Whether span recording is compiled in.
    pub const fn enabled() -> bool {
        false
    }
}

pub use imp::{enabled, span, take_spans, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global and `take_spans` drains it, so everything
    // exercising it lives in one test (unit tests run concurrently).
    #[test]
    fn nesting_aggregation_and_noop_build() {
        let g = span("nesting-outer");
        let h = span("nesting-inner");
        drop(h);
        drop(g);
        for _ in 0..3 {
            let _g = span("agg-test");
        }
        let spans = take_spans();
        if enabled() {
            let inner = spans.iter().find(|r| r.path.contains("nesting-inner"));
            assert_eq!(
                inner.expect("inner recorded").path,
                "nesting-outer;nesting-inner"
            );
            assert!(spans.iter().any(|r| r.path == "nesting-outer"));
            let agg = spans.iter().find(|r| r.path == "agg-test").expect("agg");
            assert_eq!(agg.count, 3);
        } else {
            assert!(spans.is_empty());
        }
    }
}
