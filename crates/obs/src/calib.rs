//! Cutoff calibration: solving sequential-vs-parallel crossovers from
//! measured samples.
//!
//! The conformance envelopes ([`crate::bounds::Envelope`]) fit an explicit
//! constant to an asymptotic *shape*; this module applies the same fitting
//! discipline to the question every hybrid kernel asks: **below which input
//! size should the parallel path fall through to the sequential one?**
//! Guessed constants (the old `SEQ_THRESHOLD = 8 * 1024`) answer it for one
//! machine and rot on every other; a [`CostModel`] answers it from samples
//! measured on the machine the kernel is about to run on.
//!
//! The model is deliberately simple — an affine cost per path,
//!
//! ```text
//! seq(n) ≈ c_seq · n
//! par(n) ≈ overhead + c_par · n
//! ```
//!
//! with each constant fitted through [`Envelope::fit`] (max ratio over the
//! calibration samples, so the fit is conservative: it over-estimates the
//! path it argues *for*). The crossover is where the parallel line dips
//! under the sequential one:
//!
//! ```text
//! n* = overhead / (c_seq − c_par)        (c_par < c_seq)
//! n* = ∞                                  (otherwise — parallel never pays)
//! ```
//!
//! A hardware fact this encodes honestly: on a single-core host `c_par ≥
//! c_seq` (thread dispatch buys nothing), so calibration yields
//! [`Crossover::Never`] and every kernel built on it degenerates to its
//! sequential path — which is exactly the wall-clock-optimal schedule there.

use crate::bounds::Envelope;

/// Result of solving a sequential-vs-parallel cost crossover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Crossover {
    /// The parallel path starts paying at this input size.
    At(usize),
    /// The parallel path never pays on this machine (`c_par ≥ c_seq`).
    Never,
}

impl Crossover {
    /// The crossover as a plain cutoff: inputs strictly below it should run
    /// sequentially. [`Crossover::Never`] maps to `usize::MAX`.
    pub fn cutoff(self) -> usize {
        match self {
            Crossover::At(n) => n,
            Crossover::Never => usize::MAX,
        }
    }
}

/// An affine two-path cost model fitted from measured samples.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// What is being calibrated, e.g. `"bulk_build"`.
    pub name: &'static str,
    /// Fitted sequential cost per item (ns).
    pub c_seq: f64,
    /// Fitted parallel marginal cost per item (ns).
    pub c_par: f64,
    /// Fitted fixed parallel overhead (ns): dispatch, task spawn, stitch.
    pub overhead: f64,
}

impl CostModel {
    /// Fit the model from per-path samples.
    ///
    /// * `seq` — `(n, measured_ns)` runs of the sequential kernel;
    /// * `par` — `(n, measured_ns)` runs of the parallel kernel;
    /// * `overhead_ns` — directly measured fixed dispatch cost (e.g. timing
    ///   an empty `rayon::join`), folded in as the affine intercept.
    ///
    /// The per-item constants come from [`Envelope::fit`] with the linear
    /// shape `shape(n) = n`; the parallel samples have the overhead
    /// subtracted first (clamped at zero) so the intercept is not double
    /// counted. Returns `None` when either side has no usable sample.
    pub fn fit(
        name: &'static str,
        seq: &[(usize, f64)],
        par: &[(usize, f64)],
        overhead_ns: f64,
    ) -> Option<CostModel> {
        let lin = |s: &[(usize, f64)], sub: f64| -> Vec<(f64, f64)> {
            s.iter()
                .map(|&(n, ns)| (n as f64, (ns - sub).max(0.0)))
                .collect()
        };
        let e_seq = Envelope::fit(name, "calib.seq", &lin(seq, 0.0))?;
        let e_par = Envelope::fit(name, "calib.par", &lin(par, overhead_ns))?;
        Some(CostModel {
            name,
            c_seq: e_seq.c,
            c_par: e_par.c,
            overhead: overhead_ns.max(0.0),
        })
    }

    /// Solve the crossover (see the module docs). `margin` demands the
    /// parallel path win by that factor before it is chosen — `1.0` is the
    /// break-even point, `1.25` requires a 25% projected win, absorbing
    /// fit noise so a borderline machine stays sequential.
    pub fn crossover(&self, margin: f64) -> Crossover {
        let margin = margin.max(1.0);
        // Require c_seq · n ≥ margin · (overhead + c_par · n).
        let slope_gap = self.c_seq - margin * self.c_par;
        if slope_gap <= 0.0 || !slope_gap.is_finite() {
            return Crossover::Never;
        }
        let n = (margin * self.overhead / slope_gap).ceil();
        if !n.is_finite() || n >= usize::MAX as f64 {
            Crossover::Never
        } else {
            Crossover::At((n as usize).max(1))
        }
    }

    /// Projected cost of the sequential path at `n` (ns).
    pub fn seq_cost(&self, n: usize) -> f64 {
        self.c_seq * n as f64
    }

    /// Projected cost of the parallel path at `n` (ns).
    pub fn par_cost(&self, n: usize) -> f64 {
        self.overhead + self.c_par * n as f64
    }
}

/// Clamp a calibrated cutoff into `[lo, hi]` — kernels keep hard floors
/// (parallelism below a cache line is absurd) and ceilings (a pathological
/// calibration run must not serialize petabyte inputs) around the measured
/// value. `Never` crossovers saturate at `hi`... deliberately: the kernel's
/// *granularity* still needs a finite answer (chunk size, batch size) even
/// when the *dispatch* decision is "don't".
pub fn clamp_cutoff(c: Crossover, lo: usize, hi: usize) -> usize {
    c.cutoff().clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_solves_break_even() {
        // seq = 10 ns/item, par = 5 ns/item + 10_000 ns overhead:
        // break-even at 10n = 10_000 + 5n → n = 2000.
        let m = CostModel {
            name: "t",
            c_seq: 10.0,
            c_par: 5.0,
            overhead: 10_000.0,
        };
        assert_eq!(m.crossover(1.0), Crossover::At(2000));
        // A 2x margin: 10n ≥ 2(10_000 + 5n) → n = ∞ (slope gap zero).
        assert_eq!(m.crossover(2.0), Crossover::Never);
        // A 1.25x margin: 10n ≥ 1.25·10_000 + 6.25n → n = 3334.
        assert_eq!(m.crossover(1.25), Crossover::At(3334));
    }

    #[test]
    fn single_core_shape_never_crosses() {
        // Parallel marginal cost no better than sequential: Never, and the
        // cutoff saturates.
        let m = CostModel {
            name: "t",
            c_seq: 10.0,
            c_par: 10.0,
            overhead: 100.0,
        };
        assert_eq!(m.crossover(1.0), Crossover::Never);
        assert_eq!(m.crossover(1.0).cutoff(), usize::MAX);
        assert_eq!(clamp_cutoff(m.crossover(1.0), 64, 1 << 20), 1 << 20);
    }

    #[test]
    fn fit_subtracts_overhead_and_keeps_max_ratio() {
        let seq = [(1000usize, 10_000.0), (2000, 22_000.0)]; // 10, 11 ns/item
        let par = [(1000usize, 9_000.0), (2000, 12_000.0)]; // minus 4k: 5, 4
        let m = CostModel::fit("t", &seq, &par, 4_000.0).expect("samples");
        assert!((m.c_seq - 11.0).abs() < 1e-9, "max ratio wins: {}", m.c_seq);
        assert!((m.c_par - 5.0).abs() < 1e-9);
        assert!((m.overhead - 4_000.0).abs() < 1e-9);
        // 11n = 4000 + 5n → n = 667.
        assert_eq!(m.crossover(1.0), Crossover::At(667));
    }

    #[test]
    fn fit_requires_usable_samples() {
        assert_eq!(CostModel::fit("t", &[], &[(10, 1.0)], 0.0), None);
        assert_eq!(CostModel::fit("t", &[(10, 1.0)], &[], 0.0), None);
        // Overhead larger than every parallel sample clamps to zero marginal
        // cost — degenerate, surfaces as Never only via the epsilon floor.
        let m = CostModel::fit("t", &[(10, 100.0)], &[(10, 1.0)], 50.0).expect("fits");
        assert!(m.c_par <= 1e-9 + f64::EPSILON);
        assert!(matches!(m.crossover(1.0), Crossover::At(_)));
    }

    #[test]
    fn clamp_bounds_both_ends() {
        assert_eq!(clamp_cutoff(Crossover::At(10), 64, 4096), 64);
        assert_eq!(clamp_cutoff(Crossover::At(100_000), 64, 4096), 4096);
        assert_eq!(clamp_cutoff(Crossover::At(1000), 64, 4096), 1000);
    }
}
