//! Minimal JSON emission, shared by the telemetry documents and the bench
//! report binaries (which re-export [`J`] as `bench::json::J`). Deliberately
//! dependency-free: the values we emit are flat records of numbers and short
//! strings, so a hand-rolled printer beats pulling serde into every crate.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum J {
    /// Integer.
    Int(i64),
    /// Unsigned (kept separate to avoid lossy casts of u64 meters).
    UInt(u64),
    /// Float (serialised with enough precision for replotting).
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Array.
    Arr(Vec<J>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, J)>),
}

impl J {
    /// Object constructor from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, J)>>(pairs: I) -> J {
        J::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document produced by this module (or any conforming
    /// emitter). `null` parses to `J::Num(NAN)`, mirroring the emitter's
    /// non-finite-to-`null` mapping. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<J, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&J> {
        match self {
            J::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view of any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            J::Int(v) => Some(*v as f64),
            J::UInt(v) => Some(*v as f64),
            J::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            J::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[J]> {
        match self {
            J::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, v: J) -> Result<J, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<J, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(J::Str(self.string()?)),
            Some(b't') => self.lit("true", J::Bool(true)),
            Some(b'f') => self.lit("false", J::Bool(false)),
            Some(b'n') => self.lit("null", J::Num(f64::NAN)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<J, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(J::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(J::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<J, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(J::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(J::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (keeps multibyte UTF-8 intact).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<J, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            // Round-trip the emitter's Int/UInt split losslessly.
            if let Ok(v) = text.parse::<i64>() {
                return Ok(if v >= 0 && !text.starts_with('-') {
                    J::UInt(v as u64)
                } else {
                    J::Int(v)
                });
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(J::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(J::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for J {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            J::Int(v) => write!(f, "{v}"),
            J::UInt(v) => write!(f, "{v}"),
            J::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            J::Str(s) => escape(s, f),
            J::Bool(b) => write!(f, "{b}"),
            J::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            J::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Whether the process arguments request JSON output.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(J::Int(-5).to_string(), "-5");
        assert_eq!(J::UInt(7).to_string(), "7");
        assert_eq!(J::Bool(true).to_string(), "true");
        assert_eq!(J::Num(1.5).to_string(), "1.5");
        assert_eq!(J::Num(f64::NAN).to_string(), "null");
        assert_eq!(J::Str("a\"b\\c\nd".into()).to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nested_structures() {
        let v = J::obj([
            ("xs", J::Arr(vec![J::Int(1), J::Int(2)])),
            ("name", J::Str("t1".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"xs":[1,2],"name":"t1"}"#);
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let doc = J::obj([
            ("name", J::Str("meld/2^20".into())),
            ("mean_ns", J::Num(1234.5)),
            ("count", J::UInt(u64::MAX)),
            ("delta", J::Int(-3)),
            ("gate", J::Bool(true)),
            ("none", J::Num(f64::NAN)),
            ("tags", J::Arr(vec![J::Str("a\"b\nc".into()), J::UInt(0)])),
        ]);
        let parsed = J::parse(&doc.to_string()).expect("round trip");
        assert_eq!(parsed.get("name").and_then(J::as_str), Some("meld/2^20"));
        assert_eq!(parsed.get("mean_ns").and_then(J::as_f64), Some(1234.5));
        assert_eq!(parsed.get("count"), Some(&J::UInt(u64::MAX)));
        assert_eq!(parsed.get("delta"), Some(&J::Int(-3)));
        assert_eq!(parsed.get("gate"), Some(&J::Bool(true)));
        assert!(parsed
            .get("none")
            .and_then(J::as_f64)
            .is_some_and(f64::is_nan));
        let tags = parsed.get("tags").and_then(J::as_arr).expect("tags");
        assert_eq!(tags[0].as_str(), Some("a\"b\nc"));
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = J::parse(" { \"k\" : [ 1 , -2.5e1 , \"\\u00e9\\t\" ] }\n").expect("parse");
        let arr = v.get("k").and_then(J::as_arr).expect("arr");
        assert_eq!(arr[0], J::UInt(1));
        assert_eq!(arr[1], J::Num(-25.0));
        assert_eq!(arr[2].as_str(), Some("é\t"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(J::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = J::parse("[1, @]").expect_err("reject");
        assert!(err.to_string().contains("byte 4"), "{err}");
    }
}
