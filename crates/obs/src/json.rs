//! Minimal JSON emission, shared by the telemetry documents and the bench
//! report binaries (which re-export [`J`] as `bench::json::J`). Deliberately
//! dependency-free: the values we emit are flat records of numbers and short
//! strings, so a hand-rolled printer beats pulling serde into every crate.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum J {
    /// Integer.
    Int(i64),
    /// Unsigned (kept separate to avoid lossy casts of u64 meters).
    UInt(u64),
    /// Float (serialised with enough precision for replotting).
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Array.
    Arr(Vec<J>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, J)>),
}

impl J {
    /// Object constructor from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, J)>>(pairs: I) -> J {
        J::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for J {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            J::Int(v) => write!(f, "{v}"),
            J::UInt(v) => write!(f, "{v}"),
            J::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
            J::Str(s) => escape(s, f),
            J::Bool(b) => write!(f, "{b}"),
            J::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            J::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Whether the process arguments request JSON output.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(J::Int(-5).to_string(), "-5");
        assert_eq!(J::UInt(7).to_string(), "7");
        assert_eq!(J::Bool(true).to_string(), "true");
        assert_eq!(J::Num(1.5).to_string(), "1.5");
        assert_eq!(J::Num(f64::NAN).to_string(), "null");
        assert_eq!(J::Str("a\"b\\c\nd".into()).to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn nested_structures() {
        let v = J::obj([
            ("xs", J::Arr(vec![J::Int(1), J::Int(2)])),
            ("name", J::Str("t1".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"xs":[1,2],"name":"t1"}"#);
    }
}
