//! The meter registry: one place where every engine's cost counters land.
//!
//! The workspace grew four disconnected meter families — `pram::Cost`
//! (time/work), `seqheaps::OpStats` (comparisons/links), `meldpq`'s lazy
//! `CostMeter` and `hypercube::NetStats` (rounds/messages/word-hops plus the
//! per-link congestion profile). Each implements [`Recorder`] in its home
//! crate; a run-level [`Registry`] collects labelled snapshots of any of
//! them, and [`crate::Telemetry`] serialises the lot next to the span tree
//! and the bound-conformance rows.

use crate::json::J;
use crate::span::{SpanStat, PATH_SEP};

/// A meter that can dump itself as a flat record of named counters.
///
/// Implemented by `pram::Cost`, `seqheaps::OpStats`, `hypercube::NetStats`
/// and `meldpq::lazy::CostMeter` — the four meter families this trait
/// unifies. Implementations should report *cumulative* values; callers that
/// want per-operation numbers snapshot before/after and record the delta.
pub trait Recorder {
    /// Stable family name, e.g. `"pram.cost"` or `"hypercube.net"`.
    fn family(&self) -> &'static str;
    /// The counters, in a stable order.
    fn fields(&self) -> Vec<(&'static str, u64)>;
}

/// One labelled snapshot of a meter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The meter family (from [`Recorder::family`]).
    pub family: String,
    /// Caller-chosen label, e.g. `"union"` or `"lazy/take_up"`.
    pub label: String,
    /// Counter names and values.
    pub fields: Vec<(String, u64)>,
}

/// Insertion-ordered collection of meter snapshots for one run.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    records: Vec<Record>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot `meter` under `label`.
    pub fn record(&mut self, label: &str, meter: &dyn Recorder) {
        self.records.push(Record {
            family: meter.family().to_string(),
            label: label.to_string(),
            fields: meter
                .fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
    }

    /// Record a hand-built family (e.g. a congestion profile that is not a
    /// single flat meter).
    pub fn record_fields(&mut self, family: &str, label: &str, fields: Vec<(String, u64)>) {
        self.records.push(Record {
            family: family.to_string(),
            label: label.to_string(),
            fields,
        });
    }

    /// Everything recorded so far, in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The distinct families recorded, in first-seen order.
    pub fn families(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.records {
            if !out.contains(&r.family.as_str()) {
                out.push(&r.family);
            }
        }
        out
    }

    /// JSON array of the records.
    pub fn to_json(&self) -> J {
        J::Arr(
            self.records
                .iter()
                .map(|r| {
                    J::Obj(vec![
                        ("family".to_string(), J::Str(r.family.clone())),
                        ("label".to_string(), J::Str(r.label.clone())),
                        (
                            "fields".to_string(),
                            J::Obj(
                                r.fields
                                    .iter()
                                    .map(|(k, v)| (k.clone(), J::UInt(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// The run-level telemetry document: spans + meter registry + conformance.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Workload name (becomes part of the report file name).
    pub workload: String,
    /// Aggregated span statistics (drained from the span sink).
    pub spans: Vec<SpanStat>,
    /// Meter snapshots.
    pub registry: Registry,
    /// Bound-conformance rows (Theorems 1–3).
    pub conformance: Vec<crate::bounds::Conformance>,
}

impl Telemetry {
    /// An empty document for `workload`.
    pub fn new(workload: &str) -> Self {
        Telemetry {
            workload: workload.to_string(),
            ..Default::default()
        }
    }

    /// Whether every conformance ratio is finite and within its threshold.
    pub fn all_within(&self) -> bool {
        self.conformance.iter().all(|c| c.within())
    }

    /// The worst (largest) conformance ratio, `0.0` when none recorded.
    pub fn worst_ratio(&self) -> f64 {
        self.conformance.iter().map(|c| c.ratio).fold(0.0, f64::max)
    }

    /// The whole document as one JSON object.
    pub fn to_json(&self) -> J {
        J::obj([
            ("workload", J::Str(self.workload.clone())),
            ("telemetry_enabled", J::Bool(crate::span::enabled())),
            (
                "spans",
                J::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            J::obj([
                                ("path", J::Str(s.path.clone())),
                                ("count", J::UInt(s.count)),
                                ("nanos", J::UInt(s.nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("meters", self.registry.to_json()),
            (
                "conformance",
                J::Arr(self.conformance.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }

    /// Human-readable phase-tree summary: spans indented by nesting depth,
    /// then one line per meter record, then the conformance table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("telemetry [{}]\n", self.workload));
        if self.spans.is_empty() {
            out.push_str("  (no spans: build without --features telemetry)\n");
        }
        // Spans arrive in first-closed order; children close before their
        // parent, so print depth-first by path prefix instead.
        let mut paths: Vec<&SpanStat> = self.spans.iter().collect();
        paths.sort_by(|a, b| a.path.cmp(&b.path));
        for s in paths {
            let depth = s.path.matches(PATH_SEP).count();
            let name = s.path.rsplit(PATH_SEP).next().unwrap_or(&s.path);
            out.push_str(&format!(
                "  {:indent$}{name:<28} x{:<8} {:>12.3} ms\n",
                "",
                s.count,
                s.nanos as f64 / 1e6,
                indent = 2 * depth
            ));
        }
        for r in self.registry.records() {
            let fields: Vec<String> = r.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "  meter {:<18} {:<24} {}\n",
                r.family,
                r.label,
                fields.join(" ")
            ));
        }
        for c in &self.conformance {
            out.push_str(&format!("  {}\n", c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl Recorder for Fake {
        fn family(&self) -> &'static str {
            "fake.meter"
        }
        fn fields(&self) -> Vec<(&'static str, u64)> {
            vec![("a", 1), ("b", 2)]
        }
    }

    #[test]
    fn registry_records_and_serialises() {
        let mut reg = Registry::new();
        reg.record("op1", &Fake);
        reg.record_fields("net.links", "congestion", vec![("max".into(), 9)]);
        assert_eq!(reg.records().len(), 2);
        assert_eq!(reg.families(), vec!["fake.meter", "net.links"]);
        let s = reg.to_json().to_string();
        assert!(s.contains(r#""family":"fake.meter""#));
        assert!(s.contains(r#""a":1"#));
        assert!(s.contains(r#""max":9"#));
    }

    #[test]
    fn telemetry_document_shape() {
        let mut t = Telemetry::new("unit");
        t.registry.record("op1", &Fake);
        t.spans.push(SpanStat {
            path: "outer".into(),
            count: 1,
            nanos: 1_500_000,
        });
        t.spans.push(SpanStat {
            path: "outer;inner".into(),
            count: 2,
            nanos: 800_000,
        });
        let s = t.to_json().to_string();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains(r#""workload":"unit""#));
        assert!(s.contains(r#""path":"outer;inner""#));
        assert!(t.all_within(), "no conformance rows means nothing violated");
        let tree = t.render();
        assert!(tree.contains("outer"));
        assert!(tree.contains("inner"));
        assert!(tree.contains("fake.meter"));
    }
}
