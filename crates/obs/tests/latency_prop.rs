//! Edge-case and property coverage for `obs::LatencyHistogram`: empty and
//! single-sample quantiles, saturating counter overflow, and merge
//! associativity / recording-equivalence under arbitrary sample splits.

#![allow(clippy::unwrap_used)] // test code: panics are the failure mode

use obs::LatencyHistogram;
use proptest::prelude::*;

#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = LatencyHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0, "empty histogram must report 0 at q={q}");
    }
}

#[test]
fn single_sample_dominates_every_quantile() {
    for v in [0u64, 1, 15, 16, 17, 1_000_000, u64::MAX] {
        let mut h = LatencyHistogram::new();
        h.record(v);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), v);
        assert_eq!(h.mean(), v);
        for q in [0.0, 0.5, 1.0] {
            let got = h.quantile(q);
            assert!(got <= v, "quantile above the only sample ({got} > {v})");
            // Bucket lower bounds under-report by at most one sub-bucket
            // (6.25%).
            assert!(got >= v - (v >> 4), "quantile too far below {v}: {got}");
        }
    }
}

#[test]
fn counters_saturate_instead_of_wrapping() {
    // Doubling a histogram by self-merge 64 times drives every counter
    // past u64::MAX; saturation must pin them, not wrap to small values.
    let mut h = LatencyHistogram::new();
    h.record(100);
    h.record(u64::MAX); // sum saturates immediately
    for _ in 0..64 {
        let snapshot = h.clone();
        h.merge(&snapshot);
    }
    assert_eq!(h.count(), u64::MAX, "count must pin at u64::MAX");
    assert_eq!(h.max(), u64::MAX);
    assert!(h.mean() >= 1, "saturated mean stays sane");
    assert!(
        h.quantile(0.99) > 0,
        "quantiles remain usable after saturation"
    );

    // Same overflow path through `record` on an already-pinned histogram.
    h.record(100);
    assert_eq!(h.count(), u64::MAX, "record must also saturate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-thread histograms is equivalent to recording every
    /// sample into one histogram, regardless of how samples are split.
    #[test]
    fn merge_matches_combined_recording(
        samples in proptest::collection::vec((0u64..1 << 48, 0usize..3), 0..200),
    ) {
        let mut parts = [
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        ];
        let mut whole = LatencyHistogram::new();
        for &(v, part) in &samples {
            parts[part].record(v);
            whole.record(v);
        }
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(merged.mean(), whole.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(0u64..1 << 40, 0..80),
        ys in proptest::collection::vec(0u64..1 << 40, 0..80),
        zs in proptest::collection::vec(0u64..1 << 40, 0..80),
    ) {
        let build = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.max(), right.max());
        prop_assert_eq!(left.mean(), right.mean());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }
    }
}
