//! The admission layer: requests, completion slots and the per-shard
//! ingress buffer.
//!
//! This is the shared-memory rendition of the paper's I/O-processor front
//! end: clients deposit operations into a *Waiting* buffer (the
//! [`Ingress`]); whichever thread wins the shard's state lock becomes the
//! combiner, drains the whole buffer as one batch (the *Forehead*), executes
//! it against the shard's [`meldpq::HeapPool`] with the bulk kernels, and
//! publishes each result through its [`OpSlot`].

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use obs::flight;
use obs::TraceId;

use crate::service::QueueId;
use crate::ServiceError;

/// One queued operation. `Meld` is absent by design: it spans two queues
/// (possibly two shards) and is executed by the service front end under both
/// shard locks instead of through a single shard's ingress.
#[derive(Debug, Clone)]
pub enum Request {
    /// `Insert(Q, x)`.
    Insert {
        /// Target queue.
        queue: QueueId,
        /// Key to add.
        key: i64,
    },
    /// `Multi-Insert(Q, keys)`.
    MultiInsert {
        /// Target queue.
        queue: QueueId,
        /// Keys to add.
        keys: Vec<i64>,
    },
    /// `Extract-Min(Q)`.
    ExtractMin {
        /// Target queue.
        queue: QueueId,
    },
    /// `Multi-Extract-Min(Q, k)`.
    ExtractK {
        /// Target queue.
        queue: QueueId,
        /// Number of keys to remove.
        k: usize,
    },
    /// `Min(Q)` without removal.
    PeekMin {
        /// Target queue.
        queue: QueueId,
    },
    /// Current size of the queue.
    Len {
        /// Target queue.
        queue: QueueId,
    },
}

impl Request {
    /// The queue this request targets.
    pub fn queue(&self) -> QueueId {
        match self {
            Request::Insert { queue, .. }
            | Request::MultiInsert { queue, .. }
            | Request::ExtractMin { queue }
            | Request::ExtractK { queue, .. }
            | Request::PeekMin { queue }
            | Request::Len { queue } => *queue,
        }
    }

    /// Stable numeric operation code, used as the argument word of the
    /// flight recorder's `op_begin`/`op_end` events.
    pub fn op_code(&self) -> u64 {
        match self {
            Request::Insert { .. } => 1,
            Request::MultiInsert { .. } => 2,
            Request::ExtractMin { .. } => 3,
            Request::ExtractK { .. } => 4,
            Request::PeekMin { .. } => 5,
            Request::Len { .. } => 6,
        }
    }
}

/// The result published back through an [`OpSlot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// An insert completed.
    Done,
    /// A pop or peek: the key, `None` when the queue was empty.
    Key(Option<i64>),
    /// A multi-extract: the keys in ascending order.
    Keys(Vec<i64>),
    /// A length query.
    Len(usize),
    /// The operation failed (stale handle, unknown queue).
    Err(ServiceError),
}

/// One-shot completion cell a client blocks on while the combiner works.
///
/// The slot also carries the operation's flight-recorder identity: the
/// [`TraceId`] captured from the depositing thread's ambient scope (so the
/// combiner — a different thread — tags its events with the op's trace) and
/// the deposit timestamp on the recorder's clock (so the combiner can charge
/// queueing + execution latency to the shard's histogram at fill time, and
/// so latency samples line up with flight-event timestamps).
#[derive(Debug)]
pub struct OpSlot {
    result: Mutex<Option<Response>>,
    ready: Condvar,
    trace: TraceId,
    deposited_nanos: u64,
}

impl Default for OpSlot {
    fn default() -> Self {
        OpSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            trace: flight::current(),
            deposited_nanos: flight::now_nanos(),
        }
    }
}

impl OpSlot {
    /// A fresh, unfilled slot stamped with the caller's ambient trace.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The trace this operation belongs to ([`TraceId::NONE`] if the
    /// depositor had no ambient scope).
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// When the slot was deposited, on the [`flight::now_nanos`] clock.
    pub fn deposited_nanos(&self) -> u64 {
        self.deposited_nanos
    }

    /// Nanoseconds between deposit and `now` (a [`flight::now_nanos`]
    /// reading the caller already took; saturates to zero if clocks skew).
    pub fn age_nanos_at(&self, now: u64) -> u64 {
        now.saturating_sub(self.deposited_nanos)
    }

    // The slot mutex only ever guards `Option<Response>` writes, which
    // cannot be left half-done — poison here means some *other* invariant
    // broke while a panicking thread happened to hold this lock, so every
    // accessor recovers the guard instead of cascading the panic to
    // innocent waiters.
    fn lock_result(&self) -> std::sync::MutexGuard<'_, Option<Response>> {
        self.result.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publish the result and wake the waiter. Filling twice is a combiner
    /// bug and panics.
    pub fn fill(&self, r: Response) {
        let mut g = self.lock_result();
        assert!(g.is_none(), "OpSlot filled twice");
        *g = Some(r);
        self.ready.notify_all();
    }

    /// Publish only if nothing was published yet — the panic-containment
    /// path, where the combiner cannot know how far a poisoned batch got.
    /// Returns whether this call filled the slot.
    pub fn fill_if_empty(&self, r: Response) -> bool {
        let mut g = self.lock_result();
        if g.is_some() {
            return false;
        }
        *g = Some(r);
        self.ready.notify_all();
        true
    }

    /// Take the result if the combiner has published it.
    pub fn try_take(&self) -> Option<Response> {
        self.lock_result().take()
    }

    /// Block briefly for a result; returns it if published within `dur`.
    pub fn wait_for(&self, dur: Duration) -> Option<Response> {
        let mut g = self.lock_result();
        if let Some(r) = g.take() {
            return Some(r);
        }
        let (mut g, _timeout) = self
            .ready
            .wait_timeout(g, dur)
            .unwrap_or_else(PoisonError::into_inner);
        g.take()
    }
}

/// The shard's Waiting buffer: pending `(request, completion-slot)` pairs.
///
/// Deliberately a plain `Mutex<Vec<..>>` — pushes are two pointer writes
/// under an uncontended-in-the-common-case lock, and the combiner takes the
/// whole vector in O(1) with `mem::take`.
#[derive(Debug, Default)]
pub struct Ingress {
    pending: Mutex<Vec<(Request, Arc<OpSlot>)>>,
}

impl Ingress {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a request; returns the slot the result will arrive in.
    /// A poisoned buffer lock is recovered: a `Vec` push cannot be left
    /// torn, and refusing deposits forever would amplify one panic into a
    /// dead shard.
    pub fn push(&self, req: Request) -> Arc<OpSlot> {
        let slot = OpSlot::new();
        self.pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((req, Arc::clone(&slot)));
        slot
    }

    /// Take the whole pending batch (the combiner's drain).
    pub fn drain(&self) -> Vec<(Request, Arc<OpSlot>)> {
        std::mem::take(&mut *self.pending.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Number of requests currently waiting.
    pub fn depth(&self) -> usize {
        self.pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let s = OpSlot::new();
        assert_eq!(s.try_take(), None);
        s.fill(Response::Key(Some(7)));
        assert_eq!(s.try_take(), Some(Response::Key(Some(7))));
        assert_eq!(s.try_take(), None, "take consumes");
    }

    #[test]
    fn wait_returns_immediately_when_filled() {
        let s = OpSlot::new();
        s.fill(Response::Done);
        assert_eq!(s.wait_for(Duration::from_secs(5)), Some(Response::Done));
    }

    #[test]
    fn ingress_drains_in_arrival_order() {
        let ing = Ingress::new();
        let q = QueueId::new(0, 0, 1);
        let _s1 = ing.push(Request::Insert { queue: q, key: 1 });
        let _s2 = ing.push(Request::ExtractMin { queue: q });
        assert_eq!(ing.depth(), 2);
        let batch = ing.drain();
        assert_eq!(batch.len(), 2);
        assert!(matches!(batch[0].0, Request::Insert { .. }));
        assert!(matches!(batch[1].0, Request::ExtractMin { .. }));
        assert_eq!(ing.depth(), 0);
    }
}
