//! The tenant-facing front end: [`QueueService`] and its handle type.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use meldpq::pool::PooledHeap;
use meldpq::wal::{WalError, WalOp};
use meldpq::{ArenaStats, Backend, Engine, HeapPool};
use obs::flight::{self, EventKind};
use obs::Registry;

use crate::batch::{OpSlot, Request, Response};
use crate::metrics::ShardStats;
use crate::shard::{Shard, ShardState, TenantHeap};
use crate::snapshot::{ServiceSnapshot, ShardSnapshot};
use crate::ServiceError;

/// How long a waiter parks between attempts to steal the combiner role.
/// Short, because the worst case — a request deposited just after the
/// combiner's final drain — is only served when the waiter wakes and
/// combines it itself.
const WAIT_SLICE: Duration = Duration::from_micros(20);

/// A tenant-scoped handle to one queue: a `Copy + Send + Sync` *token*
/// (shard index, slot, generation), not a borrow — clients on any thread
/// address their queue through the service, and a destroyed queue's handles
/// go stale instead of dangling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId {
    shard: u16,
    slot: u32,
    generation: u32,
}

impl QueueId {
    pub(crate) fn new(shard: u16, slot: u32, generation: u32) -> Self {
        QueueId {
            shard,
            slot,
            generation,
        }
    }

    /// The shard this queue lives on.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Slot within the shard's queue table.
    pub(crate) fn slot(&self) -> u32 {
        self.slot
    }

    /// Generation guarding against slot reuse.
    pub(crate) fn generation(&self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for QueueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}.{}g{}", self.shard, self.slot, self.generation)
    }
}

/// Configuration for a [`QueueService`].
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    shards: usize,
    engine: Engine,
    bulk_threshold: usize,
    backend: Backend,
    durable: Option<PathBuf>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            shards: 4,
            engine: Engine::Sequential,
            // The admission batcher and the bulk kernels must agree on when
            // a batch is worth the slab builder: default to the calibrated
            // crossover (probed at first use, env-overridable with
            // MELDPQ_BATCH_CUTOFF) instead of a guessed constant.
            bulk_threshold: meldpq::cutoff::batch_bulk_cutoff().max(2),
            // The measured-fastest engine for the service workload class
            // (the committed shootout selection table), env-pinnable with
            // MELDPQ_BACKEND.
            backend: meldpq::backend::default_backend(),
            durable: None,
        }
    }
}

impl ServiceBuilder {
    /// Start from the defaults (4 shards, sequential planner, bulk builds
    /// from the calibrated batch cutoff up, backend from the shootout
    /// selection table).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of shards (each an independent pool + lock). Clamped to ≥ 1.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Planning engine every shard pool uses.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Coalesced-insert count at which a batch switches from one-by-one
    /// inserts to the parallel slab builder. Clamped to ≥ 2.
    pub fn bulk_threshold(mut self, n: usize) -> Self {
        self.bulk_threshold = n.max(2);
        self
    }

    /// Queue engine newly created tenant queues use. Defaults to
    /// [`meldpq::backend::default_backend`] — the measured shootout winner
    /// for the service workload class, overridable with `MELDPQ_BACKEND`.
    /// [`Backend::Pooled`] keeps the zero-copy shared-slab path; any other
    /// backend boxes a self-contained engine per queue.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Make the service durable, rooted at `root`: each shard keeps a
    /// write-ahead log (and, on the pooled backend, periodic checkpoints)
    /// under `root/shard<i>/`. [`ServiceBuilder::try_build`] recovers
    /// whatever state those directories already hold, so building twice
    /// from the same root is crash recovery.
    pub fn durable(mut self, root: impl Into<PathBuf>) -> Self {
        self.durable = Some(root.into());
        self
    }

    /// Build the service, panicking if durable recovery fails. Prefer
    /// [`ServiceBuilder::try_build`] for durable services.
    pub fn build(self) -> QueueService {
        self.try_build()
            .unwrap_or_else(|e| panic!("durable service recovery failed: {e}"))
    }

    /// Build the service, recovering each shard from its durability
    /// directory when [`ServiceBuilder::durable`] was set.
    pub fn try_build(self) -> Result<QueueService, WalError> {
        let shards = (0..self.shards)
            .map(|i| match &self.durable {
                None => Ok(Shard::new(
                    i as u16,
                    self.engine,
                    self.bulk_threshold,
                    self.backend,
                )),
                Some(root) => Shard::new_durable(
                    i as u16,
                    self.engine,
                    self.bulk_threshold,
                    self.backend,
                    root.join(format!("shard{i}")),
                ),
            })
            .collect::<Result<Vec<_>, WalError>>()?;
        Ok(QueueService {
            shards,
            rr: AtomicUsize::new(0),
            backend: self.backend,
        })
    }
}

/// An in-flight operation: the completion slot plus the shard whose
/// combiner will (or whose next waiter will) execute it.
#[derive(Debug, Clone)]
pub struct Ticket {
    slot: Arc<OpSlot>,
    shard: Arc<Shard>,
}

impl Ticket {
    /// Block until the result arrives. Waiters are not passive: each wait
    /// slice they retry becoming the combiner themselves, so progress never
    /// depends on any other thread surviving.
    pub fn wait(self) -> Response {
        let mut parked = false;
        let r = loop {
            if let Some(r) = self.slot.try_take() {
                break r;
            }
            self.shard.try_combine();
            if !parked {
                // First time this waiter actually blocks (it lost the
                // combiner race); recorded once, not per wait slice.
                parked = true;
                flight::record(
                    self.slot.trace(),
                    EventKind::TicketPark,
                    self.shard.index() as u64,
                );
            }
            if let Some(r) = self.slot.wait_for(WAIT_SLICE) {
                break r;
            }
        };
        if parked {
            flight::record(
                self.slot.trace(),
                EventKind::TicketUnpark,
                self.shard.index() as u64,
            );
        }
        r
    }
}

/// A sharded, thread-safe, multi-tenant meldable priority-queue service.
///
/// Shard = one [`meldpq::HeapPool`] + flat-combining lock; queues are
/// assigned to shards round-robin at creation. All methods take `&self` —
/// share the service across client threads with an `Arc`.
///
/// ```
/// use service::{Response, ServiceBuilder};
///
/// let svc = ServiceBuilder::new().shards(2).build();
/// let q = svc.create_queue();
/// svc.insert(q, 5).unwrap();
/// svc.insert(q, 1).unwrap();
/// assert_eq!(svc.extract_min(q).unwrap(), Some(1));
/// assert_eq!(svc.len(q).unwrap(), 1);
/// ```
#[derive(Debug)]
pub struct QueueService {
    shards: Vec<Arc<Shard>>,
    rr: AtomicUsize,
    backend: Backend,
}

impl Default for QueueService {
    fn default() -> Self {
        ServiceBuilder::default().build()
    }
}

impl QueueService {
    /// A service with the default configuration ([`ServiceBuilder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The queue engine this service creates tenant queues with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn shard(&self, id: QueueId) -> Result<&Arc<Shard>, ServiceError> {
        self.shards
            .get(id.shard() as usize)
            .ok_or(ServiceError::UnknownQueue(id))
    }

    /// `Make-Queue`: create an empty queue on the next shard (round-robin).
    pub fn create_queue(&self) -> QueueId {
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[i].create_queue()
    }

    /// Destroy a queue, freeing its nodes. Returns how many keys it held.
    pub fn destroy_queue(&self, id: QueueId) -> Result<usize, ServiceError> {
        let shard = self.shard(id)?;
        let mut st = shard.lock_state();
        // Look before logging: a stale handle must not reach the WAL.
        if st.queue_mut(id).is_none() {
            st.stats.stale_ops += 1;
            return Err(ServiceError::UnknownQueue(id));
        }
        Shard::log_ops(&mut st, &[WalOp::FreeHeap { slot: id.slot() }]);
        match st.take_queue(id)? {
            TenantHeap::Pooled(heap) => Ok(st.pool.free_heap(heap)),
            TenantHeap::Boxed(q) => Ok(q.len()),
        }
    }

    // ----- async surface: deposit now, wait on the ticket later ---------

    /// `Insert(Q, x)`, asynchronously.
    pub fn insert_async(&self, id: QueueId, key: i64) -> Result<Ticket, ServiceError> {
        self.submit(id, Request::Insert { queue: id, key })
    }

    /// `Multi-Insert(Q, keys)`, asynchronously.
    pub fn multi_insert_async(&self, id: QueueId, keys: Vec<i64>) -> Result<Ticket, ServiceError> {
        self.submit(id, Request::MultiInsert { queue: id, keys })
    }

    /// `Extract-Min(Q)`, asynchronously.
    pub fn extract_min_async(&self, id: QueueId) -> Result<Ticket, ServiceError> {
        self.submit(id, Request::ExtractMin { queue: id })
    }

    /// `Multi-Extract-Min(Q, k)`, asynchronously.
    pub fn extract_k_async(&self, id: QueueId, k: usize) -> Result<Ticket, ServiceError> {
        self.submit(id, Request::ExtractK { queue: id, k })
    }

    /// `Min(Q)`, asynchronously.
    pub fn peek_min_async(&self, id: QueueId) -> Result<Ticket, ServiceError> {
        self.submit(id, Request::PeekMin { queue: id })
    }

    /// Queue length, asynchronously.
    pub fn len_async(&self, id: QueueId) -> Result<Ticket, ServiceError> {
        self.submit(id, Request::Len { queue: id })
    }

    fn submit(&self, id: QueueId, req: Request) -> Result<Ticket, ServiceError> {
        let shard = self.shard(id)?;
        // Mint (or adopt) the op's trace before depositing: the slot
        // captures the ambient trace, so the combiner thread tags this
        // op's events with it.
        let (trace, _scope) = flight::ambient_or_new();
        flight::record(trace, EventKind::OpBegin, req.op_code());
        Ok(Ticket {
            slot: shard.submit(req),
            shard: Arc::clone(shard),
        })
    }

    /// Deposit a raw request *without* serving it — the pipelined variant of
    /// the `*_async` methods, i.e. the paper's Waiting buffer driven
    /// explicitly. The request executes at the next combine on its shard: a
    /// later synchronous op, a [`Ticket::wait`], or [`QueueService::flush`].
    /// Depositing `k` inserts and then flushing hands the combiner all `k`
    /// as one batch, which is the deterministic way to exercise (and test)
    /// the coalesced bulk kernels.
    pub fn enqueue(&self, req: Request) -> Result<Ticket, ServiceError> {
        let id = req.queue();
        let shard = self.shard(id)?;
        let (trace, _scope) = flight::ambient_or_new();
        flight::record(trace, EventKind::OpBegin, req.op_code());
        Ok(Ticket {
            slot: shard.enqueue(req),
            shard: Arc::clone(shard),
        })
    }

    // ----- sync surface -------------------------------------------------
    //
    // Each sync op first tries the shard's uncontended fast path (lock free
    // → serve pending, execute inline, zero allocation); only under
    // contention does it deposit a slot and wait — the case where the
    // combiner's batching pays.

    fn execute(&self, id: QueueId, req: Request) -> Result<Response, ServiceError> {
        let shard = self.shard(id)?;
        let (trace, _scope) = flight::ambient_or_new();
        // One clock read stamps op_begin AND starts the latency sample; the
        // fast path hands back its post-execution reading so op_end costs no
        // clock read either.
        let begun = flight::now_nanos();
        flight::record_at(begun, trace, EventKind::OpBegin, req.op_code());
        if let Some((resp, end)) = shard.execute_now(&req, begun) {
            // Fast path: no slot exists, so the combiner can't close the
            // trace — this thread was the combiner.
            flight::record_at(end, trace, EventKind::OpEnd, req.op_code());
            return Ok(resp);
        }
        let ticket = Ticket {
            slot: shard.submit(req),
            shard: Arc::clone(shard),
        };
        Ok(ticket.wait())
    }

    /// `Insert(Q, x)`.
    pub fn insert(&self, id: QueueId, key: i64) -> Result<(), ServiceError> {
        match self.execute(id, Request::Insert { queue: id, key })? {
            Response::Done => Ok(()),
            Response::Err(e) => Err(e),
            other => unreachable!("insert answered {other:?}"),
        }
    }

    /// `Multi-Insert(Q, keys)`.
    pub fn multi_insert(&self, id: QueueId, keys: Vec<i64>) -> Result<(), ServiceError> {
        match self.execute(id, Request::MultiInsert { queue: id, keys })? {
            Response::Done => Ok(()),
            Response::Err(e) => Err(e),
            other => unreachable!("multi_insert answered {other:?}"),
        }
    }

    /// `Extract-Min(Q)`: the minimum key, `None` when empty.
    pub fn extract_min(&self, id: QueueId) -> Result<Option<i64>, ServiceError> {
        match self.execute(id, Request::ExtractMin { queue: id })? {
            Response::Key(k) => Ok(k),
            Response::Err(e) => Err(e),
            other => unreachable!("extract_min answered {other:?}"),
        }
    }

    /// `Multi-Extract-Min(Q, k)`: up to `k` smallest keys, ascending.
    pub fn extract_k(&self, id: QueueId, k: usize) -> Result<Vec<i64>, ServiceError> {
        match self.execute(id, Request::ExtractK { queue: id, k })? {
            Response::Keys(v) => Ok(v),
            Response::Err(e) => Err(e),
            other => unreachable!("extract_k answered {other:?}"),
        }
    }

    /// `Min(Q)` without removal.
    pub fn peek_min(&self, id: QueueId) -> Result<Option<i64>, ServiceError> {
        match self.execute(id, Request::PeekMin { queue: id })? {
            Response::Key(k) => Ok(k),
            Response::Err(e) => Err(e),
            other => unreachable!("peek_min answered {other:?}"),
        }
    }

    /// Number of keys in the queue.
    pub fn len(&self, id: QueueId) -> Result<usize, ServiceError> {
        match self.execute(id, Request::Len { queue: id })? {
            Response::Len(n) => Ok(n),
            Response::Err(e) => Err(e),
            other => unreachable!("len answered {other:?}"),
        }
    }

    /// `Union(Q1, Q2)`: absorb `src` into `dst`, destroying `src` (its
    /// handles go stale). Same-shard melds are zero-copy plan application;
    /// cross-shard melds move nodes (counted on the arenas).
    ///
    /// Both shard locks are taken in shard-index order, so concurrent melds
    /// cannot deadlock; pending batches on both shards are served first.
    pub fn meld(&self, dst: QueueId, src: QueueId) -> Result<(), ServiceError> {
        if dst == src {
            return Ok(());
        }
        let dshard = Arc::clone(self.shard(dst)?);
        let sshard = Arc::clone(self.shard(src)?);
        if dst.shard() == src.shard() {
            let mut st = dshard.lock_state();
            // Look before taking: if dst is stale we must not destroy src.
            if st.queue_mut(dst).is_none() {
                st.stats.stale_ops += 1;
                return Err(ServiceError::UnknownQueue(dst));
            }
            if st.queue_mut(src).is_some() {
                // Both live: one logical Meld record, logged (and flushed)
                // before either queue is touched.
                Shard::log_ops(
                    &mut st,
                    &[WalOp::Meld {
                        dst: dst.slot(),
                        src: src.slot(),
                    }],
                );
            }
            let src_heap = st.take_queue(src)?;
            // Split borrows: pool, queue table and stats are disjoint fields.
            let ShardState {
                pool,
                queues,
                stats,
                ..
            } = &mut *st;
            let q = queues[dst.slot() as usize].as_mut().expect("checked above");
            match (&mut q.heap, src_heap) {
                // Same pool: zero-copy plan application.
                (TenantHeap::Pooled(d), TenantHeap::Pooled(s)) => pool.meld(d, s),
                // Backend-agnostic fallback: drain ascending, reinsert bulk.
                (dst_heap, mut src_heap) => {
                    let keys = src_heap.drain_all(pool);
                    dst_heap.bulk_insert(pool, &keys);
                }
            }
            stats.melds_same_shard += 1;
            return Ok(());
        }
        // Cross-shard: lock in shard-index order.
        let (first, second) = if dst.shard() < src.shard() {
            (&dshard, &sshard)
        } else {
            (&sshard, &dshard)
        };
        let mut st_first = first.lock_state();
        let mut st_second = second.lock_state();
        let (dst_state, src_state) = if dst.shard() < src.shard() {
            (&mut *st_first, &mut *st_second)
        } else {
            (&mut *st_second, &mut *st_first)
        };
        if dst_state.queue_mut(dst).is_none() {
            dst_state.stats.stale_ops += 1;
            return Err(ServiceError::UnknownQueue(dst));
        }
        if src_state.queue_mut(src).is_none() {
            src_state.stats.stale_ops += 1;
            return Err(ServiceError::UnknownQueue(src));
        }
        // Durability of a cross-shard meld is two records in two logs:
        // `FreeHeap` in the source shard's WAL, then the moved keys as
        // `FromKeys` in the destination's — each flushed before its shard
        // mutates. A crash between the two flushes loses the moved keys
        // (at-most-once, never duplicated); see DESIGN.md §15.
        Shard::log_ops(src_state, &[WalOp::FreeHeap { slot: src.slot() }]);
        let src_heap = src_state.take_queue(src)?;
        let dst_durable = dst_state.is_durable();
        let dst_is_pooled = matches!(
            dst_state.queue_mut(dst).expect("checked above").heap,
            TenantHeap::Pooled(_)
        );
        match src_heap {
            // Same engine on both sides: zero-copy node moves.
            TenantHeap::Pooled(s) if dst_is_pooled => {
                if dst_durable {
                    let keys = pooled_keys_unsorted(&src_state.pool, &s);
                    Shard::log_ops(
                        dst_state,
                        &[WalOp::FromKeys {
                            slot: dst.slot(),
                            keys,
                        }],
                    );
                }
                let ShardState { pool, queues, .. } = dst_state;
                let q = queues[dst.slot() as usize].as_mut().expect("checked above");
                let TenantHeap::Pooled(d) = &mut q.heap else {
                    unreachable!("variant checked above")
                };
                pool.meld_cross_pool(d, &mut src_state.pool, s);
            }
            // Backend-agnostic fallback: drain ascending, reinsert bulk.
            mut src_heap => {
                let keys = src_heap.drain_all(&mut src_state.pool);
                if dst_durable && !keys.is_empty() {
                    Shard::log_ops(
                        dst_state,
                        &[WalOp::FromKeys {
                            slot: dst.slot(),
                            keys: keys.clone(),
                        }],
                    );
                }
                let ShardState { pool, queues, .. } = dst_state;
                let q = queues[dst.slot() as usize].as_mut().expect("checked above");
                q.heap.bulk_insert(pool, &keys);
            }
        }
        dst_state.stats.melds_cross_shard += 1;
        Ok(())
    }

    /// Force a durability checkpoint on every shard (no-op on non-durable
    /// services). Bounds replay time before a planned shutdown.
    pub fn checkpoint(&self) {
        for s in &self.shards {
            let mut st = s.lock_state();
            st.force_checkpoint();
        }
    }

    // ----- observability ------------------------------------------------

    /// Serve every pending batch on every shard (quiesce point for tests
    /// and shutdown).
    pub fn flush(&self) {
        for s in &self.shards {
            let mut st = s.lock_state();
            s.combine_locked(&mut st);
        }
    }

    /// Snapshot one shard's batching counters.
    pub fn shard_stats(&self, shard: usize) -> ShardStats {
        self.shards[shard].lock_state().stats
    }

    /// Live introspection: a point-in-time view of every shard — queue and
    /// key counts, ingress backlog, combiner occupancy, stale-op counts and
    /// the latency histogram. Deliberately does **not** combine pending
    /// batches: serving the backlog here would destroy the very state a
    /// monitor polls this method to observe. Safe to call concurrently
    /// with live traffic.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                // Read the backlog before taking the state lock: depth is
                // what's waiting *while someone else combines*.
                let ingress_depth = s.ingress_depth();
                let st = s.peek_state();
                ShardSnapshot {
                    shard: s.index(),
                    live_queues: st.queues.iter().flatten().count(),
                    total_keys: st.queues.iter().flatten().map(|q| q.heap.len()).sum(),
                    ingress_depth,
                    stats: st.stats,
                    latency: st.latency.clone(),
                }
            })
            .collect();
        ServiceSnapshot { shards }
    }

    /// Snapshot one shard's arena counters (`allocs`/`copies` — the
    /// zero-copy proof surface).
    pub fn arena_stats(&self, shard: usize) -> ArenaStats {
        self.shards[shard].lock_state().pool.stats()
    }

    /// Record every shard's counters *and* latency histogram into an
    /// [`obs::Registry`]: `service.shard` rows under `service/shard<i>`,
    /// `latency.histogram` rows under `service/shard<i>/latency`. Pending
    /// batches are served first so the registry reflects a quiesced state.
    pub fn record_into(&self, reg: &mut Registry) {
        self.flush();
        self.snapshot().record_into(reg);
    }

    /// Deep structural validation of every live queue on every shard.
    /// (Boxed backends validate internally via `debug_assert`s and the
    /// differential fuzzer; only pooled heaps expose a deep check here.)
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.shards.iter().enumerate() {
            let st = s.lock_state();
            for q in st.queues.iter().flatten() {
                if let TenantHeap::Pooled(h) = &q.heap {
                    st.pool
                        .validate_heap(h)
                        .map_err(|e| format!("shard {i}: {e}"))?;
                }
            }
        }
        Ok(())
    }
}

/// Every key reachable from a pooled heap, in arbitrary order. Read-only —
/// used to serialize a cross-shard move into the destination's WAL without
/// giving up the zero-copy meld.
fn pooled_keys_unsorted(pool: &HeapPool<i64>, h: &PooledHeap) -> Vec<i64> {
    let mut ids = Vec::with_capacity(h.len());
    pool.collect_node_ids(h, &mut ids);
    ids.into_iter().map(|id| pool.arena().get(id).key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_insert_extract_roundtrip() {
        let svc = ServiceBuilder::new().shards(2).build();
        let q = svc.create_queue();
        svc.insert(q, 5).unwrap();
        svc.multi_insert(q, vec![3, 9, 1]).unwrap();
        assert_eq!(svc.peek_min(q).unwrap(), Some(1));
        assert_eq!(svc.extract_min(q).unwrap(), Some(1));
        assert_eq!(svc.extract_k(q, 2).unwrap(), vec![3, 5]);
        assert_eq!(svc.len(q).unwrap(), 1);
        svc.validate().unwrap();
        assert_eq!(svc.destroy_queue(q).unwrap(), 1);
        assert!(svc.insert(q, 0).is_err(), "destroyed handle is stale");
    }

    #[test]
    fn round_robin_shard_assignment() {
        let svc = ServiceBuilder::new().shards(3).build();
        let shards: Vec<u16> = (0..6).map(|_| svc.create_queue().shard()).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn meld_same_shard_and_cross_shard() {
        let svc = ServiceBuilder::new().shards(2).build();
        let a = svc.create_queue(); // shard 0
        let b = svc.create_queue(); // shard 1
        let c = svc.create_queue(); // shard 0
        svc.multi_insert(a, vec![1, 4]).unwrap();
        svc.multi_insert(b, vec![2, 5]).unwrap();
        svc.multi_insert(c, vec![3, 6]).unwrap();
        svc.meld(a, c).unwrap(); // same shard, zero-copy
        assert!(svc.len(c).is_err(), "melded-away queue is stale");
        svc.meld(a, b).unwrap(); // cross shard, counted moves
        assert_eq!(svc.extract_k(a, 6).unwrap(), vec![1, 2, 3, 4, 5, 6]);
        let s0 = svc.shard_stats(0);
        assert_eq!(s0.melds_same_shard, 1);
        assert_eq!(s0.melds_cross_shard, 1);
        svc.validate().unwrap();
    }

    #[test]
    fn boxed_backends_serve_the_full_request_surface() {
        // Non-pooled tenants route through TenantHeap::Boxed: melds fall
        // back to drain + bulk reinsert but the observable semantics are
        // identical to the zero-copy pooled path.
        for backend in [Backend::Hollow, Backend::Pairing, Backend::Lazy] {
            let svc = ServiceBuilder::new().shards(2).backend(backend).build();
            assert_eq!(svc.backend(), backend);
            let a = svc.create_queue(); // shard 0
            let b = svc.create_queue(); // shard 1
            let c = svc.create_queue(); // shard 0
            svc.multi_insert(a, vec![4, 1]).unwrap();
            svc.multi_insert(b, vec![5, 2]).unwrap();
            svc.multi_insert(c, vec![6, 3]).unwrap();
            svc.meld(a, c).unwrap(); // same shard
            svc.meld(a, b).unwrap(); // cross shard
            assert_eq!(svc.peek_min(a).unwrap(), Some(1), "{}", backend.name());
            assert_eq!(
                svc.extract_k(a, 6).unwrap(),
                vec![1, 2, 3, 4, 5, 6],
                "{}",
                backend.name()
            );
            svc.validate().unwrap();
            assert_eq!(svc.destroy_queue(a).unwrap(), 0);
        }
    }

    #[test]
    fn meld_with_stale_dst_preserves_src() {
        let svc = ServiceBuilder::new().shards(1).build();
        let a = svc.create_queue();
        let b = svc.create_queue();
        svc.insert(b, 7).unwrap();
        svc.destroy_queue(a).unwrap();
        assert!(svc.meld(a, b).is_err());
        assert_eq!(svc.len(b).unwrap(), 1, "src survives a failed meld");
    }

    #[test]
    fn self_meld_is_a_noop() {
        let svc = QueueService::new();
        let q = svc.create_queue();
        svc.insert(q, 1).unwrap();
        svc.meld(q, q).unwrap();
        assert_eq!(svc.len(q).unwrap(), 1);
    }

    #[test]
    fn tickets_resolve_out_of_order() {
        let svc = ServiceBuilder::new().shards(1).build();
        let q = svc.create_queue();
        let t1 = svc.insert_async(q, 4).unwrap();
        let t2 = svc.insert_async(q, 2).unwrap();
        let t3 = svc.extract_min_async(q).unwrap();
        assert_eq!(t3.wait(), Response::Key(Some(2)));
        assert_eq!(t1.wait(), Response::Done);
        assert_eq!(t2.wait(), Response::Done);
    }

    #[test]
    fn registry_and_arena_snapshots() {
        // Arena counters are a pooled-backend property: pin it so a
        // MELDPQ_BACKEND env pin can't redirect the assertion target.
        let svc = ServiceBuilder::new()
            .shards(1)
            .bulk_threshold(2)
            .backend(Backend::Pooled)
            .build();
        let q = svc.create_queue();
        svc.multi_insert(q, (0..64).collect()).unwrap();
        let mut reg = Registry::new();
        svc.record_into(&mut reg);
        assert_eq!(reg.records().len(), 2, "stats + latency per shard");
        assert_eq!(reg.records()[0].family, "service.shard");
        assert_eq!(reg.records()[1].family, "latency.histogram");
        assert!(
            reg.records()[1]
                .fields
                .iter()
                .any(|(k, v)| k == "count" && *v >= 1),
            "served requests appear in the latency histogram"
        );
        let arena = svc.arena_stats(0);
        assert_eq!(arena.allocs, 64);
        assert_eq!(arena.copies, 0, "bulk insert path must be zero-copy");
    }

    #[test]
    fn snapshot_observes_backlog_without_serving_it() {
        let svc = ServiceBuilder::new().shards(2).build();
        let q = svc.create_queue(); // shard 0
        svc.insert(q, 3).unwrap();
        // Deposit without combining: the pipelined enqueue leaves the
        // request in the Waiting buffer.
        let t = svc
            .enqueue(Request::Insert { queue: q, key: 9 })
            .expect("enqueue");
        let snap = svc.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[0].live_queues, 1);
        assert_eq!(snap.shards[0].total_keys, 1);
        assert_eq!(
            snap.shards[0].ingress_depth, 1,
            "snapshot must not combine the pending batch away"
        );
        assert_eq!(snap.total_backlog(), 1);
        assert_eq!(t.wait(), Response::Done);
        let snap = svc.snapshot();
        assert_eq!(snap.total_backlog(), 0);
        assert_eq!(snap.shards[0].total_keys, 2);
        assert!(
            snap.shards[0].stats.combines >= 1,
            "serving the deposited batch counts a combiner session"
        );
        assert!(snap.latency().count() >= 2);
    }

    #[test]
    fn flight_trace_links_begin_to_end() {
        let svc = ServiceBuilder::new().shards(1).build();
        let q = svc.create_queue();
        let t = obs::TraceId::next();
        {
            let _scope = flight::trace_scope(t);
            svc.insert(q, 42).unwrap();
        }
        let line = flight::trace_timeline(&flight::snapshot(), t);
        assert!(
            line.iter()
                .any(|e| e.kind == EventKind::OpBegin && e.arg == 1),
            "insert op_begin under the caller's trace: {line:?}"
        );
        assert!(
            line.iter()
                .any(|e| e.kind == EventKind::OpEnd && e.arg == 1),
            "insert op_end under the caller's trace: {line:?}"
        );
    }
}
