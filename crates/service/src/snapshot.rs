//! Live introspection: a point-in-time view of every shard, cheap enough
//! to poll while the service is under load.
//!
//! [`crate::QueueService::snapshot`] observes without perturbing: ingress
//! depths are read *before* the shard locks are taken, and the state lock
//! is taken without combining (a snapshot that served pending batches
//! would destroy the backlog it set out to measure). The result renders
//! as JSON ([`ServiceSnapshot::to_json`], consumed by the `pqtop` binary)
//! or as a text table ([`ServiceSnapshot::render`]).

use obs::json::J;
use obs::{LatencyHistogram, Recorder, Registry};

use crate::metrics::ShardStats;

/// Point-in-time view of one shard.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// The shard's index in the service's shard map.
    pub shard: u16,
    /// Live (not destroyed/melded-away) queues on the shard.
    pub live_queues: usize,
    /// Total keys across the shard's live queues.
    pub total_keys: usize,
    /// Requests waiting in the ingress buffer at observation time.
    pub ingress_depth: usize,
    /// Cumulative batching/combining counters.
    pub stats: ShardStats,
    /// Deposit-to-publish latency of every request served so far.
    pub latency: LatencyHistogram,
}

impl ShardSnapshot {
    /// Mean nanoseconds one working combiner session keeps the shard lock.
    pub fn combiner_occupancy_ns(&self) -> u64 {
        self.stats
            .combine_ns
            .checked_div(self.stats.combines)
            .unwrap_or(0)
    }
}

/// Point-in-time view of the whole service (one entry per shard).
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    /// Per-shard views, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
}

impl ServiceSnapshot {
    /// Requests waiting across all shards.
    pub fn total_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.ingress_depth).sum()
    }

    /// Keys held across all shards.
    pub fn total_keys(&self) -> usize {
        self.shards.iter().map(|s| s.total_keys).sum()
    }

    /// Latency across all shards (merged histograms).
    pub fn latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for s in &self.shards {
            merged.merge(&s.latency);
        }
        merged
    }

    /// Record every shard's counters and latency histogram into `reg`
    /// (families `service.shard` under `service/shard<i>`, and
    /// `latency.histogram` under `service/shard<i>/latency`).
    pub fn record_into(&self, reg: &mut Registry) {
        for s in &self.shards {
            reg.record(&format!("service/shard{}", s.shard), &s.stats);
            reg.record(&format!("service/shard{}/latency", s.shard), &s.latency);
        }
    }

    /// The snapshot as a JSON document.
    pub fn to_json(&self) -> J {
        J::obj([
            ("report", J::Str("service_snapshot".into())),
            (
                "shards",
                J::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            let fields = |r: &dyn Recorder| {
                                J::Obj(
                                    r.fields()
                                        .into_iter()
                                        .map(|(k, v)| (k.to_string(), J::UInt(v)))
                                        .collect(),
                                )
                            };
                            J::obj([
                                ("shard", J::UInt(s.shard as u64)),
                                ("live_queues", J::UInt(s.live_queues as u64)),
                                ("total_keys", J::UInt(s.total_keys as u64)),
                                ("ingress_depth", J::UInt(s.ingress_depth as u64)),
                                ("combiner_occupancy_ns", J::UInt(s.combiner_occupancy_ns())),
                                ("stats", fields(&s.stats)),
                                ("latency", fields(&s.latency)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The snapshot as an aligned text table, one row per shard plus a
    /// totals row — what `pqtop` refreshes on screen.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "shard  queues      keys  backlog  batches  combines  occ_us   p50_us   p99_us    stale\n",
        );
        let us = |ns: u64| ns / 1_000;
        for s in &self.shards {
            out.push_str(&format!(
                "{:>5}  {:>6}  {:>8}  {:>7}  {:>7}  {:>8}  {:>6}  {:>7}  {:>7}  {:>7}\n",
                s.shard,
                s.live_queues,
                s.total_keys,
                s.ingress_depth,
                s.stats.batches,
                s.stats.combines,
                us(s.combiner_occupancy_ns()),
                us(s.latency.quantile(0.50)),
                us(s.latency.quantile(0.99)),
                s.stats.stale_ops,
            ));
        }
        let all = self.latency();
        out.push_str(&format!(
            "total  {:>6}  {:>8}  {:>7}  ops={} p50={}us p99={}us max={}us\n",
            self.shards.iter().map(|s| s.live_queues).sum::<usize>(),
            self.total_keys(),
            self.total_backlog(),
            all.count(),
            us(all.quantile(0.50)),
            us(all.quantile(0.99)),
            us(all.max()),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceSnapshot {
        let mut latency = LatencyHistogram::new();
        for v in [1_000u64, 2_000, 50_000] {
            latency.record(v);
        }
        ServiceSnapshot {
            shards: vec![
                ShardSnapshot {
                    shard: 0,
                    live_queues: 2,
                    total_keys: 100,
                    ingress_depth: 3,
                    stats: ShardStats {
                        batches: 5,
                        combines: 4,
                        combine_ns: 8_000,
                        ..Default::default()
                    },
                    latency,
                },
                ShardSnapshot {
                    shard: 1,
                    live_queues: 0,
                    total_keys: 0,
                    ingress_depth: 0,
                    stats: ShardStats::default(),
                    latency: LatencyHistogram::new(),
                },
            ],
        }
    }

    #[test]
    fn totals_occupancy_and_render() {
        let snap = sample();
        assert_eq!(snap.total_backlog(), 3);
        assert_eq!(snap.total_keys(), 100);
        assert_eq!(snap.shards[0].combiner_occupancy_ns(), 2_000);
        assert_eq!(snap.shards[1].combiner_occupancy_ns(), 0, "no div-by-zero");
        assert_eq!(snap.latency().count(), 3);
        let table = snap.render();
        assert_eq!(table.lines().count(), 4, "header + 2 shards + totals");
        assert!(table.contains("backlog"));
    }

    #[test]
    fn json_and_registry_views_agree() {
        let snap = sample();
        let doc = snap.to_json();
        let parsed = J::parse(&doc.to_string()).expect("snapshot JSON parses");
        let shards = parsed.get("shards").and_then(J::as_arr).expect("shards");
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards[0].get("ingress_depth"),
            Some(&J::UInt(3)),
            "backlog survives the JSON round trip"
        );
        assert_eq!(
            shards[0].get("combiner_occupancy_ns"),
            Some(&J::UInt(2_000))
        );

        let mut reg = Registry::new();
        snap.record_into(&mut reg);
        let recs = reg.records();
        assert_eq!(recs.len(), 4, "stats + latency per shard");
        let lat = recs
            .iter()
            .find(|r| r.label == "service/shard0/latency")
            .expect("latency family present");
        assert_eq!(lat.family, "latency.histogram");
        assert!(lat.fields.iter().any(|(k, v)| k == "count" && *v == 3));
    }
}
