//! One shard: a [`HeapPool`] of tenant queues behind a flat-combining lock.
//!
//! Clients never touch the pool directly. They deposit requests into the
//! shard's [`Ingress`] and whoever acquires the state mutex next — client or
//! waiter, there is no dedicated server thread — becomes the *combiner*: it
//! drains the whole buffer, executes it as one batch with the bulk kernels,
//! and publishes results through the per-request [`OpSlot`]s. Lock hand-off
//! therefore amortises: under contention, one lock acquisition serves many
//! clients' operations, and the batch exposes exactly the coalescing the
//! paper's Forehead/Waiting buffers exist for — concurrent inserts become
//! one `from_keys_parallel` bulk build, concurrent pops one
//! `multi_extract_min` peel.
//!
//! ## Linearization of a batch
//!
//! All requests in a drained batch are concurrent (none had completed when
//! the combiner took the buffer), so *any* permutation is a valid
//! linearization. The combiner picks, per queue: every insert first, then
//! the reads/pops in arrival order with the pop demand served from one
//! ascending `multi_extract_min` pull. `PeekMin`/`Len` interleaved between
//! pops read `pulled[j]` / `len + (pulled.len() - j)` — the exact state a
//! sequential execution in that order would observe.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};
use std::time::Instant;

use meldpq::check::check_pool;
use meldpq::pool::PooledHeap;
use meldpq::wal::{self, WalError, WalOp, WalWriter, WAL_FILE};
use meldpq::{Backend, Engine, HeapPool, MeldablePq};
use obs::flight::{self, EventKind};
use obs::LatencyHistogram;

use crate::batch::{Ingress, OpSlot, Request, Response};
use crate::metrics::ShardStats;
use crate::service::QueueId;
use crate::ServiceError;

/// Logged ops between automatic checkpoints on a durable shard.
const SHARD_CHECKPOINT_EVERY: u64 = 1024;

/// One tenant queue's storage. The shard's configured [`Backend`] decides
/// the variant at creation: [`Backend::Pooled`] queues live in the shard's
/// shared [`HeapPool`] slab (zero-copy melds, bulk slab builds); every
/// other backend is a self-contained boxed engine behind the
/// [`MeldablePq`] surface.
pub(crate) enum TenantHeap {
    /// A heap in the shard's shared pool.
    Pooled(PooledHeap),
    /// A self-contained engine chosen by the backend table.
    Boxed(Box<dyn MeldablePq<i64> + Send>),
}

impl std::fmt::Debug for TenantHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantHeap::Pooled(h) => write!(f, "TenantHeap::Pooled(len={})", h.len()),
            TenantHeap::Boxed(q) => write!(f, "TenantHeap::Boxed(len={})", q.len()),
        }
    }
}

impl TenantHeap {
    /// Number of keys stored.
    pub(crate) fn len(&self) -> usize {
        match self {
            TenantHeap::Pooled(h) => h.len(),
            TenantHeap::Boxed(q) => q.len(),
        }
    }

    /// `Insert` one key.
    pub(crate) fn insert(&mut self, pool: &mut HeapPool<i64>, key: i64) {
        match self {
            TenantHeap::Pooled(h) => pool.insert(h, key),
            TenantHeap::Boxed(q) => q.insert(key),
        }
    }

    /// Coalesced bulk admission: the pooled variant goes through the
    /// parallel slab builder + one meld; boxed engines use their own
    /// `multi_insert` (which batched engines override).
    pub(crate) fn bulk_insert(&mut self, pool: &mut HeapPool<i64>, keys: &[i64]) {
        match self {
            TenantHeap::Pooled(h) => {
                let built = pool.from_keys_parallel(keys);
                pool.meld(h, built);
            }
            TenantHeap::Boxed(q) => q.multi_insert(keys),
        }
    }

    /// `Extract-Min`.
    pub(crate) fn extract_min(&mut self, pool: &mut HeapPool<i64>) -> Option<i64> {
        match self {
            TenantHeap::Pooled(h) => pool.extract_min(h),
            TenantHeap::Boxed(q) => q.extract_min(),
        }
    }

    /// `Multi-Extract-Min`: up to `k` smallest keys, ascending.
    pub(crate) fn multi_extract(&mut self, pool: &mut HeapPool<i64>, k: usize) -> Vec<i64> {
        match self {
            TenantHeap::Pooled(h) => pool.multi_extract_min(h, k),
            TenantHeap::Boxed(q) => q.multi_extract_min(k),
        }
    }

    /// `Min` without removal (`&mut` because lazy engines tidy on reads).
    pub(crate) fn peek_min(&mut self, pool: &mut HeapPool<i64>) -> Option<i64> {
        match self {
            TenantHeap::Pooled(h) => pool.min(h),
            TenantHeap::Boxed(q) => q.peek_min(),
        }
    }

    /// Drain everything ascending (the backend-agnostic meld fallback).
    pub(crate) fn drain_all(&mut self, pool: &mut HeapPool<i64>) -> Vec<i64> {
        let n = self.len();
        self.multi_extract(pool, n)
    }
}

/// One tenant queue: its storage plus the generation stamped into the
/// handles that may address it.
#[derive(Debug)]
pub(crate) struct TenantQueue {
    pub(crate) gen: u32,
    pub(crate) heap: TenantHeap,
}

/// A durable shard's write-ahead log handle: the open appender, the shard's
/// durability directory, and the checkpoint cadence. Lives inside the state
/// mutex so WAL appends are ordered exactly like the combiner's mutations.
#[derive(Debug)]
pub(crate) struct ShardWal {
    writer: WalWriter,
    dir: PathBuf,
    /// Write a checkpoint after this many logged ops.
    checkpoint_every: u64,
    /// Ops logged since the last checkpoint.
    since: u64,
}

/// The lock-protected half of a shard.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub(crate) pool: HeapPool<i64>,
    /// Slot-indexed tenant queues; `None` = destroyed/free.
    pub(crate) queues: Vec<Option<TenantQueue>>,
    /// Reusable slots with the generation their next occupant gets.
    ///
    /// Generations wrap (`gen.wrapping_add(1)` in [`ShardState::take_queue`]),
    /// so a slot destroyed and recreated exactly 2³² times returns to a
    /// previously issued generation and a handle from that ancient epoch
    /// would validate again — the classic ABA window. We accept it: at one
    /// create+destroy per microsecond on a single slot, wrap-around takes
    /// over an hour of doing nothing else, and a client holding a handle
    /// across 2³² reuses of its slot has long violated any reasonable
    /// lease. `aba_generation_wraparound` below pins the behaviour.
    free_slots: Vec<(u32, u32)>,
    pub(crate) stats: ShardStats,
    /// Deposit-to-publish latency of every request served on this shard
    /// (fast-path ops charge their inline execution time).
    pub(crate) latency: LatencyHistogram,
    /// Coalesced insert batches at or above this size go through the bulk
    /// slab builder instead of one-by-one ripple inserts.
    bulk_threshold: usize,
    /// Which engine newly created tenant queues get.
    backend: Backend,
    /// Write-ahead log, present iff the shard was built durable. Any WAL
    /// I/O failure disables it (`None`) rather than failing requests.
    wal: Option<ShardWal>,
}

/// Append one logical op to the shard's WAL, if durability is on. An I/O
/// failure counts a `wal_error` and turns durability off — the shard keeps
/// serving from memory rather than amplifying a disk fault into an outage.
fn wal_log(wal: &mut Option<ShardWal>, stats: &mut ShardStats, op: &WalOp) {
    let Some(w) = wal else { return };
    match w.writer.append(op) {
        Ok(_) => {
            stats.wal_appends += 1;
            w.since += 1;
        }
        Err(_) => {
            stats.wal_errors += 1;
            *wal = None;
        }
    }
}

/// Flush buffered WAL records to the OS before the mutations they describe
/// are applied (the write-*ahead* half of the contract). Failure disables
/// durability, like [`wal_log`].
fn wal_flush(wal: &mut Option<ShardWal>, stats: &mut ShardStats) {
    let Some(w) = wal else { return };
    if w.writer.flush().is_err() {
        stats.wal_errors += 1;
        *wal = None;
    }
}

impl ShardState {
    /// The queue addressed by `id`, if the handle is current.
    pub(crate) fn queue_mut(&mut self, id: QueueId) -> Option<&mut TenantQueue> {
        self.queues
            .get_mut(id.slot() as usize)
            .and_then(|s| s.as_mut())
            .filter(|q| q.gen == id.generation())
    }

    /// A fresh, empty tenant heap of the shard's configured backend.
    pub(crate) fn new_tenant_heap(&mut self) -> TenantHeap {
        match self.backend {
            Backend::Pooled => TenantHeap::Pooled(self.pool.new_heap()),
            other => TenantHeap::Boxed(other.make()),
        }
    }

    /// Remove the queue addressed by `id`, freeing its slot for reuse under
    /// a bumped generation.
    pub(crate) fn take_queue(&mut self, id: QueueId) -> Result<TenantHeap, ServiceError> {
        let slot = id.slot() as usize;
        let current = self
            .queues
            .get(slot)
            .and_then(|s| s.as_ref())
            .filter(|q| q.gen == id.generation());
        if current.is_none() {
            self.stats.stale_ops += 1;
            return Err(ServiceError::UnknownQueue(id));
        }
        let q = self.queues[slot].take().expect("checked above");
        self.free_slots.push((id.slot(), q.gen.wrapping_add(1)));
        self.stats.queues_destroyed += 1;
        Ok(q.heap)
    }

    /// Structurally validate every pooled heap against the shard's pool.
    /// Used after recovering a poisoned lock: the panicking combiner may
    /// have left a mutation half-applied.
    pub(crate) fn revalidate(&self) -> Result<(), String> {
        let pooled: Vec<&PooledHeap> = self
            .queues
            .iter()
            .flatten()
            .filter_map(|q| match &q.heap {
                TenantHeap::Pooled(h) => Some(h),
                TenantHeap::Boxed(_) => None,
            })
            .collect();
        check_pool(&self.pool, &pooled)
    }

    /// Last-resort recovery when [`ShardState::revalidate`] finds the state
    /// damaged: drop every queue and start the shard over empty. Stale
    /// handles fail cleanly with `UnknownQueue`; a durable shard's log and
    /// checkpoint are restarted too, so recovery reflects the reset rather
    /// than replaying the pre-damage history onto an empty pool.
    pub(crate) fn reset_after_damage(&mut self) {
        self.pool = HeapPool::new().with_engine(self.pool.engine());
        self.queues.clear();
        self.free_slots.clear();
        self.stats.poison_resets += 1;
        if let Some(w) = self.wal.take() {
            let restarted = (|| -> std::io::Result<ShardWal> {
                let ckpt = w.dir.join(wal::CHECKPOINT_FILE);
                if ckpt.exists() {
                    std::fs::remove_file(&ckpt)?;
                }
                let writer = WalWriter::create(&w.dir.join(WAL_FILE))?;
                Ok(ShardWal { writer, ..w })
            })();
            match restarted {
                Ok(w) => self.wal = Some(w),
                Err(_) => self.stats.wal_errors += 1,
            }
        }
    }

    /// Whether this shard currently has an open write-ahead log.
    pub(crate) fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Write a checkpoint if enough ops accumulated since the last one.
    pub(crate) fn maybe_checkpoint(&mut self) {
        let due = match &self.wal {
            Some(w) => w.since >= w.checkpoint_every,
            None => false,
        };
        if due {
            self.force_checkpoint();
        }
    }

    /// Write a checkpoint now (durable shards only; no-op otherwise).
    ///
    /// Only the pooled backend has a serializable slab; boxed engines are
    /// recovered by full-log replay, so their "checkpoint" just resets the
    /// cadence counter.
    pub(crate) fn force_checkpoint(&mut self) {
        let ShardState {
            pool,
            queues,
            free_slots,
            stats,
            backend,
            wal,
            ..
        } = self;
        let Some(w) = wal else { return };
        if *backend != Backend::Pooled {
            w.since = 0;
            return;
        }
        let wrote = (|| -> std::io::Result<()> {
            w.writer.sync()?;
            let seq = w.writer.next_seq().saturating_sub(1);
            let heaps = queues.iter().enumerate().filter_map(|(i, s)| {
                s.as_ref().and_then(|q| match &q.heap {
                    TenantHeap::Pooled(h) => Some((i as u32, q.gen, h)),
                    TenantHeap::Boxed(_) => None,
                })
            });
            wal::write_checkpoint(&w.dir, seq, pool, heaps, free_slots)
        })();
        match wrote {
            Ok(()) => {
                w.since = 0;
                stats.wal_checkpoints += 1;
            }
            Err(_) => {
                stats.wal_errors += 1;
                *wal = None;
            }
        }
    }
}

/// A shard: ingress buffer + lock-protected pool state. See module docs.
#[derive(Debug)]
pub struct Shard {
    index: u16,
    ingress: Ingress,
    state: Mutex<ShardState>,
}

impl Shard {
    pub(crate) fn new(
        index: u16,
        engine: Engine,
        bulk_threshold: usize,
        backend: Backend,
    ) -> Arc<Self> {
        Arc::new(Shard {
            index,
            ingress: Ingress::new(),
            state: Mutex::new(ShardState {
                pool: HeapPool::new().with_engine(engine),
                queues: Vec::new(),
                free_slots: Vec::new(),
                stats: ShardStats::default(),
                latency: LatencyHistogram::new(),
                bulk_threshold: bulk_threshold.max(2),
                backend,
                wal: None,
            }),
        })
    }

    /// Build a durable shard rooted at `dir`: recover whatever state the
    /// directory holds (checkpoint + WAL suffix for the pooled backend, full
    /// WAL replay for boxed engines), then reopen the log for appending.
    pub(crate) fn new_durable(
        index: u16,
        engine: Engine,
        bulk_threshold: usize,
        backend: Backend,
        dir: PathBuf,
    ) -> Result<Arc<Self>, WalError> {
        let (pool, queues, free_slots, next_seq) = if backend == Backend::Pooled {
            let state = wal::recover_dir(&dir, engine)?;
            let queues = state
                .heaps
                .into_iter()
                .map(|s| {
                    s.map(|(gen, h)| TenantQueue {
                        gen,
                        heap: TenantHeap::Pooled(h),
                    })
                })
                .collect();
            (state.pool, queues, state.free_slots, state.next_seq)
        } else {
            // Boxed engines have no serializable slab, so there is no
            // checkpoint to load — replay the whole log from genesis.
            std::fs::create_dir_all(&dir)?;
            let wal_path = dir.join(WAL_FILE);
            let log = wal::read_wal(&wal_path)?;
            if log.valid_len < log.file_len {
                wal::truncate_wal(&wal_path, log.valid_len)?;
            }
            let mut pool = HeapPool::new().with_engine(engine);
            let mut queues: Vec<Option<TenantQueue>> = Vec::new();
            let mut free_slots: Vec<(u32, u32)> = Vec::new();
            let mut next_seq = 1u64;
            for (seq, op) in &log.records {
                replay_boxed(&mut pool, &mut queues, &mut free_slots, backend, *seq, op)?;
                next_seq = seq + 1;
            }
            flight::record_here(EventKind::Recover, log.records.len() as u64);
            (pool, queues, free_slots, next_seq)
        };
        let writer = WalWriter::append_to(&dir.join(WAL_FILE), next_seq)?;
        Ok(Arc::new(Shard {
            index,
            ingress: Ingress::new(),
            state: Mutex::new(ShardState {
                pool,
                queues,
                free_slots,
                stats: ShardStats::default(),
                latency: LatencyHistogram::new(),
                bulk_threshold: bulk_threshold.max(2),
                backend,
                wal: Some(ShardWal {
                    writer,
                    dir,
                    checkpoint_every: SHARD_CHECKPOINT_EVERY,
                    since: 0,
                }),
            }),
        }))
    }

    /// This shard's index in the service's shard map.
    pub fn index(&self) -> u16 {
        self.index
    }

    /// Deposit a request and opportunistically combine. The returned slot
    /// completes once some combiner executes the batch containing it.
    pub(crate) fn submit(&self, req: Request) -> Arc<OpSlot> {
        let slot = self.ingress.push(req);
        self.try_combine();
        slot
    }

    /// Deposit without combining — the pipelined variant of [`Shard::submit`].
    /// The request sits in the Waiting buffer until the next combine.
    pub(crate) fn enqueue(&self, req: Request) -> Arc<OpSlot> {
        self.ingress.push(req)
    }

    /// Fast path for synchronous callers: if the state lock is free, serve
    /// any pending batch and then execute `req` inline — no completion slot,
    /// no parking. Returns `None` when another thread holds the lock (the
    /// caller should deposit and wait instead, which is exactly the
    /// contended case admission batching exists for).
    ///
    /// `begun` is the caller's [`flight::now_nanos`] reading from the op's
    /// ingress; the returned timestamp is taken after execution, so the
    /// caller can stamp its `op_end` event without another clock read. The
    /// latency charged to the shard's histogram spans `begun..end` —
    /// end-to-end as the client saw it, including any pending batch this
    /// thread served first.
    pub(crate) fn execute_now(&self, req: &Request, begun: u64) -> Option<(Response, u64)> {
        let mut st = match self.state.try_lock() {
            Ok(st) => st,
            Err(TryLockError::Poisoned(p)) => self.heal(p.into_inner()),
            Err(TryLockError::WouldBlock) => return None,
        };
        self.combine_locked(&mut st);
        let resp = execute_single(&mut st, req);
        st.maybe_checkpoint();
        let end = flight::now_nanos();
        st.latency.record(end.saturating_sub(begun));
        Some((resp, end))
    }

    /// Become the combiner if the state lock is free; never blocks.
    /// Returns whether any batch was executed.
    pub(crate) fn try_combine(&self) -> bool {
        match self.state.try_lock() {
            Ok(mut st) => self.combine_locked(&mut st),
            Err(TryLockError::Poisoned(p)) => {
                let mut st = self.heal(p.into_inner());
                self.combine_locked(&mut st)
            }
            Err(TryLockError::WouldBlock) => false,
        }
    }

    /// Drain-and-execute until the ingress is empty. Caller holds the lock.
    pub(crate) fn combine_locked(&self, st: &mut ShardState) -> bool {
        let mut did = false;
        let start = Instant::now();
        loop {
            let batch = self.ingress.drain();
            if batch.is_empty() {
                if did {
                    st.maybe_checkpoint();
                    st.stats.combines += 1;
                    // A tenure longer than u64 nanoseconds (585 years) can
                    // only be clock corruption — saturate rather than
                    // erasing the tenure from the occupancy average.
                    st.stats.combine_ns = st.stats.combine_ns.saturating_add(
                        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
                return did;
            }
            if !did {
                // This thread just became the combiner with work pending.
                flight::record_here(EventKind::CombinerHandoff, self.index as u64);
            }
            did = true;
            flight::record_here(EventKind::BatchFlush, batch.len() as u64);
            execute_batch(st, batch);
        }
    }

    /// Recover a poisoned state lock instead of cascading the panic to
    /// every future client of the shard. The poison flag is cleared, the
    /// recovery counted, and the state structurally revalidated — intact
    /// state keeps serving; damaged state is reset to empty (queues lost,
    /// handles stale) via [`ShardState::reset_after_damage`].
    fn heal<'a>(&'a self, mut st: MutexGuard<'a, ShardState>) -> MutexGuard<'a, ShardState> {
        self.state.clear_poison();
        st.stats.poison_recoveries += 1;
        if st.revalidate().is_err() {
            st.reset_after_damage();
        }
        st
    }

    /// Blocking-lock the state, first serving any pending batch. A poisoned
    /// lock is healed, not propagated.
    pub(crate) fn lock_state(&self) -> MutexGuard<'_, ShardState> {
        let mut st = match self.state.lock() {
            Ok(st) => st,
            Err(p) => self.heal(p.into_inner()),
        };
        self.combine_locked(&mut st);
        st
    }

    /// Blocking-lock the state *without* combining — the introspection
    /// path. Serving pending batches here would perturb exactly what a
    /// snapshot wants to observe (ingress backlog, combiner behaviour).
    pub(crate) fn peek_state(&self) -> MutexGuard<'_, ShardState> {
        match self.state.lock() {
            Ok(st) => st,
            Err(p) => self.heal(p.into_inner()),
        }
    }

    /// Requests currently waiting in this shard's ingress buffer.
    pub(crate) fn ingress_depth(&self) -> usize {
        self.ingress.depth()
    }

    /// Create a queue on this shard and hand back its (current-generation)
    /// handle. On a durable shard the creation is logged (and the log
    /// flushed) before the slot is occupied.
    pub(crate) fn create_queue(&self) -> QueueId {
        let mut st = self.lock_state();
        let (slot, gen) = match st.free_slots.last() {
            Some(&(s, g)) => (s, g),
            None => (st.queues.len() as u32, 0),
        };
        {
            let ShardState { stats, wal, .. } = &mut *st;
            wal_log(wal, stats, &WalOp::CreateHeap { slot, gen });
            wal_flush(wal, stats);
        }
        st.stats.queues_created += 1;
        let heap = st.new_tenant_heap();
        if st.free_slots.last().map(|&(s, _)| s) == Some(slot) {
            st.free_slots.pop();
            st.queues[slot as usize] = Some(TenantQueue { gen, heap });
        } else {
            st.queues.push(Some(TenantQueue { gen, heap }));
        }
        st.maybe_checkpoint();
        QueueId::new(self.index, slot, gen)
    }

    /// Log one op on behalf of the service front end (meld/destroy run
    /// outside the combiner), flushing before the caller mutates state.
    /// No-op on non-durable shards.
    pub(crate) fn log_ops(st: &mut ShardState, ops: &[WalOp]) {
        if st.wal.is_none() {
            return;
        }
        let ShardState { stats, wal, .. } = st;
        for op in ops {
            wal_log(wal, stats, op);
        }
        wal_flush(wal, stats);
    }
}

/// A drained request plus the slot its response is delivered through.
type PendingOp = (Request, Arc<OpSlot>);

/// Execute one drained batch against the shard state. See the module docs
/// for the linearization argument.
///
/// Each queue group runs under a catch-unwind barrier: a panic inside one
/// tenant's kernels (a buggy boxed engine, a violated invariant) must not
/// poison the shard for every other tenant. The panicking group's unfilled
/// slots get [`ServiceError::Internal`], the state is revalidated (and reset
/// if damaged), and the remaining groups still execute.
fn execute_batch(st: &mut ShardState, batch: Vec<PendingOp>) {
    st.stats.batches += 1;
    st.stats.max_batch = st.stats.max_batch.max(batch.len() as u64);
    st.stats.requests += batch.len() as u64;

    // Group per target queue, preserving arrival order within each group.
    let mut groups: Vec<(QueueId, Vec<PendingOp>)> = Vec::new();
    for (req, slot) in batch {
        let qid = req.queue();
        match groups.iter_mut().find(|(g, _)| *g == qid) {
            Some((_, v)) => v.push((req, slot)),
            None => groups.push((qid, vec![(req, slot)])),
        }
    }

    for (qid, ops) in groups {
        let slots: Vec<Arc<OpSlot>> = ops.iter().map(|(_, s)| Arc::clone(s)).collect();
        let contained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_queue_group(st, qid, ops);
        }));
        if contained.is_err() {
            st.stats.combiner_panics += 1;
            for slot in &slots {
                slot.fill_if_empty(Response::Err(ServiceError::Internal(qid)));
            }
            if st.revalidate().is_err() {
                st.reset_after_damage();
            }
        }
    }
}

/// Execute one request as its own batch of one (the uncontended fast path),
/// with the same kernel selection and counter semantics as a drained batch
/// of that single request.
fn execute_single(st: &mut ShardState, req: &Request) -> Response {
    st.stats.batches += 1;
    st.stats.max_batch = st.stats.max_batch.max(1);
    st.stats.requests += 1;
    let bulk_threshold = st.bulk_threshold;
    let ShardState {
        pool,
        queues,
        stats,
        wal,
        ..
    } = st;
    let qid = req.queue();
    let Some(q) = queues
        .get_mut(qid.slot() as usize)
        .and_then(|s| s.as_mut())
        .filter(|q| q.gen == qid.generation())
    else {
        stats.stale_ops += 1;
        return Response::Err(ServiceError::UnknownQueue(qid));
    };
    // Admission control: refuse a pooled insert that would overflow the
    // slab's u32 id space before logging or mutating anything.
    if let TenantHeap::Pooled(_) = q.heap {
        let requested = match req {
            Request::Insert { .. } => 1,
            Request::MultiInsert { keys, .. } => keys.len(),
            _ => 0,
        };
        if requested > 0 {
            if let Err(err) = pool.can_admit(requested) {
                return Response::Err(ServiceError::Capacity { queue: qid, err });
            }
        }
    }
    if wal.is_some() {
        let logged = match req {
            Request::Insert { key, .. } => Some(WalOp::Insert {
                slot: qid.slot(),
                key: *key,
            }),
            Request::MultiInsert { keys, .. } => Some(WalOp::FromKeys {
                slot: qid.slot(),
                keys: keys.clone(),
            }),
            Request::ExtractMin { .. } => Some(WalOp::ExtractMin { slot: qid.slot() }),
            Request::ExtractK { k, .. } => Some(WalOp::MultiExtractMin {
                slot: qid.slot(),
                k: *k as u64,
            }),
            Request::PeekMin { .. } | Request::Len { .. } => None,
        };
        if let Some(op) = logged {
            wal_log(wal, stats, &op);
            wal_flush(wal, stats);
        }
    }
    match req {
        Request::Insert { key, .. } => {
            q.heap.insert(pool, *key);
            stats.single_inserts += 1;
            Response::Done
        }
        Request::MultiInsert { keys, .. } => {
            if keys.len() >= bulk_threshold {
                flight::record_here(EventKind::BulkAdmission, keys.len() as u64);
                q.heap.bulk_insert(pool, keys);
                stats.bulk_builds += 1;
                stats.coalesced_inserts += keys.len() as u64;
            } else {
                for &k in keys {
                    q.heap.insert(pool, k);
                }
                stats.single_inserts += keys.len() as u64;
            }
            Response::Done
        }
        Request::ExtractMin { .. } => Response::Key(q.heap.extract_min(pool)),
        Request::ExtractK { k, .. } => {
            let out = q.heap.multi_extract(pool, *k);
            if *k >= 2 {
                flight::record_here(EventKind::MultiExtract, out.len() as u64);
                stats.multi_extracts += 1;
                stats.coalesced_pops += out.len() as u64;
            }
            Response::Keys(out)
        }
        Request::PeekMin { .. } => Response::Key(q.heap.peek_min(pool)),
        Request::Len { .. } => Response::Len(q.heap.len()),
    }
}

fn execute_queue_group(st: &mut ShardState, qid: QueueId, ops: Vec<(Request, Arc<OpSlot>)>) {
    let bulk_threshold = st.bulk_threshold;
    // Split borrows: the pool and the queue table are disjoint fields.
    let ShardState {
        pool,
        queues,
        stats,
        latency,
        wal,
        ..
    } = st;
    let Some(q) = queues
        .get_mut(qid.slot() as usize)
        .and_then(|s| s.as_mut())
        .filter(|q| q.gen == qid.generation())
    else {
        stats.stale_ops += ops.len() as u64;
        for (req, slot) in ops {
            let now = flight::now_nanos();
            latency.record(slot.age_nanos_at(now));
            flight::record_at(now, slot.trace(), EventKind::OpEnd, req.op_code());
            slot.fill(Response::Err(ServiceError::UnknownQueue(qid)));
        }
        return;
    };

    // Phase 1 — all inserts of the batch, coalesced into one bulk build
    // when the batch is big enough to pay for the slab builder.
    let mut keys: Vec<i64> = Vec::new();
    let mut demand = 0usize;
    for (req, _) in &ops {
        match req {
            Request::Insert { key, .. } => keys.push(*key),
            Request::MultiInsert { keys: ks, .. } => keys.extend_from_slice(ks),
            Request::ExtractMin { .. } => demand = demand.saturating_add(1),
            Request::ExtractK { k, .. } => demand = demand.saturating_add(*k),
            Request::PeekMin { .. } | Request::Len { .. } => {}
        }
    }
    // The flight events of a coalesced phase are charged to the first
    // participating op's trace: the phase exists because that op's batch
    // did, and a timeline filtered on any participant still shows when
    // its batch's kernels ran.
    let group_trace = ops
        .first()
        .map(|(_, slot)| slot.trace())
        .unwrap_or(obs::TraceId::NONE);

    // Admission control + write-ahead logging, both strictly before any
    // mutation: a refused batch leaves the queue untouched (pops are still
    // served), and every logged op is flushed before it is applied.
    let mut refused = None;
    if !keys.is_empty() {
        if let TenantHeap::Pooled(_) = q.heap {
            if let Err(err) = pool.can_admit(keys.len()) {
                refused = Some(err);
            }
        }
    }
    if wal.is_some() {
        if refused.is_none() && !keys.is_empty() {
            wal_log(
                wal,
                stats,
                &WalOp::FromKeys {
                    slot: qid.slot(),
                    keys: keys.clone(),
                },
            );
        }
        if demand > 0 {
            wal_log(
                wal,
                stats,
                &WalOp::MultiExtractMin {
                    slot: qid.slot(),
                    k: demand as u64,
                },
            );
        }
        wal_flush(wal, stats);
    }

    if refused.is_some() {
        // Nothing admitted; the pop phases below still run.
    } else if keys.len() >= bulk_threshold {
        flight::record(group_trace, EventKind::BulkAdmission, keys.len() as u64);
        q.heap.bulk_insert(pool, &keys);
        stats.bulk_builds += 1;
        stats.coalesced_inserts += keys.len() as u64;
    } else {
        for &k in &keys {
            q.heap.insert(pool, k);
        }
        stats.single_inserts += keys.len() as u64;
    }

    // Phase 2 — the whole pop demand as one ascending pull.
    let pulled = if demand > 0 {
        q.heap.multi_extract(pool, demand)
    } else {
        Vec::new()
    };
    if demand >= 2 {
        flight::record(group_trace, EventKind::MultiExtract, pulled.len() as u64);
        stats.multi_extracts += 1;
        stats.coalesced_pops += pulled.len() as u64;
    }

    // Phase 3 — answer in arrival order, cursoring through the pull.
    let mut j = 0usize;
    for (req, slot) in ops {
        let resp = match req {
            Request::Insert { .. } | Request::MultiInsert { .. } => match refused {
                Some(err) => Response::Err(ServiceError::Capacity { queue: qid, err }),
                None => Response::Done,
            },
            Request::ExtractMin { .. } => {
                let got = pulled.get(j).copied();
                if got.is_some() {
                    j += 1;
                }
                Response::Key(got)
            }
            Request::ExtractK { k, .. } => {
                let take = k.min(pulled.len() - j);
                let out = pulled[j..j + take].to_vec();
                j += take;
                Response::Keys(out)
            }
            Request::PeekMin { .. } => Response::Key(if j < pulled.len() {
                Some(pulled[j])
            } else {
                q.heap.peek_min(pool)
            }),
            Request::Len { .. } => Response::Len(q.heap.len() + (pulled.len() - j)),
        };
        let now = flight::now_nanos();
        latency.record(slot.age_nanos_at(now));
        flight::record_at(now, slot.trace(), EventKind::OpEnd, req.op_code());
        slot.fill(resp);
    }
}

/// Replay one WAL record into a boxed-backend shard being recovered.
/// Mirrors `meldpq::wal`'s pooled replay, but applies ops through the
/// [`MeldablePq`] surface (meld degrades to drain + bulk insert).
fn replay_boxed(
    pool: &mut HeapPool<i64>,
    queues: &mut Vec<Option<TenantQueue>>,
    free_slots: &mut Vec<(u32, u32)>,
    backend: Backend,
    seq: u64,
    op: &WalOp,
) -> Result<(), WalError> {
    fn live(queues: &mut [Option<TenantQueue>], slot: u32) -> Result<&mut TenantQueue, WalError> {
        queues
            .get_mut(slot as usize)
            .and_then(|s| s.as_mut())
            .ok_or(WalError::UnknownSlot(slot))
    }
    match op {
        WalOp::CreateHeap { slot, gen } => {
            let i = *slot as usize;
            if queues.len() <= i {
                queues.resize_with(i + 1, || None);
            }
            if queues[i].is_some() {
                return Err(WalError::Corrupt {
                    seq,
                    reason: format!("create of occupied slot {slot}"),
                });
            }
            if let Some(at) = free_slots.iter().rposition(|(s, _)| s == slot) {
                free_slots.remove(at);
            }
            queues[i] = Some(TenantQueue {
                gen: *gen,
                heap: TenantHeap::Boxed(backend.make()),
            });
        }
        WalOp::Insert { slot, key } => live(queues, *slot)?.heap.insert(pool, *key),
        WalOp::FromKeys { slot, keys } => live(queues, *slot)?.heap.bulk_insert(pool, keys),
        WalOp::ExtractMin { slot } => {
            live(queues, *slot)?.heap.extract_min(pool);
        }
        WalOp::MultiExtractMin { slot, k } => {
            let q = live(queues, *slot)?;
            let k = usize::try_from(*k).unwrap_or(usize::MAX).min(q.heap.len());
            q.heap.multi_extract(pool, k);
        }
        WalOp::Meld { dst, src } => {
            let mut taken = queues
                .get_mut(*src as usize)
                .and_then(|s| s.take())
                .ok_or(WalError::UnknownSlot(*src))?;
            let keys = taken.heap.drain_all(pool);
            free_slots.push((*src, taken.gen.wrapping_add(1)));
            live(queues, *dst)?.heap.bulk_insert(pool, &keys);
        }
        WalOp::FreeHeap { slot } => {
            let taken = queues
                .get_mut(*slot as usize)
                .and_then(|s| s.take())
                .ok_or(WalError::UnknownSlot(*slot))?;
            free_slots.push((*slot, taken.gen.wrapping_add(1)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(shard: &Arc<Shard>, q: QueueId) -> Vec<i64> {
        let slot = shard.submit(Request::ExtractK {
            queue: q,
            k: usize::MAX,
        });
        shard.try_combine();
        match slot.try_take() {
            Some(Response::Keys(v)) => v,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_thread_batch_semantics() {
        let shard = Shard::new(0, Engine::Sequential, 4, Backend::Pooled);
        let q = shard.create_queue();
        // Deposit a mixed batch without combining in between: the shard has
        // no state-lock holder, so each submit's try_combine serves it — use
        // raw ingress pushes to force one big batch instead.
        let slots: Vec<_> = [
            Request::Insert { queue: q, key: 5 },
            Request::Insert { queue: q, key: 1 },
            Request::ExtractMin { queue: q },
            Request::PeekMin { queue: q },
            Request::MultiInsert {
                queue: q,
                keys: vec![9, 3],
            },
            Request::ExtractMin { queue: q },
            Request::Len { queue: q },
        ]
        .into_iter()
        .map(|r| shard.ingress.push(r))
        .collect();
        assert!(shard.try_combine());
        let got: Vec<_> = slots.iter().map(|s| s.try_take().unwrap()).collect();
        // Inserts first ({1,3,5,9}), then pops in arrival order from the
        // ascending pull [1, 3].
        assert_eq!(got[0], Response::Done);
        assert_eq!(got[1], Response::Done);
        assert_eq!(got[2], Response::Key(Some(1)));
        assert_eq!(got[3], Response::Key(Some(3)), "peek sees the next pull");
        assert_eq!(got[4], Response::Done);
        assert_eq!(got[5], Response::Key(Some(3)));
        assert_eq!(got[6], Response::Len(2));
        assert_eq!(drain(&shard, q), vec![5, 9]);
    }

    #[test]
    fn stale_handle_is_rejected() {
        let shard = Shard::new(0, Engine::Sequential, 8, Backend::Pooled);
        let q = shard.create_queue();
        {
            let mut st = shard.lock_state();
            st.take_queue(q).unwrap();
        }
        let slot = shard.submit(Request::Insert { queue: q, key: 1 });
        shard.try_combine();
        assert_eq!(
            slot.try_take(),
            Some(Response::Err(ServiceError::UnknownQueue(q)))
        );
        // The freed slot is reused under a new generation; the old handle
        // stays dead.
        let q2 = shard.create_queue();
        assert_eq!(q2.slot(), q.slot());
        assert_ne!(q2.generation(), q.generation());
    }

    /// A deliberately broken engine: any insert panics. Stands in for a
    /// buggy backend to prove the combiner's panic barrier.
    struct PanickingPq;

    impl MeldablePq<i64> for PanickingPq {
        fn len(&self) -> usize {
            0
        }
        fn insert(&mut self, _key: i64) {
            panic!("injected engine fault");
        }
        fn peek_min(&mut self) -> Option<i64> {
            None
        }
        fn extract_min(&mut self) -> Option<i64> {
            None
        }
        fn meld(&mut self, _other: Self) {}
    }

    #[test]
    fn combiner_panic_is_contained_and_shard_keeps_serving() {
        let shard = Shard::new(0, Engine::Sequential, 8, Backend::Pooled);
        let good = shard.create_queue();
        let bad = shard.create_queue();
        // Swap the second queue's engine for the panicking one.
        {
            let mut st = shard.lock_state();
            st.queue_mut(bad).unwrap().heap = TenantHeap::Boxed(Box::new(PanickingPq));
        }
        // One batch with ops for both queues: the bad group panics, the
        // good group must still execute and the shard must stay usable.
        let s_good = shard.ingress.push(Request::Insert {
            queue: good,
            key: 4,
        });
        let s_bad = shard.ingress.push(Request::Insert { queue: bad, key: 9 });
        assert!(shard.try_combine());
        assert_eq!(s_good.try_take(), Some(Response::Done));
        assert_eq!(
            s_bad.try_take(),
            Some(Response::Err(ServiceError::Internal(bad)))
        );
        // The shard still serves: the panic neither poisoned the lock nor
        // wedged the combiner.
        let s2 = shard.submit(Request::ExtractMin { queue: good });
        shard.try_combine();
        assert_eq!(s2.try_take(), Some(Response::Key(Some(4))));
        let st = shard.peek_state();
        assert_eq!(st.stats.combiner_panics, 1);
        assert_eq!(st.stats.poison_recoveries, 0, "lock never poisoned");
    }

    #[test]
    fn poisoned_lock_is_healed_not_cascaded() {
        let shard = Shard::new(0, Engine::Sequential, 8, Backend::Pooled);
        let q = shard.create_queue();
        {
            let slot = shard.submit(Request::Insert { queue: q, key: 1 });
            shard.try_combine();
            assert_eq!(slot.try_take(), Some(Response::Done));
        }
        // Poison the state mutex by panicking while holding it, without
        // touching the state (so revalidation finds it intact).
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _st = shard.peek_state();
            panic!("injected panic under the state lock");
        }));
        assert!(res.is_err());
        // Every lock path must recover instead of propagating the poison.
        let slot = shard.submit(Request::ExtractMin { queue: q });
        shard.try_combine();
        assert_eq!(slot.try_take(), Some(Response::Key(Some(1))));
        let st = shard.peek_state();
        assert!(st.stats.poison_recoveries >= 1);
        assert_eq!(st.stats.poison_resets, 0, "state was intact");
    }

    #[test]
    fn aba_generation_wraparound() {
        // Documented ABA window: a slot's generation wraps modulo 2^32, so
        // after exactly 2^32 destroy/create cycles an ancient handle would
        // validate again. Simulate the wrap by pinning the free slot's next
        // generation to u32::MAX and cycling it twice.
        let shard = Shard::new(0, Engine::Sequential, 8, Backend::Pooled);
        let q0 = shard.create_queue(); // slot 0, gen 0
        {
            let mut st = shard.lock_state();
            st.take_queue(q0).unwrap();
            st.free_slots.clear();
            st.free_slots.push((q0.slot(), u32::MAX));
        }
        let q_max = shard.create_queue();
        assert_eq!(q_max.generation(), u32::MAX);
        {
            let mut st = shard.lock_state();
            st.take_queue(q_max).unwrap();
            assert_eq!(
                st.free_slots.last(),
                Some(&(q0.slot(), 0)),
                "generation wraps to 0"
            );
        }
        let q_wrapped = shard.create_queue();
        // The wrapped handle is bit-identical to the original: the stale q0
        // handle addresses the new queue. This is the accepted ABA window.
        assert_eq!(q_wrapped, q0);
        let slot = shard.submit(Request::Insert { queue: q0, key: 5 });
        shard.try_combine();
        assert_eq!(slot.try_take(), Some(Response::Done));
    }

    #[test]
    fn over_demand_pops_return_empty() {
        let shard = Shard::new(3, Engine::Sequential, 8, Backend::Pooled);
        let q = shard.create_queue();
        let s1 = shard.ingress.push(Request::Insert { queue: q, key: 7 });
        let s2 = shard.ingress.push(Request::ExtractMin { queue: q });
        let s3 = shard.ingress.push(Request::ExtractMin { queue: q });
        let s4 = shard.ingress.push(Request::ExtractK { queue: q, k: 5 });
        shard.try_combine();
        assert_eq!(s1.try_take(), Some(Response::Done));
        assert_eq!(s2.try_take(), Some(Response::Key(Some(7))));
        assert_eq!(s3.try_take(), Some(Response::Key(None)));
        assert_eq!(s4.try_take(), Some(Response::Keys(vec![])));
    }
}
