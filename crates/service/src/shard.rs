//! One shard: a [`HeapPool`] of tenant queues behind a flat-combining lock.
//!
//! Clients never touch the pool directly. They deposit requests into the
//! shard's [`Ingress`] and whoever acquires the state mutex next — client or
//! waiter, there is no dedicated server thread — becomes the *combiner*: it
//! drains the whole buffer, executes it as one batch with the bulk kernels,
//! and publishes results through the per-request [`OpSlot`]s. Lock hand-off
//! therefore amortises: under contention, one lock acquisition serves many
//! clients' operations, and the batch exposes exactly the coalescing the
//! paper's Forehead/Waiting buffers exist for — concurrent inserts become
//! one `from_keys_parallel` bulk build, concurrent pops one
//! `multi_extract_min` peel.
//!
//! ## Linearization of a batch
//!
//! All requests in a drained batch are concurrent (none had completed when
//! the combiner took the buffer), so *any* permutation is a valid
//! linearization. The combiner picks, per queue: every insert first, then
//! the reads/pops in arrival order with the pop demand served from one
//! ascending `multi_extract_min` pull. `PeekMin`/`Len` interleaved between
//! pops read `pulled[j]` / `len + (pulled.len() - j)` — the exact state a
//! sequential execution in that order would observe.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use meldpq::pool::PooledHeap;
use meldpq::{Backend, Engine, HeapPool, MeldablePq};
use obs::flight::{self, EventKind};
use obs::LatencyHistogram;

use crate::batch::{Ingress, OpSlot, Request, Response};
use crate::metrics::ShardStats;
use crate::service::QueueId;
use crate::ServiceError;

/// One tenant queue's storage. The shard's configured [`Backend`] decides
/// the variant at creation: [`Backend::Pooled`] queues live in the shard's
/// shared [`HeapPool`] slab (zero-copy melds, bulk slab builds); every
/// other backend is a self-contained boxed engine behind the
/// [`MeldablePq`] surface.
pub(crate) enum TenantHeap {
    /// A heap in the shard's shared pool.
    Pooled(PooledHeap),
    /// A self-contained engine chosen by the backend table.
    Boxed(Box<dyn MeldablePq<i64> + Send>),
}

impl std::fmt::Debug for TenantHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantHeap::Pooled(h) => write!(f, "TenantHeap::Pooled(len={})", h.len()),
            TenantHeap::Boxed(q) => write!(f, "TenantHeap::Boxed(len={})", q.len()),
        }
    }
}

impl TenantHeap {
    /// Number of keys stored.
    pub(crate) fn len(&self) -> usize {
        match self {
            TenantHeap::Pooled(h) => h.len(),
            TenantHeap::Boxed(q) => q.len(),
        }
    }

    /// `Insert` one key.
    pub(crate) fn insert(&mut self, pool: &mut HeapPool<i64>, key: i64) {
        match self {
            TenantHeap::Pooled(h) => pool.insert(h, key),
            TenantHeap::Boxed(q) => q.insert(key),
        }
    }

    /// Coalesced bulk admission: the pooled variant goes through the
    /// parallel slab builder + one meld; boxed engines use their own
    /// `multi_insert` (which batched engines override).
    pub(crate) fn bulk_insert(&mut self, pool: &mut HeapPool<i64>, keys: &[i64]) {
        match self {
            TenantHeap::Pooled(h) => {
                let built = pool.from_keys_parallel(keys);
                pool.meld(h, built);
            }
            TenantHeap::Boxed(q) => q.multi_insert(keys),
        }
    }

    /// `Extract-Min`.
    pub(crate) fn extract_min(&mut self, pool: &mut HeapPool<i64>) -> Option<i64> {
        match self {
            TenantHeap::Pooled(h) => pool.extract_min(h),
            TenantHeap::Boxed(q) => q.extract_min(),
        }
    }

    /// `Multi-Extract-Min`: up to `k` smallest keys, ascending.
    pub(crate) fn multi_extract(&mut self, pool: &mut HeapPool<i64>, k: usize) -> Vec<i64> {
        match self {
            TenantHeap::Pooled(h) => pool.multi_extract_min(h, k),
            TenantHeap::Boxed(q) => q.multi_extract_min(k),
        }
    }

    /// `Min` without removal (`&mut` because lazy engines tidy on reads).
    pub(crate) fn peek_min(&mut self, pool: &mut HeapPool<i64>) -> Option<i64> {
        match self {
            TenantHeap::Pooled(h) => pool.min(h),
            TenantHeap::Boxed(q) => q.peek_min(),
        }
    }

    /// Drain everything ascending (the backend-agnostic meld fallback).
    pub(crate) fn drain_all(&mut self, pool: &mut HeapPool<i64>) -> Vec<i64> {
        let n = self.len();
        self.multi_extract(pool, n)
    }
}

/// One tenant queue: its storage plus the generation stamped into the
/// handles that may address it.
#[derive(Debug)]
pub(crate) struct TenantQueue {
    pub(crate) gen: u32,
    pub(crate) heap: TenantHeap,
}

/// The lock-protected half of a shard.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub(crate) pool: HeapPool<i64>,
    /// Slot-indexed tenant queues; `None` = destroyed/free.
    pub(crate) queues: Vec<Option<TenantQueue>>,
    /// Reusable slots with the generation their next occupant gets.
    free_slots: Vec<(u32, u32)>,
    pub(crate) stats: ShardStats,
    /// Deposit-to-publish latency of every request served on this shard
    /// (fast-path ops charge their inline execution time).
    pub(crate) latency: LatencyHistogram,
    /// Coalesced insert batches at or above this size go through the bulk
    /// slab builder instead of one-by-one ripple inserts.
    bulk_threshold: usize,
    /// Which engine newly created tenant queues get.
    backend: Backend,
}

impl ShardState {
    /// The queue addressed by `id`, if the handle is current.
    pub(crate) fn queue_mut(&mut self, id: QueueId) -> Option<&mut TenantQueue> {
        self.queues
            .get_mut(id.slot() as usize)
            .and_then(|s| s.as_mut())
            .filter(|q| q.gen == id.generation())
    }

    /// A fresh, empty tenant heap of the shard's configured backend.
    pub(crate) fn new_tenant_heap(&mut self) -> TenantHeap {
        match self.backend {
            Backend::Pooled => TenantHeap::Pooled(self.pool.new_heap()),
            other => TenantHeap::Boxed(other.make()),
        }
    }

    /// Remove the queue addressed by `id`, freeing its slot for reuse under
    /// a bumped generation.
    pub(crate) fn take_queue(&mut self, id: QueueId) -> Result<TenantHeap, ServiceError> {
        let slot = id.slot() as usize;
        let current = self
            .queues
            .get(slot)
            .and_then(|s| s.as_ref())
            .filter(|q| q.gen == id.generation());
        if current.is_none() {
            self.stats.stale_ops += 1;
            return Err(ServiceError::UnknownQueue(id));
        }
        let q = self.queues[slot].take().expect("checked above");
        self.free_slots.push((id.slot(), q.gen.wrapping_add(1)));
        self.stats.queues_destroyed += 1;
        Ok(q.heap)
    }
}

/// A shard: ingress buffer + lock-protected pool state. See module docs.
#[derive(Debug)]
pub struct Shard {
    index: u16,
    ingress: Ingress,
    state: Mutex<ShardState>,
}

impl Shard {
    pub(crate) fn new(
        index: u16,
        engine: Engine,
        bulk_threshold: usize,
        backend: Backend,
    ) -> Arc<Self> {
        Arc::new(Shard {
            index,
            ingress: Ingress::new(),
            state: Mutex::new(ShardState {
                pool: HeapPool::new().with_engine(engine),
                queues: Vec::new(),
                free_slots: Vec::new(),
                stats: ShardStats::default(),
                latency: LatencyHistogram::new(),
                bulk_threshold: bulk_threshold.max(2),
                backend,
            }),
        })
    }

    /// This shard's index in the service's shard map.
    pub fn index(&self) -> u16 {
        self.index
    }

    /// Deposit a request and opportunistically combine. The returned slot
    /// completes once some combiner executes the batch containing it.
    pub(crate) fn submit(&self, req: Request) -> Arc<OpSlot> {
        let slot = self.ingress.push(req);
        self.try_combine();
        slot
    }

    /// Deposit without combining — the pipelined variant of [`Shard::submit`].
    /// The request sits in the Waiting buffer until the next combine.
    pub(crate) fn enqueue(&self, req: Request) -> Arc<OpSlot> {
        self.ingress.push(req)
    }

    /// Fast path for synchronous callers: if the state lock is free, serve
    /// any pending batch and then execute `req` inline — no completion slot,
    /// no parking. Returns `None` when another thread holds the lock (the
    /// caller should deposit and wait instead, which is exactly the
    /// contended case admission batching exists for).
    ///
    /// `begun` is the caller's [`flight::now_nanos`] reading from the op's
    /// ingress; the returned timestamp is taken after execution, so the
    /// caller can stamp its `op_end` event without another clock read. The
    /// latency charged to the shard's histogram spans `begun..end` —
    /// end-to-end as the client saw it, including any pending batch this
    /// thread served first.
    pub(crate) fn execute_now(&self, req: &Request, begun: u64) -> Option<(Response, u64)> {
        let mut st = self.state.try_lock().ok()?;
        self.combine_locked(&mut st);
        let resp = execute_single(&mut st, req);
        let end = flight::now_nanos();
        st.latency.record(end.saturating_sub(begun));
        Some((resp, end))
    }

    /// Become the combiner if the state lock is free; never blocks.
    /// Returns whether any batch was executed.
    pub(crate) fn try_combine(&self) -> bool {
        match self.state.try_lock() {
            Ok(mut st) => self.combine_locked(&mut st),
            Err(_) => false,
        }
    }

    /// Drain-and-execute until the ingress is empty. Caller holds the lock.
    pub(crate) fn combine_locked(&self, st: &mut ShardState) -> bool {
        let mut did = false;
        let start = Instant::now();
        loop {
            let batch = self.ingress.drain();
            if batch.is_empty() {
                if did {
                    st.stats.combines += 1;
                    st.stats.combine_ns = st
                        .stats
                        .combine_ns
                        .saturating_add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(0));
                }
                return did;
            }
            if !did {
                // This thread just became the combiner with work pending.
                flight::record_here(EventKind::CombinerHandoff, self.index as u64);
            }
            did = true;
            flight::record_here(EventKind::BatchFlush, batch.len() as u64);
            execute_batch(st, batch);
        }
    }

    /// Blocking-lock the state, first serving any pending batch.
    pub(crate) fn lock_state(&self) -> MutexGuard<'_, ShardState> {
        let mut st = self.state.lock().expect("shard state poisoned");
        self.combine_locked(&mut st);
        st
    }

    /// Blocking-lock the state *without* combining — the introspection
    /// path. Serving pending batches here would perturb exactly what a
    /// snapshot wants to observe (ingress backlog, combiner behaviour).
    pub(crate) fn peek_state(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().expect("shard state poisoned")
    }

    /// Requests currently waiting in this shard's ingress buffer.
    pub(crate) fn ingress_depth(&self) -> usize {
        self.ingress.depth()
    }

    /// Create a queue on this shard and hand back its (current-generation)
    /// handle.
    pub(crate) fn create_queue(&self) -> QueueId {
        let mut st = self.lock_state();
        st.stats.queues_created += 1;
        if let Some((slot, gen)) = st.free_slots.pop() {
            let heap = st.new_tenant_heap();
            st.queues[slot as usize] = Some(TenantQueue { gen, heap });
            QueueId::new(self.index, slot, gen)
        } else {
            let slot = st.queues.len() as u32;
            let heap = st.new_tenant_heap();
            st.queues.push(Some(TenantQueue { gen: 0, heap }));
            QueueId::new(self.index, slot, 0)
        }
    }
}

/// A drained request plus the slot its response is delivered through.
type PendingOp = (Request, Arc<OpSlot>);

/// Execute one drained batch against the shard state. See the module docs
/// for the linearization argument.
fn execute_batch(st: &mut ShardState, batch: Vec<PendingOp>) {
    st.stats.batches += 1;
    st.stats.max_batch = st.stats.max_batch.max(batch.len() as u64);
    st.stats.requests += batch.len() as u64;

    // Group per target queue, preserving arrival order within each group.
    let mut groups: Vec<(QueueId, Vec<PendingOp>)> = Vec::new();
    for (req, slot) in batch {
        let qid = req.queue();
        match groups.iter_mut().find(|(g, _)| *g == qid) {
            Some((_, v)) => v.push((req, slot)),
            None => groups.push((qid, vec![(req, slot)])),
        }
    }

    for (qid, ops) in groups {
        execute_queue_group(st, qid, ops);
    }
}

/// Execute one request as its own batch of one (the uncontended fast path),
/// with the same kernel selection and counter semantics as a drained batch
/// of that single request.
fn execute_single(st: &mut ShardState, req: &Request) -> Response {
    st.stats.batches += 1;
    st.stats.max_batch = st.stats.max_batch.max(1);
    st.stats.requests += 1;
    let bulk_threshold = st.bulk_threshold;
    let ShardState {
        pool,
        queues,
        stats,
        ..
    } = st;
    let qid = req.queue();
    let Some(q) = queues
        .get_mut(qid.slot() as usize)
        .and_then(|s| s.as_mut())
        .filter(|q| q.gen == qid.generation())
    else {
        stats.stale_ops += 1;
        return Response::Err(ServiceError::UnknownQueue(qid));
    };
    match req {
        Request::Insert { key, .. } => {
            q.heap.insert(pool, *key);
            stats.single_inserts += 1;
            Response::Done
        }
        Request::MultiInsert { keys, .. } => {
            if keys.len() >= bulk_threshold {
                flight::record_here(EventKind::BulkAdmission, keys.len() as u64);
                q.heap.bulk_insert(pool, keys);
                stats.bulk_builds += 1;
                stats.coalesced_inserts += keys.len() as u64;
            } else {
                for &k in keys {
                    q.heap.insert(pool, k);
                }
                stats.single_inserts += keys.len() as u64;
            }
            Response::Done
        }
        Request::ExtractMin { .. } => Response::Key(q.heap.extract_min(pool)),
        Request::ExtractK { k, .. } => {
            let out = q.heap.multi_extract(pool, *k);
            if *k >= 2 {
                flight::record_here(EventKind::MultiExtract, out.len() as u64);
                stats.multi_extracts += 1;
                stats.coalesced_pops += out.len() as u64;
            }
            Response::Keys(out)
        }
        Request::PeekMin { .. } => Response::Key(q.heap.peek_min(pool)),
        Request::Len { .. } => Response::Len(q.heap.len()),
    }
}

fn execute_queue_group(st: &mut ShardState, qid: QueueId, ops: Vec<(Request, Arc<OpSlot>)>) {
    let bulk_threshold = st.bulk_threshold;
    // Split borrows: the pool and the queue table are disjoint fields.
    let ShardState {
        pool,
        queues,
        stats,
        latency,
        ..
    } = st;
    let Some(q) = queues
        .get_mut(qid.slot() as usize)
        .and_then(|s| s.as_mut())
        .filter(|q| q.gen == qid.generation())
    else {
        stats.stale_ops += ops.len() as u64;
        for (req, slot) in ops {
            let now = flight::now_nanos();
            latency.record(slot.age_nanos_at(now));
            flight::record_at(now, slot.trace(), EventKind::OpEnd, req.op_code());
            slot.fill(Response::Err(ServiceError::UnknownQueue(qid)));
        }
        return;
    };

    // Phase 1 — all inserts of the batch, coalesced into one bulk build
    // when the batch is big enough to pay for the slab builder.
    let mut keys: Vec<i64> = Vec::new();
    let mut demand = 0usize;
    for (req, _) in &ops {
        match req {
            Request::Insert { key, .. } => keys.push(*key),
            Request::MultiInsert { keys: ks, .. } => keys.extend_from_slice(ks),
            Request::ExtractMin { .. } => demand = demand.saturating_add(1),
            Request::ExtractK { k, .. } => demand = demand.saturating_add(*k),
            Request::PeekMin { .. } | Request::Len { .. } => {}
        }
    }
    // The flight events of a coalesced phase are charged to the first
    // participating op's trace: the phase exists because that op's batch
    // did, and a timeline filtered on any participant still shows when
    // its batch's kernels ran.
    let group_trace = ops
        .first()
        .map(|(_, slot)| slot.trace())
        .unwrap_or(obs::TraceId::NONE);
    if keys.len() >= bulk_threshold {
        flight::record(group_trace, EventKind::BulkAdmission, keys.len() as u64);
        q.heap.bulk_insert(pool, &keys);
        stats.bulk_builds += 1;
        stats.coalesced_inserts += keys.len() as u64;
    } else {
        for &k in &keys {
            q.heap.insert(pool, k);
        }
        stats.single_inserts += keys.len() as u64;
    }

    // Phase 2 — the whole pop demand as one ascending pull.
    let pulled = if demand > 0 {
        q.heap.multi_extract(pool, demand)
    } else {
        Vec::new()
    };
    if demand >= 2 {
        flight::record(group_trace, EventKind::MultiExtract, pulled.len() as u64);
        stats.multi_extracts += 1;
        stats.coalesced_pops += pulled.len() as u64;
    }

    // Phase 3 — answer in arrival order, cursoring through the pull.
    let mut j = 0usize;
    for (req, slot) in ops {
        let resp = match req {
            Request::Insert { .. } | Request::MultiInsert { .. } => Response::Done,
            Request::ExtractMin { .. } => {
                let got = pulled.get(j).copied();
                if got.is_some() {
                    j += 1;
                }
                Response::Key(got)
            }
            Request::ExtractK { k, .. } => {
                let take = k.min(pulled.len() - j);
                let out = pulled[j..j + take].to_vec();
                j += take;
                Response::Keys(out)
            }
            Request::PeekMin { .. } => Response::Key(if j < pulled.len() {
                Some(pulled[j])
            } else {
                q.heap.peek_min(pool)
            }),
            Request::Len { .. } => Response::Len(q.heap.len() + (pulled.len() - j)),
        };
        let now = flight::now_nanos();
        latency.record(slot.age_nanos_at(now));
        flight::record_at(now, slot.trace(), EventKind::OpEnd, req.op_code());
        slot.fill(resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(shard: &Arc<Shard>, q: QueueId) -> Vec<i64> {
        let slot = shard.submit(Request::ExtractK {
            queue: q,
            k: usize::MAX,
        });
        shard.try_combine();
        match slot.try_take() {
            Some(Response::Keys(v)) => v,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_thread_batch_semantics() {
        let shard = Shard::new(0, Engine::Sequential, 4, Backend::Pooled);
        let q = shard.create_queue();
        // Deposit a mixed batch without combining in between: the shard has
        // no state-lock holder, so each submit's try_combine serves it — use
        // raw ingress pushes to force one big batch instead.
        let slots: Vec<_> = [
            Request::Insert { queue: q, key: 5 },
            Request::Insert { queue: q, key: 1 },
            Request::ExtractMin { queue: q },
            Request::PeekMin { queue: q },
            Request::MultiInsert {
                queue: q,
                keys: vec![9, 3],
            },
            Request::ExtractMin { queue: q },
            Request::Len { queue: q },
        ]
        .into_iter()
        .map(|r| shard.ingress.push(r))
        .collect();
        assert!(shard.try_combine());
        let got: Vec<_> = slots.iter().map(|s| s.try_take().unwrap()).collect();
        // Inserts first ({1,3,5,9}), then pops in arrival order from the
        // ascending pull [1, 3].
        assert_eq!(got[0], Response::Done);
        assert_eq!(got[1], Response::Done);
        assert_eq!(got[2], Response::Key(Some(1)));
        assert_eq!(got[3], Response::Key(Some(3)), "peek sees the next pull");
        assert_eq!(got[4], Response::Done);
        assert_eq!(got[5], Response::Key(Some(3)));
        assert_eq!(got[6], Response::Len(2));
        assert_eq!(drain(&shard, q), vec![5, 9]);
    }

    #[test]
    fn stale_handle_is_rejected() {
        let shard = Shard::new(0, Engine::Sequential, 8, Backend::Pooled);
        let q = shard.create_queue();
        {
            let mut st = shard.lock_state();
            st.take_queue(q).unwrap();
        }
        let slot = shard.submit(Request::Insert { queue: q, key: 1 });
        shard.try_combine();
        assert_eq!(
            slot.try_take(),
            Some(Response::Err(ServiceError::UnknownQueue(q)))
        );
        // The freed slot is reused under a new generation; the old handle
        // stays dead.
        let q2 = shard.create_queue();
        assert_eq!(q2.slot(), q.slot());
        assert_ne!(q2.generation(), q.generation());
    }

    #[test]
    fn over_demand_pops_return_empty() {
        let shard = Shard::new(3, Engine::Sequential, 8, Backend::Pooled);
        let q = shard.create_queue();
        let s1 = shard.ingress.push(Request::Insert { queue: q, key: 7 });
        let s2 = shard.ingress.push(Request::ExtractMin { queue: q });
        let s3 = shard.ingress.push(Request::ExtractMin { queue: q });
        let s4 = shard.ingress.push(Request::ExtractK { queue: q, k: 5 });
        shard.try_combine();
        assert_eq!(s1.try_take(), Some(Response::Done));
        assert_eq!(s2.try_take(), Some(Response::Key(Some(7))));
        assert_eq!(s3.try_take(), Some(Response::Key(None)));
        assert_eq!(s4.try_take(), Some(Response::Keys(vec![])));
    }
}
