//! Per-shard counters proving the admission layer actually batches.
//!
//! The interesting invariantly-testable facts live here: how many inserts
//! arrived coalesced vs. alone, how often the bulk build kernel fired, how
//! much pop demand one `multi_extract_min` served. The batching-ingress unit
//! test asserts on these (together with `meldpq::ArenaStats`) to prove
//! coalescing triggers the bulk kernels rather than degenerate one-by-one
//! execution.

use obs::Recorder;

/// Cumulative counters for one shard. Snapshot via
/// [`crate::QueueService::shard_stats`]; reported through [`obs::Recorder`]
/// under the `service.shard` family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Combiner rounds that executed at least one request.
    pub batches: u64,
    /// Largest single batch drained from the ingress.
    pub max_batch: u64,
    /// Requests executed in total.
    pub requests: u64,
    /// Keys inserted one-by-one (batch for their queue was below the bulk
    /// threshold).
    pub single_inserts: u64,
    /// Keys inserted through a coalesced bulk build.
    pub coalesced_inserts: u64,
    /// Bulk `from_keys_parallel` builds triggered by coalescing.
    pub bulk_builds: u64,
    /// Keys served to pop requests through a shared `multi_extract_min`
    /// (batches whose pop demand exceeded one key).
    pub coalesced_pops: u64,
    /// `multi_extract_min` kernel invocations serving ≥ 2 keys of demand.
    pub multi_extracts: u64,
    /// Same-shard melds (zero-copy plan application).
    pub melds_same_shard: u64,
    /// Cross-shard melds (counted node moves).
    pub melds_cross_shard: u64,
    /// Requests rejected because their handle was stale or unknown.
    pub stale_ops: u64,
    /// Queues created on this shard.
    pub queues_created: u64,
    /// Queues destroyed (or consumed by meld) on this shard.
    pub queues_destroyed: u64,
    /// Combiner sessions that served at least one batch (one lock tenure
    /// may drain several batches; this counts tenures, not drains).
    pub combines: u64,
    /// Total wall-clock nanoseconds spent inside working combiner
    /// sessions. `combine_ns / combines` is the mean combiner occupancy.
    pub combine_ns: u64,
    /// Times a poisoned state lock was recovered (a combiner panicked while
    /// holding it and the next locker cleared the poison).
    pub poison_recoveries: u64,
    /// Poison recoveries where `check_pool` found the state damaged and the
    /// shard was reset to empty (every queue lost).
    pub poison_resets: u64,
    /// Per-queue batch executions that panicked and were contained by the
    /// combiner's catch-unwind barrier.
    pub combiner_panics: u64,
    /// Logical ops appended to this shard's write-ahead log.
    pub wal_appends: u64,
    /// Durability checkpoints written by this shard.
    pub wal_checkpoints: u64,
    /// WAL/checkpoint I/O failures. Any failure disables durability on the
    /// shard (it keeps serving from memory) rather than failing requests.
    pub wal_errors: u64,
}

impl Recorder for ShardStats {
    fn family(&self) -> &'static str {
        "service.shard"
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("batches", self.batches),
            ("max_batch", self.max_batch),
            ("requests", self.requests),
            ("single_inserts", self.single_inserts),
            ("coalesced_inserts", self.coalesced_inserts),
            ("bulk_builds", self.bulk_builds),
            ("coalesced_pops", self.coalesced_pops),
            ("multi_extracts", self.multi_extracts),
            ("melds_same_shard", self.melds_same_shard),
            ("melds_cross_shard", self.melds_cross_shard),
            ("stale_ops", self.stale_ops),
            ("queues_created", self.queues_created),
            ("queues_destroyed", self.queues_destroyed),
            ("combines", self.combines),
            ("combine_ns", self.combine_ns),
            ("poison_recoveries", self.poison_recoveries),
            ("poison_resets", self.poison_resets),
            ("combiner_panics", self.combiner_panics),
            ("wal_appends", self.wal_appends),
            ("wal_checkpoints", self.wal_checkpoints),
            ("wal_errors", self.wal_errors),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_surface() {
        let s = ShardStats {
            batches: 3,
            coalesced_inserts: 12,
            ..Default::default()
        };
        assert_eq!(s.family(), "service.shard");
        let f = s.fields();
        assert!(f.contains(&("batches", 3)));
        assert!(f.contains(&("coalesced_inserts", 12)));
    }
}
