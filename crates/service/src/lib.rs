#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # service — a sharded, multi-tenant meldable priority-queue front end
//!
//! The paper's machine model puts an I/O processor in front of the queue:
//! operations land in a *Waiting* buffer, move to the *Forehead* as a batch,
//! and the parallel kernels serve whole batches at once. This crate is that
//! admission layer for shared-memory clients, built on the workspace's
//! zero-copy pools:
//!
//! * **Sharding** — a [`QueueService`] owns `n` shards, each an independent
//!   [`meldpq::HeapPool`] behind its own lock; queues are assigned
//!   round-robin, so unrelated tenants never contend.
//! * **Flat-combining hand-off** — there are no server threads. Clients
//!   deposit requests into the shard's ingress; whichever thread next takes
//!   the shard lock drains and executes the whole batch ([`shard`] module).
//! * **Admission batching** — a drained batch coalesces: concurrent inserts
//!   become one `from_keys_parallel` bulk build + single zero-copy meld,
//!   concurrent pops one `multi_extract_min` root-frontier peel. The
//!   [`ShardStats`] counters (and the pool's `ArenaStats`) prove it.
//! * **Handles, not borrows** — [`QueueId`] is a `Copy + Send + Sync`
//!   token (shard, slot, generation). Destroyed or melded-away queues turn
//!   handles stale ([`ServiceError::UnknownQueue`]) instead of dangling,
//!   and the API shape survives a future network front end unchanged.
//!
//! See DESIGN.md §9 at the workspace root for the shard map and the batch
//! linearization argument.

pub mod batch;
pub mod metrics;
pub mod service;
pub mod shard;
pub mod snapshot;

pub use batch::{Request, Response};
pub use metrics::ShardStats;
pub use service::{QueueId, QueueService, ServiceBuilder, Ticket};
pub use snapshot::{ServiceSnapshot, ShardSnapshot};

/// Why the service refused an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The handle does not name a live queue — it was destroyed, melded
    /// away, or never existed on this service.
    UnknownQueue(QueueId),
    /// The operation's combiner panicked mid-batch. The shard recovered
    /// (it keeps serving), but this op's effect on the queue is unknown —
    /// the client must treat it as failed.
    Internal(QueueId),
    /// A bulk admission was refused because it would overflow the shard
    /// pool's `u32` node-id space ([`meldpq::CapacityError`]). The queue
    /// is untouched; no key of the rejected batch was admitted.
    Capacity {
        /// The queue the batch targeted.
        queue: QueueId,
        /// The typed capacity refusal from the pool.
        err: meldpq::CapacityError,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownQueue(q) => write!(f, "unknown or stale queue handle {q}"),
            ServiceError::Internal(q) => {
                write!(f, "internal failure while serving {q}: combiner panicked")
            }
            ServiceError::Capacity { queue, err } => write!(f, "queue {queue}: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {}
