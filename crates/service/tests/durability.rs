//! Durable service integration: build → mutate → drop → rebuild from the
//! same root recovers every tenant queue, for the pooled backend
//! (checkpoint + WAL suffix) and a boxed backend (full-log replay).

use std::path::PathBuf;

use meldpq::Backend;
use service::{Response, ServiceBuilder};

struct TmpRoot(PathBuf);

impl TmpRoot {
    fn new(tag: &str) -> TmpRoot {
        let dir =
            std::env::temp_dir().join(format!("meldpq-svc-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpRoot(dir)
    }
}

impl Drop for TmpRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn builder(root: &TmpRoot, backend: Backend) -> ServiceBuilder {
    ServiceBuilder::new()
        .shards(2)
        .backend(backend)
        .bulk_threshold(4)
        .durable(root.0.clone())
}

#[test]
fn durable_service_survives_restart_pooled() {
    let root = TmpRoot::new("pooled");
    let (a, b, c);
    {
        let svc = builder(&root, Backend::Pooled).try_build().expect("build");
        a = svc.create_queue(); // shard 0
        b = svc.create_queue(); // shard 1
        c = svc.create_queue(); // shard 0
        svc.multi_insert(a, vec![5, 1, 9, 3]).unwrap();
        svc.insert(b, 7).unwrap();
        svc.multi_insert(c, vec![2, 8]).unwrap();
        assert_eq!(svc.extract_min(a).unwrap(), Some(1));
        svc.meld(a, c).unwrap(); // same shard: one logged Meld record
        svc.destroy_queue(b).unwrap(); // logged FreeHeap
        let stats = svc.shard_stats(0);
        assert!(stats.wal_appends >= 5, "ops were logged: {stats:?}");
        assert_eq!(stats.wal_errors, 0);
    } // drop = crash (records are flushed before every mutation)

    let svc = builder(&root, Backend::Pooled)
        .try_build()
        .expect("recover");
    svc.validate().expect("recovered state validates");
    assert_eq!(
        svc.extract_k(a, 10).unwrap(),
        vec![2, 3, 5, 8, 9],
        "queue a recovered with the melded keys, minus the extracted 1"
    );
    assert!(
        svc.len(b).is_err(),
        "destroyed queue stays destroyed after recovery"
    );
    assert!(svc.len(c).is_err(), "melded-away queue stays stale");
    // The recovered service keeps serving and logging.
    svc.insert(a, 42).unwrap();
    assert_eq!(svc.peek_min(a).unwrap(), Some(42));
}

#[test]
fn durable_service_survives_restart_boxed_backend() {
    // No checkpoint exists for boxed engines: recovery is full-log replay.
    let root = TmpRoot::new("boxed");
    let q;
    {
        let svc = builder(&root, Backend::Pairing).try_build().expect("build");
        q = svc.create_queue();
        svc.multi_insert(q, vec![30, 10, 20]).unwrap();
        assert_eq!(svc.extract_min(q).unwrap(), Some(10));
    }
    let svc = builder(&root, Backend::Pairing)
        .try_build()
        .expect("recover");
    assert_eq!(svc.extract_k(q, 5).unwrap(), vec![20, 30]);
}

#[test]
fn cross_shard_meld_is_durable() {
    let root = TmpRoot::new("xshard");
    let (a, b);
    {
        let svc = builder(&root, Backend::Pooled).try_build().expect("build");
        a = svc.create_queue(); // shard 0
        b = svc.create_queue(); // shard 1
        svc.multi_insert(a, vec![4, 6]).unwrap();
        svc.multi_insert(b, vec![1, 9]).unwrap();
        // src FreeHeap lands in shard 1's log, the moved keys as FromKeys
        // in shard 0's — both flushed before the mutation.
        svc.meld(a, b).unwrap();
    }
    let svc = builder(&root, Backend::Pooled)
        .try_build()
        .expect("recover");
    assert_eq!(svc.extract_k(a, 10).unwrap(), vec![1, 4, 6, 9]);
    assert!(svc.len(b).is_err(), "melded-away source is stale");
}

#[test]
fn explicit_checkpoint_bounds_replay() {
    let root = TmpRoot::new("ckpt");
    let q;
    {
        let svc = builder(&root, Backend::Pooled).try_build().expect("build");
        q = svc.create_queue();
        svc.multi_insert(q, (0..32).collect()).unwrap();
        svc.checkpoint();
        let stats = svc.shard_stats((q.shard()) as usize);
        assert_eq!(stats.wal_checkpoints, 1);
        // Post-checkpoint ops land in the WAL suffix.
        svc.insert(q, -1).unwrap();
    }
    let svc = builder(&root, Backend::Pooled)
        .try_build()
        .expect("recover");
    assert_eq!(svc.extract_min(q).unwrap(), Some(-1));
    assert_eq!(svc.len(q).unwrap(), 32);
}

#[test]
fn async_surface_is_logged_too() {
    let root = TmpRoot::new("async");
    let q;
    {
        let svc = builder(&root, Backend::Pooled).try_build().expect("build");
        q = svc.create_queue();
        let t1 = svc.insert_async(q, 3).unwrap();
        let t2 = svc.insert_async(q, 1).unwrap();
        assert_eq!(t1.wait(), Response::Done);
        assert_eq!(t2.wait(), Response::Done);
    }
    let svc = builder(&root, Backend::Pooled)
        .try_build()
        .expect("recover");
    assert_eq!(svc.extract_k(q, 4).unwrap(), vec![1, 3]);
}
