//! Deterministic proof that admission batching actually coalesces: requests
//! deposited through the pipelined [`QueueService::enqueue`] path sit in the
//! shard's Waiting buffer until one combine serves them all, and the batch
//! counters ([`service::ShardStats`]) plus the pool's arena counters
//! (`meldpq::ArenaStats`) pin down *which* kernel ran.
//!
//! [`QueueService::enqueue`]: service::QueueService::enqueue

use service::{Request, Response, ServiceBuilder};

#[test]
fn pipelined_inserts_coalesce_into_one_bulk_build() {
    let svc = ServiceBuilder::new().shards(1).bulk_threshold(4).build();
    let q = svc.create_queue();
    let tickets: Vec<_> = (0..64)
        .map(|k| svc.enqueue(Request::Insert { queue: q, key: k }).unwrap())
        .collect();
    svc.flush();
    for t in tickets {
        assert_eq!(t.wait(), Response::Done);
    }
    let stats = svc.shard_stats(0);
    assert_eq!(stats.batches, 1, "one drain served all 64 deposits");
    assert_eq!(stats.max_batch, 64);
    assert_eq!(
        stats.bulk_builds, 1,
        "inserts went through the slab builder"
    );
    assert_eq!(stats.coalesced_inserts, 64);
    assert_eq!(stats.single_inserts, 0, "no ripple inserts");
    let arena = svc.arena_stats(0);
    assert_eq!(arena.allocs, 64, "one node per key");
    assert_eq!(arena.copies, 0, "bulk build + same-pool meld is zero-copy");
    assert_eq!(svc.len(q).unwrap(), 64);
}

#[test]
fn below_threshold_batches_use_ripple_inserts() {
    let svc = ServiceBuilder::new().shards(1).bulk_threshold(8).build();
    let q = svc.create_queue();
    let tickets: Vec<_> = (0..3)
        .map(|k| svc.enqueue(Request::Insert { queue: q, key: k }).unwrap())
        .collect();
    svc.flush();
    for t in tickets {
        assert_eq!(t.wait(), Response::Done);
    }
    let stats = svc.shard_stats(0);
    assert_eq!(stats.bulk_builds, 0, "3 < threshold 8: no slab build");
    assert_eq!(stats.single_inserts, 3);
    assert_eq!(stats.coalesced_inserts, 0);
}

#[test]
fn pipelined_pops_coalesce_into_one_multi_extract() {
    let svc = ServiceBuilder::new().shards(1).bulk_threshold(4).build();
    let q = svc.create_queue();
    svc.multi_insert(q, (0..32).rev().collect()).unwrap();
    let pops: Vec<_> = (0..8)
        .map(|_| svc.enqueue(Request::ExtractMin { queue: q }).unwrap())
        .collect();
    let tk = svc.enqueue(Request::ExtractK { queue: q, k: 8 }).unwrap();
    svc.flush();
    for (i, t) in pops.into_iter().enumerate() {
        assert_eq!(t.wait(), Response::Key(Some(i as i64)));
    }
    assert_eq!(tk.wait(), Response::Keys((8..16).collect()));
    let stats = svc.shard_stats(0);
    assert_eq!(stats.multi_extracts, 1, "whole pop demand was one pull");
    assert_eq!(stats.coalesced_pops, 16);
    assert_eq!(svc.len(q).unwrap(), 16);
}

#[test]
fn one_batch_serves_many_queues_independently() {
    let svc = ServiceBuilder::new().shards(1).bulk_threshold(4).build();
    let a = svc.create_queue();
    let b = svc.create_queue();
    let ta: Vec<_> = [5i64, 1, 3]
        .iter()
        .map(|&key| svc.enqueue(Request::Insert { queue: a, key }).unwrap())
        .collect();
    let pop_b = svc.enqueue(Request::ExtractMin { queue: b }).unwrap();
    let peek_a = svc.enqueue(Request::PeekMin { queue: a }).unwrap();
    svc.flush();
    for t in ta {
        assert_eq!(t.wait(), Response::Done);
    }
    assert_eq!(pop_b.wait(), Response::Key(None), "b stays empty");
    assert_eq!(peek_a.wait(), Response::Key(Some(1)));
    let stats = svc.shard_stats(0);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.max_batch, 5);
}

#[test]
fn ticket_wait_drives_pending_batches() {
    // No flush: the waiter itself must become the combiner, so progress
    // never depends on another thread.
    let svc = ServiceBuilder::new().shards(1).build();
    let q = svc.create_queue();
    let t1 = svc.enqueue(Request::Insert { queue: q, key: 3 }).unwrap();
    let t2 = svc.enqueue(Request::ExtractMin { queue: q }).unwrap();
    assert_eq!(t2.wait(), Response::Key(Some(3)));
    assert_eq!(t1.wait(), Response::Done);
}
