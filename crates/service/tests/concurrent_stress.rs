//! Stress and differential coverage for the sharded service.
//!
//! * [`concurrent_multiset_conservation`] — N producer threads and M
//!   consumer threads hammer one [`QueueService`] through the sync API with
//!   globally unique keys (`tid << 32 | i`). No interleaving can be
//!   predicted, but the multiset must be conserved: everything the consumers
//!   extracted plus everything left after a full meld-and-drain must be
//!   exactly the produced key set. `SERVICE_STRESS_MULT` scales the thread
//!   counts (CI runs 4×).
//! * [`sequential_programs_match_oracle`] — a seeded, shrinkable proptest:
//!   random single-threaded programs over a dynamic set of queues (create /
//!   destroy / insert / bulk ops / meld, including cross-shard) run against
//!   per-queue sorted-vector oracles, so failures reduce to a minimal op
//!   list with a replayable seed.
//!
//! [`QueueService`]: service::QueueService

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use proptest::prelude::*;
use service::{QueueId, ServiceBuilder};

fn stress_mult() -> usize {
    std::env::var("SERVICE_STRESS_MULT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

#[test]
fn concurrent_multiset_conservation() {
    let m = stress_mult();
    let producers = 4 * m;
    let consumers = 2 * m;
    let keys_per_producer: i64 = 512;
    let svc = Arc::new(ServiceBuilder::new().shards(4).bulk_threshold(4).build());
    let queues: Arc<Vec<QueueId>> = Arc::new((0..8).map(|_| svc.create_queue()).collect());
    let barrier = Arc::new(Barrier::new(producers + consumers));
    let extracted = Arc::new(Mutex::new(Vec::<i64>::new()));
    let done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for tid in 0..producers {
        let (svc, queues, barrier) = (Arc::clone(&svc), Arc::clone(&queues), Arc::clone(&barrier));
        handles.push(thread::spawn(move || {
            barrier.wait();
            let keys: Vec<i64> = (0..keys_per_producer)
                .map(|i| ((tid as i64) << 32) | i)
                .collect();
            // Alternate chunk-wise between bulk and single inserts so both
            // admission paths run under contention.
            for (c, chunk) in keys.chunks(5).enumerate() {
                let q = queues[(tid + c) % queues.len()];
                if c % 2 == 0 {
                    svc.multi_insert(q, chunk.to_vec()).unwrap();
                } else {
                    for &k in chunk {
                        svc.insert(q, k).unwrap();
                    }
                }
            }
        }));
    }
    for tid in 0..consumers {
        let (svc, queues, barrier) = (Arc::clone(&svc), Arc::clone(&queues), Arc::clone(&barrier));
        let (extracted, done) = (Arc::clone(&extracted), Arc::clone(&done));
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut local = Vec::new();
            loop {
                let mut got = 0usize;
                for (j, &q) in queues.iter().enumerate() {
                    if (j + tid) % 3 == 0 {
                        let v = svc.extract_k(q, 4).unwrap();
                        got += v.len();
                        local.extend(v);
                    } else if let Some(k) = svc.extract_min(q).unwrap() {
                        got += 1;
                        local.push(k);
                    }
                }
                if got == 0 {
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    thread::yield_now();
                }
            }
            extracted.lock().unwrap().extend(local);
        }));
    }
    // Join producers (spawned first), then release the consumers' exit path.
    for h in handles.drain(..producers) {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }

    svc.validate().unwrap();
    // Meld every queue into the first (same- and cross-shard paths), then
    // drain what the consumers left behind.
    let sink = queues[0];
    for &q in &queues[1..] {
        svc.meld(sink, q).unwrap();
        assert!(svc.len(q).is_err(), "melded-away queue must be stale");
    }
    let rest = svc.extract_k(sink, usize::MAX).unwrap();
    assert!(rest.windows(2).all(|w| w[0] <= w[1]), "drain is ascending");
    assert_eq!(svc.len(sink).unwrap(), 0);

    let mut got = extracted.lock().unwrap().clone();
    got.extend(&rest);
    got.sort_unstable();
    let mut want: Vec<i64> = (0..producers as i64)
        .flat_map(|t| (0..keys_per_producer).map(move |i| (t << 32) | i))
        .collect();
    want.sort_unstable();
    if got != want {
        // Conservation broke somewhere in the combiner/batch machinery:
        // drain the flight recorder so the panic carries the ops the
        // combiners were serving when keys went missing (full dump for the
        // CI artifact, tail inline for the log).
        obs::flight::dump(std::path::Path::new("target/service-stress-flight.json"));
        panic!(
            "multiset conservation broken across {producers}p/{consumers}c: \
             got {} keys, want {} (full flight dump in target/service-stress-flight.json)\n\
             last flight events:\n{}",
            got.len(),
            want.len(),
            obs::flight::render(&obs::flight::tail(64)),
        );
    }
    svc.validate().unwrap();
}

/// One step of a random service program. Queue indices resolve modulo the
/// current live-queue count at execution time.
#[derive(Debug, Clone)]
enum SvcOp {
    Create,
    Destroy(usize),
    Insert(usize, i64),
    MultiInsert(usize, Vec<i64>),
    ExtractMin(usize),
    ExtractK(usize, usize),
    Peek(usize),
    Len(usize),
    Meld(usize, usize),
}

fn svc_op_strategy() -> impl Strategy<Value = SvcOp> {
    let key = -64i64..64;
    prop_oneof![
        1 => Just(SvcOp::Create),
        1 => any::<usize>().prop_map(SvcOp::Destroy),
        5 => (any::<usize>(), key.clone()).prop_map(|(q, k)| SvcOp::Insert(q, k)),
        2 => (any::<usize>(), proptest::collection::vec(key, 0..12))
            .prop_map(|(q, ks)| SvcOp::MultiInsert(q, ks)),
        3 => any::<usize>().prop_map(SvcOp::ExtractMin),
        1 => (any::<usize>(), 0usize..6).prop_map(|(q, k)| SvcOp::ExtractK(q, k)),
        1 => any::<usize>().prop_map(SvcOp::Peek),
        1 => any::<usize>().prop_map(SvcOp::Len),
        2 => (any::<usize>(), any::<usize>()).prop_map(|(d, s)| SvcOp::Meld(d, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sequential_programs_match_oracle(
        ops in proptest::collection::vec(svc_op_strategy(), 1..64),
    ) {
        let svc = ServiceBuilder::new().shards(2).bulk_threshold(3).build();
        // (handle, sorted oracle) per live queue.
        let mut queues: Vec<(QueueId, Vec<i64>)> = vec![(svc.create_queue(), Vec::new())];
        for (step, op) in ops.into_iter().enumerate() {
            let n = queues.len();
            match op {
                SvcOp::Create => queues.push((svc.create_queue(), Vec::new())),
                SvcOp::Destroy(raw) => {
                    let (q, oracle) = queues.remove(raw % n);
                    prop_assert_eq!(svc.destroy_queue(q).unwrap(), oracle.len(),
                        "destroy count at step {}", step);
                    prop_assert!(svc.insert(q, 0).is_err(),
                        "destroyed handle live at step {}", step);
                }
                SvcOp::Insert(raw, k) => {
                    let (q, oracle) = &mut queues[raw % n];
                    svc.insert(*q, k).unwrap();
                    let at = oracle.partition_point(|&x| x <= k);
                    oracle.insert(at, k);
                }
                SvcOp::MultiInsert(raw, ks) => {
                    let (q, oracle) = &mut queues[raw % n];
                    svc.multi_insert(*q, ks.clone()).unwrap();
                    oracle.extend(ks);
                    oracle.sort_unstable();
                }
                SvcOp::ExtractMin(raw) => {
                    let (q, oracle) = &mut queues[raw % n];
                    let want = if oracle.is_empty() { None } else { Some(oracle.remove(0)) };
                    prop_assert_eq!(svc.extract_min(*q).unwrap(), want,
                        "extract at step {}", step);
                }
                SvcOp::ExtractK(raw, k) => {
                    let (q, oracle) = &mut queues[raw % n];
                    let take = k.min(oracle.len());
                    let want: Vec<i64> = oracle.drain(..take).collect();
                    prop_assert_eq!(svc.extract_k(*q, k).unwrap(), want,
                        "extract_k at step {}", step);
                }
                SvcOp::Peek(raw) => {
                    let (q, oracle) = &mut queues[raw % n];
                    prop_assert_eq!(svc.peek_min(*q).unwrap(), oracle.first().copied(),
                        "peek at step {}", step);
                }
                SvcOp::Len(raw) => {
                    let (q, oracle) = &mut queues[raw % n];
                    prop_assert_eq!(svc.len(*q).unwrap(), oracle.len(),
                        "len at step {}", step);
                }
                SvcOp::Meld(draw, sraw) => {
                    let (d, s) = (draw % n, sraw % n);
                    if d == s {
                        svc.meld(queues[d].0, queues[s].0).unwrap();
                        continue;
                    }
                    let (sq, soracle) = queues.remove(s);
                    let d = if s < d { d - 1 } else { d };
                    let (dq, doracle) = &mut queues[d];
                    svc.meld(*dq, sq).unwrap();
                    doracle.extend(soracle);
                    doracle.sort_unstable();
                    prop_assert!(svc.len(sq).is_err(),
                        "melded-away handle live at step {}", step);
                }
            }
            if queues.is_empty() {
                queues.push((svc.create_queue(), Vec::new()));
            }
        }
        svc.validate().unwrap();
        for (q, oracle) in queues {
            prop_assert_eq!(svc.extract_k(q, usize::MAX).unwrap(), oracle, "final drain");
        }
    }
}
