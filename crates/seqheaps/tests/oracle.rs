//! Differential tests: every heap against a sorted-vector oracle, over random
//! operation scripts, with structural validation after every mutation.

use proptest::prelude::*;
use seqheaps::{
    BinaryHeapAdapter, BinomialHeap, DaryHeap, LeftistHeap, MeldableHeap, PairingHeap, SkewHeap,
};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    ExtractMin,
    /// Meld in a freshly built heap holding these keys.
    Meld(Vec<i64>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<i64>().prop_map(Op::Insert),
        3 => Just(Op::ExtractMin),
        1 => proptest::collection::vec(any::<i64>(), 0..12).prop_map(Op::Meld),
    ]
}

/// A trivially correct priority queue.
#[derive(Default)]
struct Oracle {
    keys: Vec<i64>,
}

impl Oracle {
    fn insert(&mut self, k: i64) {
        self.keys.push(k);
    }
    fn extract_min(&mut self) -> Option<i64> {
        let (idx, _) = self.keys.iter().enumerate().min_by_key(|(_, k)| **k)?;
        Some(self.keys.swap_remove(idx))
    }
    fn min(&self) -> Option<i64> {
        self.keys.iter().min().copied()
    }
}

fn run_script<H, V>(ops: &[Op], validate: V)
where
    H: MeldableHeap<i64>,
    V: Fn(&H) -> Result<(), String>,
{
    let mut heap = H::new();
    let mut oracle = Oracle::default();
    for op in ops {
        match op {
            Op::Insert(k) => {
                heap.insert(*k);
                oracle.insert(*k);
            }
            Op::ExtractMin => {
                assert_eq!(heap.extract_min(), oracle.extract_min());
            }
            Op::Meld(keys) => {
                let mut other = H::new();
                for k in keys {
                    other.insert(*k);
                    oracle.insert(*k);
                }
                heap.meld(other);
            }
        }
        assert_eq!(heap.len(), oracle.keys.len());
        assert_eq!(heap.min().copied(), oracle.min());
        validate(&heap).expect("structural invariant violated");
    }
    // Drain and compare total ordering.
    let mut expected = oracle.keys.clone();
    expected.sort_unstable();
    assert_eq!(heap.into_sorted_vec(), expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binomial_matches_oracle(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        run_script::<BinomialHeap<i64>, _>(&ops, |h| h.validate());
    }

    #[test]
    fn leftist_matches_oracle(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        run_script::<LeftistHeap<i64>, _>(&ops, |h| h.validate());
    }

    #[test]
    fn skew_matches_oracle(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        run_script::<SkewHeap<i64>, _>(&ops, |h| h.validate());
    }

    #[test]
    fn pairing_matches_oracle(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        run_script::<PairingHeap<i64>, _>(&ops, |h| h.validate());
    }

    #[test]
    fn binary_matches_oracle(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        run_script::<BinaryHeapAdapter<i64>, _>(&ops, |_| Ok(()));
    }

    #[test]
    fn dary4_matches_oracle(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        run_script::<DaryHeap<i64, 4>, _>(&ops, |h| h.validate());
    }

    #[test]
    fn dary8_matches_oracle(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        run_script::<DaryHeap<i64, 8>, _>(&ops, |h| h.validate());
    }

    /// BH2 / binary-representation isomorphism: after any build, the orders of
    /// the binomial trees present are exactly the set bits of n (paper §2).
    #[test]
    fn binomial_roots_are_set_bits(keys in proptest::collection::vec(any::<i32>(), 0..200)) {
        let h = BinomialHeap::from_iter_keys(keys.iter().copied());
        let n = keys.len();
        let expected: Vec<usize> = (0..usize::BITS as usize)
            .filter(|i| n >> i & 1 == 1)
            .collect();
        prop_assert_eq!(h.root_orders(), expected);
    }

    /// Union-addition isomorphism (paper §3): melding heaps of sizes n1, n2
    /// produces the tree set of the bits of n1 + n2.
    #[test]
    fn union_is_binary_addition(
        a in proptest::collection::vec(any::<i32>(), 0..200),
        b in proptest::collection::vec(any::<i32>(), 0..200),
    ) {
        let mut ha = BinomialHeap::from_iter_keys(a.iter().copied());
        let hb = BinomialHeap::from_iter_keys(b.iter().copied());
        ha.meld(hb);
        let n = a.len() + b.len();
        let expected: Vec<usize> = (0..usize::BITS as usize)
            .filter(|i| n >> i & 1 == 1)
            .collect();
        prop_assert_eq!(ha.root_orders(), expected);
        prop_assert!(ha.validate().is_ok());
    }
}

/// All five heaps sort the same random multiset identically (heap-sort
/// equivalence across implementations).
#[test]
fn all_heaps_agree_on_heapsort() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let keys: Vec<i64> = (0..5_000).map(|_| rng.gen_range(-1000..1000)).collect();
    let mut expected = keys.clone();
    expected.sort_unstable();

    assert_eq!(
        BinomialHeap::from_iter_keys(keys.iter().copied()).into_sorted_vec(),
        expected
    );
    assert_eq!(
        LeftistHeap::from_iter_keys(keys.iter().copied()).into_sorted_vec(),
        expected
    );
    assert_eq!(
        SkewHeap::from_iter_keys(keys.iter().copied()).into_sorted_vec(),
        expected
    );
    assert_eq!(
        PairingHeap::from_iter_keys(keys.iter().copied()).into_sorted_vec(),
        expected
    );
    assert_eq!(
        BinaryHeapAdapter::from_iter_keys(keys.iter().copied()).into_sorted_vec(),
        expected
    );
    assert_eq!(
        DaryHeap::<i64, 4>::from_iter_keys(keys.iter().copied()).into_sorted_vec(),
        expected
    );
}
